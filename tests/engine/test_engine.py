"""Unit tests for the streaming plan compiler and its satellites:
the deref cache, hash-join recognition, engine selection, session
stats hygiene, and the engine-aware cost model.
"""

import pytest

from repro.core.engine import (DerefCache, Pipeline, compile_plan,
                               match_hash_join)
from repro.core.expr import AlgebraError, Const, Input, Named, evaluate
from repro.core.operators import (Pi, SetApply, TupExtract, rel_join,
                                  sigma)
from repro.core.optimizer import CostModel, ObjectStats, Statistics
from repro.core.predicates import Atom
from repro.core.values import DNE, MultiSet, Tup
from repro.storage import Database
from repro.workloads import build_university, figures
from repro.workloads.dispatch import (build_population, define_boss_methods,
                                      switch_plan, union_plan)


@pytest.fixture(scope="module")
def uni():
    handle = build_university(n_departments=3, n_employees=24,
                              n_students=36, advisor_pool=4,
                              employee_name_pool=4, seed=5)
    figures.value_views(handle)
    build_population(handle)
    define_boss_methods(handle)
    return handle


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------


def test_unknown_mode_rejected(uni):
    with pytest.raises(ValueError):
        evaluate(figures.figure_3(), uni.db.context(), mode="vectorized")


def test_compiled_mode_runs_figures(uni):
    ctx = uni.db.context()
    for builder in (figures.figure_3, figures.figure_4, figures.figure_6,
                    figures.figure_9, figures.figure_11):
        expr = builder()
        ctx.begin_query()
        assert (evaluate(expr, ctx, mode="compiled")
                == evaluate(expr, uni.db.context()))


def test_pipeline_is_reusable_and_explains(uni):
    pipeline = compile_plan(figures.figure_4())
    assert isinstance(pipeline, Pipeline)
    first = pipeline.execute(uni.db.context())
    second = pipeline.execute(uni.db.context())
    assert first == second
    text = pipeline.explain()
    assert "FUSED_APPLY" in text and "compiled plan" in text
    assert "Pipeline" in repr(pipeline)


def test_compiled_input_binding(uni):
    tup = Tup(name="x", city="Lodi")
    assert (evaluate(TupExtract("city", Input()), uni.db.context(),
                    input_value=tup, mode="compiled") == "Lodi")
    with pytest.raises(AlgebraError):
        evaluate(Input(), uni.db.context(), mode="compiled")


# ---------------------------------------------------------------------------
# Deref cache
# ---------------------------------------------------------------------------


def test_deref_cache_lru_eviction():
    cache = DerefCache(capacity=2)
    cache.put(1, "a")
    cache.put(2, "b")
    assert cache.get(1) == "a"   # refreshes 1; 2 is now oldest
    cache.put(3, "c")
    assert 2 not in cache and 1 in cache and 3 in cache
    assert len(cache) == 2


def test_deref_cache_clear_resets_counters():
    cache = DerefCache()
    cache.put(1, "a")
    cache.hits, cache.misses = 5, 7
    cache.clear()
    assert (len(cache), cache.hits, cache.misses) == (0, 0, 0)


def test_deref_cache_rejects_silly_capacity():
    with pytest.raises(ValueError):
        DerefCache(capacity=0)


def test_compiled_deref_populates_cache_and_stats(uni):
    ctx = uni.db.context()
    ctx.begin_query()
    evaluate(figures.figure_4(), ctx, mode="compiled")
    stats = ctx.stats
    assert stats["deref_cache_hit"] > 0
    assert stats["deref_cache_miss"] > 0
    assert (stats["deref_count"]
            == stats["deref_cache_hit"] + stats["deref_cache_miss"])
    assert len(ctx.deref_cache) > 0


def test_begin_query_clears_the_cache(uni):
    ctx = uni.db.context()
    evaluate(figures.figure_4(), ctx, mode="compiled")
    assert len(ctx.deref_cache) > 0
    ctx.begin_query()
    assert len(ctx.deref_cache) == 0 and ctx.stats == {}


def test_compiled_matches_interpreter_deref_count(uni):
    """The cache changes the *cost* of a deref, never the count."""
    interp = uni.db.context()
    evaluate(figures.figure_9(2), interp)
    comp = uni.db.context()
    evaluate(figures.figure_9(2), comp, mode="compiled")
    assert comp.stats["deref_count"] == interp.stats["deref_count"]


# ---------------------------------------------------------------------------
# Hash join
# ---------------------------------------------------------------------------


def _join(uni):
    return rel_join(
        Atom(TupExtract("sdept", TupExtract("field1", Input())), "=",
             TupExtract("ename", TupExtract("field2", Input()))),
        Named("StudentsV"), Named("EmployeesV"))


def test_hash_join_shape_recognized(uni):
    match = match_hash_join(_join(uni))
    assert match is not None
    assert match.left == Named("StudentsV")
    assert match.right == Named("EmployeesV")


def test_non_equality_join_not_matched(uni):
    plan = rel_join(
        Atom(TupExtract("sdept", TupExtract("field1", Input())), "<",
             TupExtract("ename", TupExtract("field2", Input()))),
        Named("StudentsV"), Named("EmployeesV"))
    assert match_hash_join(plan) is None


def test_plain_sigma_not_matched(uni):
    plan = sigma(Atom(TupExtract("city", Input()), "=", Const("Madison")),
                 Named("EmployeesV"))
    assert match_hash_join(plan) is None


def test_hash_join_equivalent_and_never_forms_pairs(uni):
    plan = _join(uni)
    interp = uni.db.context()
    expected = evaluate(plan, interp)
    comp = uni.db.context()
    got = evaluate(plan, comp, mode="compiled")
    assert got == expected
    assert interp.stats["cross_pairs"] > 0
    assert comp.stats.get("cross_pairs", 0) == 0
    assert comp.stats["hash_join_build"] > 0
    assert comp.stats["hash_join_probes"] > 0


def test_hash_join_appears_in_explain(uni):
    assert "HASH_JOIN" in compile_plan(_join(uni)).explain()


# ---------------------------------------------------------------------------
# Typed dispatch
# ---------------------------------------------------------------------------


def test_dispatch_strategies_agree_compiled(uni):
    ctx = uni.db.context()
    interp = evaluate(switch_plan("boss"), uni.db.context())
    for plan in (switch_plan("boss"), union_plan(uni, "boss")):
        ctx.begin_query()
        assert evaluate(plan, ctx, mode="compiled") == interp


def test_typed_set_apply_filters_compiled(uni):
    plan = union_plan(uni, "boss", collapse=False)
    assert (evaluate(plan, uni.db.context(), mode="compiled")
            == evaluate(plan, uni.db.context()))


# ---------------------------------------------------------------------------
# Session stats hygiene
# ---------------------------------------------------------------------------


def test_session_stats_reset_between_statements():
    from repro.excess import Session
    db = Database()
    db.create("Nums", MultiSet([Tup(n=1), Tup(n=2), Tup(n=3)]))
    session = Session(db)
    session.run("range of X is Nums")
    first = session.run("retrieve (X.n)")[-1]
    second = session.run("retrieve (X.n) where X.n = 2")[-1]
    assert first.stats["elements_scanned"] == 3
    # Counters restart per statement instead of accumulating: the second
    # statement's stats match the same statement run in a fresh session.
    fresh = Session(db)
    fresh.run("range of X is Nums")
    baseline = fresh.run("retrieve (X.n) where X.n = 2")[-1]
    assert second.stats == baseline.stats
    assert session.context.stats == second.stats


def test_session_engine_choice_and_validation():
    from repro.excess import Session
    db = Database()
    db.create("Nums", MultiSet([Tup(n=1), Tup(n=2)]))
    compiled = Session(db, engine="compiled")
    value = compiled.query("range of X is Nums retrieve (X.n)")
    assert value == MultiSet([Tup(n=1), Tup(n=2)])
    with pytest.raises(ValueError):
        Session(db, engine="jit")


def test_cli_engine_meta_command():
    from repro.cli import Shell
    shell = Shell()
    assert "interpreted" in shell.handle_meta(".engine")
    assert "compiled" in shell.handle_meta(".engine compiled")
    assert shell.session.engine == "compiled"
    assert "usage" in shell.handle_meta(".engine warp")
    shell.handle_meta(".demo")
    assert shell.session.engine == "compiled"  # survives reloads
    out = shell.feed("range of E is Employees retrieve (E)")
    assert out and not out[0].startswith("error")


# ---------------------------------------------------------------------------
# Engine-aware cost model
# ---------------------------------------------------------------------------


def _stats():
    stats = Statistics()
    stats.set_object("StudentsV", ObjectStats(cardinality=500, distinct=400))
    stats.set_object("EmployeesV", ObjectStats(cardinality=800, distinct=100))
    return stats


def test_cost_model_rejects_unknown_engine():
    with pytest.raises(ValueError):
        CostModel(engine="quantum")


def test_compiled_cost_model_prefers_hash_join(uni):
    plan = _join(uni)
    interp_cost = CostModel(_stats()).cost(plan)
    compiled_cost = CostModel(_stats(), engine="compiled").cost(plan)
    assert compiled_cost < interp_cost
    # Linear-plus-output beats the quadratic pair set by a wide margin.
    assert compiled_cost < interp_cost / 5


def test_compiled_cost_model_keeps_paper_rankings(uni):
    stats = Statistics.from_database(uni.db)
    for engine in ("interpreted", "compiled"):
        model = CostModel(stats, engine=engine)
        assert model.cost(figures.figure_8()) < model.cost(figures.figure_7())
        assert (model.cost(figures.figure_10())
                < model.cost(figures.figure_9()))
        assert (model.cost(figures.figure_11())
                < model.cost(figures.figure_9()))


# ---------------------------------------------------------------------------
# Streaming semantics details
# ---------------------------------------------------------------------------


def test_fused_chain_keeps_duplicate_cardinalities():
    db = Database()
    db.create("S", MultiSet([Tup(a=1), Tup(a=1), Tup(a=2)]))
    plan = SetApply(Pi(["a"], Input()),
                    SetApply(Input(), Named("S")))
    result = evaluate(plan, db.context(), mode="compiled")
    assert result == MultiSet([Tup(a=1), Tup(a=1), Tup(a=2)])
    assert len(result) == 3 and result.distinct_count() == 2


def test_fused_chain_drops_dne_fields():
    db = Database()
    db.create("S", MultiSet([Tup(a=1, b=2), Tup(a=DNE, b=3)]))
    plan = SetApply(TupExtract("a", Input()), Named("S"))
    assert (evaluate(plan, db.context(), mode="compiled")
            == MultiSet([1]))


def test_compiled_error_messages_match_interpreter():
    db = Database()
    db.create("S", MultiSet([3]))
    plan = SetApply(TupExtract("a", Input()), Named("S"))
    with pytest.raises(AlgebraError) as interp_err:
        evaluate(plan, db.context())
    with pytest.raises(AlgebraError) as comp_err:
        evaluate(plan, db.context(), mode="compiled")
    assert str(comp_err.value) == str(interp_err.value)
