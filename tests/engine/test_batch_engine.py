"""Differential tests for the columnar batch engine.

The batch-stressing corpus (wide arrays, deep deref chains, disjoint
typed unions, skewed partition pools) must be bit-identical across
interpreted / compiled / batched / partition-parallel execution, and
the generator's coverage is pinned so refactors can't gut it.
"""

import pytest

from repro import Database, ExecutionOptions, MultiSet, connect
from repro.core.engine import compile_batch_plan
from repro.core.expr import evaluate
from repro.core.values import Tup
from repro.workloads.plangen import (BATCH_SEED_BASE, N_BATCH_PLANS,
                                     build_fixture_db, generate_batch_plan,
                                     run_modes)


@pytest.fixture(scope="module")
def fixture_db():
    return build_fixture_db()


# ---------------------------------------------------------------------------
# The batch-stressing differential sweep
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(BATCH_SEED_BASE,
                                       BATCH_SEED_BASE + N_BATCH_PLANS))
def test_batch_differential_plan(seed, fixture_db):
    expr = generate_batch_plan(seed)
    modes = run_modes(expr, fixture_db, batched=True, parallel=2)
    reference = modes.pop("interpreted")
    assert "batched" in modes and "parallel" in modes
    for mode, outcome in modes.items():
        assert outcome == reference, "%s diverged on %s" % (mode,
                                                            expr.describe())


def test_batch_corpus_coverage(fixture_db):
    """Pin the corpus shape: deref chains, wide arrays, fused unions,
    and skewed scans must all appear, and most plans must succeed."""
    chains = arrays = unions = skewed = fused = ok = 0
    for seed in range(BATCH_SEED_BASE, BATCH_SEED_BASE + N_BATCH_PLANS):
        expr = generate_batch_plan(seed)
        described = expr.describe()
        chains += "Links" in described
        arrays += "WideArr" in described
        unions += "People" in described
        skewed += "SkewedRefs" in described
        plan = compile_batch_plan(expr)
        fused += any("FUSED_UNION" in note for note in plan.notes)
        outcome, _ = run_modes(expr, fixture_db)["interpreted"]
        ok += outcome == "ok"
    assert chains >= 10, "too few deep deref-chain plans (%d)" % chains
    assert arrays >= 8, "too few wide-array plans (%d)" % arrays
    assert unions >= 10, "too few typed-union plans (%d)" % unions
    assert skewed >= 3, "too few skewed-scan plans (%d)" % skewed
    assert fused >= 10, "fused union scan under-exercised (%d)" % fused
    assert ok >= N_BATCH_PLANS * 0.8, "too many plans fail (%d ok)" % ok


# ---------------------------------------------------------------------------
# Batch-size invariance
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("batch_size", [1, 3, 7, 1024])
def test_results_invariant_under_batch_size(batch_size, fixture_db):
    for seed in range(BATCH_SEED_BASE, BATCH_SEED_BASE + 12):
        expr = generate_batch_plan(seed)
        try:
            reference = evaluate(expr, fixture_db.context(),
                                 mode="interpreted")
        except Exception:
            continue
        value = evaluate(expr, fixture_db.context(), mode="batched",
                         batch_size=batch_size)
        assert value == reference, expr.describe()


# ---------------------------------------------------------------------------
# The batched engine through the public API
# ---------------------------------------------------------------------------

SCRIPT = """
create Nums: { int4 }
append to Nums value (1)
append to Nums value (2)
append to Nums value (2)
retrieve (N) from N in Nums where N > 1
"""


def test_batched_engine_via_connect():
    reference = connect(Database(),
                        ExecutionOptions(engine="interpreted"))
    batched = connect(Database(), ExecutionOptions(engine="batched"))
    assert batched.engine == "batched"
    expected = reference.execute(SCRIPT).value
    result = batched.execute(SCRIPT)
    assert result.engine == "batched"
    assert result.value == expected == MultiSet([Tup(N=2), Tup(N=2)])


def test_batched_engine_per_statement_override():
    conn = connect(Database())
    assert conn.engine == "compiled"
    result = conn.execute(
        SCRIPT, options=conn.options.replace(engine="batched",
                                             batch_size=2, parallel=2))
    assert result.engine == "batched"
    assert result.value == MultiSet([Tup(N=2), Tup(N=2)])
    # The override is scoped to the one call.
    assert conn.engine == "compiled"
    assert conn.session.parallel == 0
