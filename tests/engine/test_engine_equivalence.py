"""Differential testing: the compiled engine must be bit-identical to
the interpreter.

A seeded generator builds random — but sort-correct — algebra plans
over a fixture database that exercises every semantic corner the
engine claims to preserve: ``unk`` occurrences and ``unk``/``dne``
tuple fields, dangling references, duplicate cardinalities, nested
multisets, typed SET_APPLY filtering, and method dispatch over an
inheritance hierarchy.  Each plan runs on both engines against
identical databases; values (including occurrence counts — MultiSet
equality is count-sensitive) must match exactly, and failures must
fail identically.

REF is deliberately excluded from the grammar: it mints OIDs, and the
engines may legitimately evaluate shared subtrees in different orders,
so minted identities need not line up occurrence-for-occurrence.
"""

import random

import pytest

from repro.core.expr import Const, EvalContext, Expr, Input, Named, evaluate
from repro.core.methods import switch_table_plan
from repro.core.operators import (DE, AddUnion, Comp, Cross, Deref, Diff,
                                  Grp, Pi, SetApply, SetCollapse, SetCreate,
                                  TupCat, TupCreate, TupExtract, rel_join)
from repro.core.predicates import And, Atom, Not, TruePred
from repro.core.values import DNE, UNK, MultiSet, Ref, Tup
from repro.storage import Database

N_PLANS = 240

PERSON_FIELDS = ("name", "age", "city")
SCALARS = (1, 2, 3, 17, "Madison", "Lodi", UNK)


def build_db() -> Database:
    db = Database()
    h = db.hierarchy
    h.add_type("Person")
    h.add_type("Student", ["Person"])
    h.add_type("Employee", ["Person"])

    people = []
    refs = []
    rng = random.Random(99)
    cities = ["Madison", "Lodi", "Monona", UNK]
    for i in range(14):
        exact = ("Person", "Student", "Employee")[i % 3]
        fields = {"name": "p%d" % (i % 9),  # collisions → duplicates
                  "age": (20 + i % 5) if i % 7 else UNK,
                  "city": cities[i % len(cities)]}
        if i % 6 == 5:
            fields["age"] = DNE  # a field that does-not-exist
        person = Tup(fields, type_name=exact)
        people.append(person)
        refs.append(db.store.insert(person, exact))
    refs.append(Ref("dangling-oid", "Person"))  # deref → dne → dropped

    db.create("People", MultiSet(people + people[:4]))  # duplicates
    db.create("Refs", MultiSet(refs))
    db.create("Nums", MultiSet([1, 2, 2, 3, 3, 3, UNK, 17]))
    db.create("Nested", MultiSet([MultiSet([1, 2]), MultiSet([2, 2, UNK]),
                                  MultiSet([])]))
    db.create("Cities", MultiSet([
        Tup({"cname": c, "tag": i % 2}) for i, c in
        enumerate(["Madison", "Lodi", "Madison", "Stoughton"])]))

    db.methods.define("Person", "describe", [],
                      TupCreate("kind", Const("person")))
    db.methods.define("Student", "describe", [],
                      TupCreate("kind", TupExtract("name", Input())))
    db.methods.define("Person", "pay", ["bonus"],
                      TupExtract("age", Input()))
    return db


class PlanGen:
    """Sort-directed random plan generator."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def pick(self, options):
        return self.rng.choice(options)

    # -- scalar/tuple-valued expressions over INPUT = a person tuple ----

    def person_value(self, depth: int) -> Expr:
        if depth <= 0:
            return self.pick([Input(), TupExtract(self.pick(PERSON_FIELDS),
                                                  Input())])
        roll = self.rng.random()
        if roll < 0.35:
            return TupExtract(self.pick(PERSON_FIELDS), Input())
        if roll < 0.5:
            return Pi(sorted(self.rng.sample(PERSON_FIELDS,
                                             self.rng.randint(1, 2))),
                      Input())
        if roll < 0.65:
            return TupCreate(self.pick(["a", "b"]),
                             self.person_value(depth - 1))
        if roll < 0.8:
            return TupCat(TupCreate("l", TupExtract("name", Input())),
                          TupCreate("r", self.person_value(depth - 1)))
        return Input()

    def person_pred(self, depth: int):
        roll = self.rng.random()
        if roll < 0.45:
            return Atom(TupExtract(self.pick(PERSON_FIELDS), Input()),
                        self.pick(["=", "!=", "<", ">="]),
                        Const(self.pick(SCALARS)))
        if roll < 0.6 and depth > 0:
            return And(self.person_pred(depth - 1),
                       self.person_pred(depth - 1))
        if roll < 0.75 and depth > 0:
            return Not(self.person_pred(depth - 1))
        if roll < 0.85:
            return TruePred()
        return Atom(TupExtract("name", Input()), "=",
                    TupExtract("city", Input()))

    # -- multisets of person tuples ------------------------------------

    def person_set(self, depth: int) -> Expr:
        if depth <= 0:
            return self.pick([Named("People"),
                              SetApply(Deref(Input()), Named("Refs"))])
        roll = self.rng.random()
        src = self.person_set(depth - 1)
        if roll < 0.3:
            type_filter = self.pick([None, frozenset(["Student"]),
                                     frozenset(["Student", "Employee"])])
            return SetApply(self.person_value(depth - 1), src,
                            type_filter=type_filter) \
                if type_filter else SetApply(self.person_value(depth - 1),
                                             src)
        if roll < 0.5:
            return SetApply(Comp(self.person_pred(depth - 1), Input()), src)
        if roll < 0.6:
            return DE(src)
        if roll < 0.7:
            return AddUnion(src, self.person_set(depth - 1))
        if roll < 0.8:
            return Diff(src, self.person_set(depth - 1))
        if roll < 0.9:
            return switch_table_plan("describe", [], src)
        return SetApply(Input(), src)

    # -- whole plans ----------------------------------------------------

    def plan(self) -> Expr:
        roll = self.rng.random()
        if roll < 0.45:
            return self.person_set(self.rng.randint(1, 3))
        if roll < 0.55:
            return Grp(TupExtract("city", Input()),
                       self.person_set(self.rng.randint(0, 2)))
        if roll < 0.62:
            return SetCollapse(Named("Nested"))
        if roll < 0.69:
            return SetCreate(Const(self.pick(SCALARS)))
        if roll < 0.76:
            return DE(Named("Nums"))
        if roll < 0.84:
            return Cross(SetApply(TupCreate("n", TupExtract("name", Input())),
                                  self.person_set(0)),
                         Named("Cities"))
        if roll < 0.92:
            return rel_join(
                Atom(TupExtract("city", TupExtract("field1", Input())), "=",
                     TupExtract("cname", TupExtract("field2", Input()))),
                self.person_set(self.rng.randint(0, 1)), Named("Cities"))
        return SetApply(
            Comp(Atom(Input(), self.pick(["=", "!=", "<"]),
                      Const(self.pick([2, 3, 17]))), Input()),
            Named("Nums"))


def run_engine(expr: Expr, mode: str):
    """(outcome, payload): value on success, error type+text on failure."""
    ctx = build_db().context()
    try:
        return "ok", evaluate(expr, ctx, mode=mode)
    except Exception as error:  # noqa: BLE001 — comparing failure identity
        return "error", (type(error).__name__, str(error))


@pytest.mark.parametrize("seed", range(N_PLANS))
def test_generated_plan_equivalence(seed):
    expr = PlanGen(random.Random(seed)).plan()
    interpreted = run_engine(expr, "interpreted")
    compiled = run_engine(expr, "compiled")
    assert compiled == interpreted, expr.describe()
    if interpreted[0] == "ok" and isinstance(interpreted[1], MultiSet):
        # Belt and braces: occurrence totals, not just set equality.
        assert len(compiled[1]) == len(interpreted[1])
        assert (compiled[1].distinct_count()
                == interpreted[1].distinct_count())


def test_generator_exercises_success_and_nulls():
    """The suite is vacuous if every plan errors or no nulls survive;
    pin the generator's coverage so refactors can't silently gut it."""
    ok = 0
    saw_unk = False
    for seed in range(N_PLANS):
        expr = PlanGen(random.Random(seed)).plan()
        outcome, payload = run_engine(expr, "interpreted")
        if outcome == "ok":
            ok += 1
            if isinstance(payload, MultiSet) and UNK in payload:
                saw_unk = True
    assert ok >= N_PLANS * 0.8, "too many generated plans fail (%d ok)" % ok
    assert saw_unk, "no generated plan propagated unk into its result"
