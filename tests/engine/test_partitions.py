"""Partition-boundary tests for R(n) partition-parallel execution.

Covers the awkward edges of the OID-pool partitioning scheme: empty
partitions, one pool dwarfing the batch size, type migration inside an
open transaction, merge determinism across repeated runs, and snapshot
isolation when the batched engine serves a network server's reader
pool.
"""

import time

import pytest

from repro import ExecutionOptions
from repro.core.engine import compile_batch_plan, partition_plan
from repro.core.expr import Input, Named, evaluate
from repro.core.operators import (DE, Comp, Deref, Grp, SetApply,
                                  TupExtract)
from repro.core.predicates import Atom
from repro.core.expr import Const
from repro.core.values import MultiSet, Tup
from repro.storage import Database


def build_pools_db(n_students=30, n_employees=3, n_people=2):
    """Students dwarf the other pools, so R(n) partitioning is skewed
    and (with enough workers) some partitions are empty."""
    db = Database()
    h = db.hierarchy
    h.add_type("Person")
    h.add_type("Student", ["Person"])
    h.add_type("Employee", ["Person"])
    refs = []
    for i in range(n_students):
        refs.append(db.store.insert(
            Tup({"name": "s%d" % (i % 5), "gpa": 2 + i % 3},
                type_name="Student"), "Student"))
    for i in range(n_employees):
        refs.append(db.store.insert(
            Tup({"name": "e%d" % i, "gpa": 4}, type_name="Employee"),
            "Employee"))
    for i in range(n_people):
        refs.append(db.store.insert(
            Tup({"name": "p%d" % i, "gpa": 1}, type_name="Person"),
            "Person"))
    db.create("Folks", MultiSet(refs + refs[:4]))  # duplicates
    return db, refs


NAMES = SetApply(TupExtract("name", Deref(Input())), Named("Folks"))


def run_ways(expr, db, parallel=3):
    serial = evaluate(expr, db.context(), mode="interpreted")
    batched = evaluate(expr, db.context(), mode="batched")
    par = evaluate(expr, db.context(), mode="batched", parallel=parallel)
    assert batched == serial and par == serial
    return serial


# ---------------------------------------------------------------------------
# Merge determinism
# ---------------------------------------------------------------------------

def test_merge_is_deterministic_across_runs():
    db, _ = build_pools_db()
    plans = [NAMES,                       # tally-sum merge
             DE(NAMES),                   # first-occurrence merge
             Grp(Input(), NAMES)]         # per-key bucket merge
    for expr in plans:
        reference = run_ways(expr, db)
        for _ in range(3):
            again = evaluate(expr, db.context(), mode="batched",
                             parallel=3)
            assert again == reference


def test_parallel_run_reports_partition_stats():
    db, _ = build_pools_db()
    ctx = db.context()
    value = evaluate(NAMES, ctx, mode="batched", parallel=3)
    assert isinstance(value, MultiSet)
    assert ctx.stats["partitions"] == 3
    assert ctx.stats["partition_max_rows"] >= 1


# ---------------------------------------------------------------------------
# Empty partitions
# ---------------------------------------------------------------------------

def test_more_workers_than_pools_leaves_partitions_empty():
    """One pool (all-Student extent) with parallel=4: three workers see
    an empty partition and the merge must still be exact."""
    db, _ = build_pools_db(n_students=9, n_employees=0, n_people=0)
    ctx = db.context()
    value = evaluate(NAMES, ctx, mode="batched", parallel=4)
    assert value == evaluate(NAMES, db.context(), mode="interpreted")
    assert ctx.stats["partitions"] == 4


def test_empty_extent_under_parallel():
    db, _ = build_pools_db(n_students=0, n_employees=0, n_people=0)
    assert run_ways(NAMES, db, parallel=4) == MultiSet([])


# ---------------------------------------------------------------------------
# One partition larger than the batch size
# ---------------------------------------------------------------------------

def test_single_pool_spanning_many_batches():
    db, _ = build_pools_db(n_students=100, n_employees=1, n_people=0)
    reference = evaluate(NAMES, db.context(), mode="interpreted")
    for batch_size in (1, 7, 64):
        value = evaluate(NAMES, db.context(), mode="batched",
                         parallel=2, batch_size=batch_size)
        assert value == reference


# ---------------------------------------------------------------------------
# Type migration inside an open transaction
# ---------------------------------------------------------------------------

STUDENT_GPAS = SetApply(
    TupExtract("gpa", Deref(Input())),
    SetApply(Input(), Named("Folks"), type_filter=frozenset(["Student"])))


def test_type_migration_mid_transaction():
    """Migrating an object's exact type (Student → Person, legal within
    the allocation pool's cone) must be visible to typed filters under
    partition-parallel execution, and roll back with the transaction."""
    db, refs = build_pools_db(n_students=8, n_employees=2, n_people=2)
    before = run_ways(STUDENT_GPAS, db)
    db.begin()
    db.store.migrate(refs[0].oid, "Person")
    mid = run_ways(STUDENT_GPAS, db)
    assert sum(c for _, c in mid.items()) < sum(c for _, c in
                                                before.items())
    db.abort()
    assert run_ways(STUDENT_GPAS, db) == before


# ---------------------------------------------------------------------------
# Unsafe plans fall back to serial (never wrong-but-parallel)
# ---------------------------------------------------------------------------

def test_tracing_forces_serial_execution():
    from repro.obs import Tracer
    db, _ = build_pools_db(n_students=6)
    ctx = db.context()
    ctx.tracer = Tracer(enabled=True)
    value = evaluate(NAMES, ctx, mode="batched", parallel=3)
    assert value == evaluate(NAMES, db.context(), mode="interpreted")
    assert "partitions" not in ctx.stats


def test_ineligible_plan_returns_serial_pipeline():
    expr = SetApply(Comp(Atom(Input(), "<", Const(3)), Input()),
                    Named("Nums"))
    serial = compile_batch_plan(expr)
    # A filter chain is eligible; a bare Named is not worth splitting.
    assert partition_plan(Named("Nums"), serial, parallel=3) is serial
    wrapped = partition_plan(expr, serial, parallel=3)
    assert wrapped is not serial
    assert "PARTITION[Nums by R(n), 3 way(s), apply merge]" \
        in wrapped.explain()


# ---------------------------------------------------------------------------
# Snapshot isolation under the server's reader pool
# ---------------------------------------------------------------------------

@pytest.fixture
def batched_server(tmp_path):
    from repro.server import Server, ServerThread
    server = Server(str(tmp_path / "db"),
                    ExecutionOptions(engine="batched"),
                    query_timeout=10.0, slow_query_threshold=None)
    with ServerThread(server):
        yield server


def test_batched_reader_pool_snapshot_isolation(batched_server):
    from repro.server.client import ServerClient
    with ServerClient(batched_server.port) as writer, \
            ServerClient(batched_server.port) as reader:
        writer.execute("create Nums: { int4 }")
        writer.atomic("append to Nums value (1) append to Nums value (2)")
        assert sorted(r.fields[0][1] for r in reader.execute(
            "retrieve (x) from x in Nums").rows()) == [1, 2]
        writer.begin()
        writer.execute("append to Nums value (99)")
        # The MVCC reader pool serves committed state only — the open
        # transaction's append must stay invisible to batched readers.
        assert sorted(r.fields[0][1] for r in reader.execute(
            "retrieve (x) from x in Nums").rows()) == [1, 2]
        writer.commit()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            rows = sorted(r.fields[0][1] for r in reader.execute(
                "retrieve (x) from x in Nums").rows())
            if rows == [1, 2, 99]:
                break
            time.sleep(0.02)
        assert rows == [1, 2, 99]
