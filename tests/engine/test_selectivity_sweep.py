"""Selectivity-swept equivalence of index probes.

For point and range predicates across selectivities from 0.1% to 100%,
the interpreter, the index-disabled compiled engine, and the
force-indexed compiled engine must all return the identical multiset —
including the ``unk`` occurrences contributed by null keys, whose
count is independent of the predicate's selectivity.

The population is built so selectivity is exact by construction: with
``band = i // max(1, int(N * s))`` a point probe for band 0 matches
``int(N * s)`` of the N live rows, and a range probe on the uniform
``uid`` field is controlled directly by its bounds.
"""

import pytest

from repro.core.expr import Const, Input, Named, evaluate
from repro.core.operators import SetApply, TupExtract
from repro.core.predicates import And, Atom, Comp
from repro.core.values import MultiSet, Tup, UNK
from repro.storage import Database

N = 400
N_UNK = 7
SELECTIVITIES = (0.001, 0.0025, 0.01, 0.05, 0.25, 1.0)


def build_db(selectivity: float) -> Database:
    db = Database()
    stride = max(1, int(N * selectivity))
    rows = [Tup({"band": i // stride, "uid": i}) for i in range(N)]
    rows += [Tup({"band": UNK, "uid": UNK}) for _ in range(N_UNK)]
    db.create("T", MultiSet(rows))
    db.indexes.create_index("keyed", "T", TupExtract("band", Input()))
    db.indexes.create_index("ordered", "T", TupExtract("uid", Input()))
    return db


def run_all(db_builder, expr):
    out = {}
    for label, kwargs in (
            ("interpreted", {"mode": "interpreted"}),
            ("compiled-off", {"mode": "compiled", "access_paths": "off"}),
            ("compiled-force", {"mode": "compiled",
                                "access_paths": "force"})):
        out[label] = evaluate(expr, db_builder().context(), **kwargs)
    return out


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_point_probe_sweep(selectivity):
    expr = SetApply(
        Comp(Atom(TupExtract("band", Input()), "=", Const(0)), Input()),
        Named("T"))
    results = run_all(lambda: build_db(selectivity), expr)
    baseline = results["interpreted"]
    assert results["compiled-off"] == baseline
    assert results["compiled-force"] == baseline
    stride = max(1, int(N * selectivity))
    assert len(baseline) == stride + N_UNK
    assert dict(baseline.items()).get(UNK) == N_UNK


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("op", ("<", "<=", ">", ">="))
def test_range_probe_sweep(selectivity, op):
    cut = int(N * selectivity)
    expr = SetApply(
        Comp(Atom(TupExtract("uid", Input()), op, Const(cut)), Input()),
        Named("T"))
    results = run_all(lambda: build_db(0.01), expr)
    baseline = results["interpreted"]
    assert results["compiled-off"] == baseline
    assert results["compiled-force"] == baseline
    expected = {"<": cut, "<=": min(N, cut + 1),
                ">": N - min(N, cut + 1), ">=": N - cut}[op]
    assert len(baseline) == expected + N_UNK


@pytest.mark.parametrize("selectivity", (0.0025, 0.05, 0.5))
def test_between_probe_sweep(selectivity):
    width = max(1, int(N * selectivity))
    lo, hi = N // 4, N // 4 + width - 1
    expr = SetApply(
        Comp(And(Atom(TupExtract("uid", Input()), ">=", Const(lo)),
                 Atom(TupExtract("uid", Input()), "<=", Const(hi))),
             Input()),
        Named("T"))
    results = run_all(lambda: build_db(0.01), expr)
    baseline = results["interpreted"]
    assert results["compiled-off"] == baseline
    assert results["compiled-force"] == baseline
    assert len(baseline) == width + N_UNK


def test_flipped_literal_probe():
    """A constant-on-the-left atom must reach the same probe result."""
    expr = SetApply(
        Comp(Atom(Const(100), ">", TupExtract("uid", Input())), Input()),
        Named("T"))
    results = run_all(lambda: build_db(0.01), expr)
    assert results["compiled-force"] == results["interpreted"]
    assert results["compiled-off"] == results["interpreted"]
    assert len(results["interpreted"]) == 100 + N_UNK
