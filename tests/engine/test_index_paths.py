"""Differential testing of index-backed access paths.

The compiled engine may answer a recognized σ / typed-SET_APPLY /
rel_join shape from a :mod:`repro.storage.indexes` access method
instead of scanning the named extent.  That substitution must be
invisible: with every plausible index force-enabled, each of the 240
generated plans (the same generator as ``test_engine_equivalence``)
must produce the bit-identical multiset — occurrence counts, ``unk``
tallies and all — that the index-disabled compiled engine produces.

A coverage pin asserts the probes actually fire over the suite, so the
equivalence can't silently become vacuous if the matcher regresses.
"""

import random

import pytest

from repro.core.expr import Const, Input, Named, evaluate
from repro.core.operators import SetApply, TupExtract, rel_join
from repro.core.predicates import Atom, Comp
from repro.core.values import MultiSet, Tup
from repro.storage import Database

from .test_engine_equivalence import N_PLANS, PlanGen, build_db


def build_indexed_db() -> Database:
    """The equivalence fixture plus every index the generator's
    predicates could plausibly use."""
    db = build_db()
    for field in ("name", "age", "city"):
        db.indexes.create_index("keyed", "People",
                                TupExtract(field, Input()))
        db.indexes.create_index("ordered", "People",
                                TupExtract(field, Input()))
    db.indexes.create_index("typed", "People")
    db.indexes.create_index("keyed", "Nums", Input())
    db.indexes.create_index("ordered", "Nums", Input())
    db.indexes.create_index("keyed", "Cities",
                            TupExtract("cname", Input()))
    return db


def run_compiled(expr, access_paths: str, ctx_out=None):
    ctx = build_indexed_db().context()
    if ctx_out is not None:
        ctx_out.append(ctx)
    try:
        return "ok", evaluate(expr, ctx, mode="compiled",
                              access_paths=access_paths)
    except Exception as error:  # noqa: BLE001 — comparing failure identity
        return "error", (type(error).__name__, str(error))


@pytest.mark.parametrize("seed", range(N_PLANS))
def test_forced_probes_match_disabled(seed):
    expr = PlanGen(random.Random(seed)).plan()
    disabled = run_compiled(expr, "off")
    forced = run_compiled(expr, "force")
    if disabled[0] == "error":
        # Failures must stay failures of the same type; the message may
        # cite a different element — multisets are unordered, and a
        # partition probe visits elements in partition order.
        assert forced[0] == "error", expr.describe()
        assert forced[1][0] == disabled[1][0], expr.describe()
        return
    assert forced == disabled, expr.describe()
    if isinstance(disabled[1], MultiSet):
        assert len(forced[1]) == len(disabled[1])
        assert forced[1].distinct_count() == disabled[1].distinct_count()


def test_probes_fire_across_the_suite():
    """≥10% of the generated plans must actually take an index path
    under force — otherwise the differential above proves nothing."""
    fired = 0
    for seed in range(N_PLANS):
        expr = PlanGen(random.Random(seed)).plan()
        ctxs = []
        outcome, _ = run_compiled(expr, "force", ctx_out=ctxs)
        if outcome == "ok" and ctxs[0].stats.get("index_lookups", 0):
            fired += 1
    assert fired >= N_PLANS // 10, "only %d/%d plans probed" % (
        fired, N_PLANS)


def test_index_nested_loop_join_matches_hash_join():
    """The rel_join shape with a live key index on one side must stream
    the same pair multiset the hash join builds."""
    join = rel_join(
        Atom(TupExtract("city", TupExtract("field1", Input())), "=",
             TupExtract("cname", TupExtract("field2", Input()))),
        SetApply(Input(), Named("People")),
        Named("Cities"))
    disabled = run_compiled(join, "off")
    ctxs = []
    forced = run_compiled(join, "force", ctx_out=ctxs)
    assert forced == disabled
    assert disabled[0] == "ok" and len(disabled[1]) > 0
    assert ctxs[0].stats.get("index_join_probes", 0) > 0


def test_probe_handles_unk_and_duplicates_exactly():
    """Hand-built corner: duplicate occurrences and unk keys must
    survive a forced point probe with exact counts."""
    db = Database()
    from repro.core.values import UNK
    rows = [Tup({"k": 1, "v": "a"}), Tup({"k": 1, "v": "a"}),
            Tup({"k": 2, "v": "b"}), Tup({"k": UNK, "v": "c"})]
    db.create("T", MultiSet(rows + [rows[2]]))
    db.indexes.create_index("keyed", "T", TupExtract("k", Input()))
    expr = SetApply(Comp(Atom(TupExtract("k", Input()), "=", Const(1)),
                         Input()), Named("T"))
    off = evaluate(expr, db.context(), mode="compiled", access_paths="off")
    on = evaluate(expr, db.context(), mode="compiled", access_paths="force")
    assert on == off
    assert len(on) == 3  # two k=1 occurrences + one unk verdict
    assert dict(on.items()).get(UNK) == 1


def test_explain_analyze_shows_access_path():
    """EXPLAIN ANALYZE must name the chosen access path per operator,
    with actual cardinalities."""
    import repro

    conn = repro.connect(options=repro.ExecutionOptions(trace=True))
    conn.execute('create Nums : { int }')
    conn.db.create("Nums", MultiSet(range(50)))
    conn.db.indexes.create_index("keyed", "Nums", Input())
    conn.session.optimizer = None  # keep the plan shape literal
    result = conn.execute("retrieve value (N) from N in Nums where N = 7")
    text = result.explain()
    assert "index probe[Nums" in text
    assert "actual card=1" in text
