"""Tests for the interactive shell (repro.cli)."""

import subprocess
import sys

import pytest

from repro.cli import Shell, format_value, _split_statements
from repro.core.values import Arr, MultiSet, Tup


@pytest.fixture
def shell():
    return Shell()


def test_ddl_and_query_via_feed(shell):
    assert shell.feed("create Nums: { int4 }") == ["ok"]
    shell.feed("append to Nums value (1)")
    shell.feed("append to Nums value (2)")
    output = shell.feed("retrieve value (x) from x in Nums where x > 1")
    assert "2" in output[0]


def test_meta_help_and_names(shell):
    assert "EXCESS" in shell.handle_meta(".help")
    assert shell.handle_meta(".names") == "(no named objects)"
    shell.feed("create Nums: { int4 }")
    assert "Nums" in shell.handle_meta(".names")


def test_meta_types(shell):
    assert "(no types" in shell.handle_meta(".types")
    shell.feed("define type A: (x: int4)")
    shell.feed("define type B: (y: int4) inherits A")
    listing = shell.handle_meta(".types")
    assert "B inherits A" in listing


def test_meta_plan(shell):
    shell.feed("create Nums: { int4 }")
    plan = shell.handle_meta(".plan retrieve value (x) from x in Nums")
    assert "SET_APPLY" in plan


def test_meta_plan_error_is_reported(shell):
    assert shell.handle_meta(".plan retrieve (").startswith("error:")


def test_meta_optimize_toggle_and_plan(shell):
    shell.feed("create Nums: { int4 }")
    assert shell.handle_meta(".optimize on") == "optimization on"
    plan = shell.handle_meta(
        ".plan retrieve value (de(de(Nums)))")
    assert "optimized" in plan
    assert shell.handle_meta(".optimize off") == "optimization off"


def test_meta_stats_after_query(shell):
    assert "(no query" in shell.handle_meta(".stats")
    shell.feed("create Nums: { int4 }")
    shell.feed("append to Nums value (5)")
    shell.feed("retrieve value (Nums)")
    assert shell.handle_meta(".stats")  # non-empty counters or empty str ok


def test_meta_demo_loads_university(shell):
    message = shell.handle_meta(".demo")
    assert "university" in message
    output = shell.feed(
        "range of E is Employees retrieve (E.name) where E.dept.floor = 1")
    assert output[0] == "ok"  # the range declaration
    assert "multiset" in output[1]


def test_meta_quit_raises_eof(shell):
    with pytest.raises(EOFError):
        shell.handle_meta(".quit")


def test_unknown_meta(shell):
    assert "unknown command" in shell.handle_meta(".bogus")


def test_errors_are_messages_not_crashes(shell):
    output = shell.feed("retrieve (Ghost.name)")
    assert output[0].startswith("error:")


def test_format_value_multiset_truncation():
    big = MultiSet(range(100))
    text = format_value(big, limit=5)
    assert "95 more" in text


def test_format_value_duplicates_annotated():
    text = format_value(MultiSet([1, 1, 1]))
    assert "×3" in text


def test_format_value_array_and_scalar():
    assert "array" in format_value(Arr([1, 2]))
    assert format_value(42) == "42"


def test_split_statements_mixes_meta_and_sql():
    blocks = _split_statements(".demo\nretrieve (x) from x in A;\n.names\n")
    assert blocks[0] == ".demo"
    assert "retrieve" in blocks[1]
    assert blocks[2] == ".names"


def test_batch_mode_subprocess():
    script = (".demo\n"
              "range of E is Employees "
              "retrieve value (count(Employees));\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro"], input=script,
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0
    assert "30" in proc.stdout  # default university has 30 employees


def test_save_and_load_meta(shell, tmp_path):
    shell.feed("create Nums: { int4 }")
    shell.feed("append to Nums value (7)")
    path = str(tmp_path / "snap.json")
    assert "saved" in shell.handle_meta(".save %s" % path)
    fresh = Shell()
    assert "loaded" in fresh.handle_meta(".load %s" % path)
    assert "7" in fresh.feed("retrieve value (Nums)")[0]


def test_save_load_usage_and_errors(shell, tmp_path):
    assert "usage" in shell.handle_meta(".save")
    assert "usage" in shell.handle_meta(".load")
    assert "error" in shell.handle_meta(".load /nonexistent/nope.json")
