"""Tests for the interactive shell (repro.cli)."""

import subprocess
import sys

import pytest

from repro.cli import Shell, format_value, _split_statements
from repro.core.values import Arr, MultiSet, Tup


@pytest.fixture
def shell():
    return Shell()


def test_ddl_and_query_via_feed(shell):
    assert shell.feed("create Nums: { int4 }") == ["ok"]
    shell.feed("append to Nums value (1)")
    shell.feed("append to Nums value (2)")
    output = shell.feed("retrieve value (x) from x in Nums where x > 1")
    assert "2" in output[0]


def test_meta_help_and_names(shell):
    assert "EXCESS" in shell.handle_meta(".help")
    assert shell.handle_meta(".names") == "(no named objects)"
    shell.feed("create Nums: { int4 }")
    assert "Nums" in shell.handle_meta(".names")


def test_meta_types(shell):
    assert "(no types" in shell.handle_meta(".types")
    shell.feed("define type A: (x: int4)")
    shell.feed("define type B: (y: int4) inherits A")
    listing = shell.handle_meta(".types")
    assert "B inherits A" in listing


def test_meta_plan(shell):
    shell.feed("create Nums: { int4 }")
    plan = shell.handle_meta(".plan retrieve value (x) from x in Nums")
    assert "SET_APPLY" in plan


def test_meta_plan_error_is_reported(shell):
    assert shell.handle_meta(".plan retrieve (").startswith("error:")


def test_meta_optimize_toggle_and_plan(shell):
    shell.feed("create Nums: { int4 }")
    assert shell.handle_meta(".optimize on") == "optimization on"
    plan = shell.handle_meta(
        ".plan retrieve value (de(de(Nums)))")
    assert "optimized" in plan
    assert shell.handle_meta(".optimize off") == "optimization off"


def test_meta_stats_after_query(shell):
    assert "(no query" in shell.handle_meta(".stats")
    shell.feed("create Nums: { int4 }")
    shell.feed("append to Nums value (5)")
    shell.feed("retrieve value (Nums)")
    assert shell.handle_meta(".stats")  # non-empty counters or empty str ok


def test_meta_demo_loads_university(shell):
    message = shell.handle_meta(".demo")
    assert "university" in message
    output = shell.feed(
        "range of E is Employees retrieve (E.name) where E.dept.floor = 1")
    assert output[0] == "ok"  # the range declaration
    assert "multiset" in output[1]


def test_meta_quit_raises_eof(shell):
    with pytest.raises(EOFError):
        shell.handle_meta(".quit")


def test_unknown_meta(shell):
    assert "unknown command" in shell.handle_meta(".bogus")


def test_errors_are_messages_not_crashes(shell):
    output = shell.feed("retrieve (Ghost.name)")
    assert output[0].startswith("error:")


def test_format_value_multiset_truncation():
    big = MultiSet(range(100))
    text = format_value(big, limit=5)
    assert "95 more" in text


def test_format_value_duplicates_annotated():
    text = format_value(MultiSet([1, 1, 1]))
    assert "×3" in text


def test_format_value_array_and_scalar():
    assert "array" in format_value(Arr([1, 2]))
    assert format_value(42) == "42"


def test_split_statements_mixes_meta_and_sql():
    blocks = _split_statements(".demo\nretrieve (x) from x in A;\n.names\n")
    assert blocks[0] == ".demo"
    assert "retrieve" in blocks[1]
    assert blocks[2] == ".names"


def test_batch_mode_subprocess():
    script = (".demo\n"
              "range of E is Employees "
              "retrieve value (count(Employees));\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro"], input=script,
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0
    assert "30" in proc.stdout  # default university has 30 employees


def test_save_and_load_meta(shell, tmp_path):
    shell.feed("create Nums: { int4 }")
    shell.feed("append to Nums value (7)")
    path = str(tmp_path / "snap.json")
    assert "saved" in shell.handle_meta(".save %s" % path)
    fresh = Shell()
    assert "loaded" in fresh.handle_meta(".load %s" % path)
    assert "7" in fresh.feed("retrieve value (Nums)")[0]


def test_save_load_usage_and_errors(shell, tmp_path):
    assert "usage" in shell.handle_meta(".save")
    assert "usage" in shell.handle_meta(".load")
    assert "error" in shell.handle_meta(".load /nonexistent/nope.json")


def test_lint_subcommand_exits_nonzero_on_error(tmp_path):
    """Regression pin: error-severity findings must drive a nonzero
    exit status so CI can gate on `repro.cli lint`.  An ill-typed plan
    (L100) and a statically out-of-bounds subscript (L200) are both
    error severity."""
    from repro.cli import run_lint
    bad = tmp_path / "bad.excess"
    bad.write_text("retrieve (TopTen[11].name)\n")
    assert run_lint(["--demo", str(bad)]) == 1
    ok = tmp_path / "ok.excess"
    ok.write_text("retrieve (TopTen[5].name)\n")
    assert run_lint(["--demo", str(ok)]) == 0


def test_lint_subcommand_exit_code_subprocess(tmp_path):
    bad = tmp_path / "bad.excess"
    bad.write_text("retrieve (TopTen[11].name)\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", "--demo", str(bad)],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 1
    assert "L200" in proc.stdout


def test_sanitize_meta_toggle(shell):
    assert "no-op" in shell.handle_meta(".sanitize on")  # interpreted
    shell.handle_meta(".engine compiled")
    assert shell.handle_meta(".sanitize on") == "sanitizer on"
    assert shell.handle_meta(".sanitize") == "sanitizer on"
    shell.handle_meta(".demo")  # reconnect must preserve the toggle
    assert shell.handle_meta(".sanitize") == "sanitizer on"
    out = shell.execute("retrieve (E) from E in Employees")
    assert "30" in out[0]
    assert shell.handle_meta(".sanitize off") == "sanitizer off"


def test_sanitize_subcommand_smoke():
    from repro.cli import run_sanitize
    assert run_sanitize(["--plans", "5"]) == 0
    assert run_sanitize(["--bogus"]) == 2
