"""End-to-end reproduction of every figure and worked example.

These integration tests are the executable version of the experiment
index in DESIGN.md: each figure's alternatives must agree on values,
and the work counters must move in the direction the paper claims.
"""

import pytest

from repro.core.expr import evaluate
from repro.core.optimizer import Optimizer
from repro.core.transform import ALL_RULES, RewriteEngine, RewriteFacts
from repro.core.values import MultiSet, Tup
from repro.workloads import build_university
from repro.workloads import figures
from repro.workloads.dispatch import (build_population, define_boss_methods,
                                      define_rich_subords_methods,
                                      switch_plan, union_plan)


@pytest.fixture(scope="module")
def uni():
    handle = build_university(n_departments=4, n_employees=24,
                              n_students=48, advisor_pool=4,
                              employee_name_pool=4,
                              subords_per_employee=6, seed=11)
    figures.value_views(handle)
    build_population(handle)
    define_boss_methods(handle)
    define_rich_subords_methods(handle)
    return handle


def run(uni, expr):
    ctx = uni.db.context()
    return evaluate(expr, ctx), ctx.stats


# ---------------------------------------------------------------------------
# Figures 3 and 4
# ---------------------------------------------------------------------------


def test_figure_3_matches_store(uni):
    result, stats = run(uni, figures.figure_3())
    fifth = uni.db.store.get(uni.db.get("TopTen").extract(5).oid)
    assert result == Tup(name=fifth["name"], salary=fifth["salary"])
    assert stats["deref_count"] == 1


def test_figure_3_equals_excess_query(uni):
    algebra_result, _ = run(uni, figures.figure_3())
    excess_result = uni.session.query(
        "retrieve (TopTen[5].name, TopTen[5].salary)")
    assert algebra_result == excess_result


def test_figure_4_matches_excess_query(uni):
    algebra_result, _ = run(uni, figures.figure_4())
    excess_result = uni.session.query(
        'retrieve (Employees.dept.name) where Employees.city = "Madison"')
    assert algebra_result == excess_result


# ---------------------------------------------------------------------------
# Example 1 (Figures 6–8)
# ---------------------------------------------------------------------------


def test_example1_all_three_trees_agree(uni):
    r6, _ = run(uni, figures.figure_6())
    r7, _ = run(uni, figures.figure_7())
    r8, _ = run(uni, figures.figure_8())
    assert r6 == r7 == r8
    assert r6.distinct_count() > 0


def test_example1_groups_are_duplicate_free(uni):
    result, _ = run(uni, figures.figure_6())
    for group in result.elements():
        assert group.is_set()


def test_example1_de_work_shrinks(uni):
    """Figure 8's point: DE operates on ~|S|+|E| occurrences instead of
    the join's |S|·|E|-scale output."""
    _, s7 = run(uni, figures.figure_7())
    _, s8 = run(uni, figures.figure_8())
    assert s8["de_elements"] < s7["de_elements"]
    assert s8["cross_pairs"] < s7["cross_pairs"]


def test_example1_rule8_derivable_by_engine(uni):
    """GRP(DE(x)) ↔ SET_APPLY_DE(GRP(x)) — the figure 6→7 move is a
    genuine rule application, not a hand-built pair."""
    from repro.core.expr import Input, Named
    from repro.core.operators import DE, Grp, SetApply, TupExtract
    engine = RewriteEngine(ALL_RULES, max_depth=1, max_trees=500)
    start = Grp(TupExtract("sdept", Input()), DE(Named("StudentsV")))
    reachable = {d.expr for d in engine.explore(start)}
    assert SetApply(DE(Input()),
                    Grp(TupExtract("sdept", Input()),
                        Named("StudentsV"))) in reachable


# ---------------------------------------------------------------------------
# Example 2 (Figures 9–11)
# ---------------------------------------------------------------------------

FLOOR = 2


def test_example2_all_three_trees_agree(uni):
    r9, _ = run(uni, figures.figure_9(FLOOR))
    r10, _ = run(uni, figures.figure_10(FLOOR))
    r11, _ = run(uni, figures.figure_11(FLOOR))
    assert r9 == r10 == r11


def test_example2_matches_excess_query(uni):
    r9, _ = run(uni, figures.figure_9(FLOOR))
    excess_result = uni.session.query("""
        range of S is Students
        retrieve (S.name) by S.dept.division where S.dept.floor = %d
    """ % FLOOR)
    names = lambda groups: {t["name"] for g in groups.elements() for t in g}
    assert names(r9) == names(excess_result)


def test_example2_rule15_collapse_reduces_scans(uni):
    """Figure 10 eliminates one scan of the group set."""
    _, s9 = run(uni, figures.figure_9(FLOOR))
    _, s10 = run(uni, figures.figure_10(FLOOR))
    assert s10["elements_scanned"] < s9["elements_scanned"]


def test_example2_rule26_halves_derefs(uni):
    """Figure 11: "the dept attribute needs to be DEREF'd only once"."""
    _, s9 = run(uni, figures.figure_9(FLOOR))
    _, s11 = run(uni, figures.figure_11(FLOOR))
    n_students = len(uni.student_refs)
    assert s9["deref_count"] == 3 * n_students   # entry + key + filter
    assert s11["deref_count"] == 2 * n_students  # entry + rebuild


def test_example2_figure10_derivable_by_rule_15(uni):
    """Figure 9 → Figure 10 is two applications of rule 15."""
    engine = RewriteEngine(ALL_RULES, max_depth=2, max_trees=4000)
    reachable = {d.expr for d in engine.explore(figures.figure_9(FLOOR))}
    assert figures.figure_10(FLOOR) in reachable


# ---------------------------------------------------------------------------
# Section 4 (Figure 5 and the trade-off discussion)
# ---------------------------------------------------------------------------


def test_dispatch_strategies_agree_cheap_method(uni):
    r1, _ = run(uni, switch_plan("boss"))
    r2, _ = run(uni, union_plan(uni, "boss"))
    assert r1 == r2
    assert len(r1) == len(uni.db.get("P"))


def test_dispatch_strategies_agree_expensive_method(uni):
    r1, _ = run(uni, switch_plan("rich_subords"))
    r2, _ = run(uni, union_plan(uni, "rich_subords"))
    assert r1 == r2


def test_cheap_method_union_pays_scan_penalty(uni):
    """For the "boss" case the paper prefers switch-table: the ⊎-plan
    scans P once per distinct body."""
    _, s_switch = run(uni, switch_plan("boss"))
    _, s_union = run(uni, union_plan(uni, "boss"))
    assert s_union["elements_scanned"] == 3 * s_switch["elements_scanned"]


def test_expensive_method_scan_penalty_is_negligible(uni):
    """With large sub_ords the extra scans are a small fraction of
    total work — the ⊎-plan's preferred regime."""
    _, s_switch = run(uni, switch_plan("rich_subords"))
    _, s_union = run(uni, union_plan(uni, "rich_subords"))
    extra = s_union["elements_scanned"] - s_switch["elements_scanned"]
    total = sum(v for k, v in s_union.items())
    assert extra / total < 0.25


def test_indexes_remove_the_scan_penalty(uni):
    """"the need to scan P three times … disappears"."""
    uni.db.indexes.build_typed("P")
    r_idx, s_idx = run(uni, union_plan(uni, "boss", use_index=True))
    r_sw, s_sw = run(uni, switch_plan("boss"))
    assert r_idx == r_sw
    assert s_idx["elements_scanned"] == s_sw["elements_scanned"]
    assert s_idx["index_lookups"] == 3


def test_union_plan_is_compile_time_optimizable(uni):
    """The whole point of Figure 5: the inlined bodies optimize with
    the invoking query; here the optimizer strips the stored methods'
    redundant DEs, which the switch-table plan can never see."""
    plan = union_plan(uni, "rich_subords")
    optimizer = Optimizer(max_depth=2, max_trees=600)
    result = optimizer.optimize(plan)
    assert "de-idempotence" in result.steps
    optimized_value, s_opt = run(uni, result.best)
    original_value, s_orig = run(uni, plan)
    assert optimized_value == original_value
    assert s_opt["de_elements"] < s_orig["de_elements"]


def test_switch_table_dispatches_at_runtime(uni):
    _, stats = run(uni, switch_plan("boss"))
    assert stats["method_dispatches"] == len(uni.db.get("P"))
