"""The example applications stay runnable (deliverable b)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")

EXPECTED_MARKERS = {
    "quickstart.py": ["Children of employees", "same reference? True"],
    "university_queries.py": ["all three plans agree", "figure 8"],
    "method_overriding.py": ["plans agree", "switch-table"],
    "lint_walkthrough.py": ["all 28 appendix rules fired and passed",
                            "L100", "L106", "pass-through"],
    "optimizer_walkthrough.py": ["Optimizer chose", "same answer: True"],
    "registrar_app.py": ["Enrollment", "departments with students"],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run([sys.executable, path], capture_output=True,
                          text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    for marker in EXPECTED_MARKERS[script]:
        assert marker in proc.stdout, (
            "%s output missing %r" % (script, marker))


def test_every_example_is_covered():
    scripts = {name for name in os.listdir(EXAMPLES_DIR)
               if name.endswith(".py")}
    assert scripts == set(EXPECTED_MARKERS), (
        "new example scripts need markers here")
