"""Expressiveness (§3.4): simulating other algebras.

The paper: "it is capable of simulating most of the algebras mentioned
in Section 1 as long as these algebras do not contain the powerset
operator".  This module demonstrates the two classical targets
concretely:

* the **relational algebra** (σ, π, ×, ∪, −) over sets of tuples, run
  against the textbook suppliers-parts database, with answers checked
  against independently computed sets;
* the **nested relational algebra** (ν/μ restructuring), via the
  library's nest/unnest, including the ν∘μ and μ∘ν identities on flat
  and nested relations.

The paper also distinguishes SET_APPLY-style iteration loops from the
while-loops powerset enables; the final test shows SET_APPLY is a
*per-element map* — its output size is bounded by its input size —
which is the structural reason powerset-style blowup cannot be
expressed by a single application.
"""

import pytest

from repro.core.expr import Const, EvalContext, Input, Named, evaluate
from repro.core.operators import (DE, Cross, Diff, Pi, SetApply, join_field,
                                  nest, register_library_functions, rel_join,
                                  sigma, union, unnest, TupExtract)
from repro.core.predicates import And, Atom
from repro.core.values import MultiSet, Tup
from repro.storage import Database

# The classic suppliers-and-parts instance (Date's textbook flavour).
SUPPLIERS = [("S1", "Smith", "London"), ("S2", "Jones", "Paris"),
             ("S3", "Blake", "Paris"), ("S4", "Clark", "London")]
PARTS = [("P1", "Nut", "Red"), ("P2", "Bolt", "Green"),
         ("P3", "Screw", "Blue")]
SHIPMENTS = [("S1", "P1", 300), ("S1", "P2", 200), ("S2", "P1", 300),
             ("S2", "P2", 400), ("S3", "P2", 200), ("S4", "P3", 100)]


@pytest.fixture
def db():
    database = Database()
    register_library_functions(database)
    database.create("S", MultiSet(
        Tup(sno=a, sname=b, city=c) for a, b, c in SUPPLIERS))
    database.create("P", MultiSet(
        Tup(pno=a, pname=b, color=c) for a, b, c in PARTS))
    database.create("SP", MultiSet(
        Tup(sno2=a, pno2=b, qty=c) for a, b, c in SHIPMENTS))
    return database


def run(db, expr):
    return evaluate(expr, db.context())


# ---------------------------------------------------------------------------
# The five relational operators
# ---------------------------------------------------------------------------


def test_relational_selection(db):
    """σ_{city='Paris'}(S)."""
    result = run(db, sigma(Atom(TupExtract("city", Input()), "=",
                                Const("Paris")), Named("S")))
    assert {t["sno"] for t in result.elements()} == {"S2", "S3"}


def test_relational_projection_with_de(db):
    """π_{city}(S) — set semantics need π followed by DE."""
    result = run(db, DE(SetApply(Pi(["city"], Input()), Named("S"))))
    assert result == MultiSet([Tup(city="London"), Tup(city="Paris")])


def test_relational_union(db):
    london = sigma(Atom(TupExtract("city", Input()), "=", Const("London")),
                   Named("S"))
    paris = sigma(Atom(TupExtract("city", Input()), "=", Const("Paris")),
                  Named("S"))
    result = run(db, union(london, paris))
    assert len(result) == 4


def test_relational_difference(db):
    london = sigma(Atom(TupExtract("city", Input()), "=", Const("London")),
                   Named("S"))
    result = run(db, Diff(Named("S"), london))
    assert {t["city"] for t in result.elements()} == {"Paris"}


def test_relational_cross_and_join(db):
    """The classic query: names of suppliers who supply part P2."""
    supplies_p2 = sigma(Atom(TupExtract("pno2", Input()), "=", Const("P2")),
                        Named("SP"))
    pred = Atom(join_field(1, "sno"), "=", join_field(2, "sno2"))
    joined = rel_join(pred, Named("S"), supplies_p2)
    names = run(db, DE(SetApply(Pi(["sname"], Input()), joined)))
    assert names == MultiSet([Tup(sname="Smith"), Tup(sname="Jones"),
                              Tup(sname="Blake")])


def test_three_way_join(db):
    """Supplier names and part names for every shipment — a two-step
    rel_join chain over three relations."""
    pred1 = Atom(join_field(1, "sno"), "=", join_field(2, "sno2"))
    s_sp = rel_join(pred1, Named("S"), Named("SP"))
    pred2 = Atom(join_field(1, "pno2"), "=", join_field(2, "pno"))
    full = rel_join(pred2, s_sp, Named("P"))
    result = run(db, DE(SetApply(Pi(["sname", "pname"], Input()), full)))
    assert Tup(sname="Smith", pname="Nut") in result
    assert len(result) == len(SHIPMENTS)


def test_division_style_query(db):
    """Suppliers supplying *all* red-or-green parts — relational
    division expressed with − and × (the textbook derivation)."""
    wanted_parts = DE(SetApply(
        Pi(["pno"], Input()),
        sigma(Atom(TupExtract("color", Input()), "in",
                   Const(MultiSet(["Red", "Green"]))), Named("P"))))
    supplier_ids = DE(SetApply(Pi(["sno2"], Input()), Named("SP")))
    all_pairs = SetApply(
        Pi(["sno2", "pno"], Input()),
        rel_join(Atom(Const(1), "=", Const(1)), supplier_ids, wanted_parts))
    actual_pairs = DE(SetApply(
        Pi(["sno2", "pno"], Input()),
        SetApply(
            Pi(["sno2", "pno2", "pno"], Input()),
            rel_join(Atom(join_field(1, "pno2"), "=", join_field(2, "pno")),
                     Named("SP"), Named("P")))))
    missing = Diff(all_pairs, actual_pairs)
    dividers = Diff(supplier_ids, DE(SetApply(Pi(["sno2"], Input()),
                                              missing)))
    result = run(db, dividers)
    # S1 and S2 supply both P1 (red) and P2 (green).
    assert result == MultiSet([Tup(sno2="S1"), Tup(sno2="S2")])


# ---------------------------------------------------------------------------
# Nested relational algebra (ν / μ)
# ---------------------------------------------------------------------------


def test_nested_relational_round_trip(db):
    """μ(ν(SP)) = SP — the fundamental nested-relational identity."""
    nested = nest(["sno2"], "supplied", Named("SP"))
    flat = unnest("supplied", nested)
    assert run(db, flat) == db.get("SP")


def test_nested_relation_querying(db):
    """Query a genuinely nested structure: suppliers with > 1 shipment
    — a selection on the nested set's cardinality."""
    from repro.core.expr import Func
    nested = nest(["sno2"], "supplied", Named("SP"))
    busy = sigma(Atom(Func("count", [TupExtract("supplied", Input())]),
                      ">", Const(1)), nested)
    result = run(db, SetApply(Pi(["sno2"], Input()), busy))
    assert result == MultiSet([Tup(sno2="S1"), Tup(sno2="S2")])


# ---------------------------------------------------------------------------
# The SET_APPLY / while-loop distinction (§3.4)
# ---------------------------------------------------------------------------


def test_set_apply_output_is_input_bounded(db):
    """A single SET_APPLY maps each occurrence to one result (or none),
    so |output| ≤ |input| — the structural reason the algebra's loops
    are iteration loops, not the while-loops powerset would enable."""
    collection = MultiSet(range(10))
    ctx = EvalContext({"A": collection})
    from repro.core.operators import SetCreate
    blown_up = evaluate(SetApply(SetCreate(Input()), Named("A")), ctx)
    assert len(blown_up) == len(collection)  # nested, but not larger
