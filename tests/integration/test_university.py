"""Workload generator invariants: the Figure 1 database is well-formed."""

from repro.core.values import Arr, MultiSet, Ref, Tup
from repro.workloads import build_university


def test_deterministic_given_seed():
    a = build_university(n_employees=8, n_students=8, seed=5)
    b = build_university(n_employees=8, n_students=8, seed=5)
    assert a.db.get("Employees") == b.db.get("Employees")
    store_a = [a.db.store.get(r.oid) for r in a.employee_refs]
    store_b = [b.db.store.get(r.oid) for r in b.employee_refs]
    assert store_a == store_b


def test_cardinalities(university):
    assert len(university.db.get("Employees")) == 20
    assert len(university.db.get("Students")) == 30
    assert len(university.db.get("Departments")) == 4
    assert len(university.db.get("TopTen")) == 10


def test_no_dangling_references(university):
    assert university.db.store.dangling_refs() == []


def test_all_refs_resolve_and_are_typed(university):
    store = university.db.store
    for ref in university.db.get("Employees"):
        employee = store.get(ref.oid)
        assert employee.type_name == "Employee"
        assert store.exact_type(ref.oid) == "Employee"
        assert store.get(employee["dept"].oid).type_name == "Department"
        assert store.get(employee["manager"].oid).type_name == "Employee"


def test_oid_domains_respected(university):
    """Every stored reference is a member of the Odom its field
    declares — the Section 3.1 rules hold on generated data."""
    store = university.db.store
    gen = store.oids
    for ref in university.db.get("Students"):
        student = store.get(ref.oid)
        assert gen.in_odom(student["dept"].oid, "Department")
        assert gen.in_odom(student["advisor"].oid, "Employee")
        assert gen.in_odom(ref.oid, "Person")  # rule 3


def test_instances_are_in_their_domains(university):
    """Generated tuples are members of DOM of their declared type."""
    checker = university.db.types.checker()
    schema = university.db.types.schema_for("Employee")
    store = university.db.store
    for ref in list(university.db.get("Employees"))[:5]:
        reason = checker.explain(schema, store.get(ref.oid))
        assert reason is None, reason


def test_kids_are_person_values_not_refs(university):
    store = university.db.store
    employee = store.get(next(university.db.get("Employees").elements()).oid)
    for kid in employee["kids"]:
        assert isinstance(kid, Tup) and kid.type_name == "Person"


def test_subords_fanout(university):
    store = university.db.store
    for ref in university.db.get("Employees"):
        assert len(store.get(ref.oid)["sub_ords"]) == 3


def test_age_method_registered(university):
    method = university.db.methods.resolve("Student", "age")
    assert method.type_name == "Person"  # inherited virtual field
