"""Null discipline end-to-end: dne/unk through whole queries, plus
failure injection (dangling references mid-query).

The paper's design (Section 3.2.4): "Dne nulls are discarded whenever
possible during query processing — for example, a relational selection
is easily simulated because dne nulls appearing in a multiset are
ignored."  These tests drive that discipline through full pipelines.
"""

import pytest

from repro.core import Const, EvalContext, Func, Input, Named, evaluate
from repro.core.operators import (Comp, DE, Deref, Grp, Pi, SetApply,
                                  TupExtract, sigma)
from repro.core.predicates import Atom
from repro.core.values import DNE, UNK, MultiSet, Tup
from repro.workloads import build_university, figures


@pytest.fixture
def uni():
    return build_university(n_departments=3, n_employees=9, n_students=9,
                            seed=21)


# ---------------------------------------------------------------------------
# Failure injection: dangling references
# ---------------------------------------------------------------------------


def test_dangling_dept_rows_vanish_from_figure_4(uni):
    """Delete a department object: employees pointing at it silently
    drop out of the functional join (DEREF → dne → discarded)."""
    before = evaluate(figures.figure_4(), uni.db.context())
    victim = uni.department_refs[0]
    affected = sum(
        1 for r in uni.db.get("Employees")
        if uni.db.store.get(r.oid)["dept"] == victim
        and uni.db.store.get(r.oid)["city"] == "Madison")
    uni.db.store.delete(victim.oid)
    after = evaluate(figures.figure_4(), uni.db.context())
    assert len(after) == len(before) - affected
    assert uni.db.store.dangling_refs()  # the damage is detectable


def test_dangling_employee_vanishes_from_range_query(uni):
    victim = next(uni.db.get("Employees").elements())
    uni.db.store.delete(victim.oid)
    names = uni.session.query(
        "range of E is Employees retrieve (E.name)")
    assert len(names) == len(uni.db.get("Employees")) - 1


def test_dangling_ref_in_grouping_key_drops_element(uni):
    """A student whose department is gone has a dne grouping key, so it
    joins no group (GRP's key discipline)."""
    victim_student = next(uni.db.get("Students").elements())
    dept = uni.db.store.get(victim_student.oid)["dept"]
    uni.db.store.delete(dept.oid)
    groups = uni.session.query("""
        range of S is Students
        retrieve (S.name) by S.dept.division
    """)
    grouped_names = {t["name"] for g in groups.elements() for t in g}
    orphan_names = {uni.db.store.get(r.oid)["name"]
                    for r in uni.db.get("Students")
                    if uni.db.store.get(r.oid)["dept"] == dept}
    assert orphan_names.isdisjoint(grouped_names)


def test_aggregate_over_emptied_set_yields_dne_and_row_drops(uni):
    """min of an empty multiset is dne; the whole result row vanishes
    rather than carrying a null into the output."""
    db = uni.db
    db.create("Empty", MultiSet())
    result = uni.session.query(
        "range of E is Employees "
        "retrieve (E.name, min(x from x in Empty))")
    assert result == MultiSet()


# ---------------------------------------------------------------------------
# unk propagation
# ---------------------------------------------------------------------------


def test_unk_survives_multisets_and_de():
    ms = MultiSet([1, UNK, UNK])
    ctx = EvalContext({"A": ms})
    assert evaluate(DE(Named("A")), ctx) == MultiSet([1, UNK])


def test_unknown_comparison_keeps_unk_occurrences():
    """COMP returns unk on U; SET_APPLY keeps it (only dne vanishes)."""
    ms = MultiSet([Tup(a=1), Tup(a=UNK)])
    ctx = EvalContext({"A": ms})
    pred = Atom(TupExtract("a", Input()), "=", Const(1))
    result = evaluate(sigma(pred, Named("A")), ctx)
    assert result == MultiSet([Tup(a=1), UNK])


def test_unk_groups_together():
    ms = MultiSet([Tup(k=UNK, v=1), Tup(k=UNK, v=2), Tup(k=1, v=3)])
    ctx = EvalContext({"A": ms})
    groups = evaluate(Grp(TupExtract("k", Input()), Named("A")), ctx)
    assert groups.distinct_count() == 2


def test_function_propagates_unk_not_crashes():
    ctx = EvalContext(functions={"inc": lambda x: x + 1})
    body = Func("inc", [Input()])
    result = evaluate(SetApply(body, Const(MultiSet([1, UNK]))), ctx)
    assert result == MultiSet([2, UNK])


def test_dne_in_projection_chain_propagates_then_drops():
    ctx = EvalContext({"A": MultiSet([Tup(a=Tup(b=1))])})
    pred = Atom(TupExtract("b", TupExtract("a", Input())), ">", Const(5))
    chain = SetApply(Pi(["a"], Comp(pred, Input())), Named("A"))
    assert evaluate(chain, ctx) == MultiSet()


def test_comp_of_dangling_deref_is_false_not_error(uni):
    """An atom comparing against a dne operand is F, so the COMP yields
    dne — queries never crash on dangling data."""
    victim = next(uni.db.get("Employees").elements())
    target = uni.db.store.get(victim.oid)["dept"]
    uni.db.store.delete(target.oid)
    result = uni.session.query(
        "range of E is Employees retrieve (E.name) "
        "where E.dept.floor = 1")
    names = {t["name"] for t in result.elements()}
    assert uni.db.store.get(victim.oid)["name"] not in names
