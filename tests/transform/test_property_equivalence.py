"""Property-based rule soundness: every rewrite preserves semantics.

For every rule in the registry: generate random databases and random
query trees (shaped to give the rules something to match), take every
single-step rewrite anywhere in the tree, and check that the rewritten
tree evaluates to exactly the same value.  This is the executable
version of the appendix's omitted validity proofs.

Caveat from the paper-reproduction notes: rules 4, 10, and 27 are exact
on the U-free fragment, so generated predicates never produce UNK.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expr import Const, EvalContext, Func, Input, Named, evaluate
from repro.core.operators import (DE, AddUnion, ArrApply, ArrCat, ArrDE,
                                  ArrExtract, Comp, Cross, Diff, Grp, Pi,
                                  SetApply, SetCollapse, SetCreate, SubArr,
                                  TupCat, TupCreate, TupExtract, sigma,
                                  union)
from repro.core.predicates import And, Atom, Not, Or
from repro.core.transform import ALL_RULES, RewriteFacts, single_step_rewrites
from repro.core.values import Arr, MultiSet, Tup

# ---------------------------------------------------------------------------
# Data strategies
# ---------------------------------------------------------------------------

scalars = st.integers(0, 4)
tuples_ab = st.builds(lambda a, b: Tup(a=a, b=b), scalars, scalars)

int_multisets = st.lists(scalars, max_size=6).map(MultiSet)
tup_multisets = st.lists(tuples_ab, max_size=6).map(MultiSet)
tup_c_multisets = st.lists(
    st.builds(lambda c: Tup(c=c), scalars), max_size=5).map(MultiSet)
int_arrays = st.lists(scalars, max_size=6).map(Arr)

databases = st.fixed_dictionaries({
    "A": int_multisets, "B": int_multisets,
    "TA": tup_multisets, "TB": tup_c_multisets,
    "R": int_arrays, "S": int_arrays,
})

# ---------------------------------------------------------------------------
# Expression strategies — shaped so rules have material to match.
# ---------------------------------------------------------------------------

preds = st.one_of(
    st.builds(lambda k: Atom(Input(), "=", Const(k)), scalars),
    st.builds(lambda k: Atom(Input(), ">", Const(k)), scalars),
    st.builds(lambda k, j: And(Atom(Input(), ">", Const(k)),
                               Atom(Input(), "<", Const(j))),
              scalars, scalars),
    st.builds(lambda k, j: Or(Atom(Input(), "=", Const(k)),
                              Atom(Input(), "=", Const(j))),
              scalars, scalars),
    st.builds(lambda k: Not(Atom(Input(), "=", Const(k))), scalars),
)

tup_preds = st.one_of(
    st.builds(lambda k: Atom(TupExtract("a", Input()), "=", Const(k)),
              scalars),
    st.builds(lambda k: Atom(TupExtract("b", Input()), ">", Const(k)),
              scalars),
)

# Bodies that map scalars to scalars (safely composable).
scalar_bodies = st.one_of(
    st.just(Input()),
    st.just(Func("inc", [Input()])),
    st.builds(lambda p: Comp(p, Input()), preds),
    st.just(Func("inc", [Func("inc", [Input()])])),
)

# All bodies, including set-producing ones (must not be composed under
# a scalar body — the trees must stay well-sorted).
int_bodies = st.one_of(scalar_bodies, st.just(SetCreate(Input())))

A, B = Named("A"), Named("B")
TA, TB = Named("TA"), Named("TB")
R, S = Named("R"), Named("S")

int_set_exprs = st.one_of(
    st.just(A), st.just(B),
    st.builds(AddUnion, st.just(A), st.just(B)),
    st.builds(Diff, st.just(A), st.just(B)),
    st.builds(union, st.just(A), st.just(B)),
    st.builds(lambda p: sigma(p, A), preds),
    st.builds(lambda b: SetApply(b, A), int_bodies),
    st.builds(lambda b: SetApply(b, AddUnion(A, B)), int_bodies),
    st.builds(lambda b1, b2: SetApply(b1, SetApply(b2, A)),
              scalar_bodies, scalar_bodies),
    st.just(DE(Cross(A, B))),
    st.just(DE(SetApply(Func("inc", [TupExtract("field1", Input())]),
                        Cross(A, B)))),
    st.builds(lambda b: SetApply(b, SetCollapse(SetCreate(A))), int_bodies),
    st.builds(lambda p: DE(sigma(p, AddUnion(A, A))), preds),
    st.builds(lambda b: Grp(b, A), int_bodies),
    st.builds(lambda p, b: Grp(b, sigma(p, A)), preds, int_bodies),
    st.just(Grp(TupExtract("field1", Input()), Cross(A, B))),
    st.just(SetApply(TupCat(
        TupCreate("field1", Func("inc", [TupExtract("field1", Input())])),
        TupCreate("field2", TupExtract("field2", Input()))), Cross(A, B))),
    st.builds(lambda p: Grp(TupExtract("a", Input()),
                            sigma(p, TA)), tup_preds),
)

arr_exprs = st.one_of(
    st.just(ArrCat(ArrCat(R, S), R)),
    st.builds(lambda n: ArrExtract(n, ArrCat(R, S)), st.integers(1, 6)),
    st.builds(lambda m, n: SubArr(m, n, ArrCat(R, S)),
              st.integers(1, 4), st.integers(1, 6)),
    st.builds(lambda m, n, j, k: SubArr(m, n, SubArr(j, k, R)),
              st.integers(1, 3), st.integers(1, 4),
              st.integers(1, 3), st.integers(1, 4)),
    st.builds(lambda n: ArrExtract(n, ArrApply(Func("inc", [Input()]), R)),
              st.integers(1, 4)),
    st.just(ArrApply(Func("inc", [Input()]),
                     ArrApply(Func("inc", [Input()]), R))),
    st.just(ArrDE(ArrDE(R))),
    st.builds(lambda n: ArrExtract(n, SubArr(2, 4, R)), st.integers(1, 3)),
)

tuple_exprs = st.one_of(
    st.builds(lambda p: Comp(p, Comp(p, Const(Tup(a=1, b=2)))), tup_preds),
    st.just(TupExtract("a", TupCat(Pi(["a"], Const(Tup(a=1, b=2))),
                                   TupCreate("z", Const(9))))),
    st.just(Pi(["a", "z"], TupCat(Pi(["a"], Const(Tup(a=1, b=2))),
                                  TupCreate("z", Const(9))))),
    st.builds(lambda p: TupExtract("a", Comp(p, Const(Tup(a=1, b=2)))),
              tup_preds),
)

all_exprs = st.one_of(int_set_exprs, arr_exprs, tuple_exprs)


def _facts_for(db):
    facts = RewriteFacts()
    for name, value in db.items():
        expr = Named(name)
        if isinstance(value, (MultiSet, Arr)) and len(value):
            facts.declare_nonempty(expr)
        if isinstance(value, Arr):
            facts.declare_length(expr, len(value))
    return facts


def _ctx(db):
    return EvalContext(dict(db), functions={"inc": lambda x: x + 1})


@settings(max_examples=250, deadline=None)
@given(databases, all_exprs)
def test_every_rewrite_preserves_semantics(db, expr):
    facts = _facts_for(db)
    expected = evaluate(expr, _ctx(db))
    for rule, rewritten in single_step_rewrites(expr, ALL_RULES, facts):
        got = evaluate(rewritten, _ctx(db))
        assert got == expected, (
            "rule %s broke equivalence:\n  orig: %s\n  new:  %s"
            % (rule.name, expr.describe(), rewritten.describe()))


@settings(max_examples=60, deadline=None)
@given(databases, int_set_exprs)
def test_two_step_rewrites_preserve_semantics(db, expr):
    """Chains of rewrites stay sound (compositionality)."""
    facts = _facts_for(db)
    expected = evaluate(expr, _ctx(db))
    first = single_step_rewrites(expr, ALL_RULES, facts)
    random.Random(0).shuffle(first)
    for _, intermediate in first[:3]:
        for rule, rewritten in single_step_rewrites(
                intermediate, ALL_RULES, facts)[:5]:
            got = evaluate(rewritten, _ctx(db))
            assert got == expected, rule.name
