"""Rewrite engine tests: positions, exploration, derivations."""

from repro.core.expr import Const, Input, Named
from repro.core.operators import (DE, AddUnion, Comp, Cross, SetApply,
                                  TupExtract)
from repro.core.predicates import Atom
from repro.core.transform import (ALL_RULES, Derivation, RewriteEngine,
                                  rewrites_at_root, single_step_rewrites)
from repro.core.transform.multiset_rules import DEIdempotence


def test_rewrites_at_root_only_fires_matching_rules():
    expr = DE(DE(Named("A")))
    pairs = rewrites_at_root(expr, [DEIdempotence()])
    assert [(r.name, t) for r, t in pairs] == [
        ("de-idempotence", DE(Named("A")))]


def test_single_step_covers_nested_positions():
    expr = Cross(DE(DE(Named("A"))), Named("B"))
    rewrites = single_step_rewrites(expr, [DEIdempotence()])
    assert any(t == Cross(DE(Named("A")), Named("B")) for _, t in rewrites)


def test_single_step_reaches_binding_bodies():
    expr = SetApply(DE(DE(Input())), Named("A"))
    rewrites = single_step_rewrites(expr, [DEIdempotence()])
    assert any(t == SetApply(DE(Input()), Named("A")) for _, t in rewrites)


def test_single_step_reaches_predicate_operands():
    pred = Atom(DE(DE(Input())), "=", Const(0))
    expr = Comp(pred, Named("A"))
    rewrites = single_step_rewrites(expr, [DEIdempotence()])
    assert any(t == Comp(Atom(DE(Input()), "=", Const(0)), Named("A"))
               for _, t in rewrites)


def test_single_step_deduplicates():
    expr = AddUnion(DE(DE(Named("A"))), DE(DE(Named("A"))))
    rewrites = single_step_rewrites(expr, [DEIdempotence()])
    trees = [t for _, t in rewrites]
    assert len(trees) == len(set(trees))


def test_explore_includes_input_and_records_steps():
    engine = RewriteEngine([DEIdempotence()], max_depth=3)
    derivations = engine.explore(DE(DE(DE(Named("A")))))
    exprs = {d.expr for d in derivations}
    assert DE(Named("A")) in exprs
    final = next(d for d in derivations if d.expr == DE(Named("A")))
    assert final.steps == ("de-idempotence", "de-idempotence")


def test_explore_respects_max_trees():
    engine = RewriteEngine(ALL_RULES, max_trees=5, max_depth=10)
    expr = AddUnion(AddUnion(Named("A"), Named("B")),
                    AddUnion(Named("C"), Named("D")))
    assert len(engine.explore(expr)) <= 5


def test_explore_respects_max_depth():
    engine = RewriteEngine([DEIdempotence()], max_depth=1)
    derivations = engine.explore(DE(DE(DE(Named("A")))))
    assert DE(Named("A")) not in {d.expr for d in derivations}


def test_many_sortedness_limits_applicable_rules():
    """An array expression triggers no multiset rules (the paper's
    argument that the big rule count doesn't blow up the search)."""
    from repro.core.operators import ArrCat
    from repro.core.transform import MULTISET_RULES
    expr = ArrCat(ArrCat(Named("A"), Named("B")), Named("C"))
    assert single_step_rewrites(expr, MULTISET_RULES) == []


def test_derivation_repr():
    d = Derivation(Named("A"), ("step",))
    assert "step" in repr(d)
