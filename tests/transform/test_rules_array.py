"""Unit tests for the array transformation rules (Appendix §3)."""

import pytest

from repro.core.expr import Const, EvalContext, Func, Input, Named, evaluate
from repro.core.operators import (ArrApply, ArrCat, ArrCollapse, ArrCreate,
                                  ArrDE, ArrExtract, Comp, SubArr)
from repro.core.predicates import Atom
from repro.core.transform import RewriteFacts, rule_by_number
from repro.core.values import Arr

A, B, C = Named("A"), Named("B"), Named("C")
DATA = dict(A=Arr([1, 2, 3]), B=Arr([4, 5]), C=Arr([6]),
            NESTED=Arr([Arr([1]), Arr([2, 3])]))


def apply_rule(number, expr, facts=None):
    return rule_by_number(number).apply(expr, facts or RewriteFacts())


def assert_equivalent(original, rewritten):
    ctx1 = EvalContext(DATA, functions={"inc": lambda x: x + 1})
    ctx2 = EvalContext(DATA, functions={"inc": lambda x: x + 1})
    assert evaluate(original, ctx1) == evaluate(rewritten, ctx2)


def test_rule16_arrcat_associativity():
    expr = ArrCat(ArrCat(A, B), C)
    results = apply_rule(16, expr)
    assert ArrCat(A, ArrCat(B, C)) in results
    for r in results:
        assert_equivalent(expr, r)


def test_rule17_extract_from_concat_left():
    facts = RewriteFacts().declare_length(A, 3)
    expr = ArrExtract(2, ArrCat(A, B))
    results = apply_rule(17, expr, facts)
    assert results == [ArrExtract(2, A)]
    assert_equivalent(expr, results[0])


def test_rule17_extract_from_concat_right():
    facts = RewriteFacts().declare_length(A, 3)
    expr = ArrExtract(5, ArrCat(A, B))
    results = apply_rule(17, expr, facts)
    assert results == [ArrExtract(2, B)]
    assert_equivalent(expr, results[0])


def test_rule17_needs_length_fact():
    assert apply_rule(17, ArrExtract(2, ArrCat(A, B))) == []


def test_rule17_const_arrays_carry_length():
    expr = ArrExtract(4, ArrCat(Const(Arr([1, 2, 3])), B))
    results = apply_rule(17, expr)
    assert results == [ArrExtract(1, B)]
    assert_equivalent(expr, results[0])


def test_rule18_extract_from_subarray():
    """Erratum check: p-th element of A[m..n] is A[m+p−1] (not m+p)."""
    expr = ArrExtract(2, SubArr(2, 3, A))
    results = apply_rule(18, expr)
    assert results == [ArrExtract(3, A)]
    assert_equivalent(expr, results[0])


def test_rule18_out_of_range_does_not_fire():
    expr = ArrExtract(3, SubArr(2, 3, A))  # subarray has only 2 elements
    assert apply_rule(18, expr) == []


def test_rule19_extract_from_arrapply():
    body = Func("inc", [Input()])
    expr = ArrExtract(2, ArrApply(body, A))
    results = apply_rule(19, expr)
    assert results == [Func("inc", [ArrExtract(2, A)])]
    assert_equivalent(expr, results[0])


def test_rule19_guards_comp_bodies():
    body = Comp(Atom(Input(), ">", Const(1)), Input())
    expr = ArrExtract(1, ArrApply(body, A))
    assert apply_rule(19, expr) == []


def test_rule20_combine_subarrays():
    """Erratum check: SUBARR_{m,n}(SUBARR_{j,k}(A)) = SUBARR_{j+m−1, j+n−1}."""
    expr = SubArr(1, 2, SubArr(2, 3, A))
    results = apply_rule(20, expr)
    assert results == [SubArr(2, 3, A)]
    assert_equivalent(expr, results[0])


def test_rule20_out_of_range_guard():
    expr = SubArr(1, 5, SubArr(2, 3, A))  # outer wants 5 > inner's 2
    assert apply_rule(20, expr) == []


def test_rule21_subarray_from_concat_spanning():
    facts = RewriteFacts().declare_length(A, 3)
    expr = SubArr(2, 4, ArrCat(A, B))
    results = apply_rule(21, expr, facts)
    assert results == [ArrCat(SubArr(2, 3, A), SubArr(1, 1, B))]
    assert_equivalent(expr, results[0])


def test_rule21_subarray_entirely_right():
    facts = RewriteFacts().declare_length(A, 3)
    expr = SubArr(4, 5, ArrCat(A, B))
    results = apply_rule(21, expr, facts)
    assert results == [SubArr(1, 2, B)]
    assert_equivalent(expr, results[0])


def test_rule21_subarray_entirely_left():
    facts = RewriteFacts().declare_length(A, 3)
    expr = SubArr(1, 2, ArrCat(A, B))
    results = apply_rule(21, expr, facts)
    assert results == [SubArr(1, 2, A)]
    assert_equivalent(expr, results[0])


def test_rule22_subarr_arrapply_commute():
    body = Func("inc", [Input()])
    expr = SubArr(2, 3, ArrApply(body, A))
    results = apply_rule(22, expr)
    assert ArrApply(body, SubArr(2, 3, A)) in results
    for r in results:
        assert_equivalent(expr, r)


def test_rule22_guards_comp():
    body = Comp(Atom(Input(), ">", Const(1)), Input())
    assert apply_rule(22, SubArr(1, 2, ArrApply(body, A))) == []


def test_xa1_combine_arrapplys():
    body = Func("inc", [Input()])
    expr = ArrApply(body, ArrApply(body, A))
    results = apply_rule("XA1", expr)
    assert results == [ArrApply(Func("inc", [Func("inc", [Input()])]), A)]
    assert_equivalent(expr, results[0])


def test_xa2_identity_arrapply():
    assert apply_rule("XA2", ArrApply(Input(), A)) == [A]


def test_xa3_distribute_arrapply_over_arrcat():
    body = Func("inc", [Input()])
    expr = ArrApply(body, ArrCat(A, B))
    results = apply_rule("XA3", expr)
    assert ArrCat(ArrApply(body, A), ArrApply(body, B)) in results
    for r in results:
        assert_equivalent(expr, r)


def test_xa4_arrde_idempotent():
    assert apply_rule("XA4", ArrDE(ArrDE(A))) == [ArrDE(A)]


def test_xa5_distribute_arrcollapse():
    expr = ArrCollapse(ArrCat(ArrCreate(A), ArrCreate(B)))
    results = apply_rule("XA5", expr)
    assert results
    for r in results:
        assert_equivalent(expr, r)


def test_xa6_empty_array_identities():
    empty = Const(Arr())
    assert A in apply_rule("XA6", ArrCat(A, empty))
    assert A in apply_rule("XA6", ArrCat(empty, A))
    assert empty in apply_rule("XA6", ArrApply(Input(), empty))
    assert empty in apply_rule("XA6", ArrDE(empty))
    for expr in (ArrCat(A, empty), ArrCat(empty, A)):
        for r in apply_rule("XA6", expr):
            assert_equivalent(expr, r)


def test_xa7_arrde_of_singleton():
    expr = ArrDE(ArrCreate(Const(5)))
    assert apply_rule("XA7", expr) == [ArrCreate(Const(5))]
    assert_equivalent(expr, ArrCreate(Const(5)))


def test_xa8_arrcollapse_of_singleton():
    assert apply_rule("XA8", ArrCollapse(ArrCreate(A))) == [A]
    assert_equivalent(ArrCollapse(ArrCreate(A)), A)
