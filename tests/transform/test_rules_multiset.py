"""Unit tests for the multiset transformation rules (Appendix §2)."""

import pytest

from repro.core.expr import Const, EvalContext, Func, Input, Named, evaluate
from repro.core.operators import (DE, AddUnion, Comp, Cross, Diff, Grp,
                                  SetApply, SetCollapse, SetCreate,
                                  TupCreate, TupCat, TupExtract, sigma,
                                  union, intersection, rel_cross)
from repro.core.predicates import Atom, Or, TruePred
from repro.core.transform import (ALL_RULES, RewriteFacts, rule_by_number,
                                  rewrites_at_root, single_step_rewrites)
from repro.core.values import MultiSet, Tup


def apply_rule(number, expr, facts=None):
    rule = rule_by_number(number)
    return rule.apply(expr, facts or RewriteFacts())


def assert_equivalent(original, rewritten, **objects):
    ctx1 = EvalContext(objects, functions={"inc": lambda x: x + 1})
    ctx2 = EvalContext(objects, functions={"inc": lambda x: x + 1})
    assert evaluate(original, ctx1) == evaluate(rewritten, ctx2)


A, B, C = Named("A"), Named("B"), Named("C")
DATA = dict(A=MultiSet([1, 1, 2]), B=MultiSet([2, 3]), C=MultiSet([3]))
TUPS = dict(TA=MultiSet([Tup(a=1, b=1), Tup(a=1, b=2), Tup(a=2, b=2)]),
            TB=MultiSet([Tup(c=1), Tup(c=1)]))


def test_rule1_addunion_associativity():
    expr = AddUnion(AddUnion(A, B), C)
    results = apply_rule(1, expr)
    assert AddUnion(A, AddUnion(B, C)) in results
    for r in results:
        assert_equivalent(expr, r, **DATA)


def test_rule1_union_associativity():
    expr = union(union(A, B), C)
    results = apply_rule(1, expr)
    assert union(A, union(B, C)) in results
    for r in results:
        assert_equivalent(expr, r, **DATA)


def test_rule1_intersection_associativity():
    expr = intersection(intersection(A, B), C)
    results = apply_rule(1, expr)
    assert results
    for r in results:
        assert_equivalent(expr, r, **DATA)


def test_rule2_distribute_cross_over_addunion():
    expr = Cross(A, AddUnion(B, C))
    results = apply_rule(2, expr)
    assert AddUnion(Cross(A, B), Cross(A, C)) in results
    for r in results:
        assert_equivalent(expr, r, **DATA)
    # and back
    back = apply_rule(2, AddUnion(Cross(A, B), Cross(A, C)))
    assert expr in back


def test_rule3_rel_cross_commutativity():
    expr = rel_cross(Named("TA"), Named("TB"))
    results = apply_rule(3, expr)
    assert len(results) == 1
    assert_equivalent(expr, results[0], **TUPS)


def test_rule4_disjunction_split():
    pred = Or(Atom(Input(), "=", Const(1)), Atom(Input(), "=", Const(3)))
    expr = sigma(pred, A)
    results = apply_rule(4, expr)
    assert results
    for r in results:
        assert_equivalent(expr, r, **DATA)


def test_rule4_reverse_merges_disjuncts():
    s1 = sigma(Atom(Input(), "=", Const(1)), A)
    s2 = sigma(Atom(Input(), "=", Const(3)), A)
    results = apply_rule(4, union(s1, s2))
    assert results
    assert_equivalent(union(s1, s2), results[0], **DATA)


def test_rule5_requires_nonempty_fact():
    body = Func("inc", [TupExtract("field1", Input())])
    expr = DE(SetApply(body, Cross(A, B)))
    assert apply_rule(5, expr) == []  # no fact, no rewrite
    facts = RewriteFacts().declare_nonempty(B)
    results = apply_rule(5, expr, facts)
    assert results == [DE(SetApply(Func("inc", [Input()]), A))]
    assert_equivalent(expr, results[0], **DATA)


def test_rule5_other_side():
    body = Func("inc", [TupExtract("field2", Input())])
    expr = DE(SetApply(body, Cross(A, B)))
    facts = RewriteFacts().declare_nonempty(A)
    results = apply_rule(5, expr, facts)
    assert results == [DE(SetApply(Func("inc", [Input()]), B))]


def test_rule5_does_not_fire_when_body_uses_both_sides():
    body = TupCat(TupCreate("x", TupExtract("field1", Input())),
                  TupCreate("y", TupExtract("field2", Input())))
    expr = DE(SetApply(body, Cross(A, B)))
    facts = RewriteFacts().declare_nonempty(A).declare_nonempty(B)
    assert apply_rule(5, expr, facts) == []


def test_rule6_grouping_is_duplicate_free():
    expr = DE(Grp(Input(), A))
    results = apply_rule(6, expr)
    assert results == [Grp(Input(), A)]
    assert_equivalent(expr, results[0], **DATA)


def test_rule7_de_over_cross_both_directions():
    expr = DE(Cross(A, B))
    forward = apply_rule(7, expr)
    assert forward == [Cross(DE(A), DE(B))]
    assert_equivalent(expr, forward[0], **DATA)
    back = apply_rule(7, forward[0])
    assert expr in back


def test_rule8_de_before_or_after_grouping():
    key = TupExtract("a", Input())
    expr = Grp(key, DE(Named("TA")))
    results = apply_rule(8, expr)
    assert results == [SetApply(DE(Input()), Grp(key, Named("TA")))]
    assert_equivalent(expr, results[0], **TUPS)
    back = apply_rule(8, results[0])
    assert expr in back


def test_rule9_group_one_side_of_cross():
    key = TupExtract("a", TupExtract("field1", Input()))
    expr = Grp(key, Cross(Named("TA"), Named("TB")))
    facts = RewriteFacts().declare_nonempty(Named("TB"))
    results = apply_rule(9, expr, facts)
    assert results
    assert_equivalent(expr, results[0], **TUPS)


def test_rule9_needs_nonempty(capsys):
    key = TupExtract("a", TupExtract("field1", Input()))
    expr = Grp(key, Cross(Named("TA"), Named("TB")))
    assert apply_rule(9, expr) == []


def test_rule10_grouping_past_selection():
    key = TupExtract("a", Input())
    pred = Atom(TupExtract("b", Input()), "=", Const(2))
    expr = Grp(key, sigma(pred, Named("TA")))
    results = apply_rule(10, expr)
    assert results
    assert_equivalent(expr, results[0], **TUPS)


def test_rule10_reverse_round_trips():
    key = TupExtract("a", Input())
    pred = Atom(TupExtract("b", Input()), "=", Const(2))
    expr = Grp(key, sigma(pred, Named("TA")))
    rewritten = apply_rule(10, expr)[0]
    assert expr in apply_rule(10, rewritten)


def test_rule10_drops_emptied_groups():
    """The erratum fix: groups emptied by the selection must vanish."""
    key = TupExtract("a", Input())
    pred = Atom(TupExtract("b", Input()), "=", Const(2))
    expr = Grp(key, sigma(pred, Named("TA")))
    rewritten = apply_rule(10, expr)[0]
    ctx = EvalContext(TUPS)
    groups = evaluate(rewritten, ctx)
    assert MultiSet() not in groups


def test_rule11_collapse_over_addunion():
    expr = SetCollapse(AddUnion(SetCreate(A), SetCreate(B)))
    results = apply_rule(11, expr)
    assert results
    for r in results:
        assert_equivalent(expr, r, **DATA)


def test_rule12_setapply_over_addunion():
    body = Func("inc", [Input()])
    expr = SetApply(body, AddUnion(A, B))
    results = apply_rule(12, expr)
    assert AddUnion(SetApply(body, A), SetApply(body, B)) in results
    for r in results:
        assert_equivalent(expr, r, **DATA)


def test_rule12_preserves_type_filter():
    body = Input()
    expr = SetApply(body, AddUnion(A, B), type_filter="T")
    results = apply_rule(12, expr)
    assert all(n.type_filter == frozenset(["T"])
               for r in results for n in r.walk()
               if isinstance(n, SetApply))


def test_rule13_factorable_body_distributes():
    body = TupCat(
        TupCreate("field1", Func("inc", [TupExtract("field1", Input())])),
        TupCreate("field2", TupExtract("field2", Input())))
    expr = SetApply(body, Cross(A, B))
    results = apply_rule(13, expr)
    assert Cross(SetApply(Func("inc", [Input()]), A),
                 SetApply(Input(), B)) in results
    for r in results:
        assert_equivalent(expr, r, **DATA)


def test_rule13_reverse():
    expr = Cross(SetApply(Func("inc", [Input()]), A), SetApply(Input(), B))
    results = apply_rule(13, expr)
    assert results
    for r in results:
        assert_equivalent(expr, r, **DATA)


def test_rule14_setapply_inside_collapse():
    body = Func("inc", [Input()])
    expr = SetApply(body, SetCollapse(SetCreate(A)))
    results = apply_rule(14, expr)
    assert results
    for r in results:
        assert_equivalent(expr, r, **DATA)
    back = apply_rule(14, results[0])
    assert expr in back


def test_rule15_combines_setapplys():
    outer = Func("inc", [Input()])
    inner = Func("inc", [Input()])
    expr = SetApply(outer, SetApply(inner, A))
    results = apply_rule(15, expr)
    assert results == [SetApply(Func("inc", [Func("inc", [Input()])]), A)]
    assert_equivalent(expr, results[0], **DATA)


def test_rule15_guards_constant_bodies():
    """A constant outer body would resurrect dne-dropped occurrences."""
    inner = Comp(Atom(Input(), ">", Const(1)), Input())
    expr = SetApply(Const(0), SetApply(inner, A))
    assert apply_rule(15, expr) == []


def test_rule15_guards_type_filters():
    expr = SetApply(Input(), SetApply(Input(), A, type_filter="T"))
    assert apply_rule(15, expr) == []


def test_x1_de_idempotence():
    results = apply_rule("X1", DE(DE(A)))
    assert results == [DE(A)]


def test_x2_de_absorbs_input_duplicates():
    body = Func("inc", [Input()])
    expr = DE(SetApply(body, A))
    results = apply_rule("X2", expr)
    assert results == [DE(SetApply(body, DE(A)))]
    assert_equivalent(expr, results[0], **DATA)
    back = apply_rule("X2", results[0])
    assert expr in back


def test_x3_de_into_addunion():
    expr = DE(AddUnion(A, B))
    results = apply_rule("X3", expr)
    assert results == [DE(AddUnion(DE(A), DE(B)))]
    assert_equivalent(expr, results[0], **DATA)


def test_x5_identity_setapply():
    assert apply_rule("X5", SetApply(Input(), A)) == [A]
    assert apply_rule("X5", SetApply(Input(), A, type_filter="T")) == []


def test_x6_true_comp():
    assert apply_rule("X6", Comp(TruePred(), A)) == [A]


def test_single_step_rewrites_fire_inside_subscripts():
    """Section 5: "this ability to optimize within the subscripts of
    operators … is extremely useful" — the engine rewrites a body."""
    inner = SetApply(Input(), Named("TB"))
    body = Comp(Atom(Input(), "=", inner), Input())
    expr = SetApply(body, Named("TA"))
    rewrites = single_step_rewrites(expr, ALL_RULES)
    simplified = SetApply(Comp(Atom(Input(), "=", Named("TB")), Input()),
                          Named("TA"))
    assert any(t == simplified for _, t in rewrites)


def test_rule_registry_lookup():
    assert rule_by_number(15).name == "combine-successive-setapplys"
    with pytest.raises(KeyError):
        rule_by_number(999)


def test_x7_sigma_over_difference():
    pred = Atom(Input(), ">", Const(1))
    expr = sigma(pred, Diff(A, B))
    results = apply_rule("X7", expr)
    assert Diff(sigma(pred, A), sigma(pred, B)) in results
    for r in results:
        assert_equivalent(expr, r, **DATA)
    back = apply_rule("X7", Diff(sigma(pred, A), sigma(pred, B)))
    assert expr in back


def test_x8_collapse_of_singleton():
    assert apply_rule("X8", SetCollapse(SetCreate(A))) == [A]


def test_x9_de_of_singleton():
    assert apply_rule("X9", DE(SetCreate(A))) == [SetCreate(A)]


def test_x10_self_difference():
    results = apply_rule("X10", Diff(A, A))
    assert results == [Const(MultiSet())]
    assert_equivalent(Diff(A, A), results[0], **DATA)


def test_x10_guards_input_dependence():
    # INPUT-dependent operands are fine (same binding both sides) but
    # REF-containing ones are not duplicable; outside a binding context
    # an INPUT-using expr cannot be rewritten to a global constant.
    from repro.core.operators import RefOp
    assert apply_rule("X10", Diff(RefOp(A), RefOp(A))) == []


def test_x11_empty_set_identities():
    empty = Const(MultiSet())
    assert A in apply_rule("X11", AddUnion(A, empty))
    assert A in apply_rule("X11", AddUnion(empty, A))
    assert A in apply_rule("X11", Diff(A, empty))
    assert empty in apply_rule("X11", Cross(A, empty))
    assert empty in apply_rule("X11", SetApply(Input(), empty))
    assert empty in apply_rule("X11", DE(empty))
    for expr in (AddUnion(A, empty), Diff(A, empty), Cross(A, empty)):
        for r in apply_rule("X11", expr):
            assert_equivalent(expr, r, **DATA)
