"""Unit tests for tuple/reference/predicate rules (Appendix §4)."""

import pytest

from repro.core.expr import Const, EvalContext, Func, Input, Named, evaluate
from repro.core.operators import (Comp, Deref, Pi, RefOp, SetApply, TupCat,
                                  TupCreate, TupExtract, sigma)
from repro.core.predicates import And, Atom, TruePred
from repro.core.transform import RewriteFacts, rule_by_number
from repro.core.values import MultiSet, Tup
from repro.storage import ObjectStore


def apply_rule(number, expr):
    return rule_by_number(number).apply(expr, RewriteFacts())


def ctx(**objects):
    return EvalContext(objects, functions={"inc": lambda x: x + 1})


def assert_equivalent(original, rewritten, **objects):
    assert (evaluate(original, ctx(**objects))
            == evaluate(rewritten, ctx(**objects)))


T1 = Const(Tup(a=1, b=2))
T2 = Const(Tup(c=3))


def test_rule23_tupcat_commutes():
    expr = TupCat(T1, T2)
    results = apply_rule(23, expr)
    assert results == [TupCat(T2, T1)]
    assert_equivalent(expr, results[0])


def test_rule24_distribute_pi_over_tupcat():
    expr = Pi(["a", "c"], TupCat(Pi(["a", "b"], T1), Pi(["c"], T2)))
    results = apply_rule(24, expr)
    assert TupCat(Pi(["a"], Pi(["a", "b"], T1)),
                  Pi(["c"], Pi(["c"], T2))) in results
    for r in results:
        assert_equivalent(expr, r)


def test_rule24_reverse_merges():
    expr = TupCat(Pi(["a"], T1), Pi(["c"], T2))
    results = apply_rule(24, expr)
    assert Pi(("a", "c"), TupCat(T1, T2)) in results


def test_rule24_needs_static_fields():
    # Named sources have unknown fields — no rewrite.
    expr = Pi(["a"], TupCat(Named("X"), Named("Y")))
    assert apply_rule(24, expr) == []


def test_rule25_extract_from_tupcat():
    expr = TupExtract("a", TupCat(Pi(["a", "b"], T1), Pi(["c"], T2)))
    results = apply_rule(25, expr)
    assert results == [TupExtract("a", Pi(["a", "b"], T1))]
    assert_equivalent(expr, results[0])


def test_rule25_right_side():
    expr = TupExtract("c", TupCat(Pi(["a"], T1), TupCreate("c", Const(9))))
    results = apply_rule(25, expr)
    assert results == [TupExtract("c", TupCreate("c", Const(9)))]
    assert_equivalent(expr, results[0])


# ---------------------------------------------------------------------------
# Rule 26
# ---------------------------------------------------------------------------


def test_rule26_pull_expression_out_of_comp():
    """COMP_{P2}(E(A)) → E(COMP_{P1}(A)) with P1 = P2 ∘ E."""
    inner = TupExtract("a", Named("X"))
    pred = Atom(Input(), ">", Const(0))
    expr = Comp(pred, inner)
    results = rule_by_number("26R").apply(expr, RewriteFacts())
    expected = TupExtract(
        "a", Comp(Atom(TupExtract("a", Input()), ">", Const(0)), Named("X")))
    assert results == [expected]
    assert_equivalent(expr, results[0], X=Tup(a=5))
    assert_equivalent(expr, results[0], X=Tup(a=-1))


def test_rule26_push_subtree_factoring():
    """E(COMP_{P1}(A)) → COMP_{P2}(E(A)) when P1 re-computes E."""
    e_in = TupExtract("a", Input())
    pred = Atom(e_in, ">", Const(0))
    expr = TupExtract("a", Comp(pred, Named("X")))
    results = apply_rule(26, expr)
    expected = Comp(Atom(Input(), ">", Const(0)),
                    TupExtract("a", Named("X")))
    assert expected in results
    assert_equivalent(expr, results[0], X=Tup(a=3))
    assert_equivalent(expr, results[0], X=Tup(a=-3))


def test_rule26_push_field_map_factoring():
    """The Example-2 shape: a tuple rebuild whose fields pre-compute the
    predicate's subexpressions (π_{name, DEREF(dept)} in the paper;
    a function stands in for DEREF here)."""
    rebuild = TupCat(
        TupCreate("name", TupExtract("name", Input())),
        TupCreate("dept", Func("inc", [TupExtract("dept", Input())])))
    pred = Atom(Func("inc", [TupExtract("dept", Input())]), "=", Const(5))
    expr = TupExtract("name", Comp(pred, Input()))
    # Wrap: rebuild applied to the COMP result.
    pushed_source = Comp(pred, Input())
    full = rebuild.replace()  # copy
    # Build E(COMP_P1(INPUT)) by substituting the comp as the rebuild's input.
    from repro.core.expr import substitute_input
    tree = substitute_input(rebuild, pushed_source)
    results = apply_rule(26, tree)
    assert results, "field-map factoring should fire"
    rewritten = results[0]
    assert isinstance(rewritten, Comp)
    # The new predicate tests the rebuilt tuple's dept field directly.
    assert rewritten.pred == Atom(TupExtract("dept", Input()), "=", Const(5))
    for value in (Tup(name="n", dept=4), Tup(name="n", dept=7)):
        got1 = tree.evaluate(value, ctx())
        got2 = rewritten.evaluate(value, ctx())
        assert got1 == got2


def test_rule26_no_factoring_no_rewrite():
    # P1 references a field E throws away — cannot factor.
    pred = Atom(TupExtract("b", Input()), ">", Const(0))
    expr = TupExtract("a", Comp(pred, Named("X")))
    assert apply_rule(26, expr) == []


def test_rule26_guards_nondeterministic_e():
    pred = Atom(Input(), "=", Const(1))
    expr = Comp(pred, RefOp(Named("X")))
    assert rule_by_number("26R").apply(expr, RewriteFacts()) == []


def test_rule27_combines_comps():
    p1 = Atom(TupExtract("a", Input()), ">", Const(0))
    p2 = Atom(TupExtract("b", Input()), "<", Const(9))
    expr = Comp(p1, Comp(p2, T1))
    results = apply_rule(27, expr)
    assert Comp(And(p2, p1), T1) in results
    for r in results:
        assert_equivalent(expr, r)


def test_rule27_reverse_splits_conjunction():
    p1 = Atom(TupExtract("a", Input()), ">", Const(0))
    p2 = Atom(TupExtract("b", Input()), "<", Const(9))
    expr = Comp(And(p1, p2), T1)
    results = apply_rule(27, expr)
    assert Comp(p2, Comp(p1, T1)) in results


def test_rule28_deref_of_ref():
    expr = Deref(RefOp(Named("X")))
    results = apply_rule(28, expr)
    assert results == [Named("X")]
    store = ObjectStore()
    context = EvalContext({"X": 5}, store=store)
    assert evaluate(expr, context) == evaluate(Named("X"), context)


def test_rule28_ref_of_deref():
    expr = RefOp(Deref(Named("R")))
    assert apply_rule(28, expr) == [Named("R")]


def test_selection_projection_commute_as_consequence():
    """The appendix notes σ/π pushing past joins follows from rules 13,
    24, 27; sanity-check a simple instance semantically."""
    data = MultiSet([Tup(a=1, b=10), Tup(a=2, b=20)])
    pred = Atom(TupExtract("a", Input()), "=", Const(2))
    select_then_project = SetApply(
        Pi(["a"], Input()), sigma(pred, Const(data)))
    project_then_select = sigma(pred, SetApply(Pi(["a"], Input()),
                                               Const(data)))
    assert (evaluate(select_then_project, ctx())
            == evaluate(project_then_select, ctx()))
