"""Property test: the two Section 4 dispatch strategies always agree.

For random inheritance hierarchies, random method definitions/overrides
(simple field-reading bodies), and random typed populations, the
switch-table plan and the ⊎-based plan (both with and without the
distinct-bodies collapse) must compute the same multiset.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expr import Const, EvalContext, Func, Input, Named, evaluate
from repro.core.hierarchy import TypeHierarchy
from repro.core.methods import (MethodRegistry, build_union_plan,
                                switch_table_plan)
from repro.core.operators import TupExtract
from repro.core.values import MultiSet, Tup


@st.composite
def dispatch_worlds(draw):
    """(hierarchy, registry, population) — a random §4 scenario."""
    n_types = draw(st.integers(1, 5))
    names = ["T%d" % i for i in range(n_types)]
    hierarchy = TypeHierarchy()
    hierarchy.add_type(names[0])
    for i, name in enumerate(names[1:], start=1):
        k = draw(st.integers(1, min(2, i)))
        parents = draw(st.permutations(names[:i]))[:k]
        hierarchy.add_type(name, parents)

    registry = MethodRegistry(hierarchy)
    # The root always defines the method; every other type overrides it
    # with an independent probability, reading a different field.
    bodies = [TupExtract("a", Input()), TupExtract("b", Input()),
              Func("inc", [TupExtract("a", Input())])]
    registry.define(names[0], "f", [], bodies[0])
    for i, name in enumerate(names[1:], start=1):
        if draw(st.booleans()):
            try:
                registry.define(name, "f", [],
                                bodies[draw(st.integers(0, 2))])
            except Exception:
                pass  # inconsistent C3 orders can make linearize fail

    population = MultiSet(
        Tup({"a": draw(st.integers(0, 3)), "b": draw(st.integers(0, 3))},
            type_name=draw(st.sampled_from(names)))
        for _ in range(draw(st.integers(0, 8))))
    return hierarchy, registry, population


@settings(max_examples=80, deadline=None)
@given(dispatch_worlds())
def test_switch_and_union_plans_always_agree(world):
    hierarchy, registry, population = world
    # Skip worlds where C3 linearization is inconsistent for some type
    # that actually appears in the data (resolution would be undefined).
    try:
        for t in hierarchy.types():
            registry.resolve(t, "f")
    except Exception:
        return

    def ctx():
        c = EvalContext({"P": population},
                        functions={"inc": lambda x: x + 1})
        c.methods = registry
        return c

    expected = evaluate(switch_table_plan("f", [], Named("P")), ctx())
    collapsed = evaluate(
        build_union_plan(registry, "T0", "f", [], Named("P"),
                         collapse_identical=True), ctx())
    per_type = evaluate(
        build_union_plan(registry, "T0", "f", [], Named("P"),
                         collapse_identical=False), ctx())
    assert collapsed == expected
    assert per_type == expected


@settings(max_examples=40, deadline=None)
@given(dispatch_worlds())
def test_collapsed_plan_never_scans_more(world):
    """The distinct-bodies improvement is monotone: collapsing never
    increases the number of ⊎ branches."""
    hierarchy, registry, population = world
    try:
        collapsed = registry.distinct_implementations("T0", "f")
        per_type = registry.implementations("T0", "f")
    except Exception:
        return
    assert len(collapsed) <= len(per_type)
    # Every type is covered by exactly one collapsed branch.
    covered = [t for _, types in collapsed for t in types]
    assert sorted(covered) == sorted(per_type)
