"""Property tests tying schemas, domains, and the sampler together.

For random well-formed schemas: every sampled instance is a member of
the schema's domain; inferred schemas of sampled values accept the
values that produced them; and DOM is monotone along inheritance.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domains import DomainChecker, DomainSampler
from repro.core.hierarchy import TypeHierarchy
from repro.core.schema import SchemaCatalog, SchemaNode, infer_schema

# Random schema trees (no refs — the sampler's allocator is exercised
# separately; refs need a store).
schemas = st.recursive(
    st.sampled_from([int, float, str, bool]).map(SchemaNode.val),
    lambda children: st.one_of(
        children.map(SchemaNode.set_of),
        children.map(SchemaNode.arr_of),
        st.builds(lambda a, b: SchemaNode.arr_of(a, fixed_length=b),
                  children, st.integers(0, 3)),
        st.dictionaries(st.sampled_from(["a", "b", "c"]), children,
                        min_size=0, max_size=3).map(SchemaNode.tup)),
    max_leaves=6)


@settings(max_examples=120, deadline=None)
@given(schemas, st.integers(0, 2 ** 32 - 1))
def test_sampled_values_are_domain_members(schema, seed):
    schema.validate()
    sampler = DomainSampler(random.Random(seed))
    checker = DomainChecker()
    value = sampler.sample(schema)
    reason = checker.explain(schema, value)
    assert reason is None, reason


@settings(max_examples=120, deadline=None)
@given(schemas, st.integers(0, 2 ** 32 - 1))
def test_inferred_schema_accepts_its_value(schema, seed):
    """infer_schema(v) always admits v (inference is sound)."""
    value = DomainSampler(random.Random(seed)).sample(schema)
    inferred = infer_schema(value)
    assert DomainChecker().contains(inferred, value)


@settings(max_examples=120, deadline=None)
@given(schemas, st.integers(0, 2 ** 32 - 1))
def test_sampler_determinism(schema, seed):
    a = DomainSampler(random.Random(seed)).sample(schema)
    b = DomainSampler(random.Random(seed)).sample(schema)
    assert a == b


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2 ** 32 - 1))
def test_dom_monotone_along_inheritance(seed):
    """A value in dom(Subtype) is in DOM(Supertype) — substitutability
    holds for arbitrary sampled subtype instances."""
    rng = random.Random(seed)
    h = TypeHierarchy()
    h.add_type("Base")
    h.add_type("Derived", ["Base"])
    catalog = SchemaCatalog()
    base = SchemaNode.tup({"x": SchemaNode.val(int)}, name="Base")
    extra_field = rng.choice(["y", "z"])
    derived = SchemaNode.tup({"x": SchemaNode.val(int),
                              extra_field: SchemaNode.val(str)},
                             name="Derived")
    catalog.register(base)
    catalog.register(derived)
    checker = DomainChecker(catalog, h)
    sample = DomainSampler(rng).sample(derived)
    from repro.core.values import Tup
    typed = Tup(dict(sample.fields), type_name="Derived")
    # dom(Derived) membership needs the right declared name on tuples?
    # No — dom is structural; DOM(Base) must admit the Derived value.
    assert checker.contains(derived, sample)
    assert checker.contains(base, sample)  # via DOM


@settings(max_examples=60, deadline=None)
@given(schemas)
def test_clone_is_domain_equivalent(schema):
    """clone() renames nodes but defines the same domain."""
    value = DomainSampler(random.Random(7)).sample(schema)
    checker = DomainChecker()
    assert checker.contains(schema.clone(), value)
