"""The derived-operator library (nest/unnest, semijoins, per-group
aggregates) — compositions of primitives, per the paper's future-work
program of "testing a wide variety of algebraic operators"."""

import pytest

from repro.core.expr import Const, EvalContext, Input, Named, evaluate
from repro.core.operators import (aggregate_per_group, antijoin,
                                  field_map_rebuild, join_field, nest,
                                  register_library_functions,
                                  select_into_groups, semijoin, sigma,
                                  unnest, TupExtract)
from repro.core.predicates import Atom
from repro.core.transform import ALL_RULES, single_step_rewrites
from repro.core.values import MultiSet, Tup
from repro.storage import Database


@pytest.fixture
def db():
    database = Database()
    register_library_functions(database)
    database.create("Emp", MultiSet([
        Tup(ename="a", dept="CS", sal=10),
        Tup(ename="b", dept="CS", sal=20),
        Tup(ename="c", dept="EE", sal=30),
    ]))
    database.create("Dept", MultiSet([Tup(dname="CS"), Tup(dname="Hist")]))
    return database


def ctx(db):
    return db.context()


# ---------------------------------------------------------------------------
# nest / unnest
# ---------------------------------------------------------------------------


def test_nest_packs_groups(db):
    """ν drops the key from the packed members (so μ can restore it)."""
    result = evaluate(nest(["dept"], "members", Named("Emp")), ctx(db))
    assert result.distinct_count() == 2
    cs = next(t for t in result.elements() if t["dept"] == "CS")
    assert cs["members"] == MultiSet([Tup(ename="a", sal=10),
                                      Tup(ename="b", sal=20)])


def test_unnest_flattens(db):
    """unnest is nest's left inverse: μ(ν(R)) = R."""
    nested = evaluate(nest(["dept"], "members", Named("Emp")), ctx(db))
    db.create("Nested", nested)
    flat = evaluate(unnest("members", Named("Nested")), ctx(db))
    assert flat == db.get("Emp")


def test_unnest_multiplies_cardinality(db):
    db.create("Parents", MultiSet([
        Tup(pid=1, kids=MultiSet([Tup(k="x"), Tup(k="y")])),
        Tup(pid=2, kids=MultiSet()),
    ]))
    flat = evaluate(unnest("kids", Named("Parents")), ctx(db))
    assert len(flat) == 2  # the empty nest contributes nothing
    assert Tup(pid=1, k="x") in flat


# ---------------------------------------------------------------------------
# semijoin / antijoin
# ---------------------------------------------------------------------------


def _dept_match():
    return Atom(join_field(1, "dept"), "=", join_field(2, "dname"))


def test_semijoin(db):
    result = evaluate(semijoin(_dept_match(), Named("Emp"), Named("Dept")),
                      ctx(db))
    assert result == MultiSet([Tup(ename="a", dept="CS", sal=10),
                               Tup(ename="b", dept="CS", sal=20)])


def test_semijoin_keeps_duplicates(db):
    db.create("Dupes", MultiSet([Tup(dept="CS")] * 3))
    pred = Atom(join_field(1, "dept"), "=", join_field(2, "dname"))
    result = evaluate(semijoin(pred, Named("Dupes"), Named("Dept")), ctx(db))
    assert result.cardinality(Tup(dept="CS")) == 3


def test_antijoin_complements_semijoin(db):
    semi = evaluate(semijoin(_dept_match(), Named("Emp"), Named("Dept")),
                    ctx(db))
    anti = evaluate(antijoin(_dept_match(), Named("Emp"), Named("Dept")),
                    ctx(db))
    assert semi.add_union(anti) == db.get("Emp")
    assert semi.intersection(anti) == MultiSet()


# ---------------------------------------------------------------------------
# aggregate_per_group / select_into_groups
# ---------------------------------------------------------------------------


def test_aggregate_per_group(db):
    result = evaluate(
        aggregate_per_group(TupExtract("dept", Input()), "sum",
                            TupExtract("sal", Input()), Named("Emp")),
        ctx(db))
    assert result == MultiSet([Tup(key="CS", agg=30), Tup(key="EE", agg=30)])


def test_aggregate_per_group_count(db):
    result = evaluate(
        aggregate_per_group(TupExtract("dept", Input()), "count",
                            Input(), Named("Emp")),
        ctx(db))
    assert Tup(key="CS", agg=2) in result


def test_select_into_groups_equals_select_then_group(db):
    from repro.core.operators import Grp
    pred = Atom(TupExtract("sal", Input()), ">", Const(15))
    key = TupExtract("dept", Input())
    packaged = select_into_groups(pred, key, Named("Emp"))
    reference = Grp(key, sigma(pred, Named("Emp")))
    assert evaluate(packaged, ctx(db)) == evaluate(reference, ctx(db))


def test_field_map_rebuild_shape(db):
    body = field_map_rebuild({"x": TupExtract("ename", Input()),
                              "y": Const(1)})
    value = body.evaluate(Tup(ename="a", dept="CS", sal=10), ctx(db))
    assert value == Tup(x="a", y=1)
    with pytest.raises(ValueError):
        field_map_rebuild({})


# ---------------------------------------------------------------------------
# Optimizability: rules see through the compositions
# ---------------------------------------------------------------------------


def test_rules_fire_inside_library_operators(db):
    """The whole point of deriving rather than adding primitives: the
    existing rules rewrite inside a nest's GRP, a semijoin's σ, etc."""
    from repro.core.operators import DE
    tree = nest(["dept"], "members", DE(DE(Named("Emp"))))
    rewrites = single_step_rewrites(tree, ALL_RULES)
    assert any("de-idempotence" == rule.name for rule, _ in rewrites)


def test_semijoin_is_pure_composition(db):
    tree = semijoin(_dept_match(), Named("Emp"), Named("Dept"))
    from repro.core.expr import Expr
    kinds = {type(node).__name__ for node in tree.walk()}
    # No new node types: only primitives, predicates, and leaves.
    assert kinds <= {"SetApply", "Comp", "Cross", "SetCreate", "Named",
                     "Input", "Const", "Func", "TupExtract"}
