"""Derived operators (Appendix §1): ∪, ∩, σ, rel_join, rel_×."""

from repro.core.expr import Const, EvalContext, Input, evaluate
from repro.core.operators import (AddUnion, Diff, SetApply, arr_sigma,
                                  intersection, join_field, rel_cross,
                                  rel_join, sigma, union)
from repro.core.predicates import Atom
from repro.core.values import Arr, MultiSet, Tup


def ctx():
    return EvalContext()


def test_union_max_semantics():
    q = union(Const(MultiSet([1, 1, 2])), Const(MultiSet([1, 3])))
    assert evaluate(q, ctx()) == MultiSet([1, 1, 2, 3])


def test_union_is_composed_of_primitives():
    q = union(Const(MultiSet()), Const(MultiSet()))
    assert isinstance(q, AddUnion)
    assert isinstance(q.left, Diff)


def test_intersection_min_semantics():
    q = intersection(Const(MultiSet([1, 1, 2])), Const(MultiSet([1, 1, 1])))
    assert evaluate(q, ctx()) == MultiSet([1, 1])


def test_intersection_is_redundant_composition():
    q = intersection(Const(MultiSet()), Const(MultiSet()))
    assert isinstance(q, Diff) and isinstance(q.right, Diff)


def test_sigma_simulates_relational_selection():
    data = MultiSet([Tup(a=1), Tup(a=2), Tup(a=2), Tup(a=3)])
    from repro.core.operators import TupExtract
    q = sigma(Atom(TupExtract("a", Input()), "=", Const(2)), Const(data))
    assert evaluate(q, ctx()) == MultiSet([Tup(a=2), Tup(a=2)])


def test_sigma_shape_is_set_apply_comp():
    q = sigma(Atom(Input(), "=", Const(1)), Const(MultiSet()))
    assert isinstance(q, SetApply)


def test_arr_sigma_preserves_order():
    q = arr_sigma(Atom(Input(), ">", Const(1)), Const(Arr([3, 1, 2])))
    assert evaluate(q, ctx()) == Arr([3, 2])


def test_rel_cross_flattens_pairs():
    a = MultiSet([Tup(x=1)])
    b = MultiSet([Tup(y=2), Tup(y=3)])
    result = evaluate(rel_cross(Const(a), Const(b)), ctx())
    assert result == MultiSet([Tup(x=1, y=2), Tup(x=1, y=3)])


def test_rel_join_equijoin():
    employees = MultiSet([Tup(ename="e1", d=1), Tup(ename="e2", d=2)])
    departments = MultiSet([Tup(dname="CS", dno=1), Tup(dname="EE", dno=3)])
    pred = Atom(join_field(1, "d"), "=", join_field(2, "dno"))
    result = evaluate(rel_join(pred, Const(employees), Const(departments)),
                      ctx())
    assert result == MultiSet([Tup(ename="e1", d=1, dname="CS", dno=1)])


def test_rel_join_theta():
    left = MultiSet([Tup(a=1), Tup(a=5)])
    right = MultiSet([Tup(b=3)])
    pred = Atom(join_field(1, "a"), ">", join_field(2, "b"))
    result = evaluate(rel_join(pred, Const(left), Const(right)), ctx())
    assert result == MultiSet([Tup(a=5, b=3)])


def test_rel_join_preserves_duplicates():
    left = MultiSet([Tup(a=1), Tup(a=1)])
    right = MultiSet([Tup(b=1)])
    pred = Atom(join_field(1, "a"), "=", join_field(2, "b"))
    result = evaluate(rel_join(pred, Const(left), Const(right)), ctx())
    assert result.cardinality(Tup(a=1, b=1)) == 2


def test_derived_ops_simulate_relational_algebra():
    """σ ∘ rel_join over the university-style tables behaves like the
    textbook relational pipeline."""
    emp = MultiSet([Tup(e=i, d=i % 2) for i in range(6)])
    dept = MultiSet([Tup(d2=0, floor=1), Tup(d2=1, floor=2)])
    pred = Atom(join_field(1, "d"), "=", join_field(2, "d2"))
    joined = rel_join(pred, Const(emp), Const(dept))
    from repro.core.operators import TupExtract
    selected = sigma(Atom(TupExtract("floor", Input()), "=", Const(2)),
                     joined)
    result = evaluate(selected, ctx())
    assert len(result) == 3
    assert all(t["floor"] == 2 for t in result)
