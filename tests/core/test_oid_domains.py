"""OID domain semantics: the five rules of Section 3.1.

The paper's construction — f(n) ones followed by a zero — makes the raw
pools R(n) disjoint and infinite; Odom(A) is the union of the pools of
A and its descendants.  These tests check the rules on hand-built
hierarchies and on hypothesis-generated random DAGs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import TypeHierarchy
from repro.core.oid import OIDError, OIDGenerator


@pytest.fixture
def university_hierarchy():
    h = TypeHierarchy()
    h.add_type("Person")
    h.add_type("Employee", ["Person"])
    h.add_type("Student", ["Person"])
    h.add_type("TA", ["Employee", "Student"])  # multiple inheritance
    return h


@pytest.fixture
def gen(university_hierarchy):
    return OIDGenerator(university_hierarchy)


def test_prefix_construction_literal(gen):
    """The decimal form is f(n) ones, a zero, then a counter."""
    oid = gen.new_oid("Person")
    code = gen.code_for("Person")
    assert str(oid).startswith("1" * code + "0")


def test_oids_are_unique(gen):
    seen = {gen.new_oid("Person") for _ in range(100)}
    seen |= {gen.new_oid("Student") for _ in range(100)}
    assert len(seen) == 200


def test_exact_type_decoding(gen):
    for name in ("Person", "Employee", "Student", "TA"):
        oid = gen.new_oid(name)
        assert gen.exact_type_of(oid) == name


def test_malformed_oid_rejected(gen):
    gen.new_oid("Person")  # assign at least one code
    with pytest.raises(OIDError):
        gen.exact_type_of(999)  # no 1…10 prefix
    with pytest.raises(OIDError):
        gen.exact_type_of(0)


def test_unknown_type_rejected(gen):
    with pytest.raises(OIDError):
        gen.new_oid("Nope")


def test_rule3_subtype_oids_belong_to_supertype(gen):
    """R → S ⇒ Odom(S) ⊆ Odom(R): every Student OID is a Person OID."""
    student = gen.new_oid("Student")
    assert gen.in_odom(student, "Student")
    assert gen.in_odom(student, "Person")
    assert not gen.in_odom(student, "Employee")


def test_rule4_unrelated_types_disjoint(gen):
    """Employee and Student share descendant TA, so TA OIDs are in both;
    but a plain Employee OID is never a Student OID."""
    employee = gen.new_oid("Employee")
    assert not gen.in_odom(employee, "Student")


def test_rule5_multiple_inheritance_intersection(gen):
    """A TA OID lies in Odom(Employee) ∩ Odom(Student) ∩ Odom(Person)."""
    ta = gen.new_oid("TA")
    for supertype in ("TA", "Employee", "Student", "Person"):
        assert gen.in_odom(ta, supertype)


def test_rule2_residue_structural(gen):
    """Odom(Person) − ⋃ subtypes still contains R(Person): allocating a
    Person never steals from a subtype pool."""
    person = gen.new_oid("Person")
    for subtype in ("Employee", "Student", "TA"):
        assert not gen.in_odom(person, subtype)


def test_check_rules_passes(gen):
    for name in ("Person", "Employee", "Student", "TA"):
        gen.new_oid(name)
    gen.check_rules()  # must not raise


def test_odom_types(gen):
    assert gen.odom_types("Person") == {"Person", "Employee", "Student", "TA"}
    assert gen.odom_types("TA") == {"TA"}


def test_odom_sample_members(gen):
    for oid in gen.odom_sample("Employee", per_type=2):
        assert gen.in_odom(oid, "Employee")
        assert gen.in_odom(oid, "Person")


def test_migration_upward_allowed(gen):
    """An object allocated as TA may present itself as Student (its OID
    is already in Odom(Student)); a Person cannot migrate down."""
    ta = gen.new_oid("TA")
    assert gen.migrate_ok(ta, "Student")
    assert gen.migrate_ok(ta, "Person")
    person = gen.new_oid("Person")
    assert not gen.migrate_ok(person, "Student")


def test_new_ref_carries_type(gen):
    ref = gen.new_ref("Employee")
    assert ref.type_name == "Employee"
    assert gen.in_odom(ref.oid, "Person")


# ---------------------------------------------------------------------------
# Property test: rules hold on random hierarchies.
# ---------------------------------------------------------------------------

@st.composite
def random_hierarchy(draw):
    n = draw(st.integers(2, 8))
    h = TypeHierarchy()
    names = ["T%d" % i for i in range(n)]
    for i, name in enumerate(names):
        candidates = names[:i]
        k = draw(st.integers(0, min(2, len(candidates))))
        parents = draw(st.permutations(candidates)) if candidates else []
        h.add_type(name, parents[:k])
    return h


@settings(max_examples=50, deadline=None)
@given(random_hierarchy())
def test_rules_hold_on_random_dags(h):
    gen = OIDGenerator(h)
    oids = {name: gen.new_oid(name) for name in h.types()}
    gen.check_rules()
    for a in h.types():
        for b in h.types():
            # rule 3 / rule 5: subtype OIDs are member OIDs of every
            # supertype; rule 4: no shared descendants → disjoint.
            if h.is_subtype(b, a):
                assert gen.in_odom(oids[b], a)
            shared = (h.descendants_or_self(a) & h.descendants_or_self(b))
            if not shared:
                assert not gen.in_odom(oids[b], a)
                assert not gen.in_odom(oids[a], b)
