"""COMP and three-valued predicate logic tests (Section 3.2.4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.expr import AlgebraError, Const, EvalContext, Input, evaluate
from repro.core.predicates import (And, Atom, Comp, Not, Or, T, F, U,
                                   TruePred, kleene_and, kleene_not,
                                   kleene_or)
from repro.core.values import DNE, UNK, Arr, MultiSet, Tup

TRUTH = [T, F, U]


def ctx():
    return EvalContext()


# ---------------------------------------------------------------------------
# Kleene logic
# ---------------------------------------------------------------------------


def test_kleene_and_table():
    assert kleene_and(T, T) == T
    assert kleene_and(T, F) == F
    assert kleene_and(F, U) == F
    assert kleene_and(T, U) == U
    assert kleene_and(U, U) == U


def test_kleene_or_table():
    assert kleene_or(F, F) == F
    assert kleene_or(T, U) == T
    assert kleene_or(F, U) == U


def test_kleene_not():
    assert kleene_not(T) == F
    assert kleene_not(F) == T
    assert kleene_not(U) == U


@given(st.sampled_from(TRUTH), st.sampled_from(TRUTH))
def test_de_morgan(a, b):
    assert kleene_not(kleene_and(a, b)) == kleene_or(kleene_not(a),
                                                     kleene_not(b))


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------


def test_atom_equality_is_value_equality():
    """One equality for everything — including nested structures."""
    atom = Atom(Input(), "=", Const(MultiSet([Tup(a=1)])))
    assert atom.test(MultiSet([Tup(a=1)]), ctx()) == T
    assert atom.test(MultiSet([Tup(a=2)]), ctx()) == F


def test_paper_comp_example():
    """COMP_E((1 4 6 4 1)) = (1 4 6 4 1) when fld2 = fld4."""
    value = Tup(fld1=1, fld2=4, fld3=6, fld4=4, fld5=1)
    from repro.core.operators import TupExtract
    pred = Atom(TupExtract("fld2", Input()), "=",
                TupExtract("fld4", Input()))
    assert evaluate(Comp(pred, Const(value)), ctx()) == value


def test_atom_order_comparators():
    for op, expected in (("<", T), ("<=", T), (">", F), (">=", F)):
        assert Atom(Const(1), op, Const(2)).test(None, ctx()) == expected
    assert Atom(Const(2), "!=", Const(3)).test(None, ctx()) == T


def test_atom_incomparable_types_are_unknown():
    assert Atom(Const(1), "<", Const("x")).test(None, ctx()) == U


def test_atom_membership_multiset():
    atom = Atom(Const(2), "in", Const(MultiSet([1, 2, 2])))
    assert atom.test(None, ctx()) == T
    assert Atom(Const(5), "in",
                Const(MultiSet([1]))).test(None, ctx()) == F


def test_atom_membership_array():
    assert Atom(Const(2), "in", Const(Arr([1, 2]))).test(None, ctx()) == T


def test_atom_membership_bad_operand():
    with pytest.raises(AlgebraError):
        Atom(Const(2), "in", Const(3)).test(None, ctx())


def test_atom_bad_comparator_rejected():
    with pytest.raises(AlgebraError):
        Atom(Const(1), "~", Const(2))


def test_atom_null_semantics():
    assert Atom(Const(UNK), "=", Const(1)).test(None, ctx()) == U
    assert Atom(Const(DNE), "=", Const(DNE)).test(None, ctx()) == F


# ---------------------------------------------------------------------------
# COMP
# ---------------------------------------------------------------------------


def test_comp_returns_input_on_true():
    assert evaluate(Comp(TruePred(), Const(7)), ctx()) == 7


def test_comp_returns_dne_on_false():
    pred = Atom(Input(), ">", Const(10))
    assert evaluate(Comp(pred, Const(7)), ctx()) is DNE


def test_comp_returns_unk_on_unknown():
    pred = Atom(Input(), "=", Const(UNK))
    assert evaluate(Comp(pred, Const(7)), ctx()) is UNK


def test_comp_propagates_null_input():
    assert evaluate(Comp(TruePred(), Const(DNE)), ctx()) is DNE
    assert evaluate(Comp(TruePred(), Const(UNK)), ctx()) is UNK


def test_comp_counts_evaluations():
    context = ctx()
    evaluate(Comp(TruePred(), Const(1)), context)
    assert context.stats["comp_evals"] == 1


def test_connectives_compose():
    a_true = Atom(Const(1), "=", Const(1))
    a_false = Atom(Const(1), "=", Const(2))
    assert And(a_true, a_false).test(None, ctx()) == F
    assert Or(a_true, a_false).test(None, ctx()) == T
    assert Not(a_false).test(None, ctx()) == T


def test_or_is_derived_not_primitive():
    """∨ expands to ¬(¬a ∧ ¬b) — the predicate tree has only ∧ and ¬."""
    disjunction = Or(TruePred(), TruePred())
    assert isinstance(disjunction, Not)
    assert isinstance(disjunction.inner, And)


def test_predicate_structural_equality():
    a = And(Atom(Input(), "=", Const(1)), TruePred())
    b = And(Atom(Input(), "=", Const(1)), TruePred())
    assert a == b and hash(a) == hash(b)
    assert a != And(TruePred(), TruePred())


def test_map_exprs_descends():
    pred = And(Atom(Input(), "=", Const(1)), Not(Atom(Input(), "<", Const(2))))
    rewritten = pred.map_exprs(
        lambda e: Const(9) if e == Const(1) else e)
    assert rewritten == And(Atom(Input(), "=", Const(9)),
                            Not(Atom(Input(), "<", Const(2))))


def test_deep_exprs():
    pred = And(Atom(Input(), "=", Const(1)), Not(TruePred()))
    exprs = pred.deep_exprs()
    assert Const(1) in exprs and Input() in exprs
