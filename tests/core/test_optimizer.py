"""Cost model and optimizer tests.

The model's job is to rank the paper's worked-example alternatives the
way Section 5 argues — DE on |S|+|E| beats DE on |S|·|E|, selection
pushed ahead of grouping wins at low selectivity, fewer DEREFs win.
"""

import pytest

from repro.core.expr import Const, Input, Named
from repro.core.operators import (DE, Comp, Cross, Deref, Grp, SetApply,
                                  TupExtract, sigma)
from repro.core.optimizer import (CostModel, Estimate, ObjectStats,
                                  OptimizationResult, Optimizer, Statistics)
from repro.core.predicates import Atom, TruePred
from repro.core.transform import ALL_RULES, RewriteFacts
from repro.core.values import MultiSet


@pytest.fixture
def stats():
    s = Statistics()
    s.set_object("S", ObjectStats(cardinality=100, distinct=40))
    s.set_object("E", ObjectStats(cardinality=200, distinct=200))
    return s


@pytest.fixture
def model(stats):
    return CostModel(stats)


def test_named_cardinality_from_stats(model):
    est = model.estimate(Named("S"))
    assert est.card == 100 and est.distinct == 40


def test_unknown_object_gets_default(model):
    assert model.estimate(Named("ZZZ")).card == 100.0


def test_const_cardinality(model):
    assert model.estimate(Const(MultiSet([1, 2, 3]))).card == 3
    assert model.estimate(Const(5)).card == 1


def test_cross_cost_is_product(model):
    est = model.estimate(Cross(Named("S"), Named("E")))
    assert est.card == 100 * 200
    assert est.cost >= 100 * 200


def test_de_reduces_to_distinct(model):
    est = model.estimate(DE(Named("S")))
    assert est.card == 40


def test_selection_applies_selectivity(model, stats):
    pred = Atom(TupExtract("a", Input()), "=", Const(1))
    est = model.estimate(sigma(pred, Named("S")))
    assert est.card == pytest.approx(100 * 0.1)


def test_custom_selectivity(model, stats):
    pred = Atom(TupExtract("a", Input()), "=", Const(1))
    stats.set_selectivity(pred, 0.01)
    est = model.estimate(sigma(pred, Named("S")))
    assert est.card == pytest.approx(1.0)


def test_deref_weight_charged_per_element(model):
    cheap = SetApply(TupExtract("a", Input()), Named("S"))
    costly = SetApply(TupExtract("a", Deref(Input())), Named("S"))
    assert model.cost(costly) > model.cost(cheap) + 100  # 100 derefs × 5


def test_de_after_cross_costlier_than_de_before(model):
    """The Example 1 ranking: DE over the product of S and E costs more
    than DE over the inputs separately (rule 7's motivation)."""
    after = DE(Cross(Named("S"), Named("E")))
    before = Cross(DE(Named("S")), DE(Named("E")))
    assert model.cost(after) > model.cost(before)


def test_selection_before_grouping_cheaper_at_low_selectivity(stats):
    """The Example 2 ranking (rule 10 read right-to-left)."""
    model = CostModel(stats)
    pred = Atom(TupExtract("floor", Input()), "=", Const(5))
    stats.set_selectivity(pred, 0.05)
    key = TupExtract("division", Input())
    select_then_group = Grp(key, sigma(pred, Named("S")))
    group_then_select = SetApply(
        Comp(Atom(Input(), "!=", Const(MultiSet())),
             sigma(pred, Input())), Grp(key, Named("S")))
    assert model.cost(select_then_group) < model.cost(group_then_select)


def test_optimizer_removes_redundant_de(stats):
    optimizer = Optimizer(cost_model=CostModel(stats), max_depth=2)
    query = DE(DE(Named("S")))
    result = optimizer.optimize(query)
    assert result.best == DE(Named("S"))
    assert result.best_cost < result.initial_cost
    assert result.improvement > 1


def test_optimizer_eliminates_identity_apply(stats):
    optimizer = Optimizer(cost_model=CostModel(stats), max_depth=2)
    query = SetApply(Input(), Named("S"))
    assert optimizer.optimize(query).best == Named("S")


def test_optimizer_pushes_de_below_cross(stats):
    optimizer = Optimizer(cost_model=CostModel(stats), max_depth=3)
    query = DE(Cross(Named("S"), Named("E")))
    best = optimizer.optimize(query).best
    # DE(S) × DE(E) (rule 7) is the cheapest equivalent.
    assert best == Cross(DE(Named("S")), DE(Named("E")))


def test_optimizer_reports_derivation(stats):
    optimizer = Optimizer(cost_model=CostModel(stats), max_depth=2)
    result = optimizer.optimize(DE(DE(Named("S"))))
    assert "de-idempotence" in result.steps
    assert result.explored >= 2
    assert "OptimizationResult" in repr(result)


def test_estimate_repr():
    assert "cost" in repr(Estimate(1.0, 2.0))


def test_comp_merging_reduces_cost(stats):
    """Rule 27: one COMP beats two stacked COMPs."""
    model = CostModel(stats)
    optimizer = Optimizer(cost_model=model, max_depth=2)
    p1 = Atom(TupExtract("a", Input()), ">", Const(1))
    p2 = Atom(TupExtract("b", Input()), "<", Const(9))
    query = Comp(p1, Comp(p2, Named("S")))
    result = optimizer.optimize(query)
    assert result.best_cost <= model.cost(query)


# ---------------------------------------------------------------------------
# Collected statistics
# ---------------------------------------------------------------------------


def test_statistics_from_database():
    from repro.core.values import Arr, MultiSet, Tup
    from repro.storage import Database
    db = Database()
    db.create("Mixed", MultiSet(
        [Tup({"v": 1}, type_name="A")] * 3
        + [Tup({"v": 2}, type_name="B")]))
    db.create("Nested", MultiSet([MultiSet([1, 2]), MultiSet([1, 2, 3, 4])]))
    db.create("Arr", Arr([1, 1, 2]))
    collected = Statistics.from_database(db)
    mixed = collected.object("Mixed")
    assert mixed.cardinality == 4
    assert mixed.distinct == 2
    assert mixed.type_fractions["A"] == pytest.approx(0.75)
    assert collected.object("Nested").avg_nested_size == pytest.approx(3.0)
    assert collected.object("Arr").cardinality == 3
    assert collected.object("Arr").distinct == 2


def test_collected_stats_drive_real_optimization():
    """The optimizer, fed collected stats, still picks the DE-past-×
    plan on real data and the plan's measured work improves."""
    from repro.core.values import MultiSet
    from repro.storage import Database
    from repro.core.expr import EvalContext, evaluate
    db = Database()
    db.create("Big", MultiSet(i % 7 for i in range(300)))
    db.create("Small", MultiSet(i % 3 for i in range(40)))
    collected = Statistics.from_database(db)
    optimizer = Optimizer(cost_model=CostModel(collected), max_depth=2)
    query = DE(Cross(Named("Big"), Named("Small")))
    result = optimizer.optimize(query)
    assert result.best == Cross(DE(Named("Big")), DE(Named("Small")))
    ctx_before, ctx_after = db.context(), db.context()
    assert evaluate(query, ctx_before) == evaluate(result.best, ctx_after)
    assert (ctx_after.stats["de_elements"]
            < ctx_before.stats["de_elements"])


# ---------------------------------------------------------------------------
# Greedy strategy
# ---------------------------------------------------------------------------


def test_greedy_finds_downhill_plans(stats):
    optimizer = Optimizer(cost_model=CostModel(stats), strategy="greedy",
                          max_depth=6)
    result = optimizer.optimize(DE(DE(DE(Named("S")))))
    assert result.best == DE(Named("S"))
    assert result.steps == ("de-idempotence", "de-idempotence")


def test_greedy_matches_exhaustive_on_simple_plans(stats):
    query = DE(Cross(Named("S"), Named("E")))
    exhaustive = Optimizer(cost_model=CostModel(stats),
                           max_depth=3).optimize(query)
    greedy = Optimizer(cost_model=CostModel(stats), strategy="greedy",
                       max_depth=6).optimize(query)
    assert greedy.best == exhaustive.best


def test_greedy_stops_at_local_minimum(stats):
    optimizer = Optimizer(cost_model=CostModel(stats), strategy="greedy")
    result = optimizer.optimize(Named("S"))
    assert result.best == Named("S")
    assert result.steps == ()


def test_greedy_respects_max_depth(stats):
    optimizer = Optimizer(cost_model=CostModel(stats), strategy="greedy",
                          max_depth=1)
    result = optimizer.optimize(DE(DE(DE(Named("S")))))
    assert len(result.steps) == 1


def test_bad_strategy_rejected():
    with pytest.raises(ValueError):
        Optimizer(strategy="quantum")
