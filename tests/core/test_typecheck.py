"""Static schema inference / sort checking for algebra trees."""

import pytest

from repro.core.expr import Const, Func, Input, Named
from repro.core.operators import (DE, AddUnion, ArrCat, ArrCollapse,
                                  ArrCreate, ArrExtract, Comp, Cross, Deref,
                                  Grp, Pi, RefOp, SetApply, SetCollapse,
                                  SetCreate, SubArr, TupCat, TupCreate,
                                  TupExtract, sigma)
from repro.core.predicates import Atom
from repro.core.schema import SchemaCatalog, SchemaNode
from repro.core.typecheck import (AlgebraTypeError, TypeChecker,
                                  checker_for_database)
from repro.core.values import Arr, MultiSet, Tup


def tup_schema(**fields):
    return SchemaNode.tup({k: v for k, v in fields.items()})


@pytest.fixture
def checker():
    person = tup_schema(name=SchemaNode.val(str), age=SchemaNode.val(int))
    catalog = SchemaCatalog()
    catalog.register(person, "Person")
    return TypeChecker(
        named_schemas={
            "People": SchemaNode.set_of(person),
            "Ages": SchemaNode.set_of(SchemaNode.val(int)),
            "Board": SchemaNode.arr_of(SchemaNode.ref_to("Person")),
        },
        catalog=catalog)


# ---------------------------------------------------------------------------
# Successful inference
# ---------------------------------------------------------------------------


def test_named_and_const(checker):
    assert checker.check(Named("Ages")).describe() == "{ int }"
    assert checker.check(Const(MultiSet([1]))).kind == "set"
    assert checker.check(Const(5)).scalar_type is int


def test_set_apply_infers_element_schema(checker):
    expr = SetApply(TupExtract("age", Input()), Named("People"))
    schema = checker.check(expr)
    assert schema.describe() == "{ int }"


def test_pi_and_extract(checker):
    expr = SetApply(Pi(["name"], Input()), Named("People"))
    assert checker.check(expr).describe() == "{ (name: str) }"


def test_grp_doubles_nesting(checker):
    expr = Grp(TupExtract("age", Input()), Named("People"))
    schema = checker.check(expr)
    assert schema.kind == "set" and schema.component.kind == "set"
    assert schema.component.component.kind == "tup"


def test_cross_builds_pair_schema(checker):
    schema = checker.check(Cross(Named("Ages"), Named("People")))
    pair = schema.component
    assert pair.field("field1").scalar_type is int
    assert pair.field("field2").kind == "tup"


def test_comp_preserves_schema_and_checks_pred(checker):
    expr = sigma(Atom(TupExtract("age", Input()), ">", Const(30)),
                 Named("People"))
    assert checker.check(expr).component.kind == "tup"


def test_deref_resolves_through_catalog(checker):
    expr = Deref(ArrExtract(1, Named("Board")))
    assert checker.check(expr).describe().startswith("(name: str")


def test_refop_wraps(checker):
    schema = checker.check(RefOp(Const(5)))
    assert schema.kind == "ref"


def test_tupcat_merges(checker):
    expr = TupCat(TupCreate("a", Const(1)), TupCreate("b", Const("x")))
    assert checker.check(expr).field_names == ["a", "b"]


def test_collapse_unwraps(checker):
    expr = SetCollapse(SetCreate(Named("Ages")))
    assert checker.check(expr).describe() == "{ int }"


def test_array_chain(checker):
    expr = ArrCat(ArrCreate(Const(1)), ArrCreate(Const(2)))
    assert checker.check(expr).kind == "arr"
    assert checker.check(SubArr(1, 2, expr)).kind == "arr"
    assert checker.check(ArrCollapse(ArrCreate(expr))).kind == "arr"


def test_unknown_pieces_stay_opaque(checker):
    # Function results have no declared schema: None, not an error.
    assert checker.check(Func("mystery", [Named("Ages")])) is None
    # And feeding an unknown into a sorted operator is tolerated.
    assert checker.check(DE(Func("mystery", []))) is None


def test_function_signatures(checker):
    checker.signatures["count"] = SchemaNode.val(int)
    assert checker.check(Func("count", [Named("Ages")])).scalar_type is int


# ---------------------------------------------------------------------------
# Static rejections
# ---------------------------------------------------------------------------


def test_pi_on_set_rejected(checker):
    with pytest.raises(AlgebraTypeError):
        checker.check(Pi(["name"], Named("People")))


def test_set_apply_on_array_rejected(checker):
    with pytest.raises(AlgebraTypeError):
        checker.check(SetApply(Input(), Named("Board")))


def test_missing_field_rejected(checker):
    with pytest.raises(AlgebraTypeError):
        checker.check(SetApply(TupExtract("salary", Input()),
                               Named("People")))
    with pytest.raises(AlgebraTypeError):
        checker.check(SetApply(Pi(["salary"], Input()), Named("People")))


def test_tupcat_clash_rejected(checker):
    expr = TupCat(TupCreate("a", Const(1)), TupCreate("a", Const(2)))
    with pytest.raises(AlgebraTypeError):
        checker.check(expr)


def test_addunion_on_scalars_rejected(checker):
    with pytest.raises(AlgebraTypeError):
        checker.check(AddUnion(Const(1), Const(2)))


def test_deref_of_non_ref_rejected(checker):
    with pytest.raises(AlgebraTypeError):
        checker.check(Deref(Const(5)))


def test_collapse_of_flat_set_rejected(checker):
    with pytest.raises(AlgebraTypeError):
        checker.check(SetCollapse(Named("Ages")))


def test_pred_operands_are_checked(checker):
    bad = sigma(Atom(TupExtract("ghost", Input()), "=", Const(1)),
                Named("People"))
    with pytest.raises(AlgebraTypeError):
        checker.check(bad)


# ---------------------------------------------------------------------------
# Against a real database and the EXCESS translator
# ---------------------------------------------------------------------------


def test_checker_for_university():
    from repro.workloads import build_university
    uni = build_university(n_departments=2, n_employees=6, n_students=6,
                           seed=3)
    checker = checker_for_database(uni.db)
    plan = uni.session.compile(
        "range of E is Employees retrieve (E.name) where E.dept.floor = 1")
    schema = checker.check(plan)
    assert schema.kind == "set"
    assert schema.component.field("name").scalar_type is str


def test_translator_output_always_typechecks():
    """Every compiled paper query passes the static checker — the
    translator never builds sort-invalid trees."""
    from repro.workloads import build_university
    uni = build_university(n_departments=2, n_employees=8, n_students=8,
                           seed=3)
    checker = checker_for_database(uni.db)
    queries = [
        "retrieve (TopTen[5].name, TopTen[5].salary)",
        'retrieve (Employees.dept.name) where Employees.city = "Madison"',
        "range of E is Employees retrieve (C.name) from C in E.kids "
        "where E.dept.floor = 2",
        "range of S is Students retrieve (S.name) by S.dept.division "
        "where S.dept.floor = 1",
    ]
    for query in queries:
        from repro.excess import Session
        plan = Session(uni.db).compile(query)
        checker.check(plan)  # must not raise


def test_rewrites_preserve_inferred_schema():
    """Transformation rules are schema-preserving (a weaker, static
    companion to the semantic property tests)."""
    from repro.core.transform import ALL_RULES, single_step_rewrites
    person = tup_schema(name=SchemaNode.val(str), age=SchemaNode.val(int))
    checker = TypeChecker({"P": SchemaNode.set_of(person)})
    tree = DE(SetApply(Pi(["name"], Input()),
                       sigma(Atom(TupExtract("age", Input()), ">",
                                  Const(30)), Named("P"))))
    want = checker.check(tree)
    for _, rewritten in single_step_rewrites(tree, ALL_RULES):
        got = checker.check(rewritten)
        if got is not None and want is not None:
            assert got.structurally_equal(want)


# ---------------------------------------------------------------------------
# Plan explanation (explain.py)
# ---------------------------------------------------------------------------


def test_explain_draws_figure_style_trees():
    from repro.core.explain import explain
    from repro.core.operators import DE, Cross
    tree = DE(Cross(Named("S"), Named("E")))
    text = explain(tree)
    assert text.splitlines()[0] == "DE"
    assert "└─ CROSS" in text
    assert "├─ S" in text and "└─ E" in text


def test_explain_inlines_subscripts_and_costs():
    from repro.core.explain import explain
    from repro.core.optimizer import CostModel
    person = tup_schema(name=SchemaNode.val(str))
    tree = SetApply(TupExtract("name", Input()), Named("P"))
    text = explain(tree, CostModel())
    assert "SET_APPLY [INPUT.name]" in text
    assert "cost≈" in text and "card≈" in text


def test_explain_shows_type_filters_and_methods():
    from repro.core.explain import explain
    from repro.core.methods import IndexedTypeScan, MethodCall
    tree = SetApply(MethodCall("boss", [], Input()), Named("P"),
                    type_filter="Employee")
    text = explain(tree)
    assert "<Employee>" in text
    scan = explain(IndexedTypeScan("P", ["A", "B"]))
    assert "INDEX SCAN P<A/B>" in scan


def test_explain_parameters_of_plain_nodes():
    from repro.core.explain import explain
    from repro.core.operators import ArrExtract, SubArr
    assert "ARREXTRACT 5" in explain(ArrExtract(5, Named("R")))
    assert "SUBARR 2 last" in explain(SubArr(2, "last", Named("R")))
