"""The four tuple operators (Section 3.2.2)."""

import pytest

from repro.core.expr import AlgebraError, Const, EvalContext, evaluate
from repro.core.operators import Pi, TupCat, TupCreate, TupExtract
from repro.core.values import DNE, Tup


def ctx():
    return EvalContext()


def test_pi_keeps_named_fields_in_order():
    q = Pi(["c", "a"], Const(Tup(a=1, b=2, c=3)))
    result = evaluate(q, ctx())
    assert result == Tup(c=3, a=1)
    assert result.field_names == ("c", "a")


def test_pi_still_produces_a_tuple():
    q = Pi(["a"], Const(Tup(a=1, b=2)))
    assert isinstance(evaluate(q, ctx()), Tup)


def test_pi_empty_projection():
    assert evaluate(Pi([], Const(Tup(a=1))), ctx()) == Tup()


def test_pi_unknown_field():
    with pytest.raises(KeyError):
        evaluate(Pi(["zzz"], Const(Tup(a=1))), ctx())


def test_pi_requires_tuple():
    with pytest.raises(AlgebraError):
        evaluate(Pi(["a"], Const(5)), ctx())


def test_tup_cat():
    q = TupCat(Const(Tup(a=1)), Const(Tup(b=2)))
    assert evaluate(q, ctx()) == Tup(a=1, b=2)


def test_tup_cat_clash():
    with pytest.raises(ValueError):
        evaluate(TupCat(Const(Tup(a=1)), Const(Tup(a=2))), ctx())


def test_tup_cat_null_propagation():
    assert evaluate(TupCat(Const(DNE), Const(Tup())), ctx()) is DNE


def test_tup_extract_unwraps():
    q = TupExtract("a", Const(Tup(a=Tup(inner=1))))
    result = evaluate(q, ctx())
    assert result == Tup(inner=1)  # the field itself, not a 1-tuple


def test_tup_extract_differs_from_pi():
    source = Const(Tup(a=5))
    assert evaluate(TupExtract("a", source), ctx()) == 5
    assert evaluate(Pi(["a"], source), ctx()) == Tup(a=5)


def test_tup_extract_missing_field():
    with pytest.raises(KeyError):
        evaluate(TupExtract("b", Const(Tup(a=1))), ctx())


def test_tup_create():
    assert evaluate(TupCreate("f1", Const(9)), ctx()) == Tup(f1=9)


def test_tup_create_needs_source():
    with pytest.raises(AlgebraError):
        TupCreate("f1")


def test_tup_create_plus_cat_adds_a_field():
    """The paper's use case: TUP + TUP_CAT extend an existing tuple."""
    q = TupCat(Const(Tup(a=1)), TupCreate("b", Const(2)))
    assert evaluate(q, ctx()) == Tup(a=1, b=2)
