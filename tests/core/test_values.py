"""Unit and property tests for the runtime value model (Section 3.2.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.values import (DNE, UNK, Arr, MultiSet, Null, Ref, Tup,
                               is_null, is_scalar, is_value, sort_of)

# ---------------------------------------------------------------------------
# Nulls
# ---------------------------------------------------------------------------


def test_null_singletons():
    assert Null("dne") is DNE
    assert Null("unk") is UNK
    assert DNE is not UNK


def test_null_bad_kind_rejected():
    with pytest.raises(ValueError):
        Null("maybe")


def test_is_null():
    assert is_null(DNE) and is_null(UNK)
    assert not is_null(None)
    assert not is_null(0)


def test_null_repr():
    assert repr(DNE) == "dne"
    assert repr(UNK) == "unk"


# ---------------------------------------------------------------------------
# Tup
# ---------------------------------------------------------------------------


def test_tup_field_access_and_order():
    t = Tup(a=1, b=2)
    assert t["a"] == 1
    assert t.field_names == ("a", "b")
    assert len(t) == 2
    assert "a" in t and "z" not in t


def test_tup_missing_field():
    with pytest.raises(KeyError):
        Tup(a=1)["b"]


def test_empty_tuple_is_legal():
    t = Tup()
    assert len(t) == 0
    assert t == Tup()


def test_tup_equality_is_order_insensitive():
    # Named-record semantics: validates TUP_CAT commutativity (rule 23).
    assert Tup(a=1, b=2) == Tup(b=2, a=1)
    assert hash(Tup(a=1, b=2)) == hash(Tup(b=2, a=1))


def test_tup_type_name_participates_in_equality():
    plain = Tup({"name": "x"})
    typed = Tup({"name": "x"}, type_name="Person")
    assert plain != typed
    assert typed == Tup({"name": "x"}, type_name="Person")


def test_tup_project_drops_type_and_keeps_order():
    t = Tup({"a": 1, "b": 2, "c": 3}, type_name="T")
    p = t.project(["c", "a"])
    assert p.field_names == ("c", "a")
    assert p.type_name is None


def test_tup_concat_disjoint():
    assert Tup(a=1).concat(Tup(b=2)) == Tup(a=1, b=2)


def test_tup_concat_clash_rejected():
    with pytest.raises(ValueError):
        Tup(a=1).concat(Tup(a=2))


def test_tup_replace_keeps_type_name():
    t = Tup({"a": 1}, type_name="T")
    assert t.replace(a=9) == Tup({"a": 9}, type_name="T")
    with pytest.raises(KeyError):
        t.replace(z=0)


def test_tup_immutable():
    with pytest.raises(AttributeError):
        Tup(a=1).x = 5


def test_tup_get_default():
    assert Tup(a=1).get("b", 7) == 7


# ---------------------------------------------------------------------------
# Arr
# ---------------------------------------------------------------------------


def test_arr_basics():
    a = Arr([1, 2, 3])
    assert len(a) == 3
    assert list(a) == [1, 2, 3]
    assert a[0] == 1
    assert a[1:] == Arr([2, 3])


def test_arr_extract_is_one_based_and_unwrapped():
    a = Arr([10, 20, 30])
    assert a.extract(1) == 10
    assert a.extract(3) == 30


def test_arr_extract_out_of_bounds():
    with pytest.raises(IndexError):
        Arr([1]).extract(2)
    with pytest.raises(IndexError):
        Arr([1]).extract(0)


def test_subarr_inclusive_bounds():
    a = Arr([1, 2, 3, 4, 5])
    assert a.subarr(2, 4) == Arr([2, 3, 4])


def test_subarr_last_token():
    a = Arr([1, 2, 3])
    assert a.subarr(2, "last") == Arr([2, 3])
    assert a.subarr("last", "last") == Arr([3])


def test_subarr_clamps_and_empties():
    a = Arr([1, 2, 3])
    assert a.subarr(2, 10) == Arr([2, 3])
    assert a.subarr(3, 2) == Arr()  # inverted range: the empty array


def test_subarr_lower_bound_validation():
    with pytest.raises(IndexError):
        Arr([1]).subarr(0, 1)


def test_arr_concat_order():
    assert Arr([1]).concat(Arr([2, 3])) == Arr([1, 2, 3])


def test_empty_array_is_legal():
    assert len(Arr()) == 0
    assert Arr().subarr(1, 5) == Arr()


def test_arr_equality_is_order_sensitive():
    assert Arr([1, 2]) != Arr([2, 1])


# ---------------------------------------------------------------------------
# MultiSet
# ---------------------------------------------------------------------------


def test_multiset_cardinalities():
    m = MultiSet([1, 1, 2])
    assert m.cardinality(1) == 2
    assert m.cardinality(2) == 1
    assert m.cardinality(3) == 0
    assert len(m) == 3
    assert m.distinct_count() == 2


def test_multiset_equality_is_cardinality_wise():
    assert MultiSet([1, 1, 2]) == MultiSet([2, 1, 1])
    assert MultiSet([1, 1]) != MultiSet([1])


def test_multiset_drops_dne_keeps_unk():
    m = MultiSet([1, DNE, UNK, DNE])
    assert len(m) == 2
    assert UNK in m and DNE not in m


def test_multiset_counts_constructor():
    m = MultiSet(counts={5: 3})
    assert m.cardinality(5) == 3
    with pytest.raises(ValueError):
        MultiSet(counts={5: -1})


def test_multiset_zero_count_absent():
    m = MultiSet(counts={5: 0})
    assert 5 not in m and len(m) == 0


def test_add_union_sums():
    a, b = MultiSet([1, 1]), MultiSet([1, 2])
    assert a.add_union(b) == MultiSet([1, 1, 1, 2])


def test_difference_floors_at_zero():
    a, b = MultiSet([1, 1, 2]), MultiSet([1, 1, 1, 3])
    assert a.difference(b) == MultiSet([2])


def test_union_is_max():
    a, b = MultiSet([1, 1, 2]), MultiSet([1, 3])
    assert a.union(b) == MultiSet([1, 1, 2, 3])


def test_intersection_is_min():
    a, b = MultiSet([1, 1, 2]), MultiSet([1, 1, 1])
    assert a.intersection(b) == MultiSet([1, 1])


def test_dedup():
    assert MultiSet([1, 1, 2]).dedup() == MultiSet([1, 2])
    assert MultiSet([1, 2]).is_set()
    assert not MultiSet([1, 1]).is_set()


def test_cross_multiplies_cardinalities():
    a, b = MultiSet([1, 1]), MultiSet(["x"])
    product = a.cross(b)
    assert product.cardinality(Tup(field1=1, field2="x")) == 2


def test_collapse():
    m = MultiSet([MultiSet([1, 2]), MultiSet([2]), MultiSet([2])])
    assert m.collapse() == MultiSet([1, 2, 2, 2])


def test_collapse_needs_multisets():
    with pytest.raises(TypeError):
        MultiSet([1]).collapse()


def test_multiset_nests():
    outer = MultiSet([MultiSet([1]), MultiSet([1])])
    assert outer.cardinality(MultiSet([1])) == 2


def test_occurrence_iteration():
    assert sorted(MultiSet([1, 1, 2])) == [1, 1, 2]


# ---------------------------------------------------------------------------
# Ref & sorts
# ---------------------------------------------------------------------------


def test_ref_equality_is_oid_only():
    assert Ref(1, "A") == Ref(1, "B")
    assert Ref(1) != Ref(2)
    assert hash(Ref(1, "A")) == hash(Ref(1))


def test_ref_immutable():
    with pytest.raises(AttributeError):
        Ref(1).oid = 2


def test_sort_of():
    assert sort_of(1) == "val"
    assert sort_of(Tup()) == "tup"
    assert sort_of(Arr()) == "arr"
    assert sort_of(MultiSet()) == "set"
    assert sort_of(Ref(1)) == "ref"
    assert sort_of(DNE) == "null"
    with pytest.raises(TypeError):
        sort_of(object())


def test_is_value_and_scalar():
    assert is_scalar(1.5) and is_scalar("x") and is_scalar(True)
    assert not is_scalar(Tup())
    assert is_value(MultiSet([Arr([Tup(a=Ref(1))])]))
    assert not is_value(object())


# ---------------------------------------------------------------------------
# Property tests: multiset algebra laws
# ---------------------------------------------------------------------------

small_multisets = st.lists(st.integers(0, 5), max_size=8).map(MultiSet)


@given(small_multisets, small_multisets)
def test_add_union_commutes(a, b):
    assert a.add_union(b) == b.add_union(a)


@given(small_multisets, small_multisets, small_multisets)
def test_add_union_associates(a, b, c):
    assert a.add_union(b).add_union(c) == a.add_union(b.add_union(c))


@given(small_multisets, small_multisets)
def test_union_via_difference_identity(a, b):
    # A ∪ B = (A − B) ⊎ B  (the appendix's derivation).
    assert a.union(b) == a.difference(b).add_union(b)


@given(small_multisets, small_multisets)
def test_intersection_via_difference_identity(a, b):
    # A ∩ B = A − (A − B).
    assert a.intersection(b) == a.difference(a.difference(b))


@given(small_multisets)
def test_dedup_idempotent(a):
    assert a.dedup().dedup() == a.dedup()


@given(small_multisets, small_multisets)
def test_cardinality_arithmetic(a, b):
    u = a.add_union(b)
    for element in set(list(a.elements()) + list(b.elements())):
        assert u.cardinality(element) == (a.cardinality(element)
                                          + b.cardinality(element))


@given(small_multisets, small_multisets)
def test_difference_cardinalities(a, b):
    d = a.difference(b)
    for element in a.elements():
        expected = max(0, a.cardinality(element) - b.cardinality(element))
        assert d.cardinality(element) == expected


@given(small_multisets, small_multisets)
def test_cross_total_size(a, b):
    assert len(a.cross(b)) == len(a) * len(b)


@given(small_multisets)
def test_collapse_of_singletons(a):
    wrapped = MultiSet([MultiSet([x]) for x in a])
    assert wrapped.collapse() == a
