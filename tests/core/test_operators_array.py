"""The nine array operators (Section 3.2.3)."""

import pytest

from repro.core.expr import (AlgebraError, Const, EvalContext, Func, Input,
                             evaluate)
from repro.core.operators import (ArrApply, ArrCat, ArrCollapse, ArrCreate,
                                  ArrCross, ArrDE, ArrDiff, ArrExtract, Comp,
                                  SubArr)
from repro.core.predicates import Atom
from repro.core.values import DNE, Arr, Tup


def ctx():
    return EvalContext(functions={"inc": lambda x: x + 1})


def test_arr_create():
    assert evaluate(ArrCreate(Const(5)), ctx()) == Arr([5])
    assert evaluate(ArrCreate(Const(Arr([1]))), ctx()) == Arr([Arr([1])])


def test_arr_extract_unwraps_element():
    q = ArrExtract(2, Const(Arr([10, 20, 30])))
    assert evaluate(q, ctx()) == 20  # the element, not [20]


def test_arr_extract_last():
    assert evaluate(ArrExtract("last", Const(Arr([1, 2, 3]))), ctx()) == 3


def test_arr_extract_out_of_bounds_is_dne():
    assert evaluate(ArrExtract(5, Const(Arr([1]))), ctx()) is DNE
    assert evaluate(ArrExtract("last", Const(Arr())), ctx()) is DNE


def test_arr_extract_position_validation():
    with pytest.raises(AlgebraError):
        ArrExtract(0, Const(Arr([1])))
    with pytest.raises(AlgebraError):
        ArrExtract(-3, Const(Arr([1])))


def test_arr_apply_preserves_order():
    q = ArrApply(Func("inc", [Input()]), Const(Arr([3, 1, 2])))
    assert evaluate(q, ctx()) == Arr([4, 2, 3])


def test_arr_apply_drops_dne_keeps_order():
    pred = Atom(Input(), ">", Const(1))
    q = ArrApply(Comp(pred, Input()), Const(Arr([1, 3, 1, 2])))
    assert evaluate(q, ctx()) == Arr([3, 2])


def test_arr_apply_typed_filter():
    data = Arr([Tup({"v": 1}, type_name="A"), Tup({"v": 2}, type_name="B")])
    from repro.core.operators import TupExtract
    q = ArrApply(TupExtract("v", Input()), Const(data), type_filter="B")
    assert evaluate(q, ctx()) == Arr([2])


def test_arr_apply_requires_array():
    with pytest.raises(AlgebraError):
        evaluate(ArrApply(Input(), Const(5)), ctx())


def test_subarr_inclusive():
    q = SubArr(2, 3, Const(Arr([1, 2, 3, 4])))
    assert evaluate(q, ctx()) == Arr([2, 3])


def test_subarr_last():
    q = SubArr(2, "last", Const(Arr([1, 2, 3])))
    assert evaluate(q, ctx()) == Arr([2, 3])


def test_subarr_produces_array_unlike_extract():
    q = SubArr(2, 2, Const(Arr([1, 2, 3])))
    assert evaluate(q, ctx()) == Arr([2])


def test_subarr_empty_when_inverted():
    assert evaluate(SubArr(3, 1, Const(Arr([1, 2, 3]))), ctx()) == Arr()


def test_arr_cat_order():
    q = ArrCat(Const(Arr([1, 2])), Const(Arr([3])))
    assert evaluate(q, ctx()) == Arr([1, 2, 3])


def test_arr_collapse():
    q = ArrCollapse(Const(Arr([Arr([1, 2]), Arr(), Arr([3])])))
    assert evaluate(q, ctx()) == Arr([1, 2, 3])


def test_arr_collapse_needs_arrays():
    with pytest.raises(AlgebraError):
        evaluate(ArrCollapse(Const(Arr([1]))), ctx())


def test_arr_diff_removes_earliest_occurrences():
    q = ArrDiff(Const(Arr([1, 2, 1, 3, 1])), Const(Arr([1, 1])))
    assert evaluate(q, ctx()) == Arr([2, 3, 1])


def test_arr_diff_agrees_with_multiset_diff_on_counts():
    from repro.core.values import MultiSet
    a, b = Arr([1, 2, 1, 3]), Arr([1, 3, 3])
    result = evaluate(ArrDiff(Const(a), Const(b)), ctx())
    assert MultiSet(result) == MultiSet(a).difference(MultiSet(b))


def test_arr_de_keeps_first():
    q = ArrDE(Const(Arr([2, 1, 2, 3, 1])))
    assert evaluate(q, ctx()) == Arr([2, 1, 3])


def test_arr_cross_row_major():
    q = ArrCross(Const(Arr([1, 2])), Const(Arr(["a", "b"])))
    assert evaluate(q, ctx()) == Arr([
        Tup(field1=1, field2="a"), Tup(field1=1, field2="b"),
        Tup(field1=2, field2="a"), Tup(field1=2, field2="b")])


def test_null_propagation_through_array_ops():
    assert evaluate(ArrCat(Const(DNE), Const(Arr())), ctx()) is DNE
    assert evaluate(SubArr(1, 2, Const(DNE)), ctx()) is DNE
    assert evaluate(ArrExtract(1, Const(DNE)), ctx()) is DNE


def test_order_preserving_analogs_match_multiset_semantics():
    """ARR_DE / ARR_COLLAPSE are the order-preserving analogs: forgetting
    order recovers the multiset operators."""
    from repro.core.operators import DE, SetCollapse
    from repro.core.values import MultiSet
    arr = Arr([1, 2, 2, 3, 3])
    arr_deduped = evaluate(ArrDE(Const(arr)), ctx())
    set_deduped = evaluate(DE(Const(MultiSet(arr))), ctx())
    assert MultiSet(arr_deduped) == set_deduped
