"""Type hierarchy (multiple inheritance DAG) tests."""

import pytest

from repro.core.hierarchy import HierarchyError, TypeHierarchy


@pytest.fixture
def diamond():
    """A — the classic diamond: A → B, A → C, {B, C} → D."""
    h = TypeHierarchy()
    h.add_type("A")
    h.add_type("B", ["A"])
    h.add_type("C", ["A"])
    h.add_type("D", ["B", "C"])
    return h


def test_basic_membership(diamond):
    assert "A" in diamond and "Z" not in diamond
    assert sorted(diamond.types()) == ["A", "B", "C", "D"]


def test_parents_children(diamond):
    assert diamond.parents("D") == ["B", "C"]
    assert sorted(diamond.children("A")) == ["B", "C"]
    assert diamond.parents("A") == []


def test_ancestors_descendants(diamond):
    assert diamond.ancestors("D") == {"A", "B", "C"}
    assert diamond.descendants("A") == {"B", "C", "D"}
    assert diamond.ancestors_or_self("B") == {"A", "B"}
    assert diamond.descendants_or_self("C") == {"C", "D"}


def test_is_subtype(diamond):
    assert diamond.is_subtype("D", "A")
    assert diamond.is_subtype("B", "B")
    assert not diamond.is_subtype("A", "D")
    assert not diamond.is_subtype("B", "C")


def test_unknown_parent_rejected():
    h = TypeHierarchy()
    with pytest.raises(HierarchyError):
        h.add_type("X", ["Missing"])


def test_duplicate_type_rejected(diamond):
    with pytest.raises(HierarchyError):
        diamond.add_type("A")


def test_duplicate_parent_rejected(diamond):
    with pytest.raises(HierarchyError):
        diamond.add_type("E", ["A", "A"])


def test_unknown_type_queries(diamond):
    with pytest.raises(HierarchyError):
        diamond.ancestors("Nope")


def test_c3_linearization_diamond(diamond):
    # D, then its parents in declaration order, then the shared root.
    assert diamond.linearize("D") == ["D", "B", "C", "A"]
    assert diamond.linearize("A") == ["A"]


def test_c3_linearization_deep():
    h = TypeHierarchy()
    h.add_type("Object")
    h.add_type("Person", ["Object"])
    h.add_type("Teacher", ["Person"])
    h.add_type("Student", ["Person"])
    h.add_type("TA", ["Teacher", "Student"])
    assert h.linearize("TA") == ["TA", "Teacher", "Student", "Person",
                                 "Object"]


def test_c3_respects_local_precedence_order():
    h = TypeHierarchy()
    h.add_type("A")
    h.add_type("B")
    h.add_type("C", ["A", "B"])
    h.add_type("D", ["B", "A"])
    assert h.linearize("C") == ["C", "A", "B"]
    assert h.linearize("D") == ["D", "B", "A"]


def test_c3_inconsistent_hierarchy_raises():
    h = TypeHierarchy()
    h.add_type("A")
    h.add_type("B")
    h.add_type("C", ["A", "B"])
    h.add_type("D", ["B", "A"])
    h.add_type("E", ["C", "D"])
    with pytest.raises(HierarchyError):
        h.linearize("E")


def test_topological_order(diamond):
    order = list(diamond.topological())
    assert order.index("A") < order.index("B") < order.index("D")
    assert order.index("C") < order.index("D")
    assert sorted(order) == ["A", "B", "C", "D"]


def test_roots(diamond):
    assert diamond.roots() == ["A"]
