"""Schema digraph tests: conditions (i)–(iv) of Section 3.1, Figure 2."""

import pytest

from repro.core.schema import (SchemaCatalog, SchemaError, SchemaNode,
                               infer_schema)
from repro.core.values import Arr, MultiSet, Ref, Tup


def figure_2_schema() -> SchemaNode:
    """The paper's Figure 2: a multiset of 3-tuples (scalar, array of
    scalars, reference to a scalar)."""
    return SchemaNode.set_of(SchemaNode.tup({
        "a": SchemaNode.val(int),
        "b": SchemaNode.arr_of(SchemaNode.val(int)),
        "c": SchemaNode.ref_to(SchemaNode.val(int)),
    }))


def test_figure_2_builds_and_validates():
    schema = figure_2_schema()
    schema.validate()
    assert schema.kind == "set"
    assert schema.children[0].kind == "tup"


def test_condition_i_val_has_no_components():
    with pytest.raises(SchemaError):
        SchemaNode("val", children=[SchemaNode.val()])


def test_condition_ii_empty_tuple_allowed():
    SchemaNode.tup({}).validate()  # the empty tuple type is legal


def test_condition_iii_set_needs_one_component():
    with pytest.raises(SchemaError):
        SchemaNode("set", children=[])
    with pytest.raises(SchemaError):
        SchemaNode("set", children=[SchemaNode.val(), SchemaNode.val()])


def test_condition_iii_ref_needs_target_or_component():
    with pytest.raises(SchemaError):
        SchemaNode("ref")
    with pytest.raises(SchemaError):
        SchemaNode("ref", target="T", children=[SchemaNode.val()])


def test_condition_iv_shared_node_rejected():
    shared = SchemaNode.val(int)
    schema = SchemaNode.tup({"a": shared, "b": shared})
    with pytest.raises(SchemaError):
        schema.validate()


def test_cycles_must_go_through_ref():
    # Employee.manager: ref Employee — representable because the ref
    # carries the target *name*.
    catalog = SchemaCatalog()
    employee = SchemaNode.tup({"manager": SchemaNode.ref_to("Employee")},
                              name="Employee")
    catalog.register(employee)
    employee.validate()
    resolved = catalog.target_of(employee.field("manager"))
    assert resolved is employee


def test_duplicate_field_names_rejected():
    with pytest.raises(SchemaError):
        SchemaNode("tup", children=[SchemaNode.val(), SchemaNode.val()],
                   field_names=["a", "a"])


def test_field_lookup():
    schema = figure_2_schema().children[0]
    assert schema.field("a").kind == "val"
    with pytest.raises(SchemaError):
        schema.field("zzz")
    with pytest.raises(SchemaError):
        SchemaNode.val().field("a")


def test_component_accessors():
    schema = figure_2_schema()
    assert schema.component.kind == "tup"
    with pytest.raises(SchemaError):
        SchemaNode.val().component
    named_ref = SchemaNode.ref_to("T")
    with pytest.raises(SchemaError):
        named_ref.component  # must resolve through a catalog


def test_describe_is_extra_flavoured():
    text = figure_2_schema().describe()
    assert text.startswith("{ (")
    assert "array of int" in text
    fixed = SchemaNode.arr_of(SchemaNode.val(int), fixed_length=10)
    assert fixed.describe() == "array [1..10] of int"
    assert SchemaNode.ref_to("Employee").describe() == "ref Employee"


def test_structural_equality_ignores_names():
    assert figure_2_schema().structurally_equal(figure_2_schema())
    other = SchemaNode.set_of(SchemaNode.val(int))
    assert not figure_2_schema().structurally_equal(other)


def test_structural_equality_respects_fixed_length():
    a = SchemaNode.arr_of(SchemaNode.val(int), fixed_length=10)
    b = SchemaNode.arr_of(SchemaNode.val(int))
    assert not a.structurally_equal(b)


def test_clone_is_deep_and_renamed():
    original = figure_2_schema()
    copy = original.clone()
    assert copy.structurally_equal(original)
    assert copy.name != original.name
    # Cloned trees can be embedded twice without violating (iv).
    SchemaNode.tup({"x": original.clone(), "y": original.clone()}).validate()


def test_clone_preserves_base_name():
    named = SchemaNode.tup({}, name="Person")
    assert named.clone().base_name == "Person"


def test_catalog_duplicate_name_rejected():
    catalog = SchemaCatalog()
    catalog.register(SchemaNode.val(int), "T")
    with pytest.raises(SchemaError):
        catalog.register(SchemaNode.val(str), "T")
    with pytest.raises(SchemaError):
        catalog.resolve("missing")
    assert "T" in catalog
    assert catalog.names() == ["T"]


def test_infer_schema_from_figure_2_instance():
    # The paper's example instance: { (26, [1, 21], x), (25, [], y) }.
    x, y = Ref("x"), Ref("y")
    instance = MultiSet([Tup(a=26, b=Arr([1, 21]), c=x),
                         Tup(a=25, b=Arr(), c=y)])
    schema = infer_schema(instance)
    assert schema.kind == "set"
    tup = schema.component
    assert tup.field("a").kind == "val"
    assert tup.field("b").kind == "arr"
    assert tup.field("c").kind == "ref"


def test_infer_schema_scalars_and_empty():
    assert infer_schema(5).scalar_type is int
    assert infer_schema(MultiSet()).component.kind == "val"
    assert infer_schema(Arr()).component.kind == "val"
    assert infer_schema(Ref(1, "Person")).target == "Person"
    with pytest.raises(TypeError):
        infer_schema(object())


def test_walk_stops_at_named_ref_targets():
    employee = SchemaNode.tup({"manager": SchemaNode.ref_to("Employee")},
                              name="Employee")
    kinds = [node.kind for node in employee.walk()]
    assert kinds == ["tup", "ref"]  # the cycle is not followed
