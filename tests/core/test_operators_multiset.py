"""The eight fundamental multiset operators (Section 3.2.1)."""

import pytest

from repro.core.expr import (AlgebraError, Const, EvalContext, Func, Input,
                             Named, evaluate)
from repro.core.operators import (DE, AddUnion, Comp, Cross, Diff, Grp,
                                  SetApply, SetCollapse, SetCreate,
                                  TupExtract)
from repro.core.predicates import Atom
from repro.core.values import DNE, UNK, MultiSet, Tup


def ctx(**objects):
    return EvalContext(objects, functions={"inc": lambda x: x + 1})


def test_add_union():
    q = AddUnion(Const(MultiSet([1, 1])), Const(MultiSet([1, 2])))
    assert evaluate(q, ctx()) == MultiSet([1, 1, 1, 2])


def test_add_union_type_error():
    with pytest.raises(AlgebraError):
        evaluate(AddUnion(Const(1), Const(MultiSet())), ctx())


def test_add_union_null_propagation():
    q = AddUnion(Const(DNE), Const(MultiSet([1])))
    assert evaluate(q, ctx()) is DNE


def test_set_create_wraps_anything():
    assert evaluate(SetCreate(Const(5)), ctx()) == MultiSet([5])
    nested = evaluate(SetCreate(Const(MultiSet([1]))), ctx())
    assert nested == MultiSet([MultiSet([1])])


def test_set_apply_paper_example():
    """SET_APPLY_{INPUT − {1}}({{1,1,2},{2,3,4},{1}}) =
    {{1,2},{2,3,4},{}}  (Section 3.2.1)."""
    a = MultiSet([MultiSet([1, 1, 2]), MultiSet([2, 3, 4]), MultiSet([1])])
    q = SetApply(Diff(Input(), Const(MultiSet([1]))), Const(a))
    expected = MultiSet([MultiSet([1, 2]), MultiSet([2, 3, 4]), MultiSet()])
    assert evaluate(q, ctx()) == expected


def test_set_apply_preserves_cardinalities():
    q = SetApply(Func("inc", [Input()]), Const(MultiSet([1, 1, 2])))
    assert evaluate(q, ctx()) == MultiSet([2, 2, 3])


def test_set_apply_merges_collisions():
    q = SetApply(Const(0), Const(MultiSet([1, 2, 3])))
    assert evaluate(q, ctx()) == MultiSet([0, 0, 0])


def test_set_apply_drops_dne_results():
    pred = Atom(Input(), ">", Const(1))
    q = SetApply(Comp(pred, Input()), Const(MultiSet([1, 2, 3])))
    assert evaluate(q, ctx()) == MultiSet([2, 3])


def test_set_apply_keeps_unk_results():
    pred = Atom(Input(), "=", Const(UNK))
    q = SetApply(Comp(pred, Input()), Const(MultiSet([1, 2])))
    assert evaluate(q, ctx()) == MultiSet([UNK, UNK])


def test_set_apply_requires_multiset():
    with pytest.raises(AlgebraError):
        evaluate(SetApply(Input(), Const(5)), ctx())


def test_set_apply_typed_filter():
    collection = MultiSet([
        Tup({"v": 1}, type_name="A"),
        Tup({"v": 2}, type_name="B"),
        Tup({"v": 3}, type_name="A"),
    ])
    q = SetApply(TupExtract("v", Input()), Const(collection), type_filter="A")
    assert evaluate(q, ctx()) == MultiSet([1, 3])


def test_set_apply_typed_filter_union_reconstructs():
    """⊎ of typed SET_APPLYs over all types == untyped SET_APPLY."""
    collection = MultiSet([
        Tup({"v": 1}, type_name="A"),
        Tup({"v": 2}, type_name="B"),
    ])
    body = TupExtract("v", Input())
    split = AddUnion(
        SetApply(body, Const(collection), type_filter="A"),
        SetApply(body, Const(collection), type_filter="B"))
    whole = SetApply(body, Const(collection))
    assert evaluate(split, ctx()) == evaluate(whole, ctx())


def test_set_apply_filter_skips_untyped_occurrences():
    collection = MultiSet([Tup({"v": 1}, type_name="A"), 7])
    q = SetApply(Input(), Const(collection), type_filter="A")
    assert evaluate(q, ctx()) == MultiSet([Tup({"v": 1}, type_name="A")])


def test_grp_partitions_by_key():
    data = MultiSet([Tup(k=1, v="a"), Tup(k=1, v="b"), Tup(k=2, v="c")])
    q = Grp(TupExtract("k", Input()), Const(data))
    groups = evaluate(q, ctx())
    assert groups.distinct_count() == 2
    assert MultiSet([Tup(k=1, v="a"), Tup(k=1, v="b")]) in groups
    assert MultiSet([Tup(k=2, v="c")]) in groups


def test_grp_result_is_duplicate_free():
    data = MultiSet([1, 1, 2])
    groups = evaluate(Grp(Input(), Const(data)), ctx())
    assert groups.is_set()


def test_grp_groups_are_pairwise_disjoint():
    data = MultiSet([1, 1, 2, 3, 3, 3])
    groups = evaluate(Grp(Input(), Const(data)), ctx())
    seen = MultiSet()
    for group in groups.elements():
        assert seen.intersection(group) == MultiSet()
        seen = seen.add_union(group)
    assert seen == data


def test_grp_drops_dne_keys():
    pred = Atom(Input(), ">", Const(1))
    q = Grp(Comp(pred, Input()), Const(MultiSet([1, 2])))
    groups = evaluate(q, ctx())
    assert groups == MultiSet([MultiSet([2])])


def test_de():
    assert evaluate(DE(Const(MultiSet([1, 1, 2]))), ctx()) == MultiSet([1, 2])


def test_de_charges_per_occurrence():
    context = ctx()
    evaluate(DE(Const(MultiSet([1, 1, 1, 2]))), context)
    assert context.stats["de_elements"] == 4


def test_diff():
    q = Diff(Const(MultiSet([1, 1, 2])), Const(MultiSet([1, 3])))
    assert evaluate(q, ctx()) == MultiSet([1, 2])


def test_cross_produces_field_pairs():
    q = Cross(Const(MultiSet([1, 1])), Const(MultiSet(["x"])))
    result = evaluate(q, ctx())
    assert result.cardinality(Tup(field1=1, field2="x")) == 2


def test_cross_counts_pairs():
    context = ctx()
    evaluate(Cross(Const(MultiSet([1, 2])), Const(MultiSet([3, 4, 5]))),
             context)
    assert context.stats["cross_pairs"] == 6


def test_set_collapse():
    data = MultiSet([MultiSet([1, 2]), MultiSet([2])])
    assert evaluate(SetCollapse(Const(data)), ctx()) == MultiSet([1, 2, 2])


def test_set_collapse_needs_nested_multisets():
    with pytest.raises((AlgebraError, TypeError)):
        evaluate(SetCollapse(Const(MultiSet([1]))), ctx())


def test_named_sources():
    context = ctx(A=MultiSet([1, 2]))
    assert evaluate(DE(Named("A")), context) == MultiSet([1, 2])


def test_elements_scanned_counter_with_filter():
    """A typed SET_APPLY still scans everything — the basis of the
    Section 4 scan-count trade-off."""
    collection = MultiSet([Tup({"v": i}, type_name="A" if i % 2 else "B")
                           for i in range(10)])
    context = ctx()
    evaluate(SetApply(Input(), Const(collection), type_filter="A"), context)
    assert context.stats["elements_scanned"] == 10
    assert context.stats["set_apply_elements"] == 5
