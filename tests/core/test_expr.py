"""Expression framework tests: evaluation, INPUT, substitution, stats."""

import pytest

from repro.core.expr import (AlgebraError, Const, EvalContext, Func, Input,
                             Named, evaluate, substitute_input)
from repro.core.operators import (Comp, SetApply, TupExtract)
from repro.core.predicates import Atom, TruePred
from repro.core.values import DNE, UNK, MultiSet, Tup


def test_named_lookup():
    ctx = EvalContext({"A": 5})
    assert evaluate(Named("A"), ctx) == 5


def test_named_missing():
    with pytest.raises(AlgebraError):
        evaluate(Named("B"), EvalContext({}))


def test_const():
    assert evaluate(Const(MultiSet([1])), EvalContext()) == MultiSet([1])


def test_input_unbound_at_top_level():
    with pytest.raises(AlgebraError):
        evaluate(Input(), EvalContext())


def test_input_bound_explicitly():
    assert evaluate(Input(), EvalContext(), input_value=42) == 42


def test_func_calls_registered_function():
    ctx = EvalContext(functions={"inc": lambda x: x + 1})
    assert evaluate(Func("inc", [Const(1)]), ctx) == 2
    assert ctx.stats["func_calls"] == 1


def test_func_missing():
    with pytest.raises(AlgebraError):
        evaluate(Func("nope", [Const(1)]), EvalContext())


def test_func_null_propagation():
    ctx = EvalContext(functions={"inc": lambda x: x + 1})
    assert evaluate(Func("inc", [Const(DNE)]), ctx) is DNE
    assert evaluate(Func("inc", [Const(UNK)]), ctx) is UNK


def test_structural_equality_and_hash():
    a = SetApply(TupExtract("f", Input()), Named("X"))
    b = SetApply(TupExtract("f", Input()), Named("X"))
    c = SetApply(TupExtract("g", Input()), Named("X"))
    assert a == b and hash(a) == hash(b)
    assert a != c


def test_replace_and_map_children():
    node = SetApply(Input(), Named("X"))
    replaced = node.replace(source=Named("Y"))
    assert replaced.source == Named("Y")
    assert node.source == Named("X")  # original untouched
    with pytest.raises(KeyError):
        node.replace(bogus=1)
    mapped = node.map_children(
        lambda child: Named("Z") if child == Named("X") else child)
    assert mapped.source == Named("Z")


def test_walk_and_size():
    tree = SetApply(TupExtract("f", Input()), Named("X"))
    assert tree.size() == 4
    kinds = [type(n).__name__ for n in tree.walk()]
    assert kinds == ["SetApply", "TupExtract", "Input", "Named"]


def test_walk_sees_predicate_operands():
    tree = Comp(Atom(TupExtract("a", Input()), "=", Const(1)), Named("X"))
    assert any(isinstance(n, TupExtract) for n in tree.walk())


def test_uses_input_excludes_binding_bodies():
    # The SET_APPLY body's INPUT is rebound, so the apply itself does
    # not use the *enclosing* INPUT…
    inner = SetApply(TupExtract("f", Input()), Named("X"))
    assert not inner.uses_input()
    # …but an INPUT in the source position does count.
    outer = SetApply(TupExtract("f", Input()), Input())
    assert outer.uses_input()


def test_substitute_input_simple():
    body = TupExtract("a", Input())
    result = substitute_input(body, Named("T"))
    assert result == TupExtract("a", Named("T"))


def test_substitute_input_skips_binding_bodies():
    # Rule 15's composition must not capture the inner SET_APPLY's INPUT.
    nested = SetApply(TupExtract("x", Input()), Input())
    result = substitute_input(nested, Named("T"))
    assert result == SetApply(TupExtract("x", Input()), Named("T"))


def test_substitution_composition_semantics():
    """E1(E2) evaluates like E1 after E2 (rule 15's soundness core)."""
    ctx = EvalContext(functions={"inc": lambda x: x + 1,
                                 "dbl": lambda x: x * 2})
    e1 = Func("inc", [Input()])
    e2 = Func("dbl", [Input()])
    composed = substitute_input(e1, e2)
    assert composed.evaluate(5, ctx) == 11


def test_stats_tick_and_reset():
    ctx = EvalContext()
    ctx.tick("x")
    ctx.tick("x", 4)
    assert ctx.stats == {"x": 5}
    ctx.reset_stats()
    assert ctx.stats == {}


def test_describe_round_trip_readable():
    tree = SetApply(Comp(TruePred(), Input()), Named("Employees"))
    text = tree.describe()
    assert "SET_APPLY" in text and "Employees" in text
