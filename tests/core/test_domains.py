"""dom(S) / DOM(S) membership tests (Section 3.1)."""

import random

import pytest

from repro.core.domains import DomainChecker, DomainSampler
from repro.core.hierarchy import TypeHierarchy
from repro.core.oid import OIDGenerator
from repro.core.schema import SchemaCatalog, SchemaNode
from repro.core.values import DNE, UNK, Arr, MultiSet, Ref, Tup


@pytest.fixture
def checker():
    return DomainChecker()


def test_val_domain(checker):
    schema = SchemaNode.val(int)
    assert checker.contains(schema, 5)
    assert not checker.contains(schema, "x")
    assert not checker.contains(schema, Tup())


def test_val_domain_untyped_admits_any_scalar(checker):
    schema = SchemaNode.val()
    for value in (1, 1.5, "s", True):
        assert checker.contains(schema, value)
    assert not checker.contains(schema, MultiSet())


def test_bool_is_not_int(checker):
    assert not checker.contains(SchemaNode.val(int), True)
    assert checker.contains(SchemaNode.val(bool), True)


def test_tup_domain(checker):
    schema = SchemaNode.tup({"a": SchemaNode.val(int),
                             "b": SchemaNode.val(str)})
    assert checker.contains(schema, Tup(a=1, b="x"))
    assert not checker.contains(schema, Tup(a=1))
    assert not checker.contains(schema, Tup(a="bad", b="x"))


def test_empty_tuple_domain(checker):
    assert checker.contains(SchemaNode.tup({}), Tup())


def test_set_domain(checker):
    schema = SchemaNode.set_of(SchemaNode.val(int))
    assert checker.contains(schema, MultiSet([1, 1, 2]))
    assert checker.contains(schema, MultiSet())
    assert not checker.contains(schema, MultiSet(["x"]))
    assert not checker.contains(schema, Arr([1]))


def test_arr_domain_variable_length(checker):
    schema = SchemaNode.arr_of(SchemaNode.val(int))
    assert checker.contains(schema, Arr())
    assert checker.contains(schema, Arr([1, 2, 3]))
    assert not checker.contains(schema, Arr(["x"]))


def test_arr_domain_fixed_length(checker):
    schema = SchemaNode.arr_of(SchemaNode.val(int), fixed_length=3)
    assert checker.contains(schema, Arr([1, 2, 3]))
    assert not checker.contains(schema, Arr([1, 2]))


def test_nulls_admitted_everywhere(checker):
    for schema in (SchemaNode.val(int), SchemaNode.set_of(SchemaNode.val())):
        assert checker.contains(schema, DNE)
        assert checker.contains(schema, UNK)


def test_explain_messages_are_readable(checker):
    schema = SchemaNode.tup({"a": SchemaNode.val(int)})
    reason = checker.explain(schema, Tup(a="bad"))
    assert "field a" in reason


def test_ref_domain_via_oid_generator():
    h = TypeHierarchy()
    h.add_type("Person")
    h.add_type("Student", ["Person"])
    gen = OIDGenerator(h)
    catalog = SchemaCatalog()
    checker = DomainChecker(catalog, h, gen)
    schema = SchemaNode.ref_to("Person")
    student_ref = gen.new_ref("Student")
    person_ref = gen.new_ref("Person")
    assert checker.contains(schema, student_ref)   # rule 3: substitutable
    assert checker.contains(schema, person_ref)
    assert not checker.contains(SchemaNode.ref_to("Student"), person_ref)


def test_ref_domain_via_type_names_only():
    h = TypeHierarchy()
    h.add_type("Person")
    h.add_type("Student", ["Person"])
    checker = DomainChecker(SchemaCatalog(), h)
    schema = SchemaNode.ref_to("Person")
    assert checker.contains(schema, Ref(1, "Student"))
    assert not checker.contains(schema, Ref(1, "Unrelated"))
    assert checker.explain(SchemaNode.ref_to("Student"),
                           Ref(1, "Person")) is not None


def test_dom_substitutability_for_tuples():
    """DOM(Person) includes Student tuples (inheritance)."""
    h = TypeHierarchy()
    h.add_type("Person")
    h.add_type("Student", ["Person"])
    catalog = SchemaCatalog()
    person = SchemaNode.tup({"name": SchemaNode.val(str)}, name="Person")
    student = SchemaNode.tup({"name": SchemaNode.val(str),
                              "gpa": SchemaNode.val(float)}, name="Student")
    catalog.register(person)
    catalog.register(student)
    checker = DomainChecker(catalog, h)
    student_value = Tup({"name": "s", "gpa": 3.5}, type_name="Student")
    assert checker.contains(person, student_value)
    # …and through components: a set of Person admits Students.
    set_schema = SchemaNode.set_of(person.clone())
    assert checker.contains(set_schema, MultiSet([student_value]))


def test_sampler_is_deterministic_and_in_domain():
    schema = SchemaNode.set_of(SchemaNode.tup({
        "a": SchemaNode.val(int),
        "b": SchemaNode.arr_of(SchemaNode.val(str)),
    }))
    checker = DomainChecker()
    first = DomainSampler(random.Random(7)).sample(schema)
    second = DomainSampler(random.Random(7)).sample(schema)
    assert first == second
    assert checker.contains(schema, first)


def test_sampler_fixed_length_arrays():
    schema = SchemaNode.arr_of(SchemaNode.val(int), fixed_length=4)
    sample = DomainSampler(random.Random(1)).sample(schema)
    assert len(sample) == 4


def test_sampler_refs_need_allocator():
    schema = SchemaNode.ref_to("T")
    with pytest.raises(ValueError):
        DomainSampler(random.Random(1)).sample(schema)
    sampler = DomainSampler(random.Random(1),
                            alloc=lambda t: Ref(99, t))
    assert sampler.sample(schema) == Ref(99, "T")
