"""REF and DEREF (Section 3.2.4) against the object store."""

import pytest

from repro.core.expr import AlgebraError, Const, EvalContext, evaluate
from repro.core.operators import Deref, RefOp
from repro.core.values import DNE, Ref, Tup
from repro.storage import ObjectStore


@pytest.fixture
def store():
    return ObjectStore()


def ctx(store):
    return EvalContext({}, store=store)


def test_deref_materializes(store):
    ref = store.insert(Tup(name="CS"), "Department")
    result = evaluate(Deref(Const(ref)), ctx(store))
    assert result == Tup(name="CS")


def test_deref_counts_work(store):
    ref = store.insert(5)
    context = ctx(store)
    evaluate(Deref(Const(ref)), context)
    assert context.stats["deref_count"] == 1


def test_deref_dangling_yields_dne(store):
    ref = store.insert(5)
    store.delete(ref.oid)
    assert evaluate(Deref(Const(ref)), ctx(store)) is DNE


def test_deref_requires_ref(store):
    with pytest.raises(AlgebraError):
        evaluate(Deref(Const(5)), ctx(store))


def test_deref_requires_store():
    with pytest.raises(AlgebraError):
        evaluate(Deref(Const(Ref(1))), EvalContext())


def test_deref_propagates_null(store):
    assert evaluate(Deref(Const(DNE)), ctx(store)) is DNE


def test_ref_creates_object(store):
    result = evaluate(RefOp(Const(42), type_name="Num"), ctx(store))
    assert isinstance(result, Ref)
    assert store.get(result.oid) == 42
    assert store.exact_type(result.oid) == "Num"


def test_rule_28_deref_of_ref(store):
    """DEREF(REF(A)) = A."""
    assert evaluate(Deref(RefOp(Const(7))), ctx(store)) == 7


def test_rule_28_ref_of_deref(store):
    """REF(DEREF(A)) = A — REF recovers the extant object's identity."""
    ref = store.insert(Tup(x=1), "T")
    recovered = evaluate(RefOp(Deref(Const(ref))), ctx(store))
    assert recovered == ref


def test_ref_reuses_value_identical_object(store):
    first = evaluate(RefOp(Const("shared")), ctx(store))
    second = evaluate(RefOp(Const("shared")), ctx(store))
    assert first == second
    assert len(store) == 1


def test_ref_requires_store():
    with pytest.raises(AlgebraError):
        evaluate(RefOp(Const(5)), EvalContext())


def test_ref_null_propagation(store):
    assert evaluate(RefOp(Const(DNE)), ctx(store)) is DNE
