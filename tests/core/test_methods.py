"""Method overriding and the two dispatch strategies (Section 4)."""

import pytest

from repro.core.expr import Const, Input, Named, evaluate
from repro.core.hierarchy import TypeHierarchy
from repro.core.methods import (IndexedTypeScan, MethodCall, MethodError,
                                MethodRegistry, Param, bind_params,
                                build_union_plan, switch_table_plan)
from repro.core.operators import Comp, SetApply, TupExtract
from repro.core.predicates import Atom
from repro.core.values import MultiSet, Tup


@pytest.fixture
def registry():
    h = TypeHierarchy()
    h.add_type("Person")
    h.add_type("Employee", ["Person"])
    h.add_type("Student", ["Person"])
    h.add_type("TA", ["Employee", "Student"])
    r = MethodRegistry(h)
    r.define("Person", "boss", [], TupExtract("name", Input()))
    r.define("Employee", "boss", [], TupExtract("manager", Input()))
    r.define("Student", "boss", [], TupExtract("advisor", Input()))
    return r


def make_population():
    return MultiSet([
        Tup({"name": "p1"}, type_name="Person"),
        Tup({"name": "s1", "advisor": "adv"}, type_name="Student"),
        Tup({"name": "e1", "manager": "mgr"}, type_name="Employee"),
        Tup({"name": "t1", "manager": "mgr2", "advisor": "adv2"},
            type_name="TA"),
    ])


def people_ctx(db_value):
    from repro.core.expr import EvalContext
    return EvalContext({"P": db_value})


# ---------------------------------------------------------------------------
# Registry / overriding semantics
# ---------------------------------------------------------------------------


def test_resolution_prefers_exact_type(registry):
    assert registry.resolve("Employee", "boss").type_name == "Employee"
    assert registry.resolve("Person", "boss").type_name == "Person"


def test_resolution_inherits_when_not_overridden(registry):
    registry.define("Person", "greet", [], Const("hi"))
    assert registry.resolve("Student", "greet").type_name == "Person"


def test_multiple_inheritance_resolution_uses_c3(registry):
    # TA inherits boss from both Employee and Student; the C3 order
    # (TA, Employee, Student, Person) picks Employee's.
    assert registry.resolve("TA", "boss").type_name == "Employee"


def test_missing_method(registry):
    with pytest.raises(MethodError):
        registry.resolve("Person", "nothing")


def test_override_must_keep_signature(registry):
    registry.define("Person", "pay", ["amount"], Param("amount"))
    with pytest.raises(MethodError):
        registry.define("Employee", "pay", ["amount", "bonus"],
                        Param("amount"))


def test_unknown_type_rejected(registry):
    with pytest.raises(MethodError):
        registry.define("Alien", "boss", [], Input())


def test_implementations_per_type(registry):
    impls = registry.implementations("Person", "boss")
    assert impls["Person"].type_name == "Person"
    assert impls["Employee"].type_name == "Employee"
    assert impls["TA"].type_name == "Employee"


def test_distinct_implementations_grouping(registry):
    """The paper's improvement: only as many branches as distinct bodies
    (TA shares Employee's)."""
    groups = dict((m.type_name, types) for m, types in
                  registry.distinct_implementations("Person", "boss"))
    assert groups["Employee"] == ["Employee", "TA"]
    assert groups["Person"] == ["Person"]
    assert groups["Student"] == ["Student"]


# ---------------------------------------------------------------------------
# Parameters
# ---------------------------------------------------------------------------


def test_param_binding():
    body = Comp(Atom(TupExtract("name", Input()), "=", Param("who")),
                Input())
    bound = bind_params(body, {"who": Const("x")})
    assert not any(isinstance(n, Param) for n in bound.walk())


def test_unbound_param_raises_at_eval():
    from repro.core.expr import EvalContext
    with pytest.raises(MethodError):
        evaluate(Param("x"), EvalContext(), input_value=1)


def test_instantiate_arity_check(registry):
    method = registry.resolve("Person", "boss")
    with pytest.raises(MethodError):
        method.instantiate([Const(1)])


# ---------------------------------------------------------------------------
# Dispatch strategies: both must compute the same answer
# ---------------------------------------------------------------------------

EXPECTED = MultiSet(["p1", "adv", "mgr", "mgr2"])


def test_switch_table_plan(registry):
    ctx = people_ctx(make_population())
    ctx.methods = registry
    plan = switch_table_plan("boss", [], Named("P"))
    assert evaluate(plan, ctx) == EXPECTED
    assert ctx.stats["method_dispatches"] == 4


def test_union_plan_equivalent(registry):
    ctx = people_ctx(make_population())
    ctx.methods = registry
    plan = build_union_plan(registry, "Person", "boss", [], Named("P"))
    assert evaluate(plan, ctx) == EXPECTED
    assert "method_dispatches" not in ctx.stats  # fully compile-time


def test_union_plan_without_collapse_scans_per_type(registry):
    ctx = people_ctx(make_population())
    ctx.methods = registry
    plan = build_union_plan(registry, "Person", "boss", [], Named("P"),
                            collapse_identical=False)
    assert evaluate(plan, ctx) == EXPECTED
    # One scan of P per type in the hierarchy (4 types × 4 occurrences).
    assert ctx.stats["elements_scanned"] == 16


def test_union_plan_collapse_reduces_scans(registry):
    ctx = people_ctx(make_population())
    ctx.methods = registry
    plan = build_union_plan(registry, "Person", "boss", [], Named("P"),
                            collapse_identical=True)
    evaluate(plan, ctx)
    # Only 3 distinct bodies → 3 scans.
    assert ctx.stats["elements_scanned"] == 12


def test_union_plan_bodies_are_inlined_subtrees(registry):
    plan = build_union_plan(registry, "Person", "boss", [], Named("P"))
    bodies = [n.body for n in plan.walk() if isinstance(n, SetApply)]
    assert TupExtract("manager", Input()) in bodies
    assert TupExtract("name", Input()) in bodies


def test_union_plan_no_methods_raises(registry):
    with pytest.raises(MethodError):
        build_union_plan(registry, "Person", "unknown", [], Named("P"))


def test_method_call_on_refs_dispatches_on_store_type(registry):
    from repro.core.expr import EvalContext
    from repro.storage import ObjectStore
    store = ObjectStore(registry.hierarchy)
    ref = store.insert(Tup({"name": "e", "manager": "m"},
                           type_name="Employee"), "Employee")
    ctx = EvalContext({"P": MultiSet([ref])}, store=store, methods=registry)
    plan = switch_table_plan("boss", [], Named("P"))
    assert evaluate(plan, ctx) == MultiSet(["m"])


def test_indexed_type_scan_fallback_and_index(registry):
    """Without an index the scan is full; with one it reads the
    partition directly — Section 4's index-based variant."""
    from repro.core.expr import EvalContext
    population = make_population()
    ctx = EvalContext({"P": population}, methods=registry)
    scan = IndexedTypeScan("P", ["Employee", "TA"])
    result = evaluate(scan, ctx)
    assert result.distinct_count() == 2
    assert ctx.stats["elements_scanned"] == 4  # fallback: full scan

    from repro.storage import Database, TypedPartitionIndex
    db = Database()
    for t, parents in (("Person", []), ("Employee", ["Person"]),
                       ("Student", ["Person"]),
                       ("TA", ["Employee", "Student"])):
        db.hierarchy.add_type(t, parents)
    db.create("P", population)
    db.methods = registry
    db.indexes.build_typed("P")
    ctx2 = db.context()
    assert evaluate(scan, ctx2) == result
    assert "elements_scanned" not in ctx2.stats
    assert ctx2.stats["index_lookups"] == 1


def test_indexed_union_plan_eliminates_scans(registry):
    from repro.storage import Database
    db = Database()
    for t, parents in (("Person", []), ("Employee", ["Person"]),
                       ("Student", ["Person"]),
                       ("TA", ["Employee", "Student"])):
        db.hierarchy.add_type(t, parents)
    db.create("P", make_population())
    db.methods = registry
    db.indexes.build_typed("P")
    plan = build_union_plan(registry, "Person", "boss", [], Named("P"),
                            use_index="P")
    ctx = db.context()
    assert evaluate(plan, ctx) == EXPECTED
    # Each occurrence is touched exactly once (4 total) instead of once
    # per branch (12 without the index); the branches read partitions.
    assert ctx.stats["elements_scanned"] == 4
    assert ctx.stats["index_lookups"] == 3
