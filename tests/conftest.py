"""Shared fixtures: small databases and the populated university."""

import pytest

from repro import Database, MultiSet, Tup
from repro.workloads import build_university


@pytest.fixture
def db():
    """An empty database with builtins registered."""
    from repro.excess.builtins import register_builtins
    database = Database()
    register_builtins(database)
    return database


@pytest.fixture
def people_db(db):
    """A Person/Employee/Student hierarchy with a small typed set P,
    matching the Section 4 setting."""
    h = db.hierarchy
    h.add_type("Person")
    h.add_type("Employee", ["Person"])
    h.add_type("Student", ["Person"])
    P = MultiSet([
        Tup({"name": "p1"}, type_name="Person"),
        Tup({"name": "p2"}, type_name="Person"),
        Tup({"name": "s1", "advisor": "a1"}, type_name="Student"),
        Tup({"name": "e1", "manager": "m1"}, type_name="Employee"),
        Tup({"name": "e2", "manager": "m2"}, type_name="Employee"),
    ])
    db.create("P", P)
    return db


@pytest.fixture(scope="session")
def university():
    """One shared, deterministic university instance (read-only tests)."""
    return build_university(n_departments=4, n_employees=20, n_students=30,
                            kids_per_employee=2, subords_per_employee=3,
                            seed=42)
