"""EXTRA type system tests: inheritance, overriding, schemas, instances."""

import pytest

from repro.core.hierarchy import HierarchyError
from repro.core.values import Arr, MultiSet, Ref, Tup
from repro.extra.types import (ArrayType, NamedType, RefType, ScalarType,
                               SetType, TupleTypeExpr, TypeSystem,
                               TypeError_)


@pytest.fixture
def ts():
    system = TypeSystem()
    system.define("Person", [
        ("ssnum", ScalarType("int4", int)),
        ("name", ScalarType("char[]", str)),
    ])
    return system


def test_define_and_lookup(ts):
    assert "Person" in ts
    assert ts.names() == ["Person"]
    assert ts.require("Person").name == "Person"
    with pytest.raises(TypeError_):
        ts.require("Nope")


def test_duplicate_definition_rejected(ts):
    with pytest.raises(TypeError_):
        ts.define("Person", [])


def test_unknown_parent_rejected(ts):
    with pytest.raises(TypeError_):
        ts.define("X", [], parents=["Ghost"])


def test_attribute_inheritance(ts):
    ts.define("Student", [("gpa", ScalarType("float4", float))],
              parents=["Person"])
    fields = [f for f, _ in ts.effective_fields("Student")]
    assert fields == ["ssnum", "name", "gpa"]  # ancestors first


def test_attribute_override_replaces_in_place(ts):
    """Any inherited attribute can be overridden with a new type
    specification (Section 2.1)."""
    ts.define("Weird", [("name", ScalarType("int4", int))],
              parents=["Person"])
    assert ts.field_type("Weird", "name").py_type is int
    fields = [f for f, _ in ts.effective_fields("Weird")]
    assert fields == ["ssnum", "name"]  # position preserved


def test_multiple_inheritance_merges_fields(ts):
    ts.define("Employee", [("salary", ScalarType("int4", int))],
              parents=["Person"])
    ts.define("Student", [("gpa", ScalarType("float4", float))],
              parents=["Person"])
    ts.define("TA", [("hours", ScalarType("int4", int))],
              parents=["Employee", "Student"])
    fields = [f for f, _ in ts.effective_fields("TA")]
    assert fields == ["ssnum", "name", "gpa", "salary", "hours"]


def test_multiple_inheritance_conflict_resolved_by_c3(ts):
    ts.define("A", [("x", ScalarType("int4", int))], parents=["Person"])
    ts.define("B", [("x", ScalarType("char[]", str))], parents=["Person"])
    ts.define("C", [], parents=["A", "B"])
    # C3 linearization is [C, A, B, Person]; layout is built in reverse,
    # so the *nearest* (first-listed) parent's spec wins.
    assert ts.field_type("C", "x").py_type is int


def test_field_type_unknown(ts):
    with pytest.raises(TypeError_):
        ts.field_type("Person", "ghost")


def test_schema_for_builds_tuple_schema(ts):
    schema = ts.schema_for("Person")
    assert schema.kind == "tup"
    assert schema.field("ssnum").scalar_type is int
    assert schema.name == "Person"


def test_schema_with_all_constructors(ts):
    ts.define("Department", [("name", ScalarType("char[]", str))])
    ts.define("Employee", [
        ("dept", RefType("Department")),
        ("kids", SetType(NamedType("Person"))),
        ("top", ArrayType(ScalarType("int4", int), 1, 10)),
        ("address", TupleTypeExpr([("city", ScalarType("char[]", str))])),
    ], parents=["Person"])
    schema = ts.schema_for("Employee")
    assert schema.field("dept").kind == "ref"
    assert schema.field("dept").target == "Department"
    assert schema.field("kids").kind == "set"
    assert schema.field("top").fixed_length == 10
    assert schema.field("address").kind == "tup"
    schema.validate()


def test_ref_to_unknown_type_rejected(ts):
    ts.define("Bad", [("r", RefType("Ghost"))])
    with pytest.raises(TypeError_):
        ts.schema_for("Bad")


def test_value_recursion_rejected(ts):
    ts.define("Loop", [("self", NamedType("Loop"))])
    with pytest.raises(TypeError_):
        ts.schema_for("Loop")


def test_ref_recursion_allowed(ts):
    ts.define("Node", [("next", RefType("Node"))])
    ts.schema_for("Node").validate()


def test_same_named_type_embedded_twice(ts):
    ts.define("Couple", [("left", NamedType("Person")),
                         ("right", NamedType("Person"))])
    ts.schema_for("Couple").validate()


def test_new_builds_typed_instance(ts):
    person = ts.new("Person", ssnum=1, name="Ann")
    assert person.type_name == "Person"
    assert person.field_names == ("ssnum", "name")


def test_new_checks_field_domains(ts):
    with pytest.raises(TypeError_):
        ts.new("Person", ssnum="not-an-int", name="Ann")
    ts.new("Person", ssnum="not-an-int", name="Ann", check=False)


def test_new_missing_and_unknown_fields(ts):
    with pytest.raises(TypeError_):
        ts.new("Person", ssnum=1)
    with pytest.raises(TypeError_):
        ts.new("Person", ssnum=1, name="A", ghost=2)


def test_new_accepts_subtype_values_via_dom(ts):
    ts.define("Student", [("gpa", ScalarType("float4", float))],
              parents=["Person"])
    ts.define("Club", [("members", SetType(NamedType("Person")))])
    student = ts.new("Student", ssnum=2, name="Bob", gpa=3.0)
    club = ts.new("Club", members=MultiSet([student]))
    assert student in club["members"]


def test_scalar_aliases(ts):
    ts.register_scalar_alias("Money", float)
    assert ts.scalar_alias("Money") is float
    assert ts.scalar_alias("Date") is str  # built-in


def test_array_bounds_validation():
    with pytest.raises(TypeError_):
        ArrayType(ScalarType("int4", int), 2, 10)  # lower must be 1
    with pytest.raises(TypeError_):
        ArrayType(ScalarType("int4", int), 1, None)


def test_type_expr_descriptions(ts):
    assert RefType("Person").describe() == "ref Person"
    assert SetType(NamedType("Person")).describe() == "{ Person }"
    assert (ArrayType(ScalarType("int4", int), 1, 5).describe()
            == "array [1..5] of int4")
    assert (TupleTypeExpr([("x", ScalarType("int4", int))]).describe()
            == "(x: int4)")


def test_conflicting_hierarchy_registration():
    from repro.core.hierarchy import TypeHierarchy
    h = TypeHierarchy()
    h.add_type("Person")
    h.add_type("Student", ["Person"])
    system = TypeSystem(h)
    system.define("Person", [])  # upgrade of a parentless stub is fine
    with pytest.raises(HierarchyError):
        system.define("Student", [], parents=[])  # ancestry mismatch
