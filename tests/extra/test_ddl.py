"""EXTRA DDL parser/interpreter tests over the Figure 1 schema."""

import pytest

from repro.core.values import Arr, MultiSet, Tup
from repro.extra import DDLInterpreter, TypeError_, parse_type_expr
from repro.extra.types import (ArrayType, NamedType, RefType, ScalarType,
                               SetType)
from repro.lang import Lexer, ParseError
from repro.storage import Database
from repro.workloads import FIGURE_1_DDL


@pytest.fixture
def db():
    return Database()


@pytest.fixture
def ddl(db):
    return DDLInterpreter(db)


def parse_type(db, text):
    return parse_type_expr(Lexer(text), DDLInterpreter(db).types)


# ---------------------------------------------------------------------------
# Type expressions
# ---------------------------------------------------------------------------


def test_scalar_keywords(db):
    assert parse_type(db, "int4").py_type is int
    assert parse_type(db, "float4").py_type is float
    assert parse_type(db, "bool").py_type is bool
    assert parse_type(db, "Date").py_type is str


def test_char_with_and_without_length(db):
    assert parse_type(db, "char[20]").py_type is str
    assert parse_type(db, "char[]").py_type is str


def test_ref_type(db):
    t = parse_type(db, "ref Department")
    assert isinstance(t, RefType) and t.target == "Department"


def test_set_type(db):
    t = parse_type(db, "{ ref Employee }")
    assert isinstance(t, SetType)
    assert isinstance(t.element, RefType)


def test_fixed_array_type(db):
    t = parse_type(db, "array [1..10] of ref Employee")
    assert isinstance(t, ArrayType) and t.fixed_length == 10


def test_variable_array_type(db):
    t = parse_type(db, "array of int4")
    assert isinstance(t, ArrayType) and t.fixed_length is None


def test_inline_tuple_type(db):
    t = parse_type(db, "(x: int4, y: { Person })")
    assert t.fields[0][0] == "x"
    assert isinstance(t.fields[1][1], SetType)
    assert isinstance(t.fields[1][1].element, NamedType)


def test_nested_constructors(db):
    t = parse_type(db, "{ array [1..3] of { ref T } }")
    assert isinstance(t, SetType)
    assert isinstance(t.element, ArrayType)
    assert isinstance(t.element.element, SetType)


def test_bad_type_expression(db):
    with pytest.raises(ParseError):
        parse_type(db, "{ }")


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


def test_figure_1_ddl_loads(ddl, db):
    ddl.run(FIGURE_1_DDL)
    assert sorted(db.types.names()) == ["Department", "Employee", "Person",
                                        "Student"]
    assert db.hierarchy.is_subtype("Employee", "Person")
    assert db.hierarchy.is_subtype("Student", "Person")
    assert sorted(db.names()) == ["Departments", "Employees", "Students",
                                  "TopTen"]


def test_created_objects_start_empty(ddl, db):
    ddl.run(FIGURE_1_DDL)
    assert db.get("Employees") == MultiSet()
    assert db.get("TopTen") == Arr()
    assert isinstance(db.created_types["TopTen"], ArrayType)


def test_created_tuple_object_default(ddl, db):
    ddl.run("define type Pt: (x: int4, y: int4) create Origin: Pt")
    assert db.get("Origin") == Tup({"x": 0, "y": 0}, type_name="Pt")


def test_create_bare_ref_rejected(ddl, db):
    ddl.run("define type T: (x: int4)")
    with pytest.raises(TypeError_):
        ddl.run("create R: ref T")


def test_multiple_inheritance_ddl(ddl, db):
    ddl.run("""
        define type A: (x: int4)
        define type B: (y: int4)
        define type C: (z: int4) inherits A, B
    """)
    assert db.hierarchy.parents("C") == ["A", "B"]
    fields = [f for f, _ in db.types.effective_fields("C")]
    assert set(fields) == {"x", "y", "z"}


def test_define_function_requires_translator(ddl, db):
    ddl.run("define type T: (x: int4)")
    with pytest.raises(TypeError_):
        ddl.run("define T function f () returns int4 { retrieve (this.x) }")


def test_define_function_with_translator(db):
    captured = []
    interp = DDLInterpreter(db, function_translator=captured.append)
    interp.run("""
        define type T: (x: int4)
        define T function f (n: int4) returns int4 { retrieve (this.x) }
    """)
    definition = captured[0]
    assert definition.type_name == "T"
    assert definition.name == "f"
    assert definition.params[0][0] == "n"
    assert "retrieve" in definition.body_text
    assert "this" in definition.body_text


def test_function_body_preserves_strings_and_nesting(db):
    captured = []
    interp = DDLInterpreter(db, function_translator=captured.append)
    interp.run('define type T: (x: int4) '
               'define T function f () returns int4 '
               '{ retrieve (this.x) where (this.x = "a { b }") }')
    assert '"a { b }"' in captured[0].body_text


def test_unterminated_function_body(db):
    interp = DDLInterpreter(db, function_translator=lambda d: None)
    with pytest.raises(ParseError):
        interp.run("define type T: (x: int4) "
                   "define T function f () returns int4 { retrieve (")


def test_bad_statement(ddl):
    with pytest.raises(ParseError):
        ddl.run("drop table foo")


def test_comments_are_skipped(ddl, db):
    ddl.run("""
    # a comment
    define type T: (x: int4)  -- trailing comment
    create Ts: { T }
    """)
    assert "Ts" in db
