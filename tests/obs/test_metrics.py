"""Metrics registry semantics and the Prometheus export round-trip."""

import json

import pytest

from repro.obs.metrics import (REGISTRY, Counter, Gauge, Histogram,
                               MetricsRegistry, parse_prometheus)


def build_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    queries = reg.counter("queries_total", "Statements executed.")
    queries.inc()
    queries.inc(2, engine="compiled")
    queries.inc(1, engine="interpreted")
    depth = reg.gauge("queue_depth", "Work queue depth.")
    depth.set(4)
    depth.inc()
    depth.dec(2)
    lat = reg.histogram("latency_seconds", "Latency.",
                        buckets=[0.01, 0.1, 1.0])
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        lat.observe(value)
    lat.observe(0.02, engine="compiled")
    return reg


# -- instrument semantics --------------------------------------------------

def test_counter_labels_are_independent():
    reg = build_registry()
    queries = reg.counter("queries_total")
    assert queries.value() == 1
    assert queries.value(engine="compiled") == 2
    assert queries.value(engine="interpreted") == 1
    with pytest.raises(ValueError):
        queries.inc(-1)


def test_gauge_set_inc_dec_and_provider():
    reg = build_registry()
    depth = reg.gauge("queue_depth")
    assert depth.value() == 3
    live = {"n": 7}
    depth.set_provider(lambda: float(live["n"]), pool="a")
    assert depth.value(pool="a") == 7
    live["n"] = 9
    assert depth.value(pool="a") == 9  # sampled at read time


def test_histogram_buckets_are_cumulative():
    reg = build_registry()
    lat = reg.histogram("latency_seconds")
    assert lat.count() == 5
    assert lat.sum() == pytest.approx(5.605)
    samples = dict(((name, labels), value)
                   for name, labels, value in lat.samples())
    assert samples[("latency_seconds_bucket", (("le", "0.01"),))] == 1
    assert samples[("latency_seconds_bucket", (("le", "0.1"),))] == 3
    assert samples[("latency_seconds_bucket", (("le", "1"),))] == 4
    assert samples[("latency_seconds_bucket", (("le", "+Inf"),))] == 5


def test_registry_interning_is_idempotent_and_kind_checked():
    reg = MetricsRegistry()
    a = reg.counter("hits_total")
    b = reg.counter("hits_total")
    assert a is b
    with pytest.raises(ValueError):
        reg.gauge("hits_total")


# -- exports ---------------------------------------------------------------

def test_json_export_is_json_serializable():
    reg = build_registry()
    payload = json.loads(json.dumps(reg.to_json()))
    assert payload["queries_total"]["kind"] == "counter"
    assert payload["latency_seconds"]["kind"] == "histogram"
    assert set(payload) == {"queries_total", "queue_depth",
                            "latency_seconds"}


def test_prometheus_round_trip():
    """to_prometheus → parse_prometheus reproduces every sample."""
    reg = build_registry()
    text = reg.to_prometheus()
    assert "# TYPE queries_total counter" in text
    assert "# TYPE latency_seconds histogram" in text
    parsed = parse_prometheus(text)
    for metric in (reg.counter("queries_total"), reg.gauge("queue_depth"),
                   reg.histogram("latency_seconds")):
        for name, labels, value in metric.samples():
            assert parsed[(name, labels)] == pytest.approx(value), name
    # And nothing extra was invented by the exporter.
    n_samples = sum(len(m.samples()) for m in
                    (reg.counter("queries_total"), reg.gauge("queue_depth"),
                     reg.histogram("latency_seconds")))
    assert len(parsed) == n_samples


def test_parse_prometheus_rejects_garbage():
    with pytest.raises(ValueError):
        parse_prometheus("not a metric line at all!")


def test_global_registry_round_trips_after_real_queries():
    """The process-wide registry (with live query/WAL/txn series)
    survives its own export format."""
    from repro import connect

    conn = connect()
    conn.execute("create Nums: { int4 }")
    conn.execute("append to Nums value (7)")
    text = REGISTRY.to_prometheus()
    parsed = parse_prometheus(text)
    assert parsed, "global registry exported no samples"
    expected = {(name, labels): value
                for metric_name in REGISTRY.names()
                for name, labels, value in REGISTRY.get(metric_name).samples()}
    for key, value in expected.items():
        # Gauges with providers may move between export and re-read;
        # compare only stable series exactly.  (repro_index_epoch reads
        # a WeakSet of managers, which GC can shrink between samples.)
        if key[0].startswith(("repro_snapshot_oldest",
                              "repro_index_epoch")):
            continue
        assert parsed[key] == pytest.approx(value), key


def test_plan_cache_and_epoch_metrics_round_trip():
    """The server read-path instruments survive the export format, and
    the epoch gauge tracks a live manager's committed version."""
    from repro.core.values import MultiSet
    from repro.obs.metrics import (INDEX_EPOCH, SERVER_PLAN_CACHE_HITS,
                                   SERVER_PLAN_CACHE_MISSES)
    from repro.storage import Database

    db = Database()
    manager = db.transactions()
    db.create("M", MultiSet([1, 2, 3]))  # one commit → epoch advances
    assert manager.index_epoch == manager.version >= 1
    assert INDEX_EPOCH.value() >= manager.version
    SERVER_PLAN_CACHE_HITS.inc()
    SERVER_PLAN_CACHE_MISSES.inc()
    parsed = parse_prometheus(REGISTRY.to_prometheus())
    assert parsed[("repro_server_plan_cache_hits", ())] \
        == pytest.approx(SERVER_PLAN_CACHE_HITS.value())
    assert parsed[("repro_server_plan_cache_misses", ())] \
        == pytest.approx(SERVER_PLAN_CACHE_MISSES.value())
    assert parsed[("repro_index_epoch", ())] >= manager.version
