"""EXPLAIN ANALYZE on the paper's benchmark plans, and calibration.

The acceptance bar: tracing the Figure 4 functional join and the
Figure 5 ⊎-based method-dispatch plan must report per-operator actual
cardinalities that agree with the row counts the differential
(interpreted) engine produces, and the rendered tree must surface the
estimated-vs-actual deviation.  ``CostModel.calibrate`` then feeds the
actuals back into the catalog statistics.
"""

import pytest

from repro.core.expr import evaluate
from repro.core.explain import explain_analyze
from repro.core.optimizer import CostModel, Statistics
from repro.obs import Tracer
from repro.workloads import dispatch, figures
from repro.workloads.university import build_university


@pytest.fixture(scope="module")
def uni():
    return build_university(n_departments=4, n_employees=24, n_students=30,
                            advisor_pool=5, seed=7)


def trace_compiled(db, expr, name):
    """(value, statement-root) for one traced compiled run."""
    ctx = db.context()
    tracer = Tracer(enabled=True)
    ctx.tracer = tracer
    root = tracer.begin(name, kind="statement")
    value = evaluate(expr, ctx, mode="compiled")
    tracer.end()
    root.calls = 1
    return value, root


def test_figure_4_actual_cardinalities_match_interpreter(uni):
    expr = figures.figure_4()
    expected = evaluate(expr, uni.db.context(), mode="interpreted")
    value, root = trace_compiled(uni.db, expr, "figure-4")
    assert value == expected

    operators = root.find_all(kind="operator")
    by_name = {span.name: span for span in operators}
    # The scan reads every employee reference...
    assert by_name["Employees"].card_out == len(uni.employee_refs)
    # ...and the top of the fused deref→σ(city)→deref(dept)→π chain
    # emits exactly the differential row count.
    plan = root.find(kind="plan")
    top = plan.children[0]
    assert top.kind == "operator"
    assert top.card_out == len(expected)


def test_figure_4_explain_analyze_surfaces_deviation(uni):
    expr = figures.figure_4()
    value, root = trace_compiled(uni.db, expr, "figure-4")
    model = CostModel(Statistics.from_database(uni.db))
    rendered = explain_analyze(root, cost_model=model)
    assert "actual card=%d" % len(value) in rendered
    assert "est card≈" in rendered
    # Every estimate is annotated with its deviation from the actual.
    assert ("over-estimated" in rendered or "under-estimated" in rendered
            or "exact" in rendered)
    # One line per span, operator lines indented under the plan.
    assert rendered.count("actual card=") >= 2


def test_figure_5_union_dispatch_matches_interpreter(uni):
    dispatch.build_population(uni)
    dispatch.define_boss_methods(uni)
    population = uni.db.get("P")
    expr = dispatch.union_plan(uni, "boss")
    expected = evaluate(expr, uni.db.context(), mode="interpreted")
    value, root = trace_compiled(uni.db, expr, "figure-5")
    assert value == expected
    # boss is total over Person, so the plan emits one name per member
    # of the heterogeneous population.
    assert len(value) == len(population)

    plan = root.find(kind="plan")
    top = plan.children[0]
    assert top.card_out == len(expected)
    # The ⊎-plan fans P out into per-exact-type branches: the traced
    # tree must contain more than one scan of P.
    scans = [s for s in root.find_all(kind="operator") if s.name == "P"]
    assert len(scans) >= 2
    rendered = explain_analyze(root,
                               cost_model=CostModel(
                                   Statistics.from_database(uni.db)))
    assert "actual card=%d" % len(expected) in rendered


def test_calibrate_feeds_actuals_back_into_the_catalog(uni):
    expr = figures.figure_4()
    _value, root = trace_compiled(uni.db, expr, "figure-4")
    stats = Statistics()  # empty catalog: everything defaults to 100
    model = CostModel(stats)
    before = stats.object("Employees").cardinality
    assert before != len(uni.employee_refs)

    adjusted = model.calibrate(root)
    assert adjusted["objects"]["Employees"] == len(uni.employee_refs)
    assert stats.object("Employees").cardinality == len(uni.employee_refs)
    # The σ(city = "Madison") selectivity was observed from the trace.
    assert adjusted["selectivities"], "no selectivity was harvested"
    observed = next(iter(adjusted["selectivities"].values()))
    assert 0.0 <= observed <= 1.0

    # A second explain over the same trace now reports exact estimates
    # for the calibrated scan.
    rendered = explain_analyze(root, cost_model=model)
    assert "exact" in rendered


def test_calibrate_without_trace_is_a_no_op():
    model = CostModel(Statistics())
    assert model.calibrate(None) == {"objects": {}, "selectivities": {}}
