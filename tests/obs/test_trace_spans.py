"""Span-tree shape and zero-interference guarantees for the tracer.

Reuses the differential suite's seeded plan generator: for a sample of
its plans we run the compiled engine three ways — untraced, with a
disabled tracer, and with tracing on — and require (a) bit-identical
values (occurrence counts included) in all three, and (b) a span tree
whose operator cardinalities agree with the differential row counts.
"""

import random

import pytest

from repro.core.expr import Const, Input, Named, evaluate
from repro.core.operators import Comp, Deref, SetApply
from repro.core.predicates import Atom, TruePred
from repro.core.values import MultiSet
from repro.obs import Span, Tracer

from tests.engine.test_engine_equivalence import PlanGen, build_db

#: A sample of the differential suite's 240 seeds; every plan kind in
#: the generator's grammar appears within the first twenty.
TRACED_SEEDS = range(20)


def run_traced(expr, enabled=True):
    """(outcome, payload, root): compiled run under a tracer."""
    ctx = build_db().context()
    tracer = Tracer(enabled=enabled)
    ctx.tracer = tracer
    root = tracer.begin("stmt", kind="statement")
    try:
        value = evaluate(expr, ctx, mode="compiled")
        return "ok", value, root
    except Exception as error:  # noqa: BLE001 — failure identity matters
        return "error", (type(error).__name__, str(error)), root
    finally:
        tracer.end()


def run_plain(expr, mode="compiled"):
    ctx = build_db().context()
    try:
        return "ok", evaluate(expr, ctx, mode=mode)
    except Exception as error:  # noqa: BLE001
        return "error", (type(error).__name__, str(error))


@pytest.mark.parametrize("seed", TRACED_SEEDS)
def test_traced_run_is_bit_identical(seed):
    expr = PlanGen(random.Random(seed)).plan()
    baseline = run_plain(expr)
    outcome, payload, _root = run_traced(expr, enabled=True)
    assert (outcome, payload) == baseline
    if baseline[0] == "ok" and isinstance(baseline[1], MultiSet):
        assert len(payload) == len(baseline[1])
        assert payload.distinct_count() == baseline[1].distinct_count()


@pytest.mark.parametrize("seed", TRACED_SEEDS)
def test_disabled_tracer_is_bit_identical_and_silent(seed):
    expr = PlanGen(random.Random(seed)).plan()
    baseline = run_plain(expr)
    outcome, payload, root = run_traced(expr, enabled=False)
    assert (outcome, payload) == baseline
    # A disabled tracer records nothing at all.
    assert root is None


@pytest.mark.parametrize("seed", TRACED_SEEDS)
def test_span_tree_shape(seed):
    expr = PlanGen(random.Random(seed)).plan()
    outcome, payload, root = run_traced(expr, enabled=True)
    assert isinstance(root, Span)
    assert root.name == "stmt" and root.kind == "statement"

    plans = root.find_all(kind="plan")
    assert len(plans) == 1, "exactly one plan span per compiled run"
    plan = plans[0]
    assert plan.name == "compiled-plan"
    assert plan.calls == 1

    operators = root.find_all(kind="operator")
    for span in operators:
        assert span.expr is not None, span.name
        assert span.name  # the describe()d operator label
        assert span.calls >= 0 and span.card_out >= 0
        assert span.wall >= 0.0
    if outcome == "ok":
        # Every successful compiled run pulls through at least one
        # physical operator (the generator never emits bare constants).
        assert operators, expr.describe()
        if isinstance(payload, MultiSet):
            # The topmost operator feeds the plan output: its emitted
            # cardinality is the differential suite's row count.
            top = plan.children[0]
            assert top.kind == "operator"
            assert top.card_out == len(payload)

    # walk() visits every node exactly once and agrees with span_count.
    seen = list(root.walk())
    assert len(seen) == root.span_count()
    assert len(set(map(id, seen))) == len(seen)

    # to_dict round-trips the shape (names and child arity).
    as_dict = root.to_dict()
    assert as_dict["name"] == "stmt"
    assert len(as_dict["children"]) == len(root.children)


def test_operator_cardinalities_match_data():
    """Pinned-shape check: scan → deref chain over the fixture DB.

    ``Refs`` holds 14 live references plus one dangling one; the deref
    drops the dangler, so the fused SET_APPLY must report 14 out of a
    15-row scan.
    """
    expr = SetApply(Deref(Input()), Named("Refs"))
    outcome, value, root = run_traced(expr)
    assert outcome == "ok" and len(value) == 14
    operators = {span.name: span for span in root.find_all(kind="operator")}
    assert operators["Refs"].card_out == 15
    (apply_span,) = [s for s in operators.values()
                     if s.name.startswith("SET_APPLY")]
    assert apply_span.card_out == 14


def test_fused_chain_is_one_span():
    """σ∘scan fuses: one SET_APPLY span, not one per subscript site."""
    pred = Atom(Input(), "<", Const(3))
    expr = SetApply(Comp(pred, Input()),
                    SetApply(Comp(TruePred(), Input()), Named("Nums")))
    outcome, value, root = run_traced(expr)
    assert outcome == "ok"
    operators = root.find_all(kind="operator")
    # Fusion collapses the two SET_APPLY levels over the scan into a
    # single traced pipeline stage.
    apply_spans = [s for s in operators if s.name.startswith("SET_APPLY")]
    assert len(apply_spans) == 1
    assert apply_spans[0].card_out == len(value)


def test_interpreted_engine_gets_a_root_span():
    ctx = build_db().context()
    tracer = Tracer(enabled=True)
    ctx.tracer = tracer
    root = tracer.begin("stmt", kind="statement")
    value = evaluate(Named("Nums"), ctx, mode="interpreted")
    tracer.end()
    plans = root.find_all(kind="plan")
    assert len(plans) == 1
    assert plans[0].name == "interpreted-plan"
    assert plans[0].card_out == len(value)
