"""The unified ExecutionOptions surface: validation, the legacy-keyword
deprecation shims, per-statement overrides, and README doc-sync."""

import dataclasses
import pathlib
import warnings

import pytest

from repro import Database, ExecutionOptions, MultiSet, connect
from repro.options import ENGINES, merge_legacy_options

DDL = """
create Nums: { int4 }
append to Nums value (1)
append to Nums value (2)
"""


# -- construction & validation --------------------------------------------

def test_defaults_match_connect_defaults():
    options = ExecutionOptions()
    assert options.engine == "compiled"
    assert options.verify is False and options.sanitize is False
    assert options.trace is False and options.parallel == 0
    assert options.batch_size is None and options.access_paths == "auto"
    conn = connect()
    assert conn.options == options


def test_engine_is_validated():
    for engine in ENGINES:
        assert ExecutionOptions(engine=engine).engine == engine
    with pytest.raises(ValueError, match="engine"):
        ExecutionOptions(engine="jit")


def test_sanitize_implies_analyze():
    options = ExecutionOptions(sanitize=True)
    assert options.analyze is True


def test_parallel_requires_batched_engine():
    assert ExecutionOptions(engine="batched", parallel=4).parallel == 4
    with pytest.raises(ValueError, match="batched"):
        ExecutionOptions(engine="compiled", parallel=2)
    with pytest.raises(ValueError, match="parallel"):
        ExecutionOptions(engine="batched", parallel=-1)


def test_batch_size_and_access_paths_are_validated():
    with pytest.raises(ValueError, match="batch_size"):
        ExecutionOptions(batch_size=0)
    with pytest.raises(ValueError, match="access_paths"):
        ExecutionOptions(access_paths="always")


def test_readers_is_validated():
    assert ExecutionOptions().readers is None
    assert ExecutionOptions(readers=1).readers == 1
    for bad in (0, -3):
        with pytest.raises(ValueError, match="readers"):
            ExecutionOptions(readers=bad)


def test_replace_revalidates():
    options = ExecutionOptions(engine="batched", parallel=2)
    assert options.replace(parallel=0).engine == "batched"
    with pytest.raises(ValueError):
        options.replace(engine="interpreted")


def test_options_are_immutable():
    with pytest.raises(dataclasses.FrozenInstanceError):
        ExecutionOptions().engine = "batched"


# -- the connection surface ------------------------------------------------

def test_connect_accepts_options_positionally():
    conn = connect(Database(), ExecutionOptions(engine="batched",
                                                parallel=2))
    assert conn.engine == "batched"
    assert conn.session.parallel == 2
    assert conn.options.engine == "batched"


def test_connection_options_setter_is_live():
    conn = connect(Database())
    conn.execute(DDL)
    conn.options = ExecutionOptions(engine="interpreted", trace=True)
    assert conn.engine == "interpreted" and conn.tracing
    result = conn.execute("retrieve (N) from N in Nums")
    assert result.engine == "interpreted" and result.trace is not None


def test_execute_override_restores_on_error():
    conn = connect(Database())
    conn.execute(DDL)
    with pytest.raises(Exception):
        conn.execute("retrieve (X) from X in NoSuch",
                     options=ExecutionOptions(engine="batched"))
    assert conn.engine == "compiled"


def test_session_exposes_options_snapshot():
    conn = connect(Database(), ExecutionOptions(engine="batched",
                                                batch_size=16))
    options = conn.session.options
    assert options.engine == "batched" and options.batch_size == 16


# -- legacy-keyword shims --------------------------------------------------

def test_legacy_keywords_warn_but_work():
    db = Database()
    with pytest.warns(DeprecationWarning, match="ExecutionOptions"):
        conn = connect(db, engine="interpreted", verify=True)
    assert conn.engine == "interpreted"
    assert conn.session.verify is True


def test_options_plus_legacy_keywords_is_an_error():
    with pytest.raises(TypeError, match="not both"):
        connect(Database(), ExecutionOptions(), engine="interpreted")


def test_options_path_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        conn = connect(Database(), ExecutionOptions(engine="batched"))
        conn.execute(DDL)
        value = conn.execute("retrieve (N) from N in Nums").value
        assert isinstance(value, MultiSet) and len(value) == 2


def test_merge_legacy_options_passthrough():
    options = ExecutionOptions(engine="batched")
    assert merge_legacy_options(options, "here") is options
    assert merge_legacy_options(None, "here") == ExecutionOptions()


# -- documentation sync ----------------------------------------------------

@pytest.mark.parametrize("doc", ["README.md", "DESIGN.md"])
def test_docs_mention_every_option_field(doc):
    """README's quickstart and DESIGN's options-surface section must
    mention every ExecutionOptions field by name, so the public knobs
    and their docs cannot drift apart."""
    text = (pathlib.Path(__file__).resolve().parents[2] / doc).read_text()
    for field in dataclasses.fields(ExecutionOptions):
        assert field.name in text, (
            "%s does not mention ExecutionOptions.%s" % (doc, field.name))
    assert "ExecutionOptions" in text
