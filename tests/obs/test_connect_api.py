"""The unified ``connect()``/``execute()`` entry point.

Covers the Connection surface, the self-describing Result, the
deprecation shims over the legacy entry points, and the per-statement
stats-hygiene guarantees (counters describe exactly one statement,
even when a prior statement aborted mid-pipeline).
"""

import gc
import warnings

import pytest

from repro import Connection, Database, ExecutionOptions, MultiSet, connect
from repro.core.expr import Named, evaluate
from repro.core.operators import SetCollapse
from repro.excess.session import Session, run
from repro.obs import QueryStats, Span

DDL = """
create Nums: { int4 }
append to Nums value (1)
append to Nums value (2)
append to Nums value (2)
"""


def fresh_connection(**kwargs):
    conn = connect(**kwargs)
    conn.execute(DDL)
    return conn


# -- connect() ------------------------------------------------------------

def test_connect_defaults_to_fresh_in_memory_database():
    conn = connect()
    assert isinstance(conn, Connection)
    assert conn.engine == "compiled"
    assert conn.tracing is False
    assert isinstance(conn.db, Database)


def test_connect_wraps_an_existing_database():
    db = Database()
    db.create("Xs", MultiSet([1, 2]))
    conn = connect(db, ExecutionOptions(engine="interpreted"))
    assert conn.db is db
    assert conn.execute("retrieve (X) from X in Xs").value is not None


def test_connection_is_a_context_manager():
    with connect() as conn:
        conn.execute("create Xs: { int4 }")
    with pytest.raises(RuntimeError):
        conn.execute("retrieve (X) from X in Xs")


# -- Result ---------------------------------------------------------------

def test_result_is_self_describing():
    conn = fresh_connection()
    result = conn.execute("retrieve (N) from N in Nums")
    assert result.kind == "retrieve"
    assert result.engine == "compiled"
    assert result.seconds > 0
    assert isinstance(result.stats, QueryStats)
    assert result.trace is None  # tracing off by default
    assert sorted(t["N"] for t in result.rows()) == [1, 2, 2]  # counts expanded
    assert len(result.all) == 1
    explained = result.explain()
    assert "SET_APPLY" in explained or "Nums" in explained


def test_execute_returns_last_result_with_all_attached():
    conn = connect()
    result = conn.execute(DDL)
    assert len(result.all) == 4
    kinds = [r.kind for r in result.all]
    assert kinds[0] == "ddl" and kinds[-1] == "append"


def test_empty_script_yields_an_empty_result():
    conn = connect()
    result = conn.execute("   ")
    assert result.value is None
    assert result.all == []


def test_traced_result_carries_a_span_tree():
    conn = fresh_connection(options=ExecutionOptions(trace=True))
    result = conn.execute("retrieve (N) from N in Nums where N > 1")
    assert isinstance(result.trace, Span)
    assert result.trace.kind == "statement"
    assert result.trace.find_all(kind="operator")
    rendered = result.explain()
    assert "actual card=" in rendered


def test_tracing_toggle_is_live():
    conn = fresh_connection()
    assert conn.execute("retrieve (N) from N in Nums").trace is None
    conn.tracing = True
    assert conn.execute("retrieve (N) from N in Nums").trace is not None
    conn.tracing = False
    assert conn.execute("retrieve (N) from N in Nums").trace is None


# -- deprecation shims ----------------------------------------------------

def test_direct_session_construction_warns():
    with pytest.warns(DeprecationWarning, match="repro.connect"):
        Session(Database())


def test_module_level_run_warns_but_works():
    db = Database()
    db.create("Xs", MultiSet([5]))
    with pytest.warns(DeprecationWarning, match="connect"):
        value = run(db, "retrieve (X) from X in Xs")
    assert [t["X"] for t in value.elements()] == [5]


def test_session_query_warns_but_works():
    conn = fresh_connection()
    with pytest.warns(DeprecationWarning, match="execute"):
        value = conn.session.query("retrieve (N) from N in Nums")
    assert len(value) == 3


def test_connect_path_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        conn = fresh_connection()
        conn.execute("retrieve (N) from N in Nums")


# -- per-statement stats hygiene ------------------------------------------

def test_stats_reset_between_statements():
    conn = fresh_connection()
    first = conn.execute("retrieve (N) from N in Nums").stats
    second = conn.execute("retrieve (N) from N in Nums").stats
    assert first.as_dict() == second.as_dict()
    assert first.elements_scanned == 3


def test_stats_reset_after_failed_statement():
    conn = fresh_connection()
    clean = conn.execute("retrieve (N) from N in Nums").stats.as_dict()
    with pytest.raises(Exception):
        conn.execute("retrieve (mystery(N)) from N in Nums")
    again = conn.execute("retrieve (N) from N in Nums").stats.as_dict()
    assert again == clean


def test_aborted_pipeline_does_not_leak_stats_at_gc_time():
    """Counters from a statement that died mid-pipeline must not be
    flushed into a *later* statement's stats when Python finally
    collects the abandoned generator frames.

    The held traceback keeps the half-run pipeline generators alive
    past the next ``begin_query()``; the ``gc.collect()`` then
    finalizes them while the follow-up statement's counters are live.
    """
    db = Database()
    db.create("Ints", MultiSet([1, 2, 3]))
    ctx = db.context()
    ctx.begin_query()
    with pytest.raises(TypeError) as held:
        evaluate(SetCollapse(Named("Ints")), ctx, mode="compiled")

    ctx.begin_query()
    evaluate(Named("Ints"), ctx, mode="compiled")
    baseline = dict(ctx.stats)
    assert baseline.get("elements_scanned", 0) <= 3

    del held
    gc.collect()
    assert dict(ctx.stats) == baseline


def test_connect_durable_directory_and_wal_span(tmp_path):
    home = str(tmp_path / "dbhome")
    conn = connect(home, ExecutionOptions(trace=True))
    conn.execute("create Xs: { int4 }")
    result = conn.execute("append to Xs value (41)")
    wal_spans = result.trace.find_all(kind="wal")
    assert wal_spans and wal_spans[0].name == "wal.commit"
    assert wal_spans[0].meta["records"] >= 1
    conn.close()
    conn.close()  # idempotent, even with a live WAL handle

    reopened = connect(home)
    rows = reopened.execute("retrieve (X) from X in Xs").rows()
    assert [t["X"] for t in rows] == [41]
    reopened.close()


# -- slow-query log -------------------------------------------------------

def test_slow_query_log_captures_over_threshold_statements():
    conn = fresh_connection(slow_query_threshold=0.0)
    conn.slow_log.clear()
    conn.execute("retrieve (N) from N in Nums")
    assert len(conn.slow_log) == 1
    entry = conn.slow_log.entries()[0]
    assert entry.seconds >= 0.0
    assert "Nums" in entry.source
    assert entry.engine == "compiled"
    assert conn.slow_log.render()
    conn.slow_log.clear()
    assert len(conn.slow_log) == 0


def test_slow_query_log_disabled_by_none_threshold():
    conn = fresh_connection(slow_query_threshold=None)
    conn.execute("retrieve (N) from N in Nums")
    assert len(conn.slow_log) == 0
