"""The offline rule sweep: all 28 appendix rules fire and pass."""

from repro.core.analysis.rulecheck import (NUMBERED_RULES, rule_corpus,
                                           standard_environment,
                                           verify_all_rules)


class TestRuleSweep:
    def test_corpus_is_well_typed(self):
        env = standard_environment()
        for tree in rule_corpus():
            env.check(tree)  # must not raise

    def test_all_28_rules_fire_and_pass(self):
        report = verify_all_rules()
        assert report.ok(), report.describe()
        assert report.missing == []
        fired_numbers = {n for n in report.fired if isinstance(n, int)}
        assert fired_numbers == set(NUMBERED_RULES)

    def test_report_describe_mentions_full_coverage(self):
        report = verify_all_rules()
        assert "all 28 appendix rules fired and passed" in report.describe()

    def test_no_rewrite_was_skipped(self):
        # The corpus is fully typed, so the gate should never have to
        # skip a rewrite for an ill-typed input.
        report = verify_all_rules()
        assert report.skipped == 0
        assert report.checked > 0

    def test_module_entrypoint_exits_clean(self):
        from repro.core.analysis.rulecheck import main
        assert main() == 0
