"""Differential sweep: static inference vs. the interpreter, 240 plans.

Reuses the seeded sort-directed generator from the engine-equivalence
suite. Inference is conservative, so the precise property is:

* any generated plan the interpreter runs to a **non-vacuous** result
  (a value that is not an empty collection) must pass inference — no
  false positives on plans that actually touch data;
* any plan inference rejects either fails at runtime or succeeds only
  vacuously: its result is empty or all-unk, because an ill-typed body
  guarded by a type filter, an empty intermediate, or unk propagation
  never executed on real data, so the run proves nothing about it.
"""

import random

import pytest

from repro.core.analysis import inference_for_database
from repro.core.typecheck import AlgebraTypeError
from repro.core.values import UNK, Arr, MultiSet

from tests.engine.test_engine_equivalence import (N_PLANS, PlanGen, build_db,
                                                  run_engine)


@pytest.fixture(scope="module")
def env():
    return inference_for_database(build_db())


def _vacuous(payload) -> bool:
    """Empty, unk, or a collection of nothing but vacuous occurrences.

    A run whose every surviving occurrence is unk proves nothing about
    the plan's body: operators map unk to unk without ever reading it.
    """
    if payload is UNK:
        return True
    if isinstance(payload, (MultiSet, Arr)):
        return all(_vacuous(element) for element in payload)
    return False


@pytest.mark.parametrize("seed", range(N_PLANS))
def test_verifier_sound_and_complete_on_generated_plan(seed, env):
    expr = PlanGen(random.Random(seed)).plan()
    outcome, payload = run_engine(expr, "interpreted")
    try:
        env.check(expr)
    except AlgebraTypeError:
        # The verifier's rejections are real: such a plan never
        # produces data (it crashes, or its bad body never runs).
        assert outcome == "error" or _vacuous(payload), expr.describe()
    else:
        return  # accepted; runtime failures (dangling refs etc.) are fine


def test_sweep_is_not_trivial(env):
    accepted = rejected = nonvacuous = 0
    for seed in range(N_PLANS):
        expr = PlanGen(random.Random(seed)).plan()
        try:
            env.check(expr)
            accepted += 1
        except AlgebraTypeError:
            rejected += 1
            continue
        outcome, payload = run_engine(expr, "interpreted")
        if outcome == "ok" and not _vacuous(payload):
            nonvacuous += 1
    # The generator mostly emits typable plans, but both sides of the
    # differential must actually occur for the sweep to mean anything.
    assert accepted >= N_PLANS * 0.8
    assert rejected > 0
    assert nonvacuous >= N_PLANS * 0.5
