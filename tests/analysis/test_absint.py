"""Unit tests for the abstract interpreter (repro.core.analysis.absint).

Three layers: the Interval/AbsValue lattices, the per-operator transfer
functions (cardinality, array-length, and value-range proofs), and the
fact flow into PlanFacts licenses / cost-model bounds / EXPLAIN text.
"""

import pytest

from repro.core.analysis import PlanFacts
from repro.core.analysis.absint import (INF, AbsValue, Interval,
                                        SanitizerError, abs_of_value,
                                        analyze)
from repro.core.expr import Const, Input, Named
from repro.core.operators import (DE, AddUnion, ArrExtract, Comp, Cross,
                                  Diff, Grp, SetApply, SetCollapse,
                                  SetCreate, SubArr, TupExtract)
from repro.core.predicates import And, Atom, Not, TruePred
from repro.core.values import DNE, UNK, Arr, MultiSet, Tup
from repro.storage import Database


def build_db():
    db = Database()
    db.create("Emp", MultiSet([
        Tup({"name": "amy", "age": 31}),
        Tup({"name": "bob", "age": 45}),
        Tup({"name": "cal", "age": 28})]))
    db.create("Empty", MultiSet())
    db.create("Nums", MultiSet([1, 2, 2, 3]))
    db.create("Unky", MultiSet([Tup({"age": UNK}), Tup({"age": 50})]))
    db.create("Top", Arr([10, 20, 30, 40]))
    return db


def emp_sigma(op, value, source=None):
    return SetApply(
        Comp(Atom(TupExtract("age", Input()), op, Const(value)), Input()),
        source or Named("Emp"))


# -- lattices ---------------------------------------------------------------

def test_interval_arithmetic():
    a, b = Interval(2, 5), Interval(1, 3)
    assert a.add(b) == Interval(3, 8)
    assert a.mul(b) == Interval(2, 15)
    assert a.join(b) == Interval(1, 5)
    assert a.minus_floor(b) == Interval(0, 5)
    assert Interval.exact(0).mul(Interval(0, INF)) == Interval.exact(0)
    assert Interval.top().is_trivial()
    assert Interval(2, 5).describe() == "[2..5]"
    assert Interval(0, INF).describe() == "[0..∞]"


def test_abs_of_value_exactness():
    ms = abs_of_value(MultiSet([1, 2, 2]))
    assert ms.card == Interval.exact(3)
    assert ms.definitely("set") and ms.never_null()
    arr = abs_of_value(Arr(["a", "b"]))
    assert arr.length == Interval.exact(2)
    tup = abs_of_value(Tup({"x": 1, "y": UNK}))
    assert tup.closed and "x" in tup.always and "y" in tup.always
    num = abs_of_value(17)
    assert num.num == (17, 17) and num.const == 17
    assert abs_of_value(DNE).may_dne and not abs_of_value(DNE).maybe_value


def test_absvalue_join_widens():
    j = abs_of_value(MultiSet([1])).join(abs_of_value(MultiSet([1, 2, 3])))
    assert j.card == Interval(1, 3)
    j2 = abs_of_value(5).join(abs_of_value(UNK))
    assert j2.may_unk and j2.maybe_value


# -- cardinality transfer ----------------------------------------------------

def test_named_extent_seeds_exact_cardinality():
    db = build_db()
    plan = Named("Emp")
    an = analyze(plan, database=db)
    assert an.card_bounds(plan) == (3, 3)
    assert an.describe_bounds(plan) == "[3..3]"


def test_operator_bounds_flow_bottom_up():
    db = build_db()
    emp, nums = Named("Emp"), Named("Nums")
    cases = [
        (SetApply(Input(), emp), (3, 3)),          # per-element map
        (DE(nums), (1, 4)),                        # dups collapse
        (AddUnion(emp, Named("Emp")), (6, 6)),
        (Diff(nums, Named("Nums")), (0, 4)),
        (Cross(emp, nums), (12, 12)),
        (Grp(TupExtract("age", Input()), emp), (1, 3)),
        (SetCreate(Const(1)), (1, 1)),
        (SetCollapse(Named("Nums")), None),        # not a set-of-sets
    ]
    for plan, expected in cases:
        an = analyze(plan, database=db)
        assert an.card_bounds(plan) == expected, plan.describe()


def test_sigma_interval_and_findings():
    db = build_db()
    unsat = emp_sigma("<", 0)
    an = analyze(unsat, database=db)
    assert an.card_bounds(unsat) == (0, 0)
    assert an.is_statically_empty(unsat)
    assert any(f.kind == "unsat_sigma" for f in an.findings)

    taut = emp_sigma(">", 0)
    an2 = analyze(taut, database=db)
    assert an2.card_bounds(taut) == (3, 3)
    assert any(f.kind == "taut_sigma" for f in an2.findings)

    some = emp_sigma(">", 30)
    an3 = analyze(some, database=db)
    assert an3.card_bounds(some) == (0, 3)
    assert not an3.is_statically_empty(some)


def test_unknown_fields_block_unsat_proof():
    """A σ whose predicate may see UNK can't be proven unsatisfiable —
    the verdict set must keep U, so no finding and no empty proof."""
    db = build_db()
    plan = emp_sigma("<", 0, source=Named("Unky"))
    an = analyze(plan, database=db)
    assert not an.is_statically_empty(plan)
    assert not any(f.kind == "unsat_sigma" for f in an.findings)


def test_kleene_connectives_in_sigma_proofs():
    db = build_db()
    pred = And(Atom(TupExtract("age", Input()), ">", Const(0)),
               Not(Atom(TupExtract("age", Input()), "<", Const(100))))
    plan = SetApply(Comp(pred, Input()), Named("Emp"))
    an = analyze(plan, database=db)
    assert an.card_bounds(plan) == (0, 0)
    plan2 = SetApply(Comp(And(TruePred(), TruePred()), Input()),
                     Named("Emp"))
    an2 = analyze(plan2, database=db)
    assert an2.card_bounds(plan2) == (3, 3)


def test_empty_join_and_grp_findings():
    db = build_db()
    join = Cross(Named("Empty"), Named("Emp"))
    an = analyze(join, database=db)
    assert an.card_bounds(join) == (0, 0)
    assert any(f.kind == "empty_join_input" for f in an.findings)

    grp = Grp(TupExtract("age", Input()), Named("Empty"))
    an2 = analyze(grp, database=db)
    assert any(f.kind == "empty_grp_input" for f in an2.findings)


# -- array-length transfer ---------------------------------------------------

def test_array_bounds_proofs():
    db = build_db()
    safe = ArrExtract(2, Named("Top"))
    an = analyze(safe, database=db)
    assert an.is_bounds_safe(safe)
    assert not an.findings

    oob = ArrExtract(9, Named("Top"))
    an2 = analyze(oob, database=db)
    assert not an2.is_bounds_safe(oob)
    assert any(f.kind == "oob_subscript" for f in an2.findings)

    last = ArrExtract("last", Named("Top"))
    an3 = analyze(last, database=db)
    assert an3.is_bounds_safe(last)


def test_subarr_length_interval():
    db = build_db()
    sub = SubArr(2, 3, Named("Top"))
    an = analyze(sub, database=db)
    assert an.length_bounds(sub) == (2, 2)
    clipped = SubArr(3, 9, Named("Top"))
    an2 = analyze(clipped, database=db)
    assert an2.length_bounds(clipped) == (2, 2)


def test_subscript_into_subarr_composes():
    db = build_db()
    plan = ArrExtract(2, SubArr(2, 3, Named("Top")))
    an = analyze(plan, database=db)
    assert an.is_bounds_safe(plan)


# -- fact flow ---------------------------------------------------------------

def test_extend_facts_licenses():
    db = build_db()
    unsat = emp_sigma("<", 0)
    root = AddUnion(unsat, Named("Nums"))
    an = analyze(root, database=db)
    facts = an.extend_facts(PlanFacts())
    assert facts.is_statically_empty(unsat)
    assert facts.statically_empty_sort(unsat) == "set"
    assert facts.cardinality_bounds(root) == (4, 4)

    safe = ArrExtract(2, Named("Top"))
    an2 = analyze(safe, database=db)
    facts2 = an2.extend_facts()
    assert facts2.is_bounds_safe(safe)


def test_empty_source_licenses_any_body():
    """SET_APPLY over a proven-empty source never runs its body, so the
    empty short-circuit is licensed regardless of what the body does."""
    db = build_db()
    plan = SetApply(ArrExtract(9, Const(Arr([1]))), Named("Empty"))
    an = analyze(plan, database=db)
    assert an.extend_facts().is_statically_empty(plan)
    from repro.core.expr import evaluate
    assert (evaluate(plan, db.context(), mode="compiled",
                     analysis=analyze(plan, database=db))
            == evaluate(plan, db.context(), mode="interpreted"))


def test_facts_not_licensed_without_totality():
    """Work-skipping licenses require totality: a plan over an extent
    the analyzer knows nothing about (TOP, non-total) must never be
    declared statically empty, whatever its proven upper bound."""
    db = build_db()
    plan = Diff(Named("Empty"), Named("NoSuchExtent"))
    an = analyze(plan, database=db)
    bounds = an.card_bounds(plan)
    assert bounds is None or bounds[1] == 0  # hi is 0 either way
    assert not an.extend_facts().is_statically_empty(plan)


def test_bounds_map_is_structural():
    db = build_db()
    plan = DE(Named("Nums"))
    an = analyze(plan, database=db)
    bounds = an.bounds_map()
    # A *fresh* structurally-equal node hits the map (cost model use).
    assert bounds.get(Named("Nums")) == (4, 4)
    assert bounds.get(DE(Named("Nums"))) == (1, 4)


def test_cost_model_clamps_to_proven_bounds():
    from repro.core.optimizer import CostModel, Statistics
    db = build_db()
    plan = DE(Named("Nums"))
    an = analyze(plan, database=db)
    model = CostModel(Statistics.from_database(db), bounds=an.bounds_map())
    est = model.estimate(plan)
    assert 1 <= est.card <= 4


def test_explain_analyze_shows_static_bounds():
    import repro
    db = build_db()
    conn = repro.connect(db, repro.ExecutionOptions(analyze=True, trace=True))
    result = conn.execute("retrieve (E) from E in Emp")
    text = result.explain()
    assert "static [" in text


def test_statically_empty_pruning_preserves_value():
    import repro
    db = build_db()
    conn = repro.connect(db, repro.ExecutionOptions(analyze=True))
    plain = repro.connect(db)
    q = "retrieve (E.name) from E in Emp where E.age < 0"
    assert conn.execute(q).value == plain.execute(q).value
    assert len(conn.execute(q).rows()) == 0


def test_sanitizer_catches_stale_facts():
    """Facts from analyzing one tree must not be applied to another
    database state: the sanitizer exists to catch exactly this."""
    from repro.core.expr import evaluate
    db = build_db()
    plan = Named("Emp")
    an = analyze(plan, database=db)
    db2 = Database()
    db2.create("Emp", MultiSet([Tup({"name": "x", "age": 1})] * 7))
    with pytest.raises(SanitizerError):
        evaluate(plan, db2.context(), mode="compiled", analysis=an,
                 sanitize=True)


def test_sanitizer_metrics_counters_move():
    import repro
    from repro.obs import metrics
    before = metrics.SANITIZER_CHECKS_TOTAL.value()
    conn = repro.connect(build_db(), repro.ExecutionOptions(sanitize=True))
    conn.execute("retrieve (E) from E in Emp")
    assert metrics.SANITIZER_CHECKS_TOTAL.value() > before
