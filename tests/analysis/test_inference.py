"""Inheritance-aware inference: substitutability, lubs, narrowing,
declared signatures, and the structured type-error fields."""

import pytest

from repro.core.analysis import TypeInference, inference_for_database, \
    substitutable
from repro.core.expr import Const, Func, Input, Named
from repro.core.hierarchy import TypeHierarchy
from repro.core.methods import MethodCall
from repro.core.operators import AddUnion, SetApply, TupCreate, TupExtract
from repro.core.schema import SchemaCatalog, SchemaNode
from repro.core.typecheck import AlgebraTypeError, is_unknown
from repro.core.values import MultiSet, Tup
from repro.storage import Database


def make_hierarchy() -> TypeHierarchy:
    h = TypeHierarchy()
    h.add_type("Person")
    h.add_type("Student", ["Person"])
    h.add_type("Employee", ["Person"])
    return h


def person_schema() -> SchemaNode:
    return SchemaNode.tup({"name": SchemaNode.val(str),
                           "age": SchemaNode.val(int)}, name="Person")


def student_schema() -> SchemaNode:
    return SchemaNode.tup({"name": SchemaNode.val(str),
                           "age": SchemaNode.val(int),
                           "gpa": SchemaNode.val(float)}, name="Student")


def make_inference() -> TypeInference:
    h = make_hierarchy()
    catalog = SchemaCatalog()
    catalog.register(person_schema(), "Person")
    catalog.register(student_schema(), "Student")
    employee = SchemaNode.tup({"name": SchemaNode.val(str),
                               "age": SchemaNode.val(int),
                               "salary": SchemaNode.val(int)},
                              name="Employee")
    catalog.register(employee, "Employee")
    named = {"Students": SchemaNode.set_of(student_schema()),
             "Employees": SchemaNode.set_of(employee.clone()),
             "People": SchemaNode.set_of(person_schema())}
    return TypeInference(named, catalog, hierarchy=h)


class TestSubstitutable:
    def test_subtype_tuple_is_substitutable(self):
        h = make_hierarchy()
        assert substitutable(student_schema(), person_schema(), h)
        assert not substitutable(person_schema(), student_schema(), h)

    def test_width_subtyping_without_hierarchy(self):
        wide = SchemaNode.tup({"a": SchemaNode.val(int),
                               "b": SchemaNode.val(str)})
        narrow = SchemaNode.tup({"a": SchemaNode.val(int)})
        assert substitutable(wide, narrow)
        assert not substitutable(narrow, wide)

    def test_ref_targets_use_hierarchy(self):
        h = make_hierarchy()
        assert substitutable(SchemaNode.ref_to("Student"),
                             SchemaNode.ref_to("Person"), h)
        assert not substitutable(SchemaNode.ref_to("Person"),
                                 SchemaNode.ref_to("Student"), h)

    def test_unknown_unifies(self):
        assert substitutable(None, person_schema())
        assert substitutable(person_schema(), None)

    def test_collections_componentwise(self):
        h = make_hierarchy()
        assert substitutable(SchemaNode.set_of(student_schema()),
                             SchemaNode.set_of(person_schema()), h)
        assert not substitutable(SchemaNode.set_of(person_schema()),
                                 SchemaNode.arr_of(person_schema()), h)


class TestLub:
    def test_sibling_types_lub_to_common_supertype(self):
        env = make_inference()
        merged = env.lub(student_schema(),
                         env._schema_of_type("Employee"))
        assert merged is not None and merged.kind == "tup"
        assert merged.base_name == "Person"

    def test_addunion_of_sibling_sets_infers_supertype_set(self):
        env = make_inference()
        schema = env.check(AddUnion(Named("Students"), Named("Employees")))
        assert schema.kind == "set"
        assert schema.children[0].base_name == "Person"

    def test_lub_of_unrelated_tuples_keeps_shared_fields(self):
        env = TypeInference()
        a = SchemaNode.tup({"x": SchemaNode.val(int),
                            "y": SchemaNode.val(str)})
        b = SchemaNode.tup({"x": SchemaNode.val(int),
                            "z": SchemaNode.val(str)})
        merged = env.lub(a, b)
        assert merged.kind == "tup"
        assert set(merged.field_names) == {"x"}

    def test_lub_ref_targets(self):
        env = make_inference()
        merged = env.lub(SchemaNode.ref_to("Student"),
                         SchemaNode.ref_to("Employee"))
        assert merged.kind == "ref" and merged.target == "Person"


class TestNarrowing:
    def test_type_filter_narrows_body_input(self):
        env = make_inference()
        # Only Students reach the body, so .gpa is well-typed even
        # though People's static element type lacks the field.
        expr = SetApply(TupExtract("gpa", Input()), Named("People"),
                        type_filter=frozenset(["Student"]))
        schema = env.check(expr)
        assert schema.kind == "set"
        assert schema.children[0].scalar_type is float

    def test_without_filter_the_same_body_fails(self):
        env = make_inference()
        expr = SetApply(TupExtract("gpa", Input()), Named("People"))
        with pytest.raises(AlgebraTypeError):
            env.check(expr)


class TestSignatures:
    def test_builtin_count_signature(self):
        db = Database()
        db.create("Nums", MultiSet([1, 2, 3]))
        env = inference_for_database(db)
        schema = env.check(Func("count", [Named("Nums")]))
        assert schema.kind == "val" and schema.scalar_type is int

    def test_aggregate_signature_is_element_schema(self):
        db = Database()
        db.create("Nums", MultiSet([1, 2, 3]))
        env = inference_for_database(db)
        schema = env.check(Func("min", [Named("Nums")]))
        assert schema.kind == "val" and schema.scalar_type is int

    def test_drop_field_signature_reads_const_argument(self):
        db = Database()
        from repro.core.operators.library import register_library_functions
        register_library_functions(db)
        db.create("People", MultiSet([Tup({"name": "n", "age": 3})]))
        env = inference_for_database(db)
        expr = SetApply(Func("drop_field", [Input(), Const("age")]),
                        Named("People"))
        schema = env.check(expr)
        assert schema.kind == "set"
        assert list(schema.children[0].field_names) == ["name"]

    def test_registered_signature_flows_through(self):
        db = Database()
        db.register_function("twice", lambda v: v * 2,
                             signature=lambda args: SchemaNode.val(int))
        env = inference_for_database(db)
        schema = env.check(Func("twice", [Const(3)]))
        assert schema.scalar_type is int

    def test_unregistered_function_is_opaque(self):
        db = Database()
        env = inference_for_database(db)
        assert env.check(Func("mystery", [Const(1)])) is None

    def test_every_builtin_has_a_signature(self):
        from repro.excess.builtins import BUILTIN_SIGNATURES, BUILTINS
        assert set(BUILTIN_SIGNATURES) == set(BUILTINS)

    def test_every_library_function_has_a_signature(self):
        from repro.core.operators.library import LIBRARY_SIGNATURES
        db = Database()
        from repro.core.operators.library import register_library_functions
        register_library_functions(db)
        env = inference_for_database(db)
        for name in LIBRARY_SIGNATURES:
            assert env.signatures.get(name) is not None, name


class TestMethodDispatch:
    def test_method_schema_is_lub_over_implementations(self):
        db = Database()
        h = db.hierarchy
        h.add_type("Person")
        h.add_type("Student", ["Person"])
        db.methods.define("Person", "tag", [], TupCreate("k", Const(1)))
        db.methods.define("Student", "tag", [], TupCreate("k", Const(2)))
        db.create("People", MultiSet([
            Tup({"name": "a"}, type_name="Person"),
            Tup({"name": "b"}, type_name="Person")]))
        env = inference_for_database(db)
        schema = env.check(SetApply(MethodCall("tag", [], Input()),
                                    Named("People")))
        assert schema.kind == "set"
        element = schema.children[0]
        assert element.kind == "tup" and list(element.field_names) == ["k"]


class TestStructuredErrors:
    def test_error_carries_operator_and_sorts(self):
        env = make_inference()
        with pytest.raises(AlgebraTypeError) as excinfo:
            env.check(TupExtract("name", Named("People")))
        error = excinfo.value
        assert error.operator == "TUP_EXTRACT"
        assert error.expected == "tup"
        assert error.got == "set"
        assert error.expr is not None

    def test_unknown_schema_helpers(self):
        from repro.core.typecheck import unknown_schema
        assert is_unknown(unknown_schema())
        assert is_unknown(None)
        assert not is_unknown(SchemaNode.val(int))
