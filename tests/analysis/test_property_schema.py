"""Property test: rewriting never changes a plan's inferred schema.

Seeded random walks: start from each corpus tree, repeatedly pick a
random applicable single-step rewrite, and check after every step that
the inferred schema stays compatible with the original. This goes
beyond the one-shot sweep in rulecheck.py, which only checks depth-1
rewrites from the corpus roots.
"""

import random

import pytest

from repro.core.analysis import schemas_compatible
from repro.core.analysis.rulecheck import (rule_corpus, standard_environment,
                                           standard_facts)
from repro.core.transform import ALL_RULES
from repro.core.transform.engine import single_step_rewrites

MAX_STEPS = 6


@pytest.mark.parametrize("seed", range(12))
def test_random_rewrite_chains_preserve_schema(seed):
    rng = random.Random(seed)
    env = standard_environment()
    facts = standard_facts()
    for root in rule_corpus():
        want = env.check(root)
        current = root
        for _step in range(MAX_STEPS):
            options = single_step_rewrites(current, ALL_RULES, facts)
            if not options:
                break
            rule, current = rng.choice(options)
            got = env.check(current)  # every intermediate stays typed
            assert schemas_compatible(want, got), (
                "rule %s changed the schema of %s" %
                (rule, root.describe()))


def test_rewrites_are_closed_under_typing():
    # Depth-2 closure: everything one step away from a one-step rewrite
    # still typechecks (no rule produces an ill-typed tree from a
    # well-typed one anywhere in the corpus neighbourhood).
    env = standard_environment()
    facts = standard_facts()
    for root in rule_corpus():
        for _rule, mid in single_step_rewrites(root, ALL_RULES, facts):
            env.check(mid)
            for _rule2, leaf in single_step_rewrites(mid, ALL_RULES,
                                                     facts)[:5]:
                env.check(leaf)
