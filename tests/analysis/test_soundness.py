"""The rewrite-soundness gate: compatibility relation, verifier hooks,
and the optimizer debug mode over the paper's worked examples."""

import pytest

from repro.core.analysis import (RewriteSoundnessError, SoundnessChecker,
                                 inference_for_database, schemas_compatible)
from repro.core.expr import Const, Input, Named
from repro.core.operators import DE, SetApply, TupCat, TupCreate, TupExtract
from repro.core.optimizer import CostModel, Optimizer, Statistics
from repro.core.schema import SchemaNode
from repro.core.transform import ALL_RULES
from repro.core.transform.engine import RewriteEngine
from repro.core.transform.rule import Rule
from repro.core.values import MultiSet
from repro.storage import Database
from repro.workloads.figures import ALL_FIGURES, value_views
from repro.workloads.university import build_university


class TestSchemasCompatible:
    def test_tuple_field_order_is_ignored(self):
        a = SchemaNode.tup({"x": SchemaNode.val(int),
                            "y": SchemaNode.val(str)})
        b = SchemaNode.tup({"y": SchemaNode.val(str),
                            "x": SchemaNode.val(int)})
        assert schemas_compatible(a, b)

    def test_differing_fields_are_incompatible(self):
        a = SchemaNode.tup({"x": SchemaNode.val(int)})
        b = SchemaNode.tup({"z": SchemaNode.val(int)})
        assert not schemas_compatible(a, b)

    def test_unknowns_unify(self):
        from repro.core.typecheck import unknown_schema
        assert schemas_compatible(None, SchemaNode.val(int))
        assert schemas_compatible(
            SchemaNode.set_of(unknown_schema()),
            SchemaNode.set_of(SchemaNode.tup({"a": SchemaNode.val(int)})))

    def test_kind_mismatch(self):
        assert not schemas_compatible(SchemaNode.val(int),
                                      SchemaNode.set_of(SchemaNode.val(int)))


class _BrokenRule(Rule):
    """A deliberately unsound 'rule': drops a DE and renames the field."""

    name = "broken"

    def apply(self, expr, facts=None):
        if isinstance(expr, DE):
            return [SetApply(TupCreate("oops", Input()), expr.source)]
        return []


def _broken_rule() -> Rule:
    return _BrokenRule()


class TestSoundnessChecker:
    def _env(self):
        db = Database()
        db.create("People", MultiSet([]))
        env = inference_for_database(db)
        env.named["People"] = SchemaNode.set_of(
            SchemaNode.tup({"name": SchemaNode.val(str)}))
        return env

    def test_schema_change_raises(self):
        env = self._env()
        gate = SoundnessChecker(env)
        rule = _broken_rule()
        before = DE(Named("People"))
        after = rule.apply(before)[0]
        with pytest.raises(RewriteSoundnessError) as excinfo:
            gate(rule, before, after)
        assert "broken" in str(excinfo.value)
        assert excinfo.value.rule is rule

    def test_ill_typed_result_raises(self):
        env = self._env()
        gate = SoundnessChecker(env)
        before = DE(Named("People"))
        after = DE(TupExtract("name", Named("People")))  # set→tup misuse
        with pytest.raises(RewriteSoundnessError):
            gate("fake", before, after)

    def test_ill_typed_input_is_skipped(self):
        env = self._env()
        gate = SoundnessChecker(env)
        bad = TupExtract("name", Named("People"))
        gate("fake", bad, bad)
        assert gate.skipped == 1 and gate.checked == 0

    def test_sound_step_counts(self):
        env = self._env()
        gate = SoundnessChecker(env)
        gate("fake", DE(Named("People")), DE(DE(Named("People"))))
        assert gate.checked == 1


class TestEngineHooks:
    def _db_env(self):
        db = Database()
        db.create("People", MultiSet([]))
        env = inference_for_database(db)
        env.named["People"] = SchemaNode.set_of(
            SchemaNode.tup({"name": SchemaNode.val(str)}))
        return env

    def test_rewrite_engine_verifier_catches_broken_rule(self):
        env = self._db_env()
        engine = RewriteEngine([_broken_rule()],
                               verifier=SoundnessChecker(env))
        with pytest.raises(RewriteSoundnessError):
            engine.explore(DE(Named("People")))

    def test_rewrite_engine_verifier_passes_sound_rules(self):
        env = self._db_env()
        gate = SoundnessChecker(env)
        engine = RewriteEngine(ALL_RULES, max_trees=200, verifier=gate)
        engine.explore(DE(DE(Named("People"))))
        assert gate.checked > 0

    def test_optimizer_greedy_verifier(self):
        env = self._db_env()
        gate = SoundnessChecker(env)
        optimizer = Optimizer(strategy="greedy", verifier=gate)
        optimizer.optimize(DE(DE(Named("People"))))
        assert gate.checked > 0


class TestWorkedExamples:
    """Debug-mode optimization of Figures 6-11: every admitted rewrite
    must preserve the inferred schema of the worked examples."""

    @pytest.fixture(scope="class")
    def university(self):
        uni = build_university()
        value_views(uni)
        return uni

    @pytest.mark.parametrize("name", ["figure_6", "figure_7", "figure_8",
                                      "figure_9", "figure_10", "figure_11"])
    def test_optimizer_debug_mode_preserves_schemas(self, university, name):
        expr = ALL_FIGURES[name]()
        gate = SoundnessChecker(inference_for_database(university.db))
        model = CostModel(Statistics.from_database(university.db))
        optimizer = Optimizer(cost_model=model, max_depth=2, max_trees=200,
                              verifier=gate)
        optimizer.optimize(expr)  # raises RewriteSoundnessError on a bug
        assert gate.checked + gate.skipped > 0
