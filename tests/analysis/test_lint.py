"""The plan linter: at least one test per lint code L100-L106."""

import pytest

from repro.core.analysis import Linter, lint
from repro.core.analysis.diagnostics import (LINT_CODES, Severity, Span,
                                             SourceMap)
from repro.core.expr import Const, Func, Input, Named
from repro.core.methods import MethodCall
from repro.core.operators import (DE, Comp, Deref, Pi, SetApply, TupExtract)
from repro.core.predicates import Atom
from repro.core.values import MultiSet, Tup
from repro.storage import Database

from tests.engine.test_engine_equivalence import build_db


@pytest.fixture(scope="module")
def db():
    return build_db()


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestL100Typecheck:
    def test_ill_typed_plan_is_an_error(self, db):
        out = lint(TupExtract("name", Named("People")), db)
        assert "L100" in codes(out)
        finding = next(d for d in out if d.code == "L100")
        assert finding.severity == Severity.ERROR
        assert "TUP_EXTRACT" in finding.message

    def test_well_typed_plan_has_no_l100(self, db):
        out = lint(SetApply(TupExtract("name", Input()),
                            Named("People")), db)
        assert "L100" not in codes(out)


class TestL101DeadProjection:
    def test_pi_keeping_unused_fields_is_flagged(self, db):
        inner = SetApply(Pi(["name", "age"], Input()), Named("People"))
        plan = SetApply(TupExtract("name", Input()), inner)
        out = lint(plan, db)
        finding = next(d for d in out if d.code == "L101")
        assert "age" in finding.hint and "name" in finding.hint

    def test_extract_over_wide_pi_is_flagged(self, db):
        plan = SetApply(TupExtract("name",
                                   Pi(["name", "age"], Input())),
                        Named("People"))
        assert "L101" in codes(lint(plan, db))

    def test_fully_used_projection_is_clean(self, db):
        inner = SetApply(Pi(["name"], Input()), Named("People"))
        plan = SetApply(TupExtract("name", Input()), inner)
        assert "L101" not in codes(lint(plan, db))


class TestL102RedundantDE:
    def test_de_over_de_is_redundant(self, db):
        out = lint(DE(DE(Named("People"))), db)
        finding = next(d for d in out if d.code == "L102")
        assert "duplicate-free" in finding.message

    def test_de_over_stored_duplicate_free_set(self):
        db = Database()
        db.create("Unique", MultiSet([1, 2, 3]))
        assert "L102" in codes(lint(DE(Named("Unique")), db))

    def test_de_over_duplicates_is_justified(self, db):
        # People holds duplicate occurrences, so the DE does real work.
        assert "L102" not in codes(lint(DE(Named("People")), db))


class TestL103DanglingDeref:
    def test_deref_over_collection_with_dangling_ref(self, db):
        plan = SetApply(TupExtract("name", Deref(Input())), Named("Refs"))
        finding = next(d for d in lint(plan, db) if d.code == "L103")
        assert "Refs" in finding.message
        assert finding.severity == Severity.WARNING

    def test_deref_over_sound_store_is_clean(self):
        db = Database()
        person = Tup({"name": "a"}, type_name="Person")
        db.hierarchy.add_type("Person")
        db.create("Refs", MultiSet([db.store.insert(person, "Person")]))
        plan = SetApply(TupExtract("name", Deref(Input())), Named("Refs"))
        assert "L103" not in codes(lint(plan, db))


class TestL104DneDiscard:
    def test_predicate_over_maybe_dne_field(self, db):
        # Some People rows have age = dne: the comparison silently
        # discards those occurrences (§3), worth a heads-up.
        pred = Atom(TupExtract("age", Input()), "<", Const(30))
        plan = SetApply(Comp(pred, Input()), Named("People"))
        finding = next(d for d in lint(plan, db) if d.code == "L104")
        assert "dne" in finding.message

    def test_predicate_over_clean_field_is_quiet(self, db):
        pred = Atom(TupExtract("name", Input()), "=", Const("p1"))
        plan = SetApply(Comp(pred, Input()), Named("People"))
        assert "L104" not in codes(lint(plan, db))


class TestL105IncompleteDispatch:
    def _subtype_only_db(self):
        db = Database()
        db.hierarchy.add_type("Person")
        db.hierarchy.add_type("Student", ["Person"])
        db.methods.define("Student", "grade", [], Const(4.0))
        db.create("People", MultiSet([
            Tup({"name": "a"}, type_name="Person"),
            Tup({"name": "b"}, type_name="Person")]))
        return db

    def test_method_missing_on_supertype(self):
        db = self._subtype_only_db()
        plan = SetApply(MethodCall("grade", [], Input()), Named("People"))
        finding = next(d for d in lint(plan, db) if d.code == "L105")
        assert "'grade'" in finding.message and "Person" in finding.message
        assert finding.severity == Severity.ERROR

    def test_type_filter_restores_completeness(self):
        db = self._subtype_only_db()
        plan = SetApply(MethodCall("grade", [], Input()), Named("People"),
                        type_filter=frozenset(["Student"]))
        assert "L105" not in codes(lint(plan, db))


class TestL106OpaqueFunction:
    def test_unregistered_function_is_reported_once(self, db):
        plan = SetApply(Func("mystery", [Func("mystery", [Input()])]),
                        Named("Nums"))
        out = [d for d in lint(plan, db) if d.code == "L106"]
        assert len(out) == 1
        assert "register_function" in out[0].hint

    def test_registered_signature_silences_it(self):
        from repro.core.schema import SchemaNode
        db = Database()
        db.create("Nums", MultiSet([1]))
        db.register_function("twice", lambda v: v * 2,
                             signature=lambda args: SchemaNode.val(int))
        plan = SetApply(Func("twice", [Input()]), Named("Nums"))
        assert "L106" not in codes(lint(plan, db))


class TestOrderingAndSpans:
    def test_errors_sort_before_warnings_and_infos(self, db):
        # One plan with an L100 error plus an L106 info.
        plan = TupExtract("name", Func("mystery", [Named("People")]))
        out = lint(plan, db)
        ranks = [Severity.rank(d.severity) for d in out]
        assert ranks == sorted(ranks)

    def test_source_map_spans_flow_into_findings(self, db):
        source_map = SourceMap()
        func = Func("mystery", [Named("Nums")])
        source_map.record(func, Span(3, 14))
        out = Linter(db, source_map=source_map).lint(func)
        finding = next(d for d in out if d.code == "L106")
        assert finding.span == Span(3, 14)
        assert "at 3:14" in finding.describe()

    def test_every_documented_code_has_a_severity(self):
        for code, (severity, summary) in LINT_CODES.items():
            assert severity in (Severity.ERROR, Severity.WARNING,
                                Severity.INFO)
            assert summary
