"""The sanitizer differential suite and the L200-series lint codes.

Four parts:

* the 240-plan differential — every generated plan is bit-identical
  across interpreted / compiled / compiled-with-licenses /
  compiled-with-sanitizer execution, and the sanitizer never fires;
* the paper-figure queries under the same four modes;
* one crafted plan per L200-series code proving each diagnostic can
  actually fire;
* EXPLAIN ANALYZE containment — on the Figure 3/4 workloads every
  proven ``static [lo..hi]`` interval contains the actual cardinality.
"""

import re

import pytest

import repro
from repro.core.analysis import Linter, lint
from repro.core.expr import Const, Input, Named
from repro.core.operators import (AddUnion, ArrExtract, Comp, Cross, Grp,
                                  SetApply, TupExtract)
from repro.core.predicates import Atom
from repro.core.values import MultiSet, Tup
from repro.storage import Database
from repro.workloads.plangen import (N_PLANS, build_fixture_db,
                                     generate_plan, run_modes,
                                     university_sweep)


@pytest.fixture(scope="module")
def fixture_db():
    return build_fixture_db()


# -- the differential sweep --------------------------------------------------

@pytest.mark.parametrize("seed", range(N_PLANS))
def test_differential_plan(seed, fixture_db):
    expr = generate_plan(seed)
    modes = run_modes(expr, fixture_db)
    reference = modes.pop("interpreted")
    for mode, outcome in modes.items():
        assert outcome == reference, "%s diverged on %s" % (mode,
                                                            expr.describe())


def test_differential_sweep_is_not_vacuous(fixture_db):
    """The sweep must exercise successes, arrays, and proven facts —
    pin the generator's coverage so refactors can't gut it."""
    from repro.core.analysis.absint import analyze
    ok = proofs = arrays = 0
    for seed in range(N_PLANS):
        expr = generate_plan(seed)
        analysis = analyze(expr, database=fixture_db)
        if analysis.card_bounds(expr) or analysis.length_bounds(expr):
            proofs += 1
        if analysis.length_bounds(expr):
            arrays += 1
        outcome, _ = run_modes(expr, fixture_db)["interpreted"]
        if outcome == "ok":
            ok += 1
    assert ok >= N_PLANS * 0.8, "too many generated plans fail (%d ok)" % ok
    assert proofs >= N_PLANS * 0.5, "analyzer proves too little"
    assert arrays >= 5, "no array plans generated"


def test_university_figures_under_all_modes():
    report = university_sweep()
    assert not report.failed, report.render()
    assert report.plans >= 8


# -- one crafted plan per L200-series code -----------------------------------

def lint_db():
    db = Database()
    db.create("Emp", MultiSet([Tup({"name": "amy", "age": 31}),
                               Tup({"name": "bob", "age": 45})]))
    db.create("Empty", MultiSet())
    from repro.core.values import Arr
    db.create("Top", Arr([1, 2, 3]))
    return db


def sigma(op, value, source):
    return SetApply(
        Comp(Atom(TupExtract("age", Input()), op, Const(value)), Input()),
        source)


def codes(diagnostics):
    return {d.code for d in diagnostics}


def test_l200_oob_subscript_fires_and_is_error():
    out = lint(ArrExtract(9, Named("Top")), lint_db())
    assert "L200" in codes(out)
    finding = next(d for d in out if d.code == "L200")
    assert finding.severity == "error"


def test_l201_unsat_sigma_fires():
    out = lint(sigma("<", 0, Named("Emp")), lint_db())
    assert "L201" in codes(out)


def test_l202_taut_sigma_fires():
    out = lint(sigma(">", 0, Named("Emp")), lint_db())
    assert "L202" in codes(out)


def test_l203_empty_join_input_fires():
    out = lint(Cross(Named("Empty"), Named("Emp")), lint_db())
    assert "L203" in codes(out)


def test_l204_empty_grp_input_fires():
    out = lint(Grp(TupExtract("age", Input()), Named("Empty")), lint_db())
    assert "L204" in codes(out)


def test_l205_non_exhaustive_dispatch_fires(fixture_db):
    plan = AddUnion(
        SetApply(Input(), Named("People"),
                 type_filter=frozenset(["Student"])),
        SetApply(Input(), Named("People"),
                 type_filter=frozenset(["Employee"])))
    out = lint(plan, fixture_db)
    assert "L205" in codes(out)
    finding = next(d for d in out if d.code == "L205")
    assert "Person" in finding.message


def test_l205_quiet_when_closure_covered(fixture_db):
    plan = AddUnion(
        SetApply(Input(), Named("People"),
                 type_filter=frozenset(["Person"])),
        SetApply(Input(), Named("People"),
                 type_filter=frozenset(["Student"])))
    assert "L205" not in codes(lint(plan, fixture_db))


def test_l205_quiet_for_single_typed_sigma(fixture_db):
    plan = SetApply(Input(), Named("People"),
                    type_filter=frozenset(["Student"]))
    assert "L205" not in codes(lint(plan, fixture_db))


def test_l206_stats_contradiction_fires():
    from repro.core.optimizer import ObjectStats, Statistics
    db = lint_db()
    stats = Statistics()
    stats.set_object("Emp", ObjectStats(cardinality=500.0))
    out = Linter(db, statistics=stats).lint(Named("Emp"))
    assert "L206" in codes(out)


def test_l206_quiet_when_stats_agree():
    from repro.core.optimizer import ObjectStats, Statistics
    db = lint_db()
    stats = Statistics()
    stats.set_object("Emp", ObjectStats(cardinality=2.0))
    out = Linter(db, statistics=stats).lint(Named("Emp"))
    assert "L206" not in codes(out)


# -- EXPLAIN ANALYZE containment ---------------------------------------------

STATIC_RE = re.compile(
    r"actual card=(\d+).*static \[(\d+|∞)\.\.(\d+|∞)\]")


def assert_static_contains_actual(text):
    checked = 0
    for line in text.splitlines():
        match = STATIC_RE.search(line)
        if not match:
            continue
        actual = int(match.group(1))
        lo = 0 if match.group(2) == "∞" else int(match.group(2))
        hi = float("inf") if match.group(3) == "∞" else int(match.group(3))
        assert lo <= actual <= hi, line
        checked += 1
    return checked


def test_static_bounds_contain_actuals_on_figure_queries():
    from repro.workloads import build_university
    uni = build_university(seed=3)
    conn = repro.connect(uni.db, repro.ExecutionOptions(analyze=True, trace=True))
    queries = [
        "retrieve (TopTen[5].name, TopTen[5].salary)",          # Figure 3
        'retrieve (Employees.dept.name) '
        'where Employees.city = "Madison"',                      # Figure 4
        "retrieve (Employees.salary) where Employees.salary >= 0",
    ]
    checked = 0
    for query in queries:
        result = conn.execute(query)
        checked += assert_static_contains_actual(result.explain())
    assert checked >= 3, "no static bounds rendered at all"


def test_analyze_mode_matches_plain_on_figure_queries():
    from repro.workloads import build_university
    uni = build_university(seed=3)
    conn = repro.connect(uni.db, repro.ExecutionOptions(analyze=True))
    plain = repro.connect(uni.db)
    sanitized = repro.connect(uni.db, repro.ExecutionOptions(sanitize=True))
    queries = [
        "retrieve (TopTen[5].name, TopTen[5].salary)",
        'retrieve (Employees.dept.name) '
        'where Employees.city = "Madison"',
    ]
    for query in queries:
        expected = plain.execute(query).value
        assert conn.execute(query).value == expected
        assert sanitized.execute(query).value == expected


# -- documentation sync ------------------------------------------------------

def test_every_lint_code_documented():
    """Every code in diagnostics.LINT_CODES appears in both README.md
    and DESIGN.md, so the docs can't drift from the implementation."""
    import os
    from repro.core.analysis.diagnostics import iter_codes
    root = os.path.join(os.path.dirname(__file__), "..", "..")
    for name in ("README.md", "DESIGN.md"):
        with open(os.path.join(root, name)) as handle:
            text = handle.read()
        missing = [code for code in iter_codes() if code not in text]
        assert not missing, "%s is missing lint codes: %s" % (name, missing)


def test_cli_subcommands_documented():
    """Every ``python -m repro.cli`` subcommand appears in README.md
    and in the cli module docstring, so the surfaces can't drift."""
    import os
    from repro import cli
    root = os.path.join(os.path.dirname(__file__), "..", "..")
    with open(os.path.join(root, "README.md")) as handle:
        readme = handle.read()
    for name in cli.SUBCOMMANDS:
        needle = "repro.cli %s" % name
        assert needle in readme, "README.md is missing %r" % needle
        assert needle in cli.__doc__, "cli docstring is missing %r" % needle
