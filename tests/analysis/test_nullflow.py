"""Null-flow analysis: unk propagation, dne discard, hazard observer."""

from repro.core.analysis import NullFlow, NullInfo, info_of_value, \
    nullflow_for_database
from repro.core.analysis.nullflow import DNE_FLAG, UNK_FLAG
from repro.core.expr import Const, Func, Input, Named
from repro.core.operators import Comp, Deref, SetApply, TupExtract
from repro.core.predicates import Atom
from repro.core.values import DNE, UNK, MultiSet, Tup
from repro.storage import Database


def test_info_of_value_tracks_nulls_per_field():
    info = info_of_value(MultiSet([Tup({"age": UNK, "name": "a"}),
                                   Tup({"age": 3, "name": "b"})]))
    assert info.element.field("age").may_unk()
    assert not info.element.field("name").may_unk()


def test_info_of_value_dne_field():
    info = info_of_value(Tup({"age": DNE}))
    assert info.field("age").may_dne()
    assert not info.field("age").may_unk()


def test_missing_field_reads_as_dne():
    info = info_of_value(Tup({"name": "a"}))
    assert info.field("other").may_dne()


def test_set_apply_discards_dne_results():
    flow = NullFlow({"People": NullInfo(
        element=NullInfo(fields={"age": NullInfo(frozenset([DNE_FLAG]))}))})
    out = flow.check(SetApply(TupExtract("age", Input()), Named("People")))
    # dne results never enter the result multiset (§3).
    assert not out.element.may_dne()


def test_comp_adds_dne_and_propagates_unk():
    flow = NullFlow({"Nums": NullInfo(
        element=NullInfo(frozenset([UNK_FLAG])))})
    comp = Comp(Atom(Input(), "<", Const(5)), Input())
    out = flow.check(SetApply(comp, Named("Nums")))
    # The surviving occurrences still may be unk; dne was discarded by
    # the surrounding SET_APPLY.
    assert out.element.may_unk()
    assert not out.element.may_dne()


def test_deref_may_yield_dne():
    flow = NullFlow()
    assert flow.check(Deref(Input())).may_dne()


def test_observer_sees_hazardous_operands():
    hazards = []
    flow = NullFlow(
        {"People": NullInfo(element=NullInfo(
            fields={"age": NullInfo(frozenset([DNE_FLAG]))}))},
        observer=lambda comp, operand, info: hazards.append(
            (operand.describe(), sorted(info.value))))
    pred = Atom(TupExtract("age", Input()), "<", Const(30))
    flow.check(SetApply(Comp(pred, Input()), Named("People")))
    assert any("age" in desc and flags == ["dne"]
               for desc, flags in hazards)


def test_dne_returning_builtins_flagged():
    flow = NullFlow(dne_functions=frozenset(["min"]))
    assert flow.check(Func("min", [Const(MultiSet())])).may_dne()
    assert not flow.check(Func("count", [Const(MultiSet())])).may_dne()


def test_nullflow_for_database_seeds_named_and_builtins():
    db = Database()
    db.create("Ages", MultiSet([1, UNK]))
    flow = nullflow_for_database(db)
    assert flow.check(Named("Ages")).element.may_unk()
    # min/max/avg return dne on empty input (excess builtins contract).
    assert "min" in flow.dne_functions and "avg" in flow.dne_functions


def test_optimistic_default_no_false_hazards():
    db = Database()
    db.create("Clean", MultiSet([Tup({"age": 1}), Tup({"age": 2})]))
    hazards = []
    flow = nullflow_for_database(
        db, observer=lambda comp, operand, info: hazards.append(info)
        if info.may_dne() or info.may_unk() else None)
    pred = Atom(TupExtract("age", Input()), "<", Const(30))
    flow.check(SetApply(Comp(pred, Input()), Named("Clean")))
    assert hazards == []
