"""End-to-end wiring: Session(verify=True), the compiled engine's
duplicate-freedom license, and the lint surfaces (CLI + shell)."""

import pytest

from repro.cli import Shell, lint_source, run_lint
from repro.core.analysis import facts_for_database
from repro.core.engine.compiler import compile_plan
from repro.core.expr import Const, Input, Named, evaluate
from repro.core.operators import DE, Comp, SetApply, TupExtract
from repro.core.predicates import Atom
from repro.core.typecheck import AlgebraTypeError
from repro.core.values import UNK, MultiSet, Tup
from repro.excess.session import Session
from repro.storage import Database
from repro.workloads.university import build_university


@pytest.fixture(scope="module")
def uni():
    return build_university()


QUERY = ("retrieve (E.name, E.salary) from E in Employees "
         "where E.salary > 50000")


class TestSessionVerify:
    def test_both_engines_agree_under_verify(self, uni):
        interp = Session(uni.db, engine="interpreted", verify=True)
        compiled = Session(uni.db, engine="compiled", verify=True)
        a = interp.run(QUERY)[-1].value
        b = compiled.run(QUERY)[-1].value
        assert a == b and len(a) > 0

    def test_verify_matches_unverified_results(self, uni):
        plain = Session(uni.db).run(QUERY)[-1].value
        checked = Session(uni.db, verify=True).run(QUERY)[-1].value
        assert plain == checked

    def test_verify_rejects_ill_typed_plan_before_execution(self, uni):
        uni.db.create("VCodes", MultiSet([1, 2, 3]))
        session = Session(uni.db, verify=True)
        with pytest.raises(AlgebraTypeError):
            session.run("retrieve (C.name) from C in VCodes")


class TestDuplicateFreedomLicense:
    def _db(self):
        db = Database()
        db.create("Unique", MultiSet([1, 2, 3]))
        return db

    def test_facts_license_de_pass_through(self):
        db = self._db()
        plan = DE(Named("Unique"))
        pipeline = compile_plan(plan, facts=facts_for_database(db))
        assert any("pass-through" in note for note in pipeline.notes)
        got = pipeline.execute(db.context())
        want = evaluate(plan, db.context(), mode="interpreted")
        assert got == want

    def test_without_facts_de_does_real_work(self):
        db = self._db()
        pipeline = compile_plan(DE(Named("Unique")))
        assert not any("pass-through" in note for note in pipeline.notes)

    def test_verified_compiled_session_receives_facts(self, uni):
        # Session(verify=True, engine="compiled") threads plan facts
        # into evaluate(); the run must still match the interpreter.
        session = Session(uni.db, engine="compiled", verify=True)
        facts = session._verify_plan(Named("Employees"))
        assert facts is not None
        assert facts.is_duplicate_free(Named("Employees"))


class TestSigmaDupFreeLicense:
    """σ over a duplicate-free extent preserves duplicate-freedom when
    its predicate provably never returns U over the stored population,
    so a DE above the σ compiles to a pass-through."""

    def _sigma(self, name="U"):
        return SetApply(
            Comp(Atom(TupExtract("k", Input()), ">", Const(0)), Input()),
            Named(name))

    def test_sigma_over_dupfree_extent_licenses_de(self):
        db = Database()
        db.create("U", MultiSet([Tup({"k": 1}), Tup({"k": 2})]))
        sigma = self._sigma()
        plan = DE(sigma)
        facts = facts_for_database(db, plan)
        assert facts.is_duplicate_free(sigma)
        pipeline = compile_plan(plan, facts=facts)
        assert any("pass-through" in note for note in pipeline.notes)
        got = pipeline.execute(db.context())
        want = evaluate(plan, db.context(), mode="interpreted")
        assert got == want

    def test_unk_field_blocks_sigma_license(self):
        # An unk in the compared field means the predicate may return
        # U; maybe-kept occurrences cannot be proven pass-through.
        db = Database()
        db.create("U", MultiSet([Tup({"k": 1}), Tup({"k": UNK})]))
        sigma = self._sigma()
        facts = facts_for_database(db, DE(sigma))
        assert not facts.is_duplicate_free(sigma)
        pipeline = compile_plan(DE(sigma), facts=facts)
        assert not any("pass-through" in note for note in pipeline.notes)

    def test_duplicate_source_blocks_sigma_license(self):
        db = Database()
        db.create("U", MultiSet([Tup({"k": 1}), Tup({"k": 1})]))
        sigma = self._sigma()
        facts = facts_for_database(db, DE(sigma))
        assert not facts.is_duplicate_free(sigma)


class TestLintSurfaces:
    def test_cli_reports_five_distinct_codes(self, uni):
        session = uni.session
        uni.db.create("Codes", MultiSet([1, 2, 3]))
        uni.db.store.delete(uni.employee_refs[5].oid)  # dangle one ref
        queries = [
            "retrieve (C.name) from C in Codes",                   # L100
            "retrieve (de(de(E.sub_ords))) from E in Employees",   # L102
            "retrieve (E.name) from E in Employees",               # L103
            "retrieve (E.name) from E in Employees "
            "where min(E.kids.age) < 10",                          # L104
            "retrieve (mystery(E.salary)) from E in Employees",    # L106
        ]
        seen = set()
        for query in queries:
            blocks, _errors = lint_source(session, query)
            seen |= {block.split()[0] for block in blocks
                     if block.startswith("L")}
        assert {"L100", "L102", "L103", "L104", "L106"} <= seen

    def test_lint_blocks_carry_source_spans(self, uni):
        blocks, errors = lint_source(
            uni.session, "retrieve (mystery(E.salary)) from E in Employees")
        assert errors == 0
        assert any("L106 info at 1:" in block for block in blocks)

    def test_shell_dot_lint(self):
        shell = Shell()
        shell.handle_meta(".demo")
        out = shell.handle_meta(
            ".lint retrieve (mystery(E.salary)) from E in Employees")
        assert "L106" in out
        assert shell.handle_meta(".lint").startswith("usage:")

    def test_run_lint_demo_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.xs"
        clean.write_text("retrieve (E.name) from E in Employees\n")
        assert run_lint(["--demo", str(clean)]) == 0
        assert "ok: no findings" in capsys.readouterr().out

        broken = tmp_path / "broken.xs"
        broken.write_text("retrieve (E.nosuchfield) from E in Employees\n")
        assert run_lint(["--demo", str(broken)]) == 2
        assert "error:" in capsys.readouterr().out
