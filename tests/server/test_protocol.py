"""Wire-protocol unit tests: decoding, parameter binding, read/write
classification, response shapes."""

import json

import pytest

from repro.server.protocol import (ProtocolError, bind_params,
                                   classify_source, decode_request,
                                   encode_response, error_response,
                                   result_response)


# -- decode_request ---------------------------------------------------------

def test_decode_minimal_query():
    request = decode_request(b'{"q": "retrieve (1)"}')
    assert request.q == "retrieve (1)"
    assert request.params == {}
    assert request.txn is None
    assert request.timeout is None


def test_decode_full_request():
    request = decode_request(
        b'{"q": "x", "params": {"a": 1}, "txn": "begin", '
        b'"timeout": 2.5, "id": 7}')
    assert request.params == {"a": 1}
    assert request.txn == "begin"
    assert request.timeout == 2.5
    assert request.id == 7


@pytest.mark.parametrize("line", [
    b"not json",
    b'"just a string"',
    b"[1, 2]",
    b'{"q": 42}',
    b"{}",
    b'{"q": "x", "params": [1]}',
    b'{"q": "x", "timeout": -1}',
    b'{"q": "x", "timeout": "soon"}',
])
def test_decode_rejects_malformed(line):
    with pytest.raises(ProtocolError):
        decode_request(line)


def test_decode_rejects_bad_txn_verb():
    with pytest.raises(ProtocolError) as err:
        decode_request(b'{"txn": "yolo"}')
    assert err.value.code == "txn"


def test_atomic_requires_a_script():
    with pytest.raises(ProtocolError):
        decode_request(b'{"txn": "atomic"}')


# -- bind_params ------------------------------------------------------------

def test_bind_int_float_str_bool():
    out = bind_params("retrieve (x) from x in C where x = $a and "
                      "y = $b and n = $name and f = $flag",
                      {"a": 3, "b": 2.5, "name": "ann", "flag": True})
    assert "x = 3" in out
    assert "y = 2.5" in out
    assert 'n = "ann"' in out
    assert "f = true" in out


def test_bind_string_quote_selection():
    assert bind_params("$s", {"s": 'say "hi"'}) == "'say \"hi\"'"
    with pytest.raises(ProtocolError):
        bind_params("$s", {"s": "both \" and '"})


def test_bind_unbound_and_unused_params():
    with pytest.raises(ProtocolError):
        bind_params("where x = $missing", {})
    # Unused params are fine (scripts are often templated).
    assert bind_params("retrieve (1)", {"spare": 1}) == "retrieve (1)"


def test_bind_dollar_inside_string_literal_is_data():
    out = bind_params('where n = "$notaparam" and k = $k', {"k": 9})
    assert '"$notaparam"' in out
    assert "k = 9" in out


def test_bind_rejects_exotic_types():
    with pytest.raises(ProtocolError):
        bind_params("$x", {"x": [1, 2]})


# -- classify_source --------------------------------------------------------

@pytest.mark.parametrize("source", [
    "retrieve (x) from x in C",
    "range of e is Emps retrieve (e.name)",
    "retrieve (x) from x in C retrieve (y) from y in D",
    "retrieve unique value (x.f) from x in C where x.f > 1",
])
def test_reads_classify_as_read(source):
    assert classify_source(source) == "read"


@pytest.mark.parametrize("source", [
    "append to C value (1)",
    "delete x where x > 1",
    "replace x (f = 1)",
    "create C: { int4 }",
    "define type T: (x: int4)",
    "retrieve (x) from x in C into Saved",
    "retrieve (x) from x in C append to D value (1)",
    "this is not a program",
])
def test_writes_and_garbage_classify_as_write(source):
    assert classify_source(source) == "write"


# -- responses --------------------------------------------------------------

def test_error_response_shape():
    payload = error_response("timeout", "too slow", request_id=3)
    assert payload == {"ok": False, "id": 3,
                       "error": {"code": "timeout", "message": "too slow"}}
    line = encode_response(payload)
    assert line.endswith(b"\n")
    assert json.loads(line) == payload


def test_result_response_empty():
    payload = result_response([], request_id="r1")
    assert payload["ok"] is True
    assert payload["rows"] == []
    assert payload["kind"] == "empty"
    assert payload["id"] == "r1"
