"""Graceful shutdown under fire: a real ``python -m repro.server``
process is signalled mid-workload and must drain, checkpoint, and exit
cleanly — and every *acknowledged* write must survive the restart."""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import connect
from repro.server.client import ServerClient

SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


def _spawn_server(tmp_path, *extra):
    """Start ``python -m repro.server`` on an ephemeral port; returns
    (process, port)."""
    port_file = tmp_path / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.server",
         "--db", str(tmp_path / "db"), "--port", "0",
         "--port-file", str(port_file), *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError("server died on startup:\n%s"
                                 % process.stdout.read().decode())
        if port_file.exists() and port_file.read_text().strip():
            return process, int(port_file.read_text().split()[0])
        time.sleep(0.05)
    process.kill()
    raise AssertionError("server never wrote its port file")


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_mid_workload_drains_and_recovers(tmp_path, signum):
    process, port = _spawn_server(tmp_path)
    acked = [[] for _ in range(4)]
    submitted = [[] for _ in range(4)]
    stop = threading.Event()

    def worker(cid):
        try:
            with ServerClient(port, timeout=30.0) as client:
                i = 0
                while not stop.is_set():
                    value = cid * 100000 + i
                    submitted[cid].append(value)
                    client.execute("append to Work value (%d)" % value)
                    acked[cid].append(value)
                    i += 1
        except Exception:
            # Shutdown refuses / drops the connection; expected.
            pass

    with ServerClient(port) as admin:
        admin.execute("create Work: { int4 }")
    threads = [threading.Thread(target=worker, args=(cid,))
               for cid in range(4)]
    for thread in threads:
        thread.start()
    # Let the workload get going, then signal mid-flight.
    deadline = time.monotonic() + 10.0
    while (sum(len(per) for per in acked) < 40
           and time.monotonic() < deadline):
        time.sleep(0.02)
    process.send_signal(signum)
    for thread in threads:
        thread.join(timeout=30.0)
    stop.set()
    out, _ = process.communicate(timeout=30.0)
    assert process.returncode == 0, out.decode()

    # Drain checkpointed: snapshot exists and the WAL was folded in.
    assert (tmp_path / "db" / "snapshot.json").exists()

    # Every acknowledged write survived; nothing not submitted appears.
    conn = connect(str(tmp_path / "db"))
    rows = conn.execute("retrieve (x) from x in Work").rows()
    persisted = {row.fields[0][1] for row in rows}
    acked_all = {v for per in acked for v in per}
    submitted_all = {v for per in submitted for v in per}
    assert sum(len(per) for per in acked) >= 40
    assert acked_all <= persisted
    assert persisted <= submitted_all
    assert len(persisted) == len(rows)


def test_drain_completes_queued_writes(tmp_path):
    """Writes accepted before the signal land even when the signal
    arrives while they sit in the commit queue."""
    process, port = _spawn_server(tmp_path)
    with ServerClient(port, timeout=30.0) as client:
        client.execute("create Work: { int4 }")
        # Pipeline a burst, then signal before reading any response.
        for i in range(50):
            client.send("append to Work value (%d)" % i)
        process.send_signal(signal.SIGTERM)
        responses = []
        try:
            for _ in range(50):
                responses.append(client.recv())
        except Exception:
            pass  # tail may be refused once draining starts
    out, _ = process.communicate(timeout=30.0)
    assert process.returncode == 0, out.decode()

    conn = connect(str(tmp_path / "db"))
    rows = conn.execute("retrieve (x) from x in Work").rows()
    persisted = sorted(row.fields[0][1] for row in rows)
    # Everything acknowledged OK is durable.
    assert len(persisted) >= len(responses)
    assert persisted == list(range(len(persisted)))
