"""Concurrency regressions for the shared-state audit: metrics,
OID allocation, and store version bumps must be exact under threads.

These are the pieces the server hammers from the event loop, the
reader pool, and the writer thread simultaneously; a lost update in
any of them shows up as corrupted counters, duplicate OIDs, or stale
deref caches.
"""

import threading

from repro.core.hierarchy import TypeHierarchy
from repro.core.oid import OIDGenerator
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.storage.store import ObjectStore

THREADS = 8
ROUNDS = 2000


def _hammer(worker):
    """Run *worker(thread_index)* on THREADS threads, rethrowing."""
    errors = []

    def wrapped(index):
        try:
            worker(index)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def test_counter_increments_are_exact():
    counter = Counter("ts_counter", "test")
    _hammer(lambda i: [counter.inc() for _ in range(ROUNDS)])
    assert counter.value() == THREADS * ROUNDS


def test_labelled_counter_increments_are_exact():
    counter = Counter("ts_counter_labels", "test")
    _hammer(lambda i: [counter.inc(kind="k%d" % (i % 2))
                       for _ in range(ROUNDS)])
    total = counter.value(kind="k0") + counter.value(kind="k1")
    assert total == THREADS * ROUNDS


def test_gauge_inc_dec_balances_to_zero():
    gauge = Gauge("ts_gauge", "test")

    def worker(i):
        for _ in range(ROUNDS):
            gauge.inc()
            gauge.dec()

    _hammer(worker)
    assert gauge.value() == 0


def test_histogram_count_and_sum_are_exact():
    hist = Histogram("ts_hist", "test", buckets=(1, 10, 100))
    _hammer(lambda i: [hist.observe(1.0) for _ in range(ROUNDS)])
    state = hist.to_json()["values"][0]
    assert state["count"] == THREADS * ROUNDS
    assert state["sum"] == float(THREADS * ROUNDS)


def test_oid_generator_never_duplicates():
    hierarchy = TypeHierarchy()
    for name in ("A", "B"):
        hierarchy.add_type(name)
    gen = OIDGenerator(hierarchy)
    allocated = [[] for _ in range(THREADS)]

    def worker(i):
        mine = allocated[i]
        for _ in range(ROUNDS):
            mine.append(gen.new_ref("A" if i % 2 else "B").oid)

    _hammer(worker)
    oids = [oid for per in allocated for oid in per]
    assert len(set(oids)) == THREADS * ROUNDS


def test_store_version_bumps_are_exact():
    store = ObjectStore()
    before = store.version
    _hammer(lambda i: [store._bump_version() for _ in range(ROUNDS)])
    assert store.version == before + THREADS * ROUNDS


def test_store_inserts_from_threads_stay_consistent():
    store = ObjectStore()
    refs = [[] for _ in range(THREADS)]

    def worker(i):
        mine = refs[i]
        for k in range(ROUNDS // 4):
            mine.append(store.insert((i, k), "T%d" % i))

    _hammer(worker)
    flat = [ref for per in refs for ref in per]
    assert len({ref.oid for ref in flat}) == len(flat)
    for i, per in enumerate(refs):
        for k, ref in enumerate(per):
            assert store.get(ref.oid) == (i, k)
            assert store.exact_type(ref.oid) == "T%d" % i
