"""End-to-end server tests over real sockets (in-process server)."""

import json
import time
import urllib.request

import pytest

from repro.server import Server, ServerThread
from repro.server.client import ClientPool, ServerClient, ServerError
from repro.storage import Database


@pytest.fixture
def hosted(tmp_path):
    """A durable server on an ephemeral port, with a slow function
    registered for timeout tests."""
    server = Server(str(tmp_path / "db"), query_timeout=10.0,
                    metrics_port=0, slow_query_threshold=0.0)
    server.db.register_function("snooze",
                                lambda s: (time.sleep(s), s)[1])
    with ServerThread(server):
        yield server


def _connect(server, **kwargs):
    return ServerClient(server.port, **kwargs)


def _scalars(result):
    """Unwrap single-column retrieve rows to their bare values."""
    return [row.fields[0][1] for row in result.rows()]


def test_ddl_write_read_roundtrip(hosted):
    with _connect(hosted) as client:
        client.execute("define type Emp: ( name: string, sal: int4 )")
        client.execute("create Emps: { ref Emp }")
        result = client.execute('append to Emps (name = "ann", sal = 10)')
        assert result.kind == "append"
        rows = client.execute(
            "retrieve (e.name, e.sal) from e in Emps").rows()
        assert len(rows) == 1
        assert rows[0].fields == (("name", "ann"), ("sal", 10))


def test_params_are_bound(hosted):
    with _connect(hosted) as client:
        client.execute("create Nums: { int4 }")
        for v in (1, 2, 3):
            client.execute("append to Nums value ($v)", params={"v": v})
        result = client.execute(
            "retrieve (x) from x in Nums where x > $min",
            params={"min": 1})
        assert sorted(_scalars(result)) == [2, 3]


def test_errors_map_to_codes(hosted):
    with _connect(hosted) as client:
        with pytest.raises(ServerError) as err:
            client.execute("retrieve (x) from x in Nowhere")
        assert err.value.code == "parse"
        with pytest.raises(ServerError) as err:
            client.execute("((((")
        assert err.value.code in ("parse", "execute")
        # The connection survives errors.
        assert _scalars(client.execute("retrieve (1)")) == [1]


def test_explicit_transaction_across_requests(hosted):
    with _connect(hosted) as a, _connect(hosted) as b:
        a.execute("create Nums: { int4 }")
        a.begin()
        a.execute("append to Nums value (1)")
        # Isolated from b until commit.
        assert b.execute("retrieve (x) from x in Nums",
                         timeout=5.0).rows() == []
        # Visible inside the transaction.
        assert _scalars(a.execute("retrieve (x) from x in Nums")) == [1]
        a.commit()
        assert _scalars(b.execute("retrieve (x) from x in Nums")) == [1]


def test_abort_discards(hosted):
    with _connect(hosted) as client:
        client.execute("create Nums: { int4 }")
        client.begin()
        client.execute("append to Nums value (9)")
        client.abort()
        assert client.execute("retrieve (x) from x in Nums").rows() == []


def test_atomic_is_all_or_nothing(hosted):
    with _connect(hosted) as client:
        client.execute("create Nums: { int4 }")
        with pytest.raises(ServerError):
            client.atomic("append to Nums value (1) "
                          "append to Missing value (2)")
        assert client.execute("retrieve (x) from x in Nums").rows() == []
        client.atomic("append to Nums value (1) append to Nums value (2)")
        assert sorted(_scalars(client.execute(
            "retrieve (x) from x in Nums"))) == [1, 2]


def test_txn_protocol_errors(hosted):
    with _connect(hosted) as client:
        with pytest.raises(ServerError) as err:
            client.commit()
        assert err.value.code == "txn"
        client.begin()
        with pytest.raises(ServerError) as err:
            client.begin()
        assert err.value.code == "txn"
        client.abort()


def test_disconnect_aborts_open_transaction(hosted):
    with _connect(hosted) as a:
        a.execute("create Nums: { int4 }")
        a.begin()
        a.execute("append to Nums value (5)")
        # No commit: the socket close must abort and release the writer.
    deadline = time.monotonic() + 5.0
    with _connect(hosted) as b:
        while time.monotonic() < deadline:
            if b.execute("retrieve (x) from x in Nums").rows() == []:
                break
            time.sleep(0.02)
        assert b.execute("retrieve (x) from x in Nums").rows() == []
        # And the write lock is free again.
        b.atomic("append to Nums value (7)")
        assert _scalars(b.execute("retrieve (x) from x in Nums")) == [7]


def test_read_timeout(hosted):
    with _connect(hosted) as client:
        with pytest.raises(ServerError) as err:
            client.execute("retrieve (snooze(3))", timeout=0.2)
        assert err.value.code == "timeout"
        # Server still healthy afterwards.
        assert _scalars(client.execute("retrieve (1)")) == [1]


def test_request_id_echo_and_pipelining(hosted):
    with _connect(hosted) as client:
        client.send("retrieve (1)", request_id="a")
        client.send("retrieve (2)", request_id="b")
        first, second = client.recv(), client.recv()
        assert (first.id, second.id) == ("a", "b")
        assert _scalars(first) == [1]
        assert _scalars(second) == [2]


def test_admission_rejects_when_saturated(tmp_path):
    server = Server(str(tmp_path / "db"), queue_depth=2,
                    query_timeout=10.0)
    with ServerThread(server):
        with ServerClient(server.port) as holder, \
                ServerClient(server.port) as w1, \
                ServerClient(server.port) as w2, \
                ServerClient(server.port) as w3:
            holder.execute("create Nums: { int4 }")
            holder.begin()  # blocks the writer
            w1.send("append to Nums value (1)")
            w2.send("append to Nums value (2)")
            time.sleep(0.3)
            with pytest.raises(ServerError) as err:
                w3.execute("append to Nums value (3)")
            assert err.value.code == "admission"
            holder.commit()
            assert w1.recv().kind == "append"
            assert w2.recv().kind == "append"


def test_max_clients_cap(tmp_path):
    server = Server(Database(), max_clients=1)
    with ServerThread(server):
        with ServerClient(server.port) as first:
            first.execute("retrieve (1)")
            with pytest.raises(ServerError) as err:
                ServerClient(server.port).execute("retrieve (1)")
            assert err.value.code == "admission"


def test_metrics_endpoint(hosted):
    with _connect(hosted) as client:
        client.execute("create Nums: { int4 }")
        client.execute("append to Nums value (1)")
        client.execute("retrieve (x) from x in Nums")
        host, port = hosted.metrics_address
        base = "http://%s:%d" % (host, port)
        text = urllib.request.urlopen(base + "/metrics").read().decode()
        assert "repro_server_connections_active" in text
        assert "repro_server_requests_total" in text
        assert "repro_server_group_commit_batch" in text
        payload = json.loads(
            urllib.request.urlopen(base + "/metrics.json").read())
        assert payload["repro_server_connections_total"]["kind"] == "counter"
        stats = json.loads(urllib.request.urlopen(base + "/stats").read())
        assert stats["connections"] >= 1
        health = urllib.request.urlopen(base + "/healthz").read()
        assert health == b"ok\n"
        assert urllib.request.urlopen(base + "/metrics?x=1").status == 200


def test_slowlog_tags_client_ids(hosted):
    with _connect(hosted) as a, _connect(hosted) as b:
        a.execute("create Nums: { int4 }")
        a.execute("append to Nums value (1)")
        b.execute("retrieve (x) from x in Nums")
        by_client = hosted.slow_log.by_client()
        clients = set(by_client) - {""}
        # Both connections produced entries, attributed separately.
        assert len(clients) >= 2
        assert all(c.startswith("c") for c in clients)
        host, port = hosted.metrics_address
        slowlog = json.loads(urllib.request.urlopen(
            "http://%s:%d/slowlog" % (host, port)).read())
        assert set(slowlog) >= clients


def test_shutdown_refuses_new_work(tmp_path):
    server = Server(str(tmp_path / "db"))
    thread = ServerThread(server).start()
    with ServerClient(server.port) as client:
        client.execute("create Nums: { int4 }")
        thread.stop()
    with pytest.raises((ConnectionError, OSError)):
        ServerClient(server.port, timeout=2.0)


def test_client_pool(hosted):
    with _connect(hosted) as admin:
        admin.execute("create Nums: { int4 }")
        admin.execute("append to Nums value (1)")
    with ClientPool(hosted.port, size=2) as pool:
        assert _scalars(pool.execute("retrieve (x) from x in Nums")) == [1]
        with pool.connection() as c1, pool.connection() as c2:
            assert c1 is not c2
            assert _scalars(c1.execute("retrieve (1)")) == [1]
            assert _scalars(c2.execute("retrieve (2)")) == [2]
        # Released clients are reused.
        with pool.connection() as again:
            assert again in (c1, c2)
