"""Isolation under concurrency: snapshot readers must never observe a
torn multi-statement transaction, and a multi-client workload must be
indistinguishable from the same workload run serially."""

import json
import threading
import time

import pytest

from repro.server import Server, ServerThread
from repro.server.client import ServerClient


@pytest.fixture
def hosted(tmp_path):
    server = Server(str(tmp_path / "db"), max_clients=32,
                    queue_depth=256, query_timeout=60.0)
    with ServerThread(server):
        yield server


def test_readers_never_see_torn_atomic_writes(hosted):
    """Writers append balanced pairs (+i, -i) atomically; every
    concurrent snapshot read must see a multiset of complete pairs."""
    port = hosted.port
    with ServerClient(port) as admin:
        admin.execute("create Pairs: { int4 }")

    stop = threading.Event()
    errors = []

    def writer(base):
        try:
            with ServerClient(port, timeout=60.0) as client:
                for i in range(base, base + 40):
                    client.atomic("append to Pairs value (%d) "
                                  "append to Pairs value (%d)" % (i, -i))
        except BaseException as exc:
            errors.append(exc)
        finally:
            stop.set()

    def reader():
        try:
            with ServerClient(port, timeout=60.0) as client:
                while not stop.is_set():
                    rows = client.execute(
                        "retrieve (x) from x in Pairs").rows()
                    values = sorted(row.fields[0][1] for row in rows)
                    assert len(values) % 2 == 0, \
                        "odd row count %d: torn pair" % len(values)
                    positives = sorted(v for v in values if v > 0)
                    negatives = sorted(-v for v in values if v < 0)
                    assert positives == negatives, \
                        "unbalanced snapshot: %r" % (values,)
        except BaseException as exc:
            errors.append(exc)

    writers = [threading.Thread(target=writer, args=(base,))
               for base in (1, 1001, 2001)]
    readers = [threading.Thread(target=reader) for _ in range(4)]
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join()
    stop.set()
    for thread in readers:
        thread.join()
    if errors:
        raise errors[0]

    with ServerClient(port) as admin:
        rows = admin.execute("retrieve (x) from x in Pairs").rows()
    assert len(rows) == 2 * 3 * 40


def test_in_txn_reads_see_own_writes_only(hosted):
    """A transaction holder reads its own uncommitted rows; outside
    snapshots stay pinned at the pre-transaction state."""
    port = hosted.port
    with ServerClient(port) as holder, ServerClient(port) as outside:
        holder.execute("create T: { int4 } append to T value (0)")
        holder.begin()
        for v in (1, 2, 3):
            holder.execute("append to T value (%d)" % v)
            inside = holder.execute("retrieve (x) from x in T").rows()
            snap = outside.execute("retrieve (x) from x in T",
                                   timeout=10.0).rows()
            assert len(inside) == 1 + v
            assert len(snap) == 1
        holder.abort()
        after = outside.execute("retrieve (x) from x in T").rows()
        assert len(after) == 1


def _canonical_rows(client, query):
    return json.dumps(sorted(client.execute(query).raw_rows,
                             key=json.dumps), separators=(",", ":"))


def _run_workload(workdir, name, clients, total_ops):
    server = Server(str(workdir / name), max_clients=32,
                    queue_depth=256, query_timeout=60.0)
    with ServerThread(server):
        port = server.port
        with ServerClient(port) as admin:
            admin.execute("create D: { int4 }")
        ops = total_ops // clients
        errors = []

        def worker(cid):
            try:
                with ServerClient(port, timeout=60.0) as client:
                    for i in range(ops):
                        client.execute("append to D value (%d)"
                                       % (cid * ops + i))
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(cid,))
                   for cid in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        with ServerClient(port) as admin:
            return _canonical_rows(admin, "retrieve (x) from x in D")


def test_multi_client_differential_matches_serial(tmp_path):
    """The same appends via 8 concurrent clients and via 1 client leave
    canonically identical databases."""
    serial = _run_workload(tmp_path, "serial", 1, 256)
    fanned = _run_workload(tmp_path, "fanned", 8, 256)
    assert serial == fanned
