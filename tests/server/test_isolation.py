"""Isolation under concurrency: snapshot readers must never observe a
torn multi-statement transaction, and a multi-client workload must be
indistinguishable from the same workload run serially."""

import json
import threading
import time

import pytest

from repro.server import Server, ServerThread
from repro.server.client import ServerClient


@pytest.fixture
def hosted(tmp_path):
    server = Server(str(tmp_path / "db"), max_clients=32,
                    queue_depth=256, query_timeout=60.0)
    with ServerThread(server):
        yield server


def test_readers_never_see_torn_atomic_writes(hosted):
    """Writers append balanced pairs (+i, -i) atomically; every
    concurrent snapshot read must see a multiset of complete pairs."""
    port = hosted.port
    with ServerClient(port) as admin:
        admin.execute("create Pairs: { int4 }")

    stop = threading.Event()
    errors = []

    def writer(base):
        try:
            with ServerClient(port, timeout=60.0) as client:
                for i in range(base, base + 40):
                    client.atomic("append to Pairs value (%d) "
                                  "append to Pairs value (%d)" % (i, -i))
        except BaseException as exc:
            errors.append(exc)
        finally:
            stop.set()

    def reader():
        try:
            with ServerClient(port, timeout=60.0) as client:
                while not stop.is_set():
                    rows = client.execute(
                        "retrieve (x) from x in Pairs").rows()
                    values = sorted(row.fields[0][1] for row in rows)
                    assert len(values) % 2 == 0, \
                        "odd row count %d: torn pair" % len(values)
                    positives = sorted(v for v in values if v > 0)
                    negatives = sorted(-v for v in values if v < 0)
                    assert positives == negatives, \
                        "unbalanced snapshot: %r" % (values,)
        except BaseException as exc:
            errors.append(exc)

    writers = [threading.Thread(target=writer, args=(base,))
               for base in (1, 1001, 2001)]
    readers = [threading.Thread(target=reader) for _ in range(4)]
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join()
    stop.set()
    for thread in readers:
        thread.join()
    if errors:
        raise errors[0]

    with ServerClient(port) as admin:
        rows = admin.execute("retrieve (x) from x in Pairs").rows()
    assert len(rows) == 2 * 3 * 40


def test_in_txn_reads_see_own_writes_only(hosted):
    """A transaction holder reads its own uncommitted rows; outside
    snapshots stay pinned at the pre-transaction state."""
    port = hosted.port
    with ServerClient(port) as holder, ServerClient(port) as outside:
        holder.execute("create T: { int4 } append to T value (0)")
        holder.begin()
        for v in (1, 2, 3):
            holder.execute("append to T value (%d)" % v)
            inside = holder.execute("retrieve (x) from x in T").rows()
            snap = outside.execute("retrieve (x) from x in T",
                                   timeout=10.0).rows()
            assert len(inside) == 1 + v
            assert len(snap) == 1
        holder.abort()
        after = outside.execute("retrieve (x) from x in T").rows()
        assert len(after) == 1


def _canonical_rows(client, query):
    return json.dumps(sorted(client.execute(query).raw_rows,
                             key=json.dumps), separators=(",", ":"))


def _run_workload(workdir, name, clients, total_ops):
    server = Server(str(workdir / name), max_clients=32,
                    queue_depth=256, query_timeout=60.0)
    with ServerThread(server):
        port = server.port
        with ServerClient(port) as admin:
            admin.execute("create D: { int4 }")
        ops = total_ops // clients
        errors = []

        def worker(cid):
            try:
                with ServerClient(port, timeout=60.0) as client:
                    for i in range(ops):
                        client.execute("append to D value (%d)"
                                       % (cid * ops + i))
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(cid,))
                   for cid in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        with ServerClient(port) as admin:
            return _canonical_rows(admin, "retrieve (x) from x in D")


def test_multi_client_differential_matches_serial(tmp_path):
    """The same appends via 8 concurrent clients and via 1 client leave
    canonically identical databases."""
    serial = _run_workload(tmp_path, "serial", 1, 256)
    fanned = _run_workload(tmp_path, "fanned", 8, 256)
    assert serial == fanned


# ---------------------------------------------------------------------------
# Snapshot index epochs on the server read path
# ---------------------------------------------------------------------------


def test_pool_of_one_reader_passes_differential(tmp_path):
    """ExecutionOptions(readers=1): the optimized read path with a
    single snapshot-reader thread is indistinguishable from the
    default pool."""
    from repro import ExecutionOptions

    def run(name, readers):
        server = Server(str(tmp_path / name),
                        ExecutionOptions(readers=readers),
                        max_clients=32, queue_depth=256,
                        query_timeout=60.0)
        assert server.readers == readers
        with ServerThread(server):
            port = server.port
            with ServerClient(port) as admin:
                admin.execute("create D: { int4 }")
                admin.execute(" ".join("append to D value (%d)" % v
                                       for v in range(64)))
            out = []
            errors = []

            def worker():
                try:
                    with ServerClient(port, timeout=60.0) as client:
                        for _ in range(8):
                            out.append(_canonical_rows(
                                client, "retrieve (x) from x in D "
                                        "where x < 10"))
                except BaseException as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]
            assert len(set(out)) == 1
            return out[0]

    assert run("one", 1) == run("many", 8)


def test_concurrent_index_ddl_never_serves_stale_reads(hosted):
    """Index create/drop/abort racing in-flight snapshot reads: every
    read must answer exactly from its snapshot, indexed or not."""
    from repro.core.expr import Input

    port = hosted.port
    with ServerClient(port) as admin:
        admin.execute("create I: { int4 }")
        admin.execute(" ".join("append to I value (%d)" % v
                               for v in range(80)))
    expected = _canonical_rows_static(port, "retrieve (x) from x in I "
                                            "where x = 17")
    stop = threading.Event()
    errors = []

    def churner():
        # The only mutating thread: flips the index definition (and
        # aborts one mid-transaction creation) while readers fly.
        indexes = hosted.db.indexes
        journal = hosted.db.journal
        try:
            while not stop.is_set():
                indexes.create_index("keyed", "I", Input())
                indexes.drop_index("keyed", "I", Input())
                journal.begin()
                indexes.create_index("ordered", "I", Input())
                journal.abort()
                indexes.drop_index("ordered", "I", Input())
        except BaseException as exc:
            errors.append(exc)

    def reader():
        try:
            with ServerClient(port, timeout=60.0) as client:
                while not stop.is_set():
                    got = json.dumps(
                        sorted(client.execute(
                            "retrieve (x) from x in I where x = 17"
                        ).raw_rows, key=json.dumps),
                        separators=(",", ":"))
                    assert got == expected, got
        except BaseException as exc:
            errors.append(exc)

    ddl = threading.Thread(target=churner)
    readers = [threading.Thread(target=reader) for _ in range(4)]
    for thread in readers:
        thread.start()
    ddl.start()
    time.sleep(1.0)
    stop.set()
    ddl.join(10)
    for thread in readers:
        thread.join(10)
    if errors:
        raise errors[0]


def _canonical_rows_static(port, query):
    with ServerClient(port) as client:
        return json.dumps(sorted(client.execute(query).raw_rows,
                                 key=json.dumps), separators=(",", ":"))


def test_remote_explain_matches_local_annotations(hosted):
    """EXPLAIN ANALYZE over the wire carries the same access-path
    annotations the local ``.analyze`` renders."""
    from repro.core.expr import Input

    port = hosted.port
    with ServerClient(port) as client:
        client.execute("create E: { int4 }")
        client.execute(" ".join("append to E value (%d)" % v
                                for v in range(100)))
        hosted.db.indexes.create_index("keyed", "E", Input())
        probed = client.analyze("retrieve (x) from x in E where x = 3")
        assert "via index probe[" in probed
        hosted.db.indexes.drop_index("keyed", "E", Input())
        scanned = client.analyze("retrieve (x) from x in E where x = 3")
        assert "via scan[" in scanned
        assert "via index probe[" not in scanned
        # Rows still flow alongside the explain text.
        result = client.execute("retrieve (x) from x in E where x = 3",
                                explain=True)
        assert result.explain is not None
        assert len(result.raw_rows) == 1
