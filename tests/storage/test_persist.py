"""Persistence tests: values, expressions, and whole databases."""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expr import Const, Func, Input, Named
from repro.core.methods import MethodCall, Param
from repro.core.operators import (Comp, Deref, Grp, Pi, SetApply, SubArr,
                                  TupExtract, sigma)
from repro.core.predicates import And, Atom, Not, TruePred
from repro.core.serialize import (SerializationError, expr_from_json,
                                  expr_to_json, value_from_json,
                                  value_to_json)
from repro.core.values import DNE, UNK, Arr, MultiSet, Ref, Tup
from repro.excess import Session
from repro.storage import Database
from repro.storage.persist import (PersistError, database_from_json,
                                   database_to_json, load_database,
                                   save_database)
from repro.workloads import build_university


# ---------------------------------------------------------------------------
# Value serialization
# ---------------------------------------------------------------------------

VALUES = [
    42, 2.5, "text", True, False, DNE, UNK,
    Tup(), Tup(a=1, b="x"),
    Tup({"name": "s"}, type_name="Student"),
    MultiSet(), MultiSet([1, 1, 2]),
    MultiSet([MultiSet([Tup(a=1)]), MultiSet()]),
    Arr(), Arr([1, Tup(x=Arr(["deep"]))]),
    Ref(110042, "Employee"), Ref("string-oid"),
]


@pytest.mark.parametrize("value", VALUES, ids=lambda v: repr(v)[:40])
def test_value_round_trip(value):
    assert value_from_json(value_to_json(value)) == value


def test_value_round_trip_preserves_cardinalities():
    ms = MultiSet(counts={Tup(a=1): 3, Tup(a=2): 1})
    assert value_from_json(value_to_json(ms)) == ms


def test_unserializable_value():
    with pytest.raises(SerializationError):
        value_to_json(object())


def test_malformed_value_payload():
    with pytest.raises(SerializationError):
        value_from_json({"t": "mystery"})


nested_values = st.recursive(
    st.one_of(st.integers(-5, 5), st.text("ab", max_size=3),
              st.booleans()),
    lambda children: st.one_of(
        st.lists(children, max_size=3).map(MultiSet),
        st.lists(children, max_size=3).map(Arr),
        st.dictionaries(st.sampled_from(["a", "b"]), children,
                        max_size=2).map(Tup)),
    max_leaves=8)


@settings(max_examples=80, deadline=None)
@given(nested_values)
def test_value_round_trip_property(value):
    assert value_from_json(value_to_json(value)) == value


# ---------------------------------------------------------------------------
# Expression serialization
# ---------------------------------------------------------------------------

EXPRS = [
    Input(),
    Named("Employees"),
    Const(MultiSet([1, 2])),
    Func("inc", [Input(), Const(1)]),
    TupExtract("name", Deref(Input())),
    Pi(["a", "b"], Input()),
    SetApply(TupExtract("a", Input()), Named("X")),
    SetApply(Input(), Named("X"), type_filter=frozenset(["A", "B"])),
    sigma(And(Atom(Input(), ">", Const(1)),
              Not(Atom(Input(), "=", Const(3)))), Named("X")),
    Grp(TupExtract("k", Input()), Named("X")),
    SubArr(2, "last", Named("R")),
    Comp(TruePred(), Named("X")),
    MethodCall("boss", [Param("arg")], Input()),
]


@pytest.mark.parametrize("expr", EXPRS, ids=lambda e: e.describe()[:40])
def test_expr_round_trip(expr):
    restored = expr_from_json(expr_to_json(expr))
    assert restored == expr


def test_expr_round_trip_is_json_compatible():
    payload = expr_to_json(EXPRS[8])
    assert expr_from_json(json.loads(json.dumps(payload))) == EXPRS[8]


def test_unknown_node_rejected():
    with pytest.raises(SerializationError):
        expr_from_json({"node": "Teleport"})


# ---------------------------------------------------------------------------
# Whole-database persistence
# ---------------------------------------------------------------------------


@pytest.fixture
def saved_university(tmp_path):
    uni = build_university(n_departments=3, n_employees=9, n_students=12,
                           seed=6)
    uni.session.run("""
        define Person function boss () returns char[]
            { retrieve value (this.name) }
        define Employee function boss () returns char[]
            { retrieve value (this.manager.name) }
    """)
    path = str(tmp_path / "uni.json")
    save_database(uni.db, path)
    return uni, path


def test_queries_survive_reload(saved_university):
    uni, path = saved_university
    query = ("range of E is Employees retrieve (E.boss()) "
             "where E.dept.floor = 1")
    before = uni.session.query(query)
    db2 = load_database(path, functions={"age": uni.db.functions["age"]})
    assert Session(db2).query(query) == before


def test_identity_survives_reload(saved_university):
    uni, path = saved_university
    db2 = load_database(path)
    ref = next(uni.db.get("Employees").elements())
    assert db2.store.get(ref.oid) == uni.db.store.get(ref.oid)
    assert db2.store.exact_type(ref.oid) == "Employee"


def test_fresh_allocations_do_not_collide(saved_university):
    uni, path = saved_university
    db2 = load_database(path)
    new_ref = db2.store.insert(Tup(), "Employee")
    assert new_ref.oid not in uni.db.store._objects


def test_hierarchy_and_types_survive(saved_university):
    _, path = saved_university
    db2 = load_database(path)
    assert db2.hierarchy.is_subtype("Student", "Person")
    fields = [f for f, _ in db2.types.effective_fields("Employee")]
    assert "salary" in fields and "kids" in fields


def test_created_types_survive_and_drive_translation(saved_university):
    """Deref-on-entry for { ref T } collections needs created_types."""
    _, path = saved_university
    db2 = load_database(path)
    result = Session(db2).query(
        "range of S is Students retrieve (S.gpa)")
    assert len(result) == 12


def test_ddl_continues_after_reload(saved_university):
    _, path = saved_university
    db2 = load_database(path)
    session = Session(db2)
    session.run("define type Course: (title: char[]) create Courses: { Course }")
    assert "Courses" in db2


def test_missing_functions_surfaced(saved_university):
    _, path = saved_university
    db2 = load_database(path)  # 'age' not re-registered
    assert getattr(db2, "missing_functions", []) == ["age"]


def test_unsupported_format_rejected():
    with pytest.raises(PersistError):
        database_from_json({"format": 99})


def test_empty_database_round_trips(tmp_path):
    db = Database()
    db.create("Nums", MultiSet([1, 2, 2]))
    path = str(tmp_path / "small.json")
    save_database(db, path)
    db2 = load_database(path)
    assert db2.get("Nums") == MultiSet([1, 2, 2])


def test_updates_after_reload(saved_university):
    _, path = saved_university
    db2 = load_database(path)
    session = Session(db2)
    session.run("range of S is Students delete S where S.gpa < 3.0")
    remaining = session.query("retrieve value (S.gpa) from S in Students")
    assert all(g >= 3.0 for g in remaining)


# ---------------------------------------------------------------------------
# Crash-safe snapshots
# ---------------------------------------------------------------------------


def test_save_is_atomic_on_serialization_failure(tmp_path):
    """A failed save must leave the previous snapshot readable and no
    temp file behind."""
    path = str(tmp_path / "db.json")
    db = Database()
    db.create("Nums", MultiSet([1, 2]))
    save_database(db, path)
    db.create("Poison", object())  # unserializable
    with pytest.raises(SerializationError):
        save_database(db, path)
    assert not os.path.exists(path + ".tmp")
    recovered = load_database(path)  # the old snapshot is intact
    assert recovered.get("Nums") == MultiSet([1, 2])


def test_save_goes_through_a_temp_rename(tmp_path, monkeypatch):
    """The target path is only ever touched by os.replace."""
    import repro.storage.persist as persist
    path = str(tmp_path / "db.json")
    replaced = []
    real_replace = os.replace

    def spy(src, dst):
        replaced.append((src, dst))
        return real_replace(src, dst)

    monkeypatch.setattr(persist.os, "replace", spy)
    db = Database()
    db.create("Nums", MultiSet([1]))
    save_database(db, path)
    assert replaced == [(path + ".tmp", path)]
    assert load_database(path).get("Nums") == MultiSet([1])


# ---------------------------------------------------------------------------
# Index persistence
# ---------------------------------------------------------------------------


def test_index_definitions_round_trip(saved_university, tmp_path):
    uni, _ = saved_university
    db = uni.db
    db.indexes.build_typed("Employees")
    db.indexes.build_keyed("Students", TupExtract("gpa", Deref(Input())))
    path = str(tmp_path / "indexed.json")
    save_database(db, path)

    db2 = load_database(path)
    assert db2.indexes.typed("Employees") is not None
    rebuilt = db2.indexes.keyed("Students", TupExtract("gpa", Deref(Input())))
    assert rebuilt is not None
    # The rebuilt index answers lookups over the reloaded extent.
    some_key = rebuilt.keys()[0]
    assert len(rebuilt.lookup(some_key)) >= 1


def test_index_definitions_skip_dropped_names(tmp_path):
    db = Database()
    db.create("Xs", MultiSet([Tup(a=1), Tup(a=2)]))
    db.indexes.build_keyed("Xs", TupExtract("a", Input()))
    db.drop("Xs")
    assert db.indexes.definitions() == []


def test_snapshot_without_indexes_loads(tmp_path):
    """Backward compatibility: older snapshots have no 'indexes' key."""
    db = Database()
    db.create("Nums", MultiSet([1]))
    doc = database_to_json(db)
    doc.pop("indexes", None)
    assert database_from_json(doc).get("Nums") == MultiSet([1])
