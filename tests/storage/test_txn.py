"""Transactions: begin/commit/abort, savepoints, autocommit, snapshot
isolation, and the deref-cache staleness fix."""

import pytest

from repro.core.engine import compile_plan
from repro.core.expr import Input, Named, evaluate
from repro.core.operators import Deref, SetApply
from repro.core.values import MultiSet, Ref, Tup
from repro.storage import Database, StoreError, TransactionManager, TxnError
from repro.storage.wal import WriteAheadLog


@pytest.fixture
def db():
    handle = Database()
    handle.transactions()
    return handle


def manager(db):
    return db.txn


# ---------------------------------------------------------------------------
# Explicit transactions
# ---------------------------------------------------------------------------


def test_commit_makes_changes_stick(db):
    db.begin()
    ref = db.store.insert(Tup(n=1), "Thing")
    db.create("Box", MultiSet([ref]))
    db.commit()
    assert db.store.get(ref.oid) == Tup(n=1)
    assert "Box" in db


def test_abort_restores_everything(db):
    ref = db.store.insert(Tup(n=1), "Thing")
    db.create("Box", MultiSet([ref]))
    db.begin()
    db.store.update(ref.oid, Tup(n=2))
    other = db.store.insert(Tup(n=3), "Thing")
    db.create("Box", MultiSet([ref, other]))
    db.drop("Box")
    db.abort()
    assert db.store.get(ref.oid) == Tup(n=1)
    assert other.oid not in db.store
    assert db.get("Box") == MultiSet([ref])


def test_abort_undoes_delete_with_exact_type(db):
    ref = db.store.insert(Tup(n=1), "Widget")
    db.begin()
    db.store.delete(ref.oid)
    assert ref.oid not in db.store
    db.abort()
    assert db.store.get(ref.oid) == Tup(n=1)
    assert db.store.exact_type(ref.oid) == "Widget"


def test_abort_undoes_migrate(db):
    db.hierarchy.add_type("Person")
    db.hierarchy.add_type("Student", ["Person"])
    ref = db.store.insert(Tup(n=1), "Student")
    db.begin()
    db.store.migrate(ref.oid, "Person")  # upward: legal
    db.abort()
    assert db.store.exact_type(ref.oid) == "Student"


def test_double_begin_and_stray_commit_rejected(db):
    db.begin()
    with pytest.raises(TxnError):
        db.begin()
    db.abort()
    with pytest.raises(TxnError):
        db.commit()
    with pytest.raises(TxnError):
        db.abort()


def test_ddl_survives_abort(db):
    """Schema changes are durable-at-execution, never rolled back."""
    from repro.extra.ddl import ensure_type_system
    types = ensure_type_system(db)
    db.begin()
    types.define("Ephemeral", [], ())
    db.abort()
    assert "Ephemeral" in types


# ---------------------------------------------------------------------------
# Savepoints
# ---------------------------------------------------------------------------


def test_savepoint_rollback_partial(db):
    ref = db.store.insert(Tup(n=0), "Thing")
    db.begin()
    db.store.update(ref.oid, Tup(n=1))
    sp = manager(db).savepoint()
    db.store.update(ref.oid, Tup(n=2))
    manager(db).rollback_to(sp)
    assert db.store.get(ref.oid) == Tup(n=1)
    db.commit()
    assert db.store.get(ref.oid) == Tup(n=1)


def test_rollback_discards_later_savepoints(db):
    db.begin()
    a = manager(db).savepoint("a")
    db.store.insert(Tup(n=1), "Thing")
    manager(db).savepoint("b")
    manager(db).rollback_to(a)
    with pytest.raises(TxnError):
        manager(db).rollback_to("b")
    db.commit()


def test_savepoint_needs_transaction(db):
    with pytest.raises(TxnError):
        manager(db).savepoint()


# ---------------------------------------------------------------------------
# Autocommit and the WAL
# ---------------------------------------------------------------------------


def test_autocommit_writes_one_group_per_mutation(tmp_path):
    db = Database()
    wal = WriteAheadLog(str(tmp_path / "wal.log"), sync=False)
    TransactionManager(db, wal=wal)
    db.store.insert(Tup(n=1), "Thing")
    records = wal.records()
    assert [r["op"] for r in records] == ["begin", "insert", "commit"]
    assert "oids" in records[-1]


def test_explicit_txn_is_one_contiguous_group(tmp_path):
    db = Database()
    wal = WriteAheadLog(str(tmp_path / "wal.log"), sync=False)
    TransactionManager(db, wal=wal)
    db.begin()
    db.store.insert(Tup(n=1), "Thing")
    db.store.insert(Tup(n=2), "Thing")
    assert wal.records() == []  # nothing on disk before commit
    db.commit()
    ops = [r["op"] for r in wal.records()]
    assert ops == ["begin", "insert", "insert", "commit"]


def test_aborted_txn_leaves_no_log_records(tmp_path):
    db = Database()
    wal = WriteAheadLog(str(tmp_path / "wal.log"), sync=False)
    TransactionManager(db, wal=wal)
    db.begin()
    db.store.insert(Tup(n=1), "Thing")
    db.abort()
    assert wal.records() == []


def test_empty_commit_writes_nothing(tmp_path):
    db = Database()
    wal = WriteAheadLog(str(tmp_path / "wal.log"), sync=False)
    TransactionManager(db, wal=wal)
    db.begin()
    db.commit()
    assert wal.records() == []


# ---------------------------------------------------------------------------
# Snapshot isolation
# ---------------------------------------------------------------------------


def test_snapshot_never_sees_uncommitted_writes(db):
    ref = db.store.insert(Tup(n=1), "Thing")
    db.create("Box", MultiSet([ref]))
    snap = manager(db).snapshot()
    db.begin()
    db.store.update(ref.oid, Tup(n=99))
    db.create("Box", MultiSet())
    # The writer is still open: the snapshot must show the old world.
    assert snap.store.get(ref.oid) == Tup(n=1)
    assert snap.get("Box") == MultiSet([ref])
    db.commit()
    # Even after commit, a pre-existing snapshot stays frozen…
    assert snap.store.get(ref.oid) == Tup(n=1)
    assert snap.get("Box") == MultiSet([ref])
    # …while a fresh snapshot sees the committed state.
    fresh = manager(db).snapshot()
    assert fresh.store.get(ref.oid) == Tup(n=99)
    assert fresh.get("Box") == MultiSet()


def test_snapshot_hides_post_snapshot_inserts_and_deletes(db):
    keep = db.store.insert(Tup(n=1), "Thing")
    doomed = db.store.insert(Tup(n=2), "Thing")
    snap = manager(db).snapshot()
    late = db.store.insert(Tup(n=3), "Thing")
    db.store.delete(doomed.oid)
    assert keep.oid in snap.store
    assert doomed.oid in snap.store  # deleted after the snapshot
    assert late.oid not in snap.store  # born after the snapshot
    assert snap.store.get(doomed.oid) == Tup(n=2)
    with pytest.raises(StoreError):
        snap.store.get(late.oid)


def test_snapshot_extents_are_frozen(db):
    a = db.store.insert(Tup(n=1), "Widget")
    snap = manager(db).snapshot()
    db.store.insert(Tup(n=2), "Widget")
    db.store.delete(a.oid)
    assert snap.store.extent("Widget") == [Ref(a.oid, "Widget")]
    assert len(db.store.extent("Widget")) == 1
    assert db.store.extent("Widget")[0].oid != a.oid


def test_snapshot_query_during_concurrent_writer(db):
    """A full algebra query over a snapshot context never observes the
    concurrent writer — interpreted and compiled engines alike."""
    refs = [db.store.insert(Tup(n=i), "Thing") for i in range(4)]
    db.create("Box", MultiSet(refs))
    snap = manager(db).snapshot()
    expr = SetApply(Deref(Input()), Named("Box"))
    before = evaluate(expr, db.context())
    db.begin()  # concurrent writer: rewrite every object
    for i, ref in enumerate(refs):
        db.store.update(ref.oid, Tup(n=100 + i))
    ctx = snap.context()
    ctx.begin_query()
    mid_interp = evaluate(expr, ctx)
    ctx.begin_query()
    mid_compiled = evaluate(expr, ctx, mode="compiled")
    assert mid_interp == before
    assert mid_compiled == before
    db.commit()
    ctx.begin_query()
    assert evaluate(expr, ctx) == before  # still frozen post-commit
    live = evaluate(expr, db.context())
    assert live != before


def test_snapshot_named_mapping(db):
    db.create("A", 1)
    snap = manager(db).snapshot()
    db.create("B", 2)
    db.drop("A")
    assert "A" in snap.named and "B" not in snap.named
    assert snap.names() == ["A"]
    assert snap.named.get("B", "absent") == "absent"


def test_prune_drops_unreachable_history(db):
    ref = db.store.insert(Tup(n=0), "Thing")
    for i in range(1, 5):
        db.store.update(ref.oid, Tup(n=i))
    mgr = manager(db)
    assert len(mgr._chain[("obj", ref.oid)]) == 5
    mgr.prune()
    assert len(mgr._chain[("obj", ref.oid)]) == 1
    assert mgr.snapshot().store.get(ref.oid) == Tup(n=4)


# ---------------------------------------------------------------------------
# Deref-cache staleness (the regression the version counter fixes)
# ---------------------------------------------------------------------------


def test_compiled_pipeline_never_serves_stale_derefs():
    """Re-executing a compiled pipeline after an update — without an
    intervening begin_query() — must see the new object state."""
    db = Database()
    ref = db.store.insert(Tup(name="old"), "Thing")
    db.create("Box", MultiSet([ref]))
    pipeline = compile_plan(SetApply(Deref(Input()), Named("Box")))
    ctx = db.context()
    ctx.begin_query()
    assert pipeline.execute(ctx) == MultiSet([Tup(name="old")])
    db.store.update(ref.oid, Tup(name="new"))
    assert pipeline.execute(ctx) == MultiSet([Tup(name="new")])


def test_store_version_counter_semantics():
    db = Database()
    v0 = db.store.version
    ref = db.store.insert(Tup(n=1), "Thing")
    # Fresh inserts don't invalidate caches: no OID they mint can
    # already be cached.
    assert db.store.version == v0
    db.store.update(ref.oid, Tup(n=2))
    v1 = db.store.version
    assert v1 > v0
    db.store.delete(ref.oid)
    assert db.store.version > v1


def test_deref_cache_survives_pure_reads():
    """No mutation between runs → the cache keeps its entries."""
    db = Database()
    ref = db.store.insert(Tup(name="same"), "Thing")
    db.create("Box", MultiSet([ref]))
    pipeline = compile_plan(SetApply(Deref(Input()), Named("Box")))
    ctx = db.context()
    ctx.begin_query()
    pipeline.execute(ctx)
    hits_before = ctx.deref_cache.hits
    pipeline.execute(ctx)
    assert ctx.deref_cache.hits > hits_before
