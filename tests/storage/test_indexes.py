"""Access-method tests: typed partitions and key indexes."""

import pytest

from repro.core.expr import EvalContext, Input
from repro.core.operators import TupExtract
from repro.core.values import MultiSet, Tup
from repro.storage import (Database, IndexCatalog, KeyIndex,
                           TypedPartitionIndex)


def population():
    return MultiSet([
        Tup({"v": 1}, type_name="A"),
        Tup({"v": 2}, type_name="A"),
        Tup({"v": 2}, type_name="B"),
        Tup({"v": 3}, type_name="B"),
        Tup({"v": 3}, type_name="B"),
    ])


def test_typed_partition_lookup():
    index = TypedPartitionIndex(population(), EvalContext())
    a_side = index.lookup("A")
    assert len(a_side) == 2
    assert all(t.type_name == "A" for t in a_side)
    both = index.lookup(["A", "B"])
    assert both == population()


def test_typed_partition_preserves_cardinalities():
    index = TypedPartitionIndex(population(), EvalContext())
    b_side = index.lookup("B")
    assert b_side.cardinality(Tup({"v": 3}, type_name="B")) == 2


def test_typed_partition_unknown_type_is_empty():
    index = TypedPartitionIndex(population(), EvalContext())
    assert index.lookup("Z") == MultiSet()


def test_typed_partition_requires_multiset():
    with pytest.raises(TypeError):
        TypedPartitionIndex([1, 2], EvalContext())


def test_key_index_lookup():
    index = KeyIndex(TupExtract("v", Input()), population(), EvalContext())
    assert len(index.lookup(2)) == 2
    assert index.lookup(99) == MultiSet()
    assert sorted(index.keys()) == [1, 2, 3]


def test_key_index_requires_multiset():
    with pytest.raises(TypeError):
        KeyIndex(Input(), Tup(), EvalContext())


def test_catalog_build_and_staleness():
    db = Database()
    db.create("P", population())
    index = db.indexes.build_typed("P")
    assert db.indexes.typed("P") is index
    # Re-creating the named object invalidates the snapshot.
    db.create("P", MultiSet())
    assert db.indexes.typed("P") is None


def test_catalog_keyed_index():
    db = Database()
    db.create("P", population())
    key = TupExtract("v", Input())
    index = db.indexes.build_keyed("P", key)
    assert db.indexes.keyed("P", key) is index
    assert db.indexes.keyed("P", TupExtract("other", Input())) is None
    db.create("P", MultiSet())
    assert db.indexes.keyed("P", key) is None


def test_catalog_explicit_invalidate():
    db = Database()
    db.create("P", population())
    db.indexes.build_typed("P")
    db.indexes.invalidate("P")
    assert db.indexes.typed("P") is None
