"""Access-method tests: typed partitions and key indexes."""

import pytest

from repro.core.expr import EvalContext, Input
from repro.core.operators import TupExtract
from repro.core.values import MultiSet, Tup
from repro.storage import (Database, IndexCatalog, KeyIndex,
                           OrderedIndex, TypedPartitionIndex)


def population():
    return MultiSet([
        Tup({"v": 1}, type_name="A"),
        Tup({"v": 2}, type_name="A"),
        Tup({"v": 2}, type_name="B"),
        Tup({"v": 3}, type_name="B"),
        Tup({"v": 3}, type_name="B"),
    ])


def test_typed_partition_lookup():
    index = TypedPartitionIndex(population(), EvalContext())
    a_side = index.lookup("A")
    assert len(a_side) == 2
    assert all(t.type_name == "A" for t in a_side)
    both = index.lookup(["A", "B"])
    assert both == population()


def test_typed_partition_preserves_cardinalities():
    index = TypedPartitionIndex(population(), EvalContext())
    b_side = index.lookup("B")
    assert b_side.cardinality(Tup({"v": 3}, type_name="B")) == 2


def test_typed_partition_unknown_type_is_empty():
    index = TypedPartitionIndex(population(), EvalContext())
    assert index.lookup("Z") == MultiSet()


def test_typed_partition_requires_multiset():
    with pytest.raises(TypeError):
        TypedPartitionIndex([1, 2], EvalContext())


def test_key_index_lookup():
    index = KeyIndex(TupExtract("v", Input()), population(), EvalContext())
    assert len(index.lookup(2)) == 2
    assert index.lookup(99) == MultiSet()
    assert sorted(index.keys()) == [1, 2, 3]


def test_key_index_requires_multiset():
    with pytest.raises(TypeError):
        KeyIndex(Input(), Tup(), EvalContext())


def test_catalog_build_and_staleness():
    db = Database()
    db.create("P", population())
    index = db.indexes.build_typed("P")
    assert db.indexes.typed("P") is index
    # Re-creating the named object invalidates the snapshot.
    db.create("P", MultiSet())
    assert db.indexes.typed("P") is None


def test_catalog_keyed_index():
    db = Database()
    db.create("P", population())
    key = TupExtract("v", Input())
    index = db.indexes.build_keyed("P", key)
    assert db.indexes.keyed("P", key) is index
    assert db.indexes.keyed("P", TupExtract("other", Input())) is None
    db.create("P", MultiSet())
    assert db.indexes.keyed("P", key) is None


def test_catalog_explicit_invalidate():
    db = Database()
    db.create("P", population())
    db.indexes.build_typed("P")
    db.indexes.invalidate("P")
    assert db.indexes.typed("P") is None


# -- ordered (sorted-array) indexes -----------------------------------


def mixed_population():
    from repro.core.values import UNK
    return MultiSet([
        Tup({"v": 1}), Tup({"v": 2}), Tup({"v": 2}), Tup({"v": 5}),
        Tup({"v": "apple"}), Tup({"v": "pear"}), Tup({"v": UNK}),
    ])


def _range(index, **bounds):
    return sorted(
        (repr(element), count)
        for element, count in index.probe_range(**bounds))


def test_ordered_index_range_bounds_and_inclusivity():
    index = OrderedIndex(TupExtract("v", Input()), population(),
                         EvalContext())
    assert list(index.probe_range(low=2, high=3, incl_high=False)) == [
        (Tup({"v": 2}, type_name="A"), 1), (Tup({"v": 2}, type_name="B"), 1)]
    assert list(index.probe_range(low=3)) == [
        (Tup({"v": 3}, type_name="B"), 2)]
    assert list(index.probe_range(low=3, incl_low=False)) == []


def test_ordered_index_unbounded_sides():
    index = OrderedIndex(TupExtract("v", Input()), population(),
                         EvalContext())
    everything = list(index.probe_range())
    assert sum(count for _, count in everything) == len(population())


def test_ordered_index_unk_and_incomparable_classes():
    """A numeric bound leaves strings and unk as U verdicts: the probe
    must emit them as one aggregated unk tail, exactly as many
    occurrences as the scan would turn into unk."""
    from repro.core.values import UNK
    index = OrderedIndex(TupExtract("v", Input()), mixed_population(),
                         EvalContext())
    out = list(index.probe_range(low=2))
    tail = [pair for pair in out if pair[0] is UNK]
    assert tail == [(UNK, 3)]  # 'apple', 'pear', unk
    matched = [pair for pair in out if pair[0] is not UNK]
    assert sum(count for _, count in matched) == 3  # v in {2, 2, 5}


def test_ordered_index_string_bounds():
    index = OrderedIndex(TupExtract("v", Input()), mixed_population(),
                         EvalContext())
    out = list(index.probe_range(low="b", high="z"))
    assert (Tup({"v": "pear"}), 1) in out
    assert not any(isinstance(element, Tup) and element["v"] == "apple"
                   for element, _ in out if element is not None)


def test_ordered_index_requires_multiset():
    with pytest.raises(TypeError):
        OrderedIndex(Input(), [1, 2], EvalContext())


def test_catalog_ordered_index_lifecycle():
    db = Database()
    db.create("P", population())
    key = TupExtract("v", Input())
    index = db.indexes.build_ordered("P", key)
    assert db.indexes.ordered("P", key) is index
    db.create("P", MultiSet())
    assert db.indexes.ordered("P", key) is None
    # The definition survives the re-create; a probe rebuilds lazily.
    assert db.indexes.probe_ordered("P", key) is not None


def test_catalog_probe_rebuilds_after_invalidate():
    db = Database()
    db.create("P", population())
    key = TupExtract("v", Input())
    db.indexes.build_keyed("P", key)
    db.indexes.invalidate("P")
    assert db.indexes.keyed("P", key) is None
    index = db.indexes.probe_keyed("P", key)
    assert index is not None
    assert len(index.lookup(2)) == 2


def test_catalog_hit_counters_and_describe_rows():
    db = Database()
    db.create("P", population())
    key = TupExtract("v", Input())
    db.indexes.build_keyed("P", key)
    db.indexes.build_typed("P")
    db.indexes.probe_keyed("P", key)
    db.indexes.probe_keyed("P", key)
    db.indexes.probe_typed("P")
    rows = {(row["kind"], row["name"]): row
            for row in db.indexes.describe_rows()}
    assert rows[("keyed", "P")]["hits"] == 2
    assert rows[("typed", "P")]["hits"] == 1
    assert rows[("keyed", "P")]["size"] == len(population())
    assert rows[("keyed", "P")]["live"] is True


def test_catalog_drop_index_removes_definition():
    db = Database()
    db.create("P", population())
    key = TupExtract("v", Input())
    db.indexes.build_ordered("P", key)
    assert db.indexes.drop_index("ordered", "P", key) is True
    assert db.indexes.drop_index("ordered", "P", key) is False
    assert db.indexes.probe_ordered("P", key) is None
    assert db.indexes.definitions() == []


def test_catalog_drop_index_without_key_matches_by_kind_and_name():
    # The CLI drops by (kind, name) alone; for keyed/ordered a None
    # key can never name a real definition, so it means "any".
    db = Database()
    db.create("P", population())
    key = TupExtract("v", Input())
    db.indexes.build_keyed("P", key)
    db.indexes.build_ordered("P", key)
    assert db.indexes.drop_index("keyed", "P") is True
    assert [d["kind"] for d in db.indexes.definitions()] == ["ordered"]
    assert db.indexes.drop_index("keyed", "P") is False
    assert db.indexes.drop_index("ordered", "P") is True
    assert db.indexes.definitions() == []
