"""Crash recovery: replay, checkpointing, open_database, and the
property that recovery restores exactly the committed prefix at every
possible crash point of every (seeded) random workload."""

import os
import random

import pytest

from repro.core.values import MultiSet, Tup
from repro.storage import (Database, TransactionManager, TxnError,
                           open_database, replay_log)
from repro.storage.faults import (canonical_state, crash_sweep,
                                  default_sweep, random_workload,
                                  run_workload)
from repro.storage.wal import WriteAheadLog, read_records


def _durable(tmp_path, name="wal.log"):
    db = Database()
    wal = WriteAheadLog(str(tmp_path / name), sync=False)
    manager = TransactionManager(db, wal=wal)
    return db, wal, manager


# ---------------------------------------------------------------------------
# Replay basics
# ---------------------------------------------------------------------------


def test_replay_restores_committed_transactions(tmp_path):
    db, wal, _ = _durable(tmp_path)
    ref = db.store.insert(Tup(n=1), "Thing")
    db.begin()
    db.store.update(ref.oid, Tup(n=2))
    db.create("Box", MultiSet([ref]))
    db.commit()

    twin = Database()
    applied = replay_log(twin, wal.records())
    assert applied == 2  # the autocommit insert + the explicit txn
    assert canonical_state(twin) == canonical_state(db)


def test_replay_skips_uncommitted_tail(tmp_path):
    """Records of a transaction whose commit never hit the disk are
    discarded wholesale."""
    db, wal, _ = _durable(tmp_path)
    ref = db.store.insert(Tup(n=1), "Thing")
    committed = canonical_state(db)
    # Forge an unterminated group after the committed prefix — exactly
    # what a crash mid-group-write leaves when the commit record is cut.
    wal.append({"op": "begin", "tx": 99})
    wal.append({"op": "update", "oid": ref.oid, "tx": 99,
                "value": {"t": "int", "v": 777}})
    twin = Database()
    replay_log(twin, wal.records())
    assert canonical_state(twin) == committed


def test_replay_restores_oid_counters(tmp_path):
    """After recovery, newly allocated OIDs must not collide with any
    recovered object — the commit record's generator snapshot."""
    db, wal, _ = _durable(tmp_path)
    refs = [db.store.insert(Tup(n=i), "Thing") for i in range(5)]
    twin = Database()
    replay_log(twin, wal.records())
    fresh = twin.store.insert(Tup(n=99), "Thing")
    assert fresh.oid not in {r.oid for r in refs}
    assert twin.store.get(fresh.oid) == Tup(n=99)


def test_replay_is_idempotent(tmp_path):
    db, wal, _ = _durable(tmp_path)
    db.store.insert(Tup(n=1), "Thing")
    db.create("Box", 7)
    records = wal.records()
    twin = Database()
    replay_log(twin, records)
    once = canonical_state(twin)
    replay_log(twin, records)  # checkpoint-overlap crash: replay again
    assert canonical_state(twin) == once


def test_replay_restores_schema(tmp_path):
    from repro.extra.ddl import ensure_type_system
    db, wal, _ = _durable(tmp_path)
    types = ensure_type_system(db)
    from repro.extra.ddl import parse_type_expr
    from repro.lang import Lexer
    types.define("Pt", [("x", parse_type_expr(Lexer("integer"), types)),
                        ("y", parse_type_expr(Lexer("integer"), types))], ())
    twin = Database()
    ensure_type_system(twin)
    replay_log(twin, wal.records())
    assert "Pt" in twin.types
    assert [f for f, _ in twin.types.effective_fields("Pt")] == ["x", "y"]


# ---------------------------------------------------------------------------
# open_database / checkpoint
# ---------------------------------------------------------------------------


def test_open_database_round_trip(tmp_path):
    home = str(tmp_path / "dbhome")
    db = open_database(home, sync=False)
    ref = db.store.insert(Tup(n=1), "Thing")
    db.create("Box", MultiSet([ref]))
    state = canonical_state(db)
    db.txn.wal.close()

    again = open_database(home, sync=False)
    assert canonical_state(again) == state
    assert again.txn is not None
    again.txn.wal.close()


def test_checkpoint_folds_log_into_snapshot(tmp_path):
    home = str(tmp_path / "dbhome")
    db = open_database(home, sync=False)
    db.store.insert(Tup(n=1), "Thing")
    state = canonical_state(db)
    db.txn.checkpoint()
    assert read_records(os.path.join(home, "wal.log")) == []
    assert os.path.exists(os.path.join(home, "snapshot.json"))
    db.txn.wal.close()

    again = open_database(home, sync=False)
    assert canonical_state(again) == state
    again.txn.wal.close()


def test_post_checkpoint_writes_recover_on_top(tmp_path):
    home = str(tmp_path / "dbhome")
    db = open_database(home, sync=False)
    db.store.insert(Tup(n=1), "Thing")
    db.txn.checkpoint()
    db.create("Late", 42)
    state = canonical_state(db)
    db.txn.wal.close()

    again = open_database(home, sync=False)
    assert canonical_state(again) == state
    assert again.get("Late") == 42
    again.txn.wal.close()


def test_checkpoint_rejected_mid_transaction(tmp_path):
    home = str(tmp_path / "dbhome")
    db = open_database(home, sync=False)
    db.begin()
    db.store.insert(Tup(n=1), "Thing")
    with pytest.raises(TxnError):
        db.txn.checkpoint()
    db.abort()
    db.txn.wal.close()


# ---------------------------------------------------------------------------
# The committed-prefix property
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_recovery_equals_committed_prefix(seed, tmp_path):
    """Crash at every WAL record boundary, every torn offset, and every
    corrupted tail of a random workload: recovery must reproduce the
    shadow state of the last fully-committed transaction, OID counters
    and named objects included."""
    ops = random_workload(random.Random(seed), n_ops=40)
    report = crash_sweep(ops, workdir=str(tmp_path))
    assert report.ok, report.failures[:5]
    assert report.points > len(ops)  # the sweep actually swept


def test_default_sweep_smoke():
    report = default_sweep(seeds=(7,), n_ops=25)
    assert report.ok


def test_workload_shadows_align_with_log(tmp_path):
    """One shadow state per on-disk commit, plus the initial state."""
    ops = random_workload(random.Random(11), n_ops=30)
    db, wal, manager = _durable(tmp_path)
    shadows = run_workload(db, manager, ops)
    commits = sum(1 for r in wal.records() if r.get("op") == "commit")
    assert len(shadows) == commits + 1
