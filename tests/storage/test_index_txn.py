"""Index definitions vs transactions, WAL replay, and snapshots.

The catalog keeps two layers: durable *definitions* (journaled DDL)
and derived *built* snapshots.  Aborting a transaction rolls back the
data but must leave definitions intact — and, crucially, must not
leave a stale built index serving the pre-abort value (the regression:
begin → drop/recreate a named object → abort used to strand the old
built snapshot in the catalog).
"""

import pytest

from repro.core.expr import Input
from repro.core.operators.tuples import TupExtract
from repro.core.values import MultiSet, Tup
from repro.storage import (database_from_json, database_to_json,
                           open_database)


def nums(*values):
    return MultiSet([Tup({"v": v}) for v in values])


KEY = TupExtract("v", Input())


@pytest.fixture
def db(tmp_path):
    database = open_database(str(tmp_path / "d"))
    yield database
    database.journal.wal.close()


def test_abort_after_recreate_leaves_no_stale_index(db):
    db.create("Nums", nums(1, 2, 3))
    db.indexes.create_index("keyed", "Nums", KEY)
    db.journal.begin()
    db.drop("Nums")
    db.create("Nums", nums(9))
    # The in-txn probe sees the new value…
    assert sorted(db.indexes.probe_keyed("Nums", KEY).keys()) == [9]
    db.journal.abort()
    # …and the post-abort probe must see the rolled-back value, not a
    # stale snapshot of either world.
    index = db.indexes.probe_keyed("Nums", KEY)
    assert index is not None
    assert sorted(index.keys()) == [1, 2, 3]
    assert index.lookup(2) == MultiSet([Tup({"v": 2})])


def test_abort_preserves_definitions(db):
    db.create("Nums", nums(1))
    db.indexes.create_index("ordered", "Nums", KEY)
    db.journal.begin()
    db.create("Nums2", nums(5))
    db.journal.abort()
    defs = db.indexes.definitions()
    assert [(d["kind"], d["name"]) for d in defs] == [("ordered", "Nums")]


def test_wal_replay_restores_index_definitions(tmp_path):
    path = str(tmp_path / "d")
    db = open_database(path)
    db.create("Nums", nums(4, 8, 15, 16, 23, 42))
    db.indexes.create_index("keyed", "Nums", KEY)
    db.indexes.create_index("ordered", "Nums", KEY)
    db.indexes.create_index("typed", "Nums")
    db.indexes.drop_index("typed", "Nums")
    db.journal.wal.close()

    db2 = open_database(path)
    try:
        kinds = sorted((d["kind"], d["name"])
                       for d in db2.indexes.definitions())
        assert kinds == [("keyed", "Nums"), ("ordered", "Nums")]
        # Rebuilt-on-demand contents serve probes after replay.
        assert list(db2.indexes.probe_ordered("Nums", KEY)
                    .probe_range(low=16, high=42)) == [
            (Tup({"v": 16}), 1), (Tup({"v": 23}), 1), (Tup({"v": 42}), 1)]
    finally:
        db2.journal.wal.close()


def test_snapshot_round_trips_ordered_defs():
    from repro.storage import Database
    db = Database()
    db.create("Nums", nums(3, 1, 2))
    db.indexes.create_index("ordered", "Nums", KEY)
    db.indexes.create_index("keyed", "Nums", KEY)
    clone = database_from_json(database_to_json(db))
    kinds = sorted((d["kind"], d["name"])
                   for d in clone.indexes.definitions())
    assert kinds == [("keyed", "Nums"), ("ordered", "Nums")]
    index = clone.indexes.probe_ordered("Nums", KEY)
    assert [pair for pair, _ in index.probe_range(high=2, incl_high=False)
            ] == [Tup({"v": 1})]


def test_dropping_name_in_txn_then_commit_retires_index(db):
    db.create("Nums", nums(1, 2))
    db.indexes.create_index("keyed", "Nums", KEY)
    db.journal.begin()
    db.drop("Nums")
    db.journal.commit()
    # Name gone: definition no longer listed, probe declines.
    assert db.indexes.definitions() == []
    assert db.indexes.probe_keyed("Nums", KEY) is None
