"""Index definitions vs transactions, WAL replay, and snapshots.

The catalog keeps two layers: durable *definitions* (journaled DDL)
and derived *built* snapshots.  Aborting a transaction rolls back the
data but must leave definitions intact — and, crucially, must not
leave a stale built index serving the pre-abort value (the regression:
begin → drop/recreate a named object → abort used to strand the old
built snapshot in the catalog).
"""

import pytest

from repro.core.expr import Input
from repro.core.operators.tuples import TupExtract
from repro.core.values import MultiSet, Tup
from repro.storage import (database_from_json, database_to_json,
                           open_database)


def nums(*values):
    return MultiSet([Tup({"v": v}) for v in values])


KEY = TupExtract("v", Input())


@pytest.fixture
def db(tmp_path):
    database = open_database(str(tmp_path / "d"))
    yield database
    database.journal.wal.close()


def test_abort_after_recreate_leaves_no_stale_index(db):
    db.create("Nums", nums(1, 2, 3))
    db.indexes.create_index("keyed", "Nums", KEY)
    db.journal.begin()
    db.drop("Nums")
    db.create("Nums", nums(9))
    # The in-txn probe sees the new value…
    assert sorted(db.indexes.probe_keyed("Nums", KEY).keys()) == [9]
    db.journal.abort()
    # …and the post-abort probe must see the rolled-back value, not a
    # stale snapshot of either world.
    index = db.indexes.probe_keyed("Nums", KEY)
    assert index is not None
    assert sorted(index.keys()) == [1, 2, 3]
    assert index.lookup(2) == MultiSet([Tup({"v": 2})])


def test_abort_preserves_definitions(db):
    db.create("Nums", nums(1))
    db.indexes.create_index("ordered", "Nums", KEY)
    db.journal.begin()
    db.create("Nums2", nums(5))
    db.journal.abort()
    defs = db.indexes.definitions()
    assert [(d["kind"], d["name"]) for d in defs] == [("ordered", "Nums")]


def test_wal_replay_restores_index_definitions(tmp_path):
    path = str(tmp_path / "d")
    db = open_database(path)
    db.create("Nums", nums(4, 8, 15, 16, 23, 42))
    db.indexes.create_index("keyed", "Nums", KEY)
    db.indexes.create_index("ordered", "Nums", KEY)
    db.indexes.create_index("typed", "Nums")
    db.indexes.drop_index("typed", "Nums")
    db.journal.wal.close()

    db2 = open_database(path)
    try:
        kinds = sorted((d["kind"], d["name"])
                       for d in db2.indexes.definitions())
        assert kinds == [("keyed", "Nums"), ("ordered", "Nums")]
        # Rebuilt-on-demand contents serve probes after replay.
        assert list(db2.indexes.probe_ordered("Nums", KEY)
                    .probe_range(low=16, high=42)) == [
            (Tup({"v": 16}), 1), (Tup({"v": 23}), 1), (Tup({"v": 42}), 1)]
    finally:
        db2.journal.wal.close()


def test_snapshot_round_trips_ordered_defs():
    from repro.storage import Database
    db = Database()
    db.create("Nums", nums(3, 1, 2))
    db.indexes.create_index("ordered", "Nums", KEY)
    db.indexes.create_index("keyed", "Nums", KEY)
    clone = database_from_json(database_to_json(db))
    kinds = sorted((d["kind"], d["name"])
                   for d in clone.indexes.definitions())
    assert kinds == [("keyed", "Nums"), ("ordered", "Nums")]
    index = clone.indexes.probe_ordered("Nums", KEY)
    assert [pair for pair, _ in index.probe_range(high=2, incl_high=False)
            ] == [Tup({"v": 1})]


def test_dropping_name_in_txn_then_commit_retires_index(db):
    db.create("Nums", nums(1, 2))
    db.indexes.create_index("keyed", "Nums", KEY)
    db.journal.begin()
    db.drop("Nums")
    db.journal.commit()
    # Name gone: definition no longer listed, probe declines.
    assert db.indexes.definitions() == []
    assert db.indexes.probe_keyed("Nums", KEY) is None


# ---------------------------------------------------------------------------
# Snapshot index epochs (IndexCatalogView)
# ---------------------------------------------------------------------------


def test_snapshot_probe_frozen_against_live_rewrite(db):
    db.create("Nums", nums(1, 2, 3))
    db.indexes.create_index("keyed", "Nums", KEY)
    view = db.txn.snapshot()
    db.drop("Nums")
    db.create("Nums", nums(9))
    # The live catalog serves the new world…
    assert sorted(db.indexes.probe_keyed("Nums", KEY).keys()) == [9]
    # …while the pinned reader's probes answer from its snapshot.
    snap = view.indexes.probe_keyed("Nums", KEY)
    assert sorted(snap.keys()) == [1, 2, 3]
    assert snap.lookup(2) == MultiSet([Tup({"v": 2})])


def test_index_created_after_snapshot_is_invisible(db):
    db.create("Nums", nums(1, 2))
    view = db.txn.snapshot()
    db.indexes.create_index("keyed", "Nums", KEY)
    assert db.indexes.has_definition("Nums", "keyed")
    # The view's definitions were frozen before the DDL: no half-built
    # or after-the-fact index is ever served to an in-flight reader.
    assert not view.indexes.has_definition("Nums", "keyed")
    assert view.indexes.probe_keyed("Nums", KEY) is None
    # A fresh snapshot (new epoch — DDL commits) sees the definition.
    fresh = db.txn.snapshot()
    assert fresh.version > view.version
    assert fresh.indexes.probe_keyed("Nums", KEY) is not None


def test_index_dropped_after_snapshot_stays_probeable(db):
    db.create("Nums", nums(1, 2))
    db.indexes.create_index("ordered", "Nums", KEY)
    view = db.txn.snapshot()
    db.indexes.drop_index("ordered", "Nums", KEY)
    assert not db.indexes.has_definition("Nums", "ordered")
    snap = view.indexes.probe_ordered("Nums", KEY)
    assert snap is not None
    assert [pair for pair, _ in snap.probe_range(high=1)] == [Tup({"v": 1})]


def test_same_epoch_readers_share_built_indexes(db):
    db.create("Nums", nums(1, 2, 3))
    db.indexes.create_index("keyed", "Nums", KEY)
    a = db.txn.snapshot()
    b = db.txn.snapshot()
    assert a.version == b.version
    # Memoized per epoch, not per view: one build serves both readers.
    assert a.indexes.probe_keyed("Nums", KEY) \
        is b.indexes.probe_keyed("Nums", KEY)


def test_abort_of_index_ddl_leaves_snapshots_consistent(db):
    db.create("Nums", nums(1, 2))
    view = db.txn.snapshot()
    db.journal.begin()
    db.indexes.create_index("keyed", "Nums", KEY)
    db.journal.abort()
    # DDL is not undone by abort (paper semantics) — but the frozen view
    # captured its definitions before any of it, so it stays index-free.
    assert not view.indexes.has_definition("Nums", "keyed")
    assert view.indexes.probe_keyed("Nums", KEY) is None


def test_prune_clamps_to_pinned_snapshot(db):
    db.create("Nums", nums(1, 2, 3))
    db.indexes.create_index("keyed", "Nums", KEY)
    view = db.txn.snapshot()
    assert sorted(view.indexes.probe_keyed("Nums", KEY).keys()) == [1, 2, 3]
    for v in (10, 20, 30):
        db.drop("Nums")
        db.create("Nums", nums(v))
        db.txn.prune()  # must not free the pinned reader's history
    assert view.get("Nums") == nums(1, 2, 3)
    assert sorted(view.indexes.probe_keyed("Nums", KEY).keys()) == [1, 2, 3]
    epoch = view.version
    assert epoch in db.txn._epoch_indexes
    del view
    import gc
    gc.collect()
    # Last reader gone: the pin drops and prune may sweep the epoch.
    db.txn.prune()
    assert epoch not in db.txn._epoch_indexes
    assert db.txn.oldest_pinned() is None


def test_prune_hammering_during_long_reads(db):
    import threading
    db.create("Nums", nums(*range(50)))
    db.indexes.create_index("keyed", "Nums", KEY)
    view = db.txn.snapshot()
    stop = threading.Event()
    errors = []

    def reader():
        try:
            while not stop.is_set():
                index = view.indexes.probe_keyed("Nums", KEY)
                assert index.lookup(7) == MultiSet([Tup({"v": 7})])
                assert view.get("Nums") == nums(*range(50))
        except Exception as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for v in range(100):
            db.drop("Nums")
            db.create("Nums", nums(v))
            db.txn.prune()
    finally:
        stop.set()
        thread.join(5)
    assert not errors
    assert view.get("Nums") == nums(*range(50))
