"""Object store tests: identity, extents, migration, integrity."""

import pytest

from repro.core.oid import OIDError
from repro.core.values import Arr, MultiSet, Ref, Tup
from repro.storage import Database, ObjectStore, StoreError


@pytest.fixture
def store():
    s = ObjectStore()
    s.hierarchy.add_type("Person")
    s.hierarchy.add_type("Student", ["Person"])
    return s


def test_insert_get_roundtrip(store):
    ref = store.insert(Tup(a=1), "Person")
    assert store.get(ref.oid) == Tup(a=1)
    assert ref.oid in store
    assert len(store) == 1


def test_get_missing(store):
    with pytest.raises(StoreError):
        store.get(12345)
    assert store.get(12345, default=None) is None


def test_insert_auto_registers_type(store):
    ref = store.insert(5, "Brand New Type".replace(" ", ""))
    assert store.exact_type(ref.oid) == "BrandNewType"


def test_insert_default_type(store):
    ref = store.insert(5)
    assert store.exact_type(ref.oid) == "Object"


def test_update_preserves_identity(store):
    ref = store.insert(Tup(a=1), "Person")
    store.update(ref.oid, Tup(a=2))
    assert store.get(ref.oid) == Tup(a=2)
    with pytest.raises(StoreError):
        store.update(999, Tup())


def test_delete_and_dangling(store):
    target = store.insert(5, "Person")
    holder = store.insert(Tup(link=target), "Person")
    store.delete(target.oid)
    assert target.oid not in store
    dangling = store.dangling_refs()
    assert dangling == [target]
    with pytest.raises(StoreError):
        store.delete(target.oid)


def test_dangling_refs_scans_nested_structures(store):
    target = store.insert(1, "Person")
    store.insert(MultiSet([Arr([Tup(r=target)])]), "Person")
    store.delete(target.oid)
    assert store.dangling_refs() == [target]


def test_find_ref_by_value(store):
    ref = store.insert("shared", "Person")
    assert store.find_ref("shared") == ref
    assert store.find_ref("missing") is None


def test_find_ref_tracks_updates(store):
    ref = store.insert("old", "Person")
    store.update(ref.oid, "new")
    assert store.find_ref("old") is None
    assert store.find_ref("new") == ref


def test_extents(store):
    p = store.insert(1, "Person")
    s = store.insert(2, "Student")
    assert [r.oid for r in store.extent("Person")] == [p.oid]
    closure_oids = {r.oid for r in store.extent_closure("Person")}
    assert closure_oids == {p.oid, s.oid}


def test_migration_upward(store):
    ref = store.insert(Tup(), "Student")
    store.migrate(ref.oid, "Person")
    assert store.exact_type(ref.oid) == "Person"


def test_migration_downward_rejected(store):
    """A Person OID is not in Odom(Student) — migration would forge
    identity (Section 3.1's domain rules)."""
    ref = store.insert(Tup(), "Person")
    with pytest.raises(OIDError):
        store.migrate(ref.oid, "Student")


def test_migration_affects_typed_dispatch(store):
    from repro.core.expr import EvalContext
    from repro.core.operators.multiset import exact_type_of
    ref = store.insert(Tup(), "Student")
    ctx = EvalContext({}, store=store)
    assert exact_type_of(ref, ctx) == "Student"
    store.migrate(ref.oid, "Person")
    assert exact_type_of(ref, ctx) == "Person"


# ---------------------------------------------------------------------------
# Database (named top-level objects)
# ---------------------------------------------------------------------------


def test_database_create_get_drop():
    db = Database()
    db.create("Xs", MultiSet([1]))
    assert "Xs" in db
    assert db.get("Xs") == MultiSet([1])
    db.drop("Xs")
    assert "Xs" not in db
    with pytest.raises(StoreError):
        db.get("Xs")
    with pytest.raises(StoreError):
        db.drop("Xs")


def test_database_context_wires_everything():
    db = Database()
    db.create("A", MultiSet([1]))
    db.register_function("f", lambda x: x)
    ctx = db.context()
    assert ctx.lookup("A") == MultiSet([1])
    assert ctx.store is db.store
    assert ctx.methods is db.methods
    assert ctx.indexes is db.indexes


def test_database_names_sorted():
    db = Database()
    db.create("B", 1)
    db.create("A", 2)
    assert db.names() == ["A", "B"]
