"""Write-ahead log framing: round-trips, checksums, torn tails."""

import struct
import zlib

import pytest

from repro.storage.wal import (FRAME, HEADER, HEADER_SIZE, MAX_RECORD_SIZE,
                               WalError, WriteAheadLog, encode_record,
                               read_records, record_boundaries, scan,
                               scan_bytes)


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "wal.log")


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def test_record_round_trip(log_path):
    payloads = [{"op": "insert", "oid": 7, "value": {"t": "int", "v": 1}},
                {"op": "commit", "tx": 1},
                {"op": "name", "name": "X", "value": None}]
    with WriteAheadLog(log_path) as wal:
        for payload in payloads:
            wal.append(payload)
    assert read_records(log_path) == payloads


def test_batch_append_is_contiguous(log_path):
    group = [{"op": "begin", "tx": 1}, {"op": "insert", "oid": 1},
             {"op": "commit", "tx": 1}]
    with WriteAheadLog(log_path) as wal:
        end = wal.append_batch(group)
        assert wal.tell() == end
    assert read_records(log_path) == group


def test_encode_record_is_canonical():
    a = encode_record({"b": 1, "a": 2})
    b = encode_record({"a": 2, "b": 1})
    assert a == b  # sorted keys: byte-identical frames


def test_oversized_record_rejected():
    with pytest.raises(WalError):
        encode_record({"blob": "x" * (MAX_RECORD_SIZE + 1)})


def test_empty_log_has_header_only(log_path):
    WriteAheadLog(log_path).close()
    with open(log_path, "rb") as handle:
        assert handle.read() == HEADER
    assert read_records(log_path) == []
    assert record_boundaries(log_path) == [HEADER_SIZE]


def test_missing_file_scans_empty(tmp_path):
    assert scan(str(tmp_path / "absent.log")) == ([], 0)


def test_non_wal_file_rejected(log_path):
    with open(log_path, "wb") as handle:
        handle.write(b"definitely not a log")
    with pytest.raises(WalError):
        WriteAheadLog(log_path)


# ---------------------------------------------------------------------------
# Checksum and torn-tail discipline
# ---------------------------------------------------------------------------


def _image(*payloads):
    return HEADER + b"".join(encode_record(p) for p in payloads)


def test_corrupt_crc_stops_the_scan():
    blob = bytearray(_image({"op": "a"}, {"op": "b"}))
    blob[-1] ^= 0xFF  # flip a byte inside the second payload
    records, valid_end = scan_bytes(bytes(blob))
    assert [p for _, p in records] == [{"op": "a"}]
    assert valid_end == HEADER_SIZE + len(encode_record({"op": "a"}))


def test_torn_frame_stops_the_scan():
    whole = _image({"op": "a"})
    torn = whole + FRAME.pack(100, 0) + b"short"
    records, valid_end = scan_bytes(torn)
    assert [p for _, p in records] == [{"op": "a"}]
    assert valid_end == len(whole)


def test_insane_length_is_tail_damage():
    whole = _image({"op": "a"})
    crazy = whole + struct.pack("<II", MAX_RECORD_SIZE + 1, 0) + b"x" * 64
    _, valid_end = scan_bytes(crazy)
    assert valid_end == len(whole)


def test_bad_json_payload_is_tail_damage():
    data = b"{not json"
    frame = FRAME.pack(len(data), zlib.crc32(data) & 0xFFFFFFFF) + data
    _, valid_end = scan_bytes(_image({"op": "a"}) + frame)
    assert valid_end == HEADER_SIZE + len(encode_record({"op": "a"}))


def test_open_for_append_truncates_torn_tail(log_path):
    with WriteAheadLog(log_path) as wal:
        wal.append({"op": "keep"})
    with open(log_path, "ab") as handle:
        handle.write(b"\xde\xad\xbe\xef")  # simulated torn write
    with WriteAheadLog(log_path) as wal:
        wal.append({"op": "after"})
    assert read_records(log_path) == [{"op": "keep"}, {"op": "after"}]


def test_truncate_resets_to_header(log_path):
    with WriteAheadLog(log_path) as wal:
        wal.append({"op": "gone"})
        wal.truncate()
        assert wal.tell() == HEADER_SIZE
        wal.append({"op": "kept"})
    assert read_records(log_path) == [{"op": "kept"}]


def test_record_boundaries_enumerate_every_prefix(log_path):
    with WriteAheadLog(log_path) as wal:
        wal.append({"op": "a"})
        wal.append({"op": "bb"})
    bounds = record_boundaries(log_path)
    assert bounds[0] == HEADER_SIZE
    assert len(bounds) == 3
    assert bounds == sorted(bounds)
