"""EXCESS → algebra translation tests (theorem part i, Section 3.4).

These run against the populated Figure 1 university and check both the
*shape* of the generated trees (DEREF insertion, SET_APPLY chains, GRP
placement) and their evaluated results against independently computed
answers.
"""

import pytest

from repro.core.operators import (ArrExtract, Deref, Grp, SetApply,
                                  TupExtract)
from repro.core.values import MultiSet, Tup
from repro.excess import Session, TranslationError
from repro.workloads import build_university


@pytest.fixture(scope="module")
def uni():
    return build_university(n_departments=4, n_employees=16, n_students=24,
                            kids_per_employee=2, seed=7)


@pytest.fixture()
def session(uni):
    return Session(uni.db)


def materialized_employees(uni):
    return [uni.db.store.get(r.oid) for r in uni.employee_refs]


def dept_of(uni, ref):
    return uni.db.store.get(ref.oid)


# ---------------------------------------------------------------------------
# Shape checks
# ---------------------------------------------------------------------------


def test_range_var_over_refs_inserts_initial_deref(session):
    expr = session.compile("range of E is Employees retrieve (E.name)")
    derefs = [n for n in expr.walk() if isinstance(n, Deref)]
    assert derefs, "range over { ref Employee } must dereference on entry"


def test_path_through_ref_attribute_inserts_deref(session):
    expr = session.compile(
        "range of E is Employees retrieve (E.dept.floor)")
    # dept is `ref Department`: expect DEREF(TUP_EXTRACT_dept(...)).
    assert any(isinstance(n, Deref)
               and isinstance(n.source, TupExtract)
               and n.source.field == "dept" for n in expr.walk())


def test_array_indexing_translates_to_arr_extract(session):
    expr = session.compile("retrieve (TopTen[5].name)")
    assert any(isinstance(n, ArrExtract) and n.position == 5
               for n in expr.walk())


def test_var_free_query_returns_bare_tuple(session):
    """Figure 3: no range variables → the result is a single tuple."""
    result = session.query("retrieve (TopTen[5].name, TopTen[5].salary)")
    assert isinstance(result, Tup)
    assert result.field_names == ("name", "salary")


def test_by_clause_produces_grp(session):
    expr = session.compile(
        "range of S is Students retrieve (S.name) by S.dept")
    assert any(isinstance(n, Grp) for n in expr.walk())


def test_single_variable_query_avoids_env_tuples(session):
    """One variable binds the element bare — the Figure 4 chain shape."""
    expr = session.compile(
        'retrieve (Employees.dept.name) where Employees.city = "Madison"')
    applies = [n for n in expr.walk() if isinstance(n, SetApply)]
    assert applies
    from repro.core.operators import TupCreate
    # The env carries no variable-binding tuples except the final target.
    creates = [n for n in expr.walk() if isinstance(n, TupCreate)]
    assert all(c.field == "name" for c in creates)


# ---------------------------------------------------------------------------
# Semantics against independently computed answers
# ---------------------------------------------------------------------------


def test_figure_3_values(uni, session):
    fifth = uni.db.store.get(uni.db.get("TopTen").extract(5).oid)
    result = session.query("retrieve (TopTen[5].name, TopTen[5].salary)")
    assert result == Tup(name=fifth["name"], salary=fifth["salary"])


def test_figure_4_functional_join(uni, session):
    expected = MultiSet(
        Tup(name=dept_of(uni, e["dept"])["name"])
        for e in materialized_employees(uni) if e["city"] == "Madison")
    result = session.query(
        'retrieve (Employees.dept.name) where Employees.city = "Madison"')
    assert result == expected


def test_paper_query_1_kids_of_floor2_employees(uni, session):
    expected = MultiSet(
        Tup(name=kid["name"])
        for e in materialized_employees(uni)
        if dept_of(uni, e["dept"])["floor"] == 2
        for kid in e["kids"])
    result = session.query("""
        range of E is Employees
        retrieve (C.name) from C in E.kids where E.dept.floor = 2
    """)
    assert result == expected


def test_paper_query_2_correlated_aggregate(uni, session):
    employees = materialized_employees(uni)

    def age(person):
        return 2026 - int(person["birthday"].split("-")[0])

    def min_kid_age_on_floor(floor):
        ages = [age(kid) for e in employees
                if dept_of(uni, e["dept"])["floor"] == floor
                for kid in e["kids"]]
        return min(ages)

    expected = MultiSet(
        Tup(name=e["name"],
            min=min_kid_age_on_floor(dept_of(uni, e["dept"])["floor"]))
        for e in employees)
    result = session.query("""
        range of EMP is Employees
        retrieve (EMP.name, min(E.kids.age
            from E in Employees
            where E.dept.floor = EMP.dept.floor))
    """)
    assert result == expected


def test_section5_example1_group_advisors_by_department(uni, session):
    result = session.query("""
        range of S is Students, E is Employees
        retrieve unique (S.dept.name, E.name) by S.dept
        where S.advisor.name = E.name
    """)
    # One group per student department; each group duplicate-free.
    departments = {uni.db.store.get(r.oid)["dept"]
                   for r in uni.student_refs}
    assert result.distinct_count() == len(departments)
    for group in result.elements():
        assert group.is_set()


def test_section5_example2_students_by_division(uni, session):
    floor = 2
    students = [uni.db.store.get(r.oid) for r in uni.student_refs]
    expected_names = {s["name"] for s in students
                      if dept_of(uni, s["dept"])["floor"] == floor}
    result = session.query("""
        range of S is Students
        retrieve (S.name) by S.dept.division where S.dept.floor = %d
    """ % floor)
    got_names = {t["name"] for group in result.elements() for t in group}
    assert got_names == expected_names


def test_implicit_set_path_correlation(uni, session):
    """Two mentions of this.kids refer to the same implicit variable
    (the Section 4 get_ssnum pattern)."""
    session.run("""
        define Employee function get_ssnum (kname: char[]) returns int4
        {
            retrieve (this.kids.ssnum) where (this.kids.name = kname)
        }
    """)
    employee = materialized_employees(uni)[0]
    kid = next(iter(employee["kids"]))
    result = session.query(
        'range of E is Employees retrieve (E.get_ssnum("%s"))' % kid["name"])
    all_ssnums = {t for r in result.elements()
                  for s in r["get_ssnum"].elements()
                  for t in [s["ssnum"]]}
    assert kid["ssnum"] in all_ssnums


def test_from_over_named_difference(session, uni):
    session.run("retrieve (E.name) from E in Employees into Copy")
    result = session.query(
        "retrieve (x) from x in (Employees - Employees)")
    assert result == MultiSet()


def test_cross_product_two_vars(uni, session):
    result = session.query("""
        range of S is Students, E is Employees
        retrieve (S.name, E.name)
    """)
    assert len(result) == len(uni.student_refs) * len(uni.employee_refs)
    sample = next(result.elements())
    assert set(sample.field_names) == {"name", "name_1"}


def test_into_creates_named_object(uni, session):
    session.run("range of S is Students "
                "retrieve (S.name) into StudentNames")
    assert "StudentNames" in uni.db
    assert len(uni.db.get("StudentNames")) > 0


def test_unique_deduplicates(uni, session):
    dup = session.query("range of S is Students retrieve (S.dept.name)")
    unique = session.query(
        "range of S is Students retrieve unique (S.dept.name)")
    assert unique == dup.dedup()


def test_unknown_name_raises(session):
    with pytest.raises(TranslationError):
        session.query("retrieve (Nonexistent.name)")


def test_unknown_attribute_raises(session):
    with pytest.raises(TranslationError):
        session.query("range of E is Employees retrieve (E.nonsense)")


def test_value_mode_returns_bare_values(uni, session):
    result = session.query(
        "retrieve value (E.salary) from E in Employees")
    assert all(isinstance(v, int) for v in result)


def test_aggregate_plain_call(uni, session):
    result = session.query("retrieve value (count(Employees))")
    assert result == len(uni.employee_refs)


def test_method_call_via_field_syntax(uni, session):
    """x.age — a zero-argument method invoked without parentheses."""
    result = session.query(
        "retrieve value (E.age) from E in Employees")
    assert all(isinstance(v, int) and v > 0 for v in result)


def test_arithmetic_in_targets(uni, session):
    result = session.query(
        "retrieve (double = E.salary * 2) from E in Employees")
    salaries = session.query(
        "retrieve value (E.salary) from E in Employees")
    assert MultiSet(t["double"] for t in result) == MultiSet(
        s * 2 for s in salaries)


def test_from_over_array_collection(uni, session):
    """Iterating an array (TopTen) coerces it to a multiset (bagof)."""
    result = session.query("retrieve (T.name) from T in TopTen")
    store = uni.db.store
    expected = MultiSet(Tup(name=store.get(r.oid)["name"])
                        for r in uni.db.get("TopTen"))
    assert result == expected


def test_range_over_array_collection(uni, session):
    session.run("range of T is TopTen")
    result = session.query("retrieve (T.salary)")
    assert len(result) == len(uni.db.get("TopTen"))


def test_from_over_named_set_path(uni, session):
    """`from E in Departments.employees` — the domain itself is a path
    through an implicit named-object variable (nested iteration)."""
    result = session.query(
        "retrieve (E.name) from E in Departments.employees")
    assert len(result) == len(uni.db.get("Employees"))
