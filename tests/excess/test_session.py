"""Session tests: mixed DDL/DML scripts, ranges, into, optimization."""

import pytest

from repro.core.optimizer import CostModel, Optimizer
from repro.core.values import MultiSet, Tup
from repro.excess import Session, TranslationError
from repro.storage import Database


@pytest.fixture
def db():
    return Database()


def test_mixed_ddl_and_dml(db):
    session = Session(db)
    results = session.run("""
        define type Pt: (x: int4, y: int4)
        create Pts: { Pt }
        retrieve (P.x) from P in Pts
    """)
    assert len(results) == 3
    assert results[-1].value == MultiSet()


def test_range_declarations_persist_across_statements(db):
    db.create("Nums", MultiSet([Tup(v=1), Tup(v=2)]))
    session = Session(db)
    session.run("range of N is Nums")
    assert session.query("retrieve (N.v)") == MultiSet([Tup(v=1), Tup(v=2)])


def test_range_over_unknown_object(db):
    with pytest.raises(TranslationError):
        Session(db).run("range of X is Ghost")


def test_into_records_result_type(db):
    session = Session(db)
    session.run("""
        define type Num: (v: int4)
        create Nums: { Num }
        retrieve (N.v) from N in Nums into Out
    """)
    assert "Out" in db.created_types
    from repro.extra.types import SetType
    assert isinstance(db.created_types["Out"], SetType)


def test_query_returns_last_retrieve_value(db):
    db.create("A", MultiSet([1]))
    db.create("B", MultiSet([2]))
    session = Session(db)
    value = session.query("retrieve value (A) retrieve value (B)")
    assert value == MultiSet([2])


def test_query_returns_none_for_pure_ddl(db):
    assert Session(db).query("define type T: (x: int4)") is None


def test_compile_requires_single_retrieve(db):
    session = Session(db)
    with pytest.raises(TranslationError):
        session.compile("range of X is Y")


def test_optimized_run_matches_unoptimized(db):
    db.create("A", MultiSet([1, 1, 2, 3, 3]))
    optimizer = Optimizer(cost_model=CostModel(), max_depth=2,
                          max_trees=200)
    session = Session(db, optimizer=optimizer)
    plain = session.query("retrieve value (de(de(A)))")
    optimized = session.query("retrieve value (de(de(A)))", optimize=True)
    assert plain == optimized == MultiSet([1, 2, 3])


def test_run_function_shortcut(db):
    from repro.excess import run
    db.create("A", MultiSet([5]))
    assert run(db, "retrieve value (A)") == MultiSet([5])


def test_result_repr(db):
    db.create("A", MultiSet([5]))
    results = Session(db).run("retrieve value (A) into Out")
    assert "Out" in repr(results[-1])


def test_typechecked_session_runs_valid_queries(db):
    from repro.workloads import build_university
    uni = build_university(n_departments=2, n_employees=6, n_students=6,
                           seed=3)
    session = Session(uni.db, typecheck=True)
    result = session.query(
        "range of E is Employees retrieve (E.name) where E.dept.floor = 1")
    assert result is not None
