"""Equipollence round-trips (Section 3.4 theorem).

Direction (i) — EXCESS → algebra — is exercised throughout
test_translate.py.  Here we drive direction (ii): every supported
algebra tree prints to an EXCESS program whose execution reproduces the
tree's value, and composing the two directions is the identity on
values.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expr import Const, EvalContext, Func, Input, Named, evaluate
from repro.core.operators import (DE, AddUnion, ArrCat, ArrCreate, ArrDE,
                                  ArrExtract, Comp, Cross, Diff, Grp, Pi,
                                  SetApply, SetCollapse, SetCreate, SubArr,
                                  TupCat, TupCreate, TupExtract, sigma,
                                  union)
from repro.core.predicates import Atom, And
from repro.core.values import Arr, MultiSet, Tup
from repro.excess import Session
from repro.excess.printer import UnprintableError, to_excess
from repro.storage import Database


def fresh_db():
    db = Database()
    db.create("A", MultiSet([1, 2, 2, 3]))
    db.create("B", MultiSet([2, 3, 3]))
    db.create("TS", MultiSet([Tup(a=1, b=10), Tup(a=2, b=20),
                              Tup(a=2, b=20)]))
    db.create("R", Arr([5, 6, 7, 8]))
    db.register_function("inc", lambda x: x + 1)
    return db


def round_trip(expr):
    db = fresh_db()
    expected = evaluate(expr, db.context())
    program, result_name = to_excess(expr)
    Session(db).run(program)
    assert db.get(result_name) == expected, program
    return program


A, B, TS, R = Named("A"), Named("B"), Named("TS"), Named("R")

CASES = [
    A,
    Const(5),
    Const("text"),
    Const(True),
    Const(MultiSet([1, 1, 2])),
    Const(Arr([1, 2])),
    Const(Tup(x=1, y="s")),
    Diff(A, B),
    AddUnion(A, B),
    union(A, B),
    Cross(A, B),
    DE(A),
    SetCreate(A),
    SetCollapse(SetCreate(A)),
    SetApply(Func("inc", [Input()]), A),
    SetApply(TupExtract("a", Input()), TS),
    sigma(Atom(Input(), ">", Const(1)), A),
    sigma(And(Atom(TupExtract("a", Input()), "=", Const(2)),
              Atom(TupExtract("b", Input()), ">", Const(5))), TS),
    Grp(TupExtract("a", Input()), TS),
    Grp(Func("inc", [Input()]), A),
    Comp(Atom(Input(), "!=", Const(MultiSet())), A),
    TupExtract("x", Const(Tup(x=9))),
    TupCreate("wrapped", A),
    TupCat(TupCreate("x", Const(1)), TupCreate("y", Const(2))),
    Pi(["a"], Const(Tup(a=1, b=2))),
    ArrExtract(2, R),
    ArrExtract("last", R),
    SubArr(2, 3, R),
    ArrCat(R, R),
    ArrDE(R),
    ArrCreate(Const(5)),
    SetApply(SetCreate(Func("inc", [Input()])), A),
    DE(SetApply(TupExtract("b", Input()), TS)),
]


@pytest.mark.parametrize("expr", CASES, ids=lambda e: e.describe()[:60])
def test_algebra_to_excess_round_trip(expr):
    round_trip(expr)


def test_round_trip_program_shape():
    """The program follows the proof's structure: one retrieve-into per
    operator, bottom-up."""
    program = round_trip(Diff(A, B))
    lines = program.splitlines()
    assert len(lines) == 3  # A, B, then diff
    assert all("into" in line for line in lines)
    assert "diff(" in lines[-1]


def test_typed_set_apply_unprintable():
    expr = SetApply(Input(), A, type_filter="T")
    with pytest.raises(UnprintableError):
        to_excess(expr)


def test_nested_binding_bodies_unprintable():
    inner = SetApply(Func("inc", [Input()]), Input())
    expr = SetApply(inner, SetCreate(A))
    with pytest.raises(UnprintableError):
        to_excess(expr)


# ---------------------------------------------------------------------------
# Composition: EXCESS → algebra → EXCESS → algebra is value-identity.
# ---------------------------------------------------------------------------

EXCESS_QUERIES = [
    "retrieve value (A)",
    "retrieve value (diff(A, B))",
    "retrieve value (x) from x in A where x > 1",
    "retrieve value (inc(x)) from x in A",
    "retrieve value (de(addunion(A, B)))",
]


@pytest.mark.parametrize("query", EXCESS_QUERIES)
def test_double_round_trip(query):
    db = fresh_db()
    session = Session(db)
    algebra = session.compile(query)
    direct = evaluate(algebra, db.context())
    program, result_name = to_excess(algebra)
    Session(db).run(program)
    assert db.get(result_name) == direct


# ---------------------------------------------------------------------------
# Property: random printable trees round-trip.
# ---------------------------------------------------------------------------

exprs = st.one_of(
    st.just(A), st.just(B),
    st.builds(Diff, st.just(A), st.just(B)),
    st.builds(AddUnion, st.just(A), st.just(B)),
    st.builds(lambda k: sigma(Atom(Input(), ">", Const(k)), A),
              st.integers(0, 3)),
    st.builds(lambda k: SetApply(Func("inc", [Input()]), A),
              st.just(0)),
    st.just(DE(AddUnion(A, B))),
    st.builds(lambda m, n: SubArr(m, n, R),
              st.integers(1, 3), st.integers(1, 4)),
    st.builds(lambda n: ArrExtract(n, R), st.integers(1, 4)),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(exprs, min_size=1, max_size=3))
def test_random_printable_trees_round_trip(trees):
    for tree in trees:
        round_trip(tree)
