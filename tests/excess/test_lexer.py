"""Lexer tests for the shared EXTRA/EXCESS tokenizer."""

import pytest

from repro.lang import Lexer, ParseError, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != "EOF"]


def test_identifiers_and_numbers():
    assert kinds("abc x_1 42 3.5") == [
        ("IDENT", "abc"), ("IDENT", "x_1"), ("INT", "42"), ("FLOAT", "3.5")]


def test_range_operator_vs_float():
    """`1..10` is INT DOTDOT INT, not a float."""
    assert kinds("1..10") == [("INT", "1"), ("OP", ".."), ("INT", "10")]


def test_dotted_path():
    assert kinds("a.b.c") == [("IDENT", "a"), ("OP", "."), ("IDENT", "b"),
                              ("OP", "."), ("IDENT", "c")]


def test_strings_both_quotes():
    assert kinds('"hi" \'there\'') == [("STRING", "hi"), ("STRING", "there")]


def test_string_preserves_braces_and_spaces():
    assert kinds('"a { b } c"') == [("STRING", "a { b } c")]


def test_multichar_operators_longest_first():
    assert kinds("<= >= != ..") == [("OP", "<="), ("OP", ">="),
                                    ("OP", "!="), ("OP", "..")]


def test_comments_hash_and_dashes():
    assert kinds("a # comment\nb -- another\nc") == [
        ("IDENT", "a"), ("IDENT", "b"), ("IDENT", "c")]


def test_line_and_column_tracking():
    tokens = tokenize("ab\n  cd")
    assert tokens[0].line == 1 and tokens[0].column == 1
    assert tokens[1].line == 2 and tokens[1].column == 3


def test_unterminated_string_raises_with_position():
    with pytest.raises(ParseError) as info:
        tokenize('x = "oops')
    assert info.value.line == 1


def test_newline_inside_string_rejected():
    with pytest.raises(ParseError):
        tokenize('"a\nb"')


def test_unexpected_character():
    with pytest.raises(ParseError):
        tokenize("a @ b")


def test_lexer_cursor_helpers():
    lexer = Lexer("a , b")
    assert lexer.peek().value == "a"
    assert lexer.expect_ident().value == "a"
    assert lexer.accept_op(",")
    assert not lexer.accept_op(",")
    assert lexer.expect_ident().value == "b"
    assert lexer.at_end()
    # EOF is sticky.
    assert lexer.advance().kind == "EOF"
    assert lexer.advance().kind == "EOF"


def test_expect_failures_raise():
    lexer = Lexer("x")
    with pytest.raises(ParseError):
        lexer.expect_op("(")
    with pytest.raises(ParseError):
        lexer.expect_word("retrieve")
    lexer2 = Lexer("(")
    with pytest.raises(ParseError):
        lexer2.expect_ident()


def test_keyword_matching_is_case_insensitive():
    lexer = Lexer("RETRIEVE Retrieve retrieve")
    for _ in range(3):
        assert lexer.accept_word("retrieve")
