"""Session- and shell-level transactions: explicit begin/commit/abort
around EXCESS update statements, statement-level implicit transactions,
and the ``.begin``/``.commit``/``.abort`` meta commands."""

import pytest

from repro.cli import Shell
from repro.excess import Session
from repro.storage import Database, TxnError
from repro.workloads import build_university


@pytest.fixture
def uni():
    handle = build_university(n_departments=3, n_employees=12,
                              n_students=18, seed=3)
    handle.db.transactions()
    return handle


def test_abort_rolls_back_a_delete(uni):
    session = Session(uni.db)
    before = len(uni.db.get("Students"))
    session.begin()
    session.run("range of S is Students delete S where S.gpa < 3.5")
    assert len(uni.db.get("Students")) < before
    session.abort()
    assert len(uni.db.get("Students")) == before


def test_commit_keeps_a_replace(uni):
    session = Session(uni.db)
    session.begin()
    session.run("range of E is Employees replace E (zip = 11111)")
    session.commit()
    zips = session.query("retrieve value (E.zip) from E in Employees")
    assert set(zips) == {11111}


def test_statement_is_one_implicit_transaction(uni):
    """A multi-object replace with no explicit txn open commits as one
    transaction, not one per element."""
    manager = uni.db.txn
    v0 = manager.version
    Session(uni.db).run("range of E is Employees replace E (zip = 22222)")
    assert manager.version == v0 + 1
    assert manager.active is None


def test_savepoint_round_trip(uni):
    session = Session(uni.db)
    before = len(uni.db.get("Students"))
    session.begin()
    sp = session.savepoint()
    session.run("range of S is Students delete S where S.gpa < 3.9")
    session.rollback_to(sp)
    session.commit()
    assert len(uni.db.get("Students")) == before


def test_snapshot_isolated_from_session_updates(uni):
    session = Session(uni.db)
    snap = session.snapshot()
    session.run("range of S is Students delete S")
    assert len(uni.db.get("Students")) == 0
    assert len(snap.get("Students")) > 0


def test_queries_see_own_uncommitted_writes(uni):
    """Inside a transaction the session reads its own writes (read
    committed-or-own, the usual single-connection behavior)."""
    session = Session(uni.db)
    session.begin()
    session.run("range of S is Students delete S where S.gpa < 3.5")
    remaining = session.query("retrieve value (S.gpa) from S in Students")
    assert all(g >= 3.5 for g in remaining)
    session.abort()


# ---------------------------------------------------------------------------
# Shell meta commands
# ---------------------------------------------------------------------------


def test_shell_begin_commit_abort_cycle():
    shell = Shell()
    shell.handle_meta(".demo")
    shell.db.transactions()
    before = len(shell.db.get("Students"))
    assert shell.handle_meta(".begin").startswith("transaction ")
    shell.execute("range of S is Students delete S where S.gpa < 3.5")
    assert len(shell.db.get("Students")) < before
    assert shell.handle_meta(".abort") == "aborted (rolled back)"
    assert len(shell.db.get("Students")) == before
    shell.handle_meta(".begin")
    shell.execute("range of S is Students delete S where S.gpa < 3.5")
    assert shell.handle_meta(".commit") == "committed"
    assert len(shell.db.get("Students")) < before


def test_shell_reports_txn_errors():
    shell = Shell()
    shell.db.transactions()
    assert shell.handle_meta(".commit").startswith("error:")
    assert shell.handle_meta(".abort").startswith("error:")
    shell.handle_meta(".begin")
    assert shell.handle_meta(".begin").startswith("error:")
    shell.handle_meta(".abort")


def test_shell_help_mentions_transactions():
    assert ".begin" in Shell().handle_meta(".help")


def test_session_without_manager_is_unchanged():
    """No manager attached → updates run exactly as before (and begin
    attaches one on demand through db.transactions())."""
    db = Database()
    from repro.core.values import MultiSet
    db.create("Nums", MultiSet())
    session = Session(db)
    assert db.txn is None
    session.run("append to Nums value (1)")
    assert db.get("Nums") == MultiSet([1])
    txid = session.begin()
    assert db.txn is not None and txid == 1
    session.abort()
