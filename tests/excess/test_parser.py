"""EXCESS surface-syntax parser tests."""

import pytest

from repro.excess import ast, parse
from repro.lang import ParseError


def parse_one(source):
    statements = parse(source)
    assert len(statements) == 1
    return statements[0]


def test_range_decl_single():
    stmt = parse_one("range of E is Employees")
    assert stmt == ast.RangeDecl([("E", "Employees")])


def test_range_decl_multiple():
    stmt = parse_one("range of S is Students, E is Employees")
    assert stmt.bindings == (("S", "Students"), ("E", "Employees"))


def test_retrieve_simple_target():
    stmt = parse_one("retrieve (C.name)")
    assert isinstance(stmt, ast.Retrieve)
    target = stmt.targets[0]
    assert target.expr == ast.Path(ast.Name("C"), [ast.FieldStep("name")])


def test_retrieve_paper_query_1():
    stmt = parse_one(
        "retrieve (C.name) from C in E.kids where E.dept.floor = 2")
    assert stmt.from_clauses == (ast.FromClause(
        "C", ast.Path(ast.Name("E"), [ast.FieldStep("kids")])),)
    assert isinstance(stmt.where, ast.Comparison)
    assert stmt.where.op == "="
    assert stmt.where.right == ast.Literal(2)


def test_retrieve_paper_query_2_nested_aggregate():
    stmt = parse_one("""
        retrieve (EMP.name, min(E.kids.age
            from E in Employees
            where E.dept.floor = EMP.dept.floor))
    """)
    aggregate = stmt.targets[1].expr
    assert isinstance(aggregate, ast.Aggregate)
    assert aggregate.func == "min"
    assert aggregate.from_clauses[0].var == "E"
    assert isinstance(aggregate.where, ast.Comparison)


def test_retrieve_unique_and_by():
    stmt = parse_one("retrieve unique (S.dept.name, E.name) by S.dept "
                     "where S.advisor = E.name")
    assert stmt.unique
    assert len(stmt.by) == 1
    assert stmt.where is not None


def test_clause_order_is_flexible():
    a = parse_one("retrieve (S.name) by S.dept where S.floor = 5")
    b = parse_one("retrieve (S.name) where S.floor = 5 by S.dept")
    assert a.by == b.by and a.where == b.where


def test_array_indexing():
    stmt = parse_one("retrieve (TopTen[5].name)")
    path = stmt.targets[0].expr
    assert path.steps[0] == ast.IndexStep(5)
    assert path.steps[1] == ast.FieldStep("name")


def test_array_slicing_and_last():
    stmt = parse_one("retrieve (TopTen[2..last])")
    step = stmt.targets[0].expr.steps[0]
    assert step.lower == 2 and step.upper == "last"
    assert step.is_slice


def test_method_call_step():
    stmt = parse_one('retrieve (E.get_ssnum("Joe"))')
    step = stmt.targets[0].expr.steps[0]
    assert step == ast.CallStep("get_ssnum", [ast.Literal("Joe")])


def test_into_clause():
    assert parse_one("retrieve (x) from x in A into B").into == "B"


def test_value_mode():
    stmt = parse_one("retrieve value (A)")
    assert stmt.value_mode


def test_aliased_targets():
    stmt = parse_one("retrieve (total = x.a + x.b)")
    target = stmt.targets[0]
    assert target.alias == "total"
    assert isinstance(target.expr, ast.BinOp)


def test_set_and_array_literals():
    stmt = parse_one("retrieve ({1, 2, 2}, [3, 4])")
    assert stmt.targets[0].expr == ast.SetLiteral(
        [ast.Literal(1), ast.Literal(2), ast.Literal(2)])
    assert stmt.targets[1].expr == ast.ArrayLiteral(
        [ast.Literal(3), ast.Literal(4)])


def test_empty_set_literal():
    assert parse_one("retrieve ({})").targets[0].expr == ast.SetLiteral([])


def test_arithmetic_precedence():
    stmt = parse_one("retrieve (a + b * c)")
    expr = stmt.targets[0].expr
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_unary_minus():
    stmt = parse_one("retrieve (-x)")
    assert stmt.targets[0].expr == ast.FuncCall("neg", [ast.Name("x")])


def test_predicate_connectives():
    stmt = parse_one(
        "retrieve (x) where x.a = 1 and not (x.b = 2 or x.c = 3)")
    assert isinstance(stmt.where, ast.AndPred)
    assert isinstance(stmt.where.right, ast.NotPred)
    assert isinstance(stmt.where.right.inner, ast.OrPred)


def test_parenthesized_comparison_in_where():
    """The Section 4 method body style: where (this.kids.name = kname)."""
    stmt = parse_one("retrieve (this.kids.ssnum) "
                     "where (this.kids.name = kname)")
    assert isinstance(stmt.where, ast.Comparison)


def test_membership_predicate():
    stmt = parse_one("retrieve (x) where x in A")
    assert stmt.where.op == "in"


def test_string_and_float_and_bool_literals():
    stmt = parse_one('retrieve ("Madison", 2.5, true, false)')
    values = [t.expr.value for t in stmt.targets]
    assert values == ["Madison", 2.5, True, False]


def test_multiple_statements():
    statements = parse("range of E is Employees retrieve (E.name)")
    assert len(statements) == 2


def test_errors_carry_positions():
    with pytest.raises(ParseError) as info:
        parse("retrieve (")
    assert "line" in str(info.value)


def test_unknown_statement():
    with pytest.raises(ParseError):
        parse("drop everything")


def test_update_statements_parse():
    append, delete, replace = parse(
        'append to Xs value (1) '
        'delete X where X.a = 1 '
        'replace X (a = 2) where X.a = 1')
    assert append.collection == "Xs" and append.value_mode
    assert delete.var == "X" and delete.where is not None
    assert replace.assignments[0][0] == "a"


def test_unterminated_string():
    with pytest.raises(ParseError):
        parse('retrieve ("oops)')


def test_aggregate_without_subquery_is_plain():
    stmt = parse_one("retrieve (count(E.kids))")
    aggregate = stmt.targets[0].expr
    assert isinstance(aggregate, ast.Aggregate)
    assert not aggregate.from_clauses and aggregate.where is None


# ---------------------------------------------------------------------------
# Fuzzing: the parser fails cleanly, never crashes
# ---------------------------------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st

_tokens = st.sampled_from([
    "retrieve", "range", "of", "is", "from", "where", "by", "into",
    "unique", "value", "append", "delete", "replace", "to", "and", "or",
    "not", "in", "(", ")", "{", "}", "[", "]", ",", ".", "..", "=", "<",
    ">", "<=", ">=", "!=", "+", "-", "*", "/", "x", "y", "Employees",
    "1", "2.5", '"s"', "min", "last", "this",
])


@settings(max_examples=200, deadline=None)
@given(st.lists(_tokens, max_size=12).map(" ".join))
def test_parser_never_crashes(soup):
    """Arbitrary token soup either parses or raises ParseError — no
    other exception type escapes the parser."""
    try:
        parse(soup)
    except ParseError:
        pass
