"""Property-based tests for the EXCESS translator.

Random (grammatical) queries over the university database must
translate and evaluate without errors, and structural invariants of
QUEL semantics must hold: `unique` results are duplicate-free, a
where-clause result is a sub-multiset of the unfiltered one, adding a
cross-product variable multiplies cardinality, and `by` partitions the
ungrouped result exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import MultiSet
from repro.excess import Session
from repro.workloads import build_university


@pytest.fixture(scope="module")
def uni():
    return build_university(n_departments=3, n_employees=12, n_students=18,
                            kids_per_employee=2, seed=99)


# Query fragments composed into grammatical retrieves.
STUDENT_FIELDS = ["name", "city", "gpa", "ssnum", "zip"]
EMPLOYEE_FIELDS = ["name", "city", "salary", "jobtitle"]
DEPT_PATHS = ["S.dept.name", "S.dept.floor", "S.dept.division"]

student_targets = st.lists(
    st.sampled_from(["S.%s" % f for f in STUDENT_FIELDS] + DEPT_PATHS),
    min_size=1, max_size=3, unique=True)

predicates = st.sampled_from([
    None,
    "S.gpa > 3.0",
    "S.city = \"Madison\"",
    "S.dept.floor = 1",
    "S.gpa > 2.5 and S.dept.floor = 2",
    "S.ssnum > 50000 or S.zip = 53701",
    "not (S.city = \"Chicago\")",
])

by_keys = st.sampled_from([None, "S.dept", "S.dept.division", "S.city"])


def run_query(uni, source):
    return Session(uni.db).query(source)


@settings(max_examples=60, deadline=None)
@given(student_targets, predicates, by_keys, st.booleans())
def test_random_queries_translate_and_run(uni, targets, pred, by, unique):
    query = "range of S is Students retrieve %s(%s)" % (
        "unique " if unique else "", ", ".join(targets))
    if by:
        query += " by %s" % by
    if pred:
        query += " where %s" % pred
    result = run_query(uni, query)
    assert isinstance(result, MultiSet)
    if by:
        for group in result.elements():
            assert isinstance(group, MultiSet)
            if unique:
                assert group.is_set()
    elif unique:
        assert result.is_set()


@settings(max_examples=30, deadline=None)
@given(predicates.filter(lambda p: p is not None))
def test_where_filters_are_monotone(uni, pred):
    """σ output is always a sub-multiset of the unfiltered query."""
    base = run_query(uni, "range of S is Students retrieve (S.name, S.ssnum)")
    filtered = run_query(
        uni, "range of S is Students retrieve (S.name, S.ssnum) where %s"
        % pred)
    assert filtered.difference(base) == MultiSet()


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(STUDENT_FIELDS), st.sampled_from(EMPLOYEE_FIELDS))
def test_two_variable_queries_multiply_cardinality(uni, sf, ef):
    result = run_query(uni, """
        range of S is Students, E is Employees
        retrieve (a = S.%s, b = E.%s)
    """ % (sf, ef))
    n_s = len(uni.db.get("Students"))
    n_e = len(uni.db.get("Employees"))
    assert len(result) == n_s * n_e


@settings(max_examples=20, deadline=None)
@given(by_keys.filter(lambda k: k is not None),
       st.sampled_from(STUDENT_FIELDS))
def test_by_partitions_exactly(uni, key, field):
    """⊎ of the groups equals the ungrouped result (GRP partitions)."""
    flat = run_query(uni, "range of S is Students retrieve (S.%s)" % field)
    grouped = run_query(
        uni, "range of S is Students retrieve (S.%s) by %s" % (field, key))
    merged = MultiSet()
    for group in grouped.elements():
        merged = merged.add_union(group)
    assert merged == flat


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(["min", "max", "count", "sum"]),
       st.sampled_from(["gpa", "ssnum", "zip"]))
def test_aggregates_match_python(uni, agg, field):
    values = run_query(
        uni, "retrieve value (S.%s) from S in Students" % field)
    result = run_query(
        uni, "range of S is Students retrieve value (%s(S.%s from S in Students))"
        % (agg, field))
    reference = {"min": min, "max": max, "count": len,
                 "sum": sum}[agg](list(values))
    assert result == reference
