"""EXCESS update DML: append / delete / replace (Section 2.2's
"facilities for querying and updating complex structures")."""

import pytest

from repro.core.values import MultiSet, Ref, Tup
from repro.excess import Session, TranslationError
from repro.storage import Database
from repro.workloads import build_university


@pytest.fixture
def uni():
    return build_university(n_departments=2, n_employees=8, n_students=10,
                            seed=13)


@pytest.fixture
def session(uni):
    return uni.session


# ---------------------------------------------------------------------------
# append
# ---------------------------------------------------------------------------


def test_append_values_to_value_collection():
    db = Database()
    db.create("Nums", MultiSet([1, 2]))
    Session(db).run("append to Nums value (3)")
    assert db.get("Nums") == MultiSet([1, 2, 3])


def test_append_preserves_duplicates():
    db = Database()
    db.create("Nums", MultiSet([1]))
    Session(db).run("append to Nums value (1)")
    assert db.get("Nums").cardinality(1) == 2


def test_append_computed_from_query():
    db = Database()
    db.create("Src", MultiSet([1, 2, 3]))
    db.create("Dst", MultiSet())
    Session(db).run("append to Dst value (x) from x in Src where x > 1")
    assert db.get("Dst") == MultiSet([2, 3])


def test_append_structures_to_ref_collection_creates_objects(uni, session):
    """Appending plain structures to a { ref T } collection inserts
    them into the store and appends fresh references."""
    db = uni.db
    student = db.types.new(
        "Student", ssnum=777, name="Zed", street="s", city="Madison",
        zip=1, birthday="2001-01-01", gpa=3.9,
        dept=uni.department_refs[0], advisor=uni.employee_refs[0],
        check=False)
    db.create("NewStudents", MultiSet([student]))
    before = len(db.get("Students"))
    session.run("append to Students value (x) from x in NewStudents")
    after = db.get("Students")
    assert len(after) == before + 1
    assert all(isinstance(r, Ref) for r in after)
    # The new object is a first-class Student: typed, queryable.
    found = session.query(
        "range of S is Students retrieve (S.name) where S.ssnum = 777")
    assert found == MultiSet([Tup(name="Zed")])
    new_ref = next(r for r in after.elements()
                   if db.store.get(r.oid)["ssnum"] == 777)
    assert db.store.exact_type(new_ref.oid) == "Student"


def test_append_refs_pass_through(uni, session):
    existing = next(uni.db.get("Students").elements())
    before = uni.db.get("Students").cardinality(existing)
    uni.db.create("One", MultiSet([existing]))
    session.run("append to Students value (x) from x in One")
    assert uni.db.get("Students").cardinality(existing) == before + 1


def test_append_to_non_multiset_rejected():
    db = Database()
    db.create("Scalar", 5)
    with pytest.raises(TranslationError):
        Session(db).run("append to Scalar value (1)")


# ---------------------------------------------------------------------------
# delete
# ---------------------------------------------------------------------------


def test_delete_with_predicate(uni, session):
    before = len(uni.db.get("Students"))
    qualifying = len(session.query(
        "retrieve value (S.gpa) from S in Students where S.gpa < 3.0"))
    result = session.run(
        "range of S is Students delete S where S.gpa < 3.0")
    assert result[-1].value == qualifying
    assert len(uni.db.get("Students")) == before - qualifying
    remaining = session.query("retrieve value (S.gpa) from S in Students")
    assert all(g >= 3.0 for g in remaining)


def test_delete_all_without_predicate():
    db = Database()
    db.create("Nums", MultiSet([1, 2, 3]))
    Session(db).run("delete Nums")
    assert db.get("Nums") == MultiSet()


def test_delete_leaves_objects_in_store(uni, session):
    """Removing references from a collection does not destroy the
    objects (ownership, not containment, governs lifetime)."""
    target = next(uni.db.get("Students").elements())
    session.run("range of S is Students delete S where S.ssnum = %d"
                % uni.db.store.get(target.oid)["ssnum"])
    assert target.oid in uni.db.store


def test_delete_unknown_var():
    db = Database()
    with pytest.raises(TranslationError):
        Session(db).run("delete Ghost")


def test_delete_through_deref_paths(uni, session):
    """Predicates dereference implicitly, like queries do."""
    before = len(uni.db.get("Students"))
    floor1 = len(session.query(
        "retrieve value (S.gpa) from S in Students where S.dept.floor = 1"))
    session.run("range of S is Students delete S where S.dept.floor = 1")
    assert len(uni.db.get("Students")) == before - floor1


# ---------------------------------------------------------------------------
# replace
# ---------------------------------------------------------------------------


def test_replace_updates_objects_in_place(uni, session):
    before = session.query(
        'retrieve value (E.salary) from E in Employees '
        'where E.city = "Madison"')
    session.run('range of E is Employees '
                'replace E (salary = E.salary + 1000) '
                'where E.city = "Madison"')
    after = session.query(
        'retrieve value (E.salary) from E in Employees '
        'where E.city = "Madison"')
    assert sorted(after) == sorted(v + 1000 for v in before)


def test_replace_preserves_identity(uni, session):
    """Every other reference to an updated object observes the change —
    the point of updating through identity."""
    employee_ref = next(uni.db.get("Employees").elements())
    ssnum = uni.db.store.get(employee_ref.oid)["ssnum"]
    # This employee appears in some department's employees set.
    session.run("range of E is Employees "
                "replace E (jobtitle = \"promoted\") "
                "where E.ssnum = %d" % ssnum)
    assert uni.db.store.get(employee_ref.oid)["jobtitle"] == "promoted"
    # The collection itself still holds the same reference.
    assert employee_ref in uni.db.get("Employees")


def test_replace_value_collection():
    db = Database()
    db.create("Points", MultiSet([Tup(x=1, y=1), Tup(x=2, y=2)]))
    Session(db).run("range of P is Points replace P (y = P.x * 10)")
    assert db.get("Points") == MultiSet([Tup(x=1, y=10), Tup(x=2, y=20)])


def test_replace_without_predicate_touches_everything(uni, session):
    session.run("range of E is Employees replace E (zip = 99999)")
    zips = session.query("retrieve value (E.zip) from E in Employees")
    assert set(zips.elements()) == {99999}


def test_replace_unknown_field_rejected():
    db = Database()
    db.create("Points", MultiSet([Tup(x=1)]))
    with pytest.raises(KeyError):
        Session(db).run("range of P is Points replace P (ghost = 1)")


def test_replace_changes_visible_to_subsequent_queries(uni, session):
    """Update then query in one script — the session is transactional
    in the trivial sense (statements apply in order)."""
    value = session.query("""
        range of E is Employees
        replace E (salary = 12345) where E.salary > 0
        retrieve unique (E.salary)
    """)
    assert value == MultiSet([Tup(salary=12345)])
