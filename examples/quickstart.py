"""Quickstart: the paper's Figure 1 database, from DDL to queries.

Builds the EXTRA schema with ``define type`` / ``create``, loads a few
objects through the API, and runs the paper's example EXCESS queries —
showing both the answers and the algebra trees they compile to.

Run:  python examples/quickstart.py
"""

from repro import MultiSet, Ref, connect

DDL = """
define type Person:
(
    ssnum: int4,
    name: char[],
    street: char[20],
    city: char[10],
    zip: int4,
    birthday: Date
)

define type Employee:
(
    jobtitle: char[20],
    dept: ref Department,
    manager: ref Employee,
    sub_ords: { ref Employee },
    salary: int4,
    kids: { Person }
)
inherits Person

define type Department:
(
    division: char[],
    name: char[],
    floor: int4,
    employees: { ref Employee }
)

create Employees: { ref Employee }
create Departments: { ref Department }
"""


def person(types, i, name, city):
    return dict(ssnum=1000 + i, name=name, street="%d Oak St" % i,
                city=city, zip=53700 + i, birthday="19%02d-06-15" % (60 + i))


def main():
    conn = connect()
    db = conn.db
    conn.execute(DDL)
    types, store = db.types, db.store

    # -- load a tiny instance through the typed API --------------------
    cs = store.insert(types.new("Department", division="Engineering",
                                name="Computer Sciences", floor=2,
                                employees=MultiSet()), "Department")
    art = store.insert(types.new("Department", division="Arts",
                                 name="Art History", floor=5,
                                 employees=MultiSet()), "Department")

    def employee(i, name, city, dept, kids):
        value = types.new(
            "Employee", jobtitle="engineer", dept=dept,
            manager=Ref(-1, "Employee"), sub_ords=MultiSet(),
            salary=50000 + i * 1000,
            kids=MultiSet(types.new("Person", **person(types, 100 + k, kn, city))
                          for k, kn in enumerate(kids)),
            check=False, **person(types, i, name, city))
        return store.insert(value, "Employee")

    ada = employee(1, "Ada", "Madison", cs, ["Ben", "Cleo"])
    dev = employee(2, "Dev", "Madison", art, ["Eve"])
    gil = employee(3, "Gil", "Chicago", cs, [])
    for ref in (ada, dev, gil):
        store.update(ref.oid, store.get(ref.oid).replace(manager=ada))

    db.create("Employees", MultiSet([ada, dev, gil]))
    db.create("Departments", MultiSet([cs, art]))

    # -- the paper's first example query ----------------------------------
    print("Children of employees whose department is on floor 2:")
    query = """
        range of E is Employees
        retrieve (C.name) from C in E.kids where E.dept.floor = 2
    """
    print("  EXCESS:", " ".join(query.split()))
    print("  algebra:", conn.session.compile(query).describe()[:100], "…")
    result = conn.execute(query)
    for row in result.rows():
        print("   ", row)

    # -- the functional join of Figure 4 ---------------------------------
    print("\nDepartments of Madison employees (Figure 4):")
    fig4 = conn.execute('retrieve (Employees.dept.name) '
                        'where Employees.city = "Madison"')
    for row in fig4.rows():
        print("   ", row)

    # -- identity: two employees may share a department object ------------
    print("\nObject identity: Ada and Gil share one Department object:")
    ada_dept = store.get(ada.oid)["dept"]
    gil_dept = store.get(gil.oid)["dept"]
    print("    same reference?", ada_dept == gil_dept)

    # -- work counters -----------------------------------------------------
    print("\nWork counters for the first query:",
          dict(sorted(result.stats.items())))

    # -- EXPLAIN ANALYZE ---------------------------------------------------
    conn.tracing = True
    traced = conn.execute(query)
    print("\nEXPLAIN ANALYZE of the first query:")
    print(traced.explain(cost_model=conn.session.optimizer.cost_model))


if __name__ == "__main__":
    main()
