"""Section 4 end-to-end: processing queries over overridden methods.

Defines the ``boss`` method on Person and overrides it on Student and
Employee (through EXCESS ``define function`` — the bodies become stored
algebra trees), then invokes it over a heterogeneous set P three ways:

  1. the run-time switch-table strategy;
  2. the compile-time ⊎-based plan of Figure 5;
  3. the ⊎-based plan served by per-type indexes.

The work counters reproduce the paper's trade-off discussion: the
⊎-plan scans P once per distinct body (bad for trivial bodies, dwarfed
by real work for bodies that scan ``sub_ords``), indexes make the extra
scans disappear, and the inlined bodies are open to the optimizer.

Run:  python examples/method_overriding.py
"""

from repro.core import evaluate
from repro.core.optimizer import Optimizer
from repro.workloads import build_university
from repro.workloads.dispatch import (build_population,
                                      define_rich_subords_methods,
                                      switch_plan, union_plan)


def measure(uni, plan):
    ctx = uni.db.context()
    value = evaluate(plan, ctx)
    return value, ctx.stats


def main():
    uni = build_university(n_departments=3, n_employees=15, n_students=15,
                           subords_per_employee=10, seed=2)
    build_population(uni)
    session = uni.session

    # The cheap method, defined in EXCESS itself (Section 4's example).
    session.run("""
        define Person function boss () returns char[]
            { retrieve value (this.name) }
        define Employee function boss () returns char[]
            { retrieve value (this.manager.name) }
        define Student function boss () returns char[]
            { retrieve value (this.advisor.name) }
    """)
    define_rich_subords_methods(uni)

    print("P holds %d structures: %s\n" % (
        len(uni.db.get("P")),
        {t: len([1 for v in uni.db.get("P") if v.type_name == t])
         for t in ("Person", "Student", "Employee")}))

    for method in ("boss", "rich_subords"):
        print("== method %r ==" % method)
        v_switch, s_switch = measure(uni, switch_plan(method))
        v_union, s_union = measure(uni, union_plan(uni, method))
        uni.db.indexes.build_typed("P")
        v_index, s_index = measure(uni, union_plan(uni, method,
                                                   use_index=True))
        assert v_switch == v_union == v_index
        print("   plans agree on %d results" % len(v_switch))
        for label, stats in (("switch-table", s_switch),
                             ("⊎-based", s_union),
                             ("⊎ + indexes", s_index)):
            print("   %-14s scanned=%-5d dispatches=%-4d derefs=%-4d"
                  % (label, stats.get("elements_scanned", 0),
                     stats.get("method_dispatches", 0),
                     stats.get("deref_count", 0)))
        print()

    print("== compile-time optimization of the ⊎-plan ==")
    plan = union_plan(uni, "rich_subords")
    result = Optimizer(max_depth=2, max_trees=600).optimize(plan)
    print("   rewrite steps:", " -> ".join(result.steps))
    _, before = measure(uni, plan)
    _, after = measure(uni, result.best)
    print("   DE work: %d -> %d (the stored bodies' redundant DEs are"
          % (before["de_elements"], after["de_elements"]))
    print("   gone — a black-box switch-table plan keeps them forever)")


if __name__ == "__main__":
    main()
