"""A small registrar application: updates + the derived-operator library.

A realistic end-to-end scenario on the university database:

  1. enrollment season — append newly admitted students (EXCESS
     ``append`` creates objects with identity in a { ref Student } set);
  2. a department closure — employees reassigned via ``replace``
     (updates through identity: every reference observes the change),
     orphaned students dropped via ``delete``;
  3. reporting — nest/unnest, semijoin, and per-group aggregates from
     the derived-operator library, optimized by the standard rules.

Run:  python examples/registrar_app.py
"""

from repro import ExecutionOptions, connect
from repro.core import Input, Named, evaluate
from repro.core.operators import (TupExtract, aggregate_per_group,
                                  join_field, nest, semijoin,
                                  register_library_functions)
from repro.core.predicates import Atom
from repro.core.values import MultiSet, Tup
from repro.workloads import build_university


def main():
    uni = build_university(n_departments=4, n_employees=12, n_students=20,
                           seed=8)
    db = uni.db
    conn = connect(db, ExecutionOptions(engine="interpreted"))
    register_library_functions(db)

    print("== 1. Enrollment: appending new students ==")
    admitted = MultiSet([
        db.types.new("Student", ssnum=90001 + i, name="New Student %d" % i,
                     street="Main St", city="Madison", zip=53703,
                     birthday="2004-01-01", gpa=4.0,
                     dept=uni.department_refs[i % 2],
                     advisor=uni.employee_refs[0], check=False)
        for i in range(3)])
    db.create("Admitted", admitted)
    before = len(db.get("Students"))
    conn.execute("append to Students value (x) from x in Admitted",
                 optimize=False)
    print("   Students: %d -> %d (objects created with fresh OIDs)"
          % (before, len(db.get("Students"))))

    print("\n== 2. Department closure ==")
    closing = uni.department_refs[0]
    closing_name = db.store.get(closing.oid)["name"]
    new_home = uni.department_refs[1]
    moved = conn.execute(
        "range of E is Employees "
        'replace E (jobtitle = "transferred") '
        "where E.dept.name = \"%s\"" % closing_name, optimize=False).value
    print("   %d employees of %s marked transferred (in place — their"
          % (moved, closing_name))
    print("   identity is unchanged, so manager references still work)")
    dropped = conn.execute(
        "range of S is Students delete S "
        'where S.dept.name = "%s"' % closing_name, optimize=False).value
    print("   %d students of the closing department dropped" % dropped)

    print("\n== 3. Reports (derived-operator library) ==")
    # 3a. Students nested per department name.
    student_rows = conn.execute(
        "range of S is Students retrieve (S.name, dept = S.dept.name)",
        optimize=False).value
    db.create("StudentRows", student_rows)
    nested = evaluate(nest(["dept"], "students", Named("StudentRows")),
                      db.context())
    for row in sorted(nested.elements(), key=lambda t: t["dept"]):
        print("   %-8s %d student(s)" % (row["dept"], len(row["students"])))

    # 3b. Average salary per job title.
    emp_rows = conn.execute(
        "range of E is Employees retrieve (job = E.jobtitle, sal = E.salary)",
        optimize=False).value
    db.create("EmpRows", emp_rows)
    report = evaluate(
        aggregate_per_group(TupExtract("job", Input()), "avg",
                            TupExtract("sal", Input()), Named("EmpRows"),
                            key_field="job", agg_field="avg_salary"),
        db.context())
    for row in sorted(report.elements(), key=lambda t: t["job"]):
        print("   %-12s avg salary %.0f" % (row["job"], row["avg_salary"]))

    # 3c. Semijoin: departments that still have students.
    dept_rows = conn.execute(
        "range of D is Departments retrieve (dname = D.name)",
        optimize=False).value
    db.create("DeptRows", dept_rows)
    active = evaluate(
        semijoin(Atom(join_field(1, "dname"), "=", join_field(2, "dept")),
                 Named("DeptRows"), Named("StudentRows")),
        db.context())
    print("   departments with students:",
          sorted(t["dname"] for t in active.elements()))


if __name__ == "__main__":
    main()
