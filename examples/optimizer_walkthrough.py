"""Optimizer walkthrough: rules, search, cost, and equipollence.

Shows the machinery the paper builds toward an EXODUS-generated
optimizer: the rewrite engine exploring a query's equivalence class,
the cost model ranking alternatives with catalog statistics, and —
because intermediate trees always remain EXCESS-expressible (the
equipollence theorem) — any explored plan printing back to runnable
EXCESS text.

Run:  python examples/optimizer_walkthrough.py
"""

from repro import Database, MultiSet, Tup
from repro.core import Const, Input, Named, evaluate
from repro.core.operators import (DE, Cross, Grp, SetApply, TupExtract,
                                  sigma)
from repro.core.optimizer import (CostModel, ObjectStats, Optimizer,
                                  Statistics)
from repro.core.predicates import Atom
from repro.core.transform import ALL_RULES, RewriteEngine
from repro import connect
from repro.excess.printer import to_excess


def main():
    db = Database()
    db.create("Orders", MultiSet(
        Tup(item="widget" if i % 3 else "gadget", qty=i % 5)
        for i in range(30)))
    db.create("Codes", MultiSet([Tup(code=i) for i in range(6)]))

    # A deliberately naive plan: dedupe the product of two sets, then
    # filter, then group — full of rewrite opportunities.
    pred = Atom(TupExtract("qty", TupExtract("field1", Input())), ">",
                Const(2))
    naive = Grp(
        TupExtract("item", TupExtract("field1", Input())),
        sigma(pred, DE(Cross(Named("Orders"), Named("Codes")))))

    print("Initial plan:")
    print("   ", naive.describe()[:110], "…")

    # -- 1. the equivalence class -------------------------------------
    engine = RewriteEngine(ALL_RULES, max_depth=3, max_trees=300)
    derivations = engine.explore(naive)
    print("\nEquivalence class: %d trees within 3 rewrite steps"
          % len(derivations))

    # -- 2. statistics and the cost model ---------------------------------
    stats = Statistics()
    stats.set_object("Orders", ObjectStats(cardinality=30, distinct=10))
    stats.set_object("Codes", ObjectStats(cardinality=6, distinct=6))
    model = CostModel(stats)
    print("Initial cost estimate: %.0f work units" % model.cost(naive))

    # -- 3. optimization ------------------------------------------------
    optimizer = Optimizer(cost_model=model, max_depth=3, max_trees=300)
    result = optimizer.optimize(naive)
    print("\nOptimizer chose (cost %.0f, %.1fx better):"
          % (result.best_cost, result.improvement))
    print("   ", result.best.describe()[:110], "…")
    print("    via:", " -> ".join(result.steps))

    value_naive = evaluate(naive, db.context())
    value_best = evaluate(result.best, db.context())
    print("    same answer:", value_naive == value_best)

    # -- 4. equipollence in action ----------------------------------------
    print("\nAny explored plan is still an EXCESS query; e.g. the "
          "deduped product prints as:")
    fragment = DE(Cross(Named("Orders"), Named("Codes")))
    program, result_name = to_excess(fragment)
    for line in program.splitlines():
        print("    " + line)
    connect(db).execute(program, optimize=False)
    print("    …which executes to the same value:",
          db.get(result_name) == evaluate(fragment, db.context()))


if __name__ == "__main__":
    main()
