"""The full worked-example tour: every figure's query on a populated DB.

Generates the synthetic university workload, runs the paper's example
queries through EXCESS, then replays Section 5's transformation
sequences (Figures 6–8 and 9–11), printing the work counters that show
each rewrite earning its keep.

Run:  python examples/university_queries.py
"""

from repro import ExecutionOptions, connect
from repro.core import evaluate
from repro.workloads import build_university, figures


def measure(uni, expr):
    ctx = uni.db.context()
    value = evaluate(expr, ctx)
    return value, ctx.stats


def show_counters(label, stats):
    interesting = {k: v for k, v in sorted(stats.items())
                   if k in ("elements_scanned", "de_elements",
                            "cross_pairs", "deref_count")}
    print("    %-28s %s" % (label, interesting))


def main():
    uni = build_university(n_departments=4, n_employees=40, n_students=80,
                           advisor_pool=5, employee_name_pool=5,
                           kids_per_employee=2, seed=3)
    figures.value_views(uni)
    conn = connect(uni.db, ExecutionOptions(engine="interpreted"))

    print("== The paper's Section 2.2 example queries ==\n")
    q1 = """
        range of E is Employees
        retrieve (C.name) from C in E.kids where E.dept.floor = 2
    """
    print("Q1 (children of floor-2 employees): %d rows"
          % len(conn.execute(q1, optimize=False).value))

    q2 = """
        range of EMP is Employees
        retrieve (EMP.name, min(E.kids.age
            from E in Employees
            where E.dept.floor = EMP.dept.floor))
    """
    rows = conn.execute(q2, optimize=False).value
    sample = next(rows.elements())
    print("Q2 (correlated aggregate): %d rows, e.g. %s" % (len(rows), sample))

    print("\n== Figure 3: array extraction ==")
    value, stats = measure(uni, figures.figure_3())
    print("   TopTen[5] ->", value, "| derefs:", stats["deref_count"])

    print("\n== Figure 4: functional join ==")
    value, stats = measure(uni, figures.figure_4())
    print("   Madison employees' departments:", value)
    show_counters("figure 4", stats)

    print("\n== Example 1 (Figures 6-8): DE placement ==")
    results = {}
    for name, builder in (("figure 6", figures.figure_6),
                          ("figure 7", figures.figure_7),
                          ("figure 8", figures.figure_8)):
        value, stats = measure(uni, builder())
        results[name] = value
        show_counters(name, stats)
    assert len(set(map(repr, results.values()))) >= 1
    assert results["figure 6"] == results["figure 7"] == results["figure 8"]
    print("    all three plans agree ✓")

    print("\n== Example 2 (Figures 9-11): collapsing scans, pushing into COMP ==")
    floor = 2
    results = {}
    for name, builder in (("figure 9", figures.figure_9),
                          ("figure 10", figures.figure_10),
                          ("figure 11", figures.figure_11)):
        value, stats = measure(uni, builder(floor))
        results[name] = value
        show_counters(name, stats)
    assert results["figure 9"] == results["figure 10"] == results["figure 11"]
    print("    all three plans agree ✓")

    print("\n== The same queries straight from EXCESS text ==")
    excess_groups = conn.execute("""
        range of S is Students
        retrieve (S.name) by S.dept.division where S.dept.floor = %d
    """ % floor, optimize=False).value
    names = {t["name"] for g in excess_groups.elements() for t in g}
    fig_names = {t["name"] for g in results["figure 9"].elements() for t in g}
    print("   EXCESS result matches the figure trees:", names == fig_names)


if __name__ == "__main__":
    main()
