"""Static analysis walkthrough: the verifier, the gate, and the linter.

Three layers on top of the algebra, demonstrated on the Figure 1
university database:

1. **Inheritance-aware inference** — every plan is typed before it
   runs (``Session(verify=True)``), with DOM(S) substitutability and
   declared builtin/method signatures.
2. **The rewrite-soundness gate** — every rewrite the optimizer admits
   must preserve the inferred schema (debug mode for rule authors).
3. **The plan linter** — coded findings (L100…L106) with source spans
   pointing back at the EXCESS query text.

Run:  python examples/lint_walkthrough.py
"""

from repro.cli import lint_source
from repro.core.analysis import (SoundnessChecker, inference_for_database,
                                 facts_for_database)
from repro.core.analysis.rulecheck import verify_all_rules
from repro.core.engine.compiler import compile_plan
from repro.core.optimizer import CostModel, Optimizer, Statistics
from repro.core.values import MultiSet
from repro import ExecutionOptions, connect
from repro.workloads.university import build_university


def main():
    uni = build_university()
    db = uni.db

    # -- 1. verified execution -----------------------------------------
    print("== Verified execution ==")
    conn = connect(db, ExecutionOptions(verify=True))
    session = conn.session
    result = conn.execute(
        "retrieve (E.name, E.salary) from E in Employees "
        "where E.salary > 60000", optimize=False)
    print("query typechecked and returned %d rows" % len(result.value))

    env = inference_for_database(db)
    schema = env.check(session.compile(
        "retrieve (E.name) from E in Employees"))
    print("inferred result schema:", schema.describe())

    # -- 2. the rewrite-soundness gate ---------------------------------
    print("\n== Rewrite-soundness gate ==")
    report = verify_all_rules()
    print(report.describe().splitlines()[0])
    print(report.describe().splitlines()[-1])

    # Debug mode: the same gate hooks into the optimizer, so every
    # admitted rewrite of a real query is checked as it is explored.
    gate = SoundnessChecker(env)
    plan = session.compile(
        "retrieve (E.name) from E in Employees where E.dept.floor = 2")
    optimizer = Optimizer(cost_model=CostModel(Statistics.from_database(db)),
                          max_depth=2, verifier=gate)
    best = optimizer.optimize(plan)
    print("optimizer admitted %d verified rewrites (cost %.0f -> %.0f)"
          % (gate.checked, best.initial_cost, best.best_cost))

    # -- 3. the plan linter --------------------------------------------
    print("\n== Plan linter ==")
    db.create("Codes", MultiSet([1, 2, 3]))
    queries = [
        "retrieve (C.name) from C in Codes",                       # L100
        "retrieve (de(de(E.sub_ords))) from E in Employees",       # L102
        "retrieve (E.name) from E in Employees "
        "where min(E.kids.age) < 10",                              # L104
        "retrieve (mystery(E.salary)) from E in Employees",        # L106
    ]
    for query in queries:
        print("query:", query)
        blocks, _errors = lint_source(session, query)
        for block in blocks:
            print("  ", block)

    # -- 4. analysis facts license physical optimizations --------------
    print("\n== Duplicate-freedom as an optimization license ==")
    from repro.core.expr import Named
    from repro.core.operators import DE
    # The verifier proves Employees duplicate-free, so the compiled
    # engine turns this DE into a pass-through instead of hashing.
    pipeline = compile_plan(DE(Named("Employees")),
                            facts=facts_for_database(db))
    for note in pipeline.notes:
        print("  compiler note:", note)


if __name__ == "__main__":
    main()
