"""Network-server throughput: QPS and p99 latency vs client count.

Hosts an in-process :class:`repro.server.Server` over a durable
(WAL + fsync) database and drives it with 1/4/16/64 blocking clients:

* **writes** — each client appends distinct integers to its own
  collection (autocommit per statement, so every op crosses the
  group-commit path);
* **reads** — each client runs a filtered retrieve against one shared
  collection (MVCC snapshot per query on the reader pool).

The interesting claim is the *shape*: multi-client write QPS must beat
single-client QPS, because the writer batches many connections'
commits into one fsync (the batch-size histogram is exported as
evidence) and the event loop overlaps protocol work with execution.

Also runs a **differential**: the same 4096-append workload executed
by 1 client and by 64 clients must leave databases whose canonically
ordered rows are byte-identical on the wire — with a keyed index
defined on the collection, so the closing reads exercise the
snapshot-index probe path.

The **selective-read series** hosts one ~10 000-row collection with
keyed + ordered indexes and drives point lookups (`x = $k`) and
1%-selectivity range lookups (`x < $k`) at 1→16 clients, once against
a default server (cost-based access paths over the epoch-stamped
snapshot catalog) and once with ``access_paths="off"``.  The full run
asserts the indexed path is ≥ 5× the index-free path on every
matched (kind, clients) pair.

``--smoke`` runs a reduced sweep (1 and 16 clients) and asserts the
scaling claim; ``--reads-smoke`` runs only a reduced selective-read
series and asserts probe-beats-scan (the ``make bench-server-reads``
gate); the full run writes ``BENCH_server.json``.  Run via
``make bench-server`` (smoke) / ``make bench-server-full``.
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time

from repro.server import Server, ServerThread
from repro.server.client import ServerClient

OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_server.json")


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _drive(port, clients, op_factory, ops_per_client):
    """Run *ops_per_client* ops on each of *clients* threads; returns
    (wall_seconds, per-op latencies)."""
    latencies = [[] for _ in range(clients)]
    errors = []
    barrier = threading.Barrier(clients + 1)

    def worker(cid):
        try:
            with ServerClient(port, timeout=120.0) as client:
                barrier.wait()
                for i in range(ops_per_client):
                    op = op_factory(cid, i)
                    started = time.perf_counter()
                    client.execute(op[0], params=op[1])
                    latencies[cid].append(time.perf_counter() - started)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [threading.Thread(target=worker, args=(cid,))
               for cid in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return wall, [lat for per in latencies for lat in per]


def bench_writes(port, clients, total_ops):
    ops = total_ops // clients
    with ServerClient(port) as admin:
        for cid in range(clients):
            admin.execute("create W%d_%d: { int4 }" % (clients, cid))

    def op(cid, i):
        return ("append to W%d_%d value (%d)" % (clients, cid, i), None)

    wall, latencies = _drive(port, clients, op, ops)
    done = clients * ops
    return {"clients": clients, "ops": done, "seconds": round(wall, 4),
            "qps": round(done / wall, 1),
            "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3)}


def bench_reads(port, clients, total_ops):
    ops = total_ops // clients

    def op(cid, i):
        return ("retrieve (x) from x in Shared where x < $k",
                {"k": 40 + (i % 20)})

    wall, latencies = _drive(port, clients, op, ops)
    done = clients * ops
    return {"clients": clients, "ops": done, "seconds": round(wall, 4),
            "qps": round(done / wall, 1),
            "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3)}


def bench_selective_reads(client_counts, total_ops, rows=30000):
    """Point and 1%-selectivity range lookups against one indexed
    tuple collection, with cost-based access paths on vs off.
    Returns one row per (variant, kind, clients).

    Params rotate over a small set so the per-connection plan cache
    hits after each client's first pass (params splice as literals, so
    each distinct value is a distinct script).
    """
    from repro import Database, ExecutionOptions
    from repro.core.expr import Input
    from repro.core.operators.tuples import TupExtract
    from repro.core.values import MultiSet, Tup

    span = max(1, rows // 100)  # 1% of the collection

    def point_op(cid, i):
        return ("retrieve (t.v) from t in Big where t.k = $k",
                {"k": (cid * 7 + i) % 8})

    def range_op(cid, i):
        return ("retrieve (t.v) from t in Big where t.k < $k",
                {"k": span + (i % 8)})

    out = []
    for variant, options in (
            ("indexed", None),
            ("no_index", ExecutionOptions(access_paths="off"))):
        db = Database()
        db.create("Big", MultiSet([Tup({"k": i, "v": i % 97})
                                   for i in range(rows)]))
        key = TupExtract("k", Input())
        db.indexes.create_index("keyed", "Big", key)
        db.indexes.create_index("ordered", "Big", key)
        server = Server(db, options, max_clients=128, queue_depth=512,
                        query_timeout=120.0)
        with ServerThread(server):
            port = server.port
            for clients in client_counts:
                ops = max(1, total_ops // clients)
                for kind, op in (("point", point_op), ("range", range_op)):
                    wall, latencies = _drive(port, clients, op, ops)
                    done = clients * ops
                    row = {"variant": variant, "kind": kind,
                           "clients": clients, "ops": done,
                           "seconds": round(wall, 4),
                           "qps": round(done / wall, 1),
                           "p99_ms": round(
                               _percentile(latencies, 0.99) * 1000, 3)}
                    out.append(row)
                    print("selective %-8s %-5s @%3d clients: %8.1f qps"
                          "  p99 %7.3f ms"
                          % (variant, kind, clients, row["qps"],
                             row["p99_ms"]), flush=True)
    return out


def _selective_ratios(series):
    """(kind, clients) → indexed-QPS / index-free-QPS."""
    indexed = {(r["kind"], r["clients"]): r["qps"]
               for r in series if r["variant"] == "indexed"}
    scans = {(r["kind"], r["clients"]): r["qps"]
             for r in series if r["variant"] == "no_index"}
    return {key: indexed[key] / scans[key] for key in indexed}


def _hosted_server(workdir, name):
    server = Server(os.path.join(workdir, name), max_clients=128,
                    queue_depth=512, query_timeout=120.0,
                    drain_timeout=10.0)
    return server


def run_differential(workdir, total_ops=4096):
    """The same appends via 1 client and via 64: canonical wire rows
    must match byte for byte."""
    from repro.core.expr import Input

    payloads = []
    for clients in (1, 64):
        server = _hosted_server(workdir, "diff-%d" % clients)
        with ServerThread(server):
            port = server.port
            with ServerClient(port) as admin:
                admin.execute("create D: { int4 }")
            # A keyed index on the target: the closing selective read
            # goes through the snapshot-index probe path on both sides.
            server.db.indexes.create_index("keyed", "D", Input())
            ops = total_ops // clients

            def op(cid, i, _c=clients, _o=ops):
                return ("append to D value (%d)" % (cid * _o + i), None)

            _drive(port, clients, op, ops)
            with ServerClient(port) as admin:
                rows = admin.execute("retrieve (x) from x in D").raw_rows
                probed = admin.execute(
                    "retrieve (x) from x in D where x = 17").raw_rows
        canonical = json.dumps(
            [sorted(rows, key=json.dumps), sorted(probed, key=json.dumps)],
            separators=(",", ":")).encode()
        payloads.append(canonical)
    return {"ops": total_ops,
            "identical": payloads[0] == payloads[1],
            "bytes": len(payloads[0])}


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sweep (1 and 16 clients), no "
                             "BENCH_server.json")
    parser.add_argument("--reads-smoke", action="store_true",
                        help="reduced selective-read series only: "
                             "assert indexed beats index-free")
    args = parser.parse_args(argv)

    if args.reads_smoke:
        series = bench_selective_reads((1, 4), total_ops=96, rows=6000)
        ratios = _selective_ratios(series)
        for (kind, clients), ratio in sorted(ratios.items()):
            print("selective %-5s @%3d clients: probe/scan = %.2fx"
                  % (kind, clients, ratio), flush=True)
        assert all(ratio > 1.0 for ratio in ratios.values()), (
            "indexed server reads should beat access_paths='off': %r"
            % (ratios,))
        print("bench-server-reads: PASS", flush=True)
        return 0

    client_counts = (1, 16) if args.smoke else (1, 4, 16, 64)
    write_ops = 256 if args.smoke else 1024
    read_ops = 256 if args.smoke else 1024

    workdir = tempfile.mkdtemp(prefix="repro-bench-server-")
    report = {"writes": [], "reads": []}
    try:
        server = _hosted_server(workdir, "main")
        with ServerThread(server):
            port = server.port
            with ServerClient(port) as admin:
                admin.execute("create Shared: { int4 }")
                for i in range(0, 200, 50):
                    admin.execute(
                        " ".join("append to Shared value (%d)" % v
                                 for v in range(i, i + 50)))
            for clients in client_counts:
                row = bench_writes(port, clients, write_ops)
                report["writes"].append(row)
                print("writes @%3d clients: %8.1f qps  p99 %7.3f ms"
                      % (clients, row["qps"], row["p99_ms"]), flush=True)
            for clients in client_counts:
                row = bench_reads(port, clients, read_ops)
                report["reads"].append(row)
                print("reads  @%3d clients: %8.1f qps  p99 %7.3f ms"
                      % (clients, row["qps"], row["p99_ms"]), flush=True)
            from repro.obs.metrics import SERVER_GROUP_COMMIT_BATCH
            hist = SERVER_GROUP_COMMIT_BATCH.to_json()["values"]
            if hist:
                state = hist[0]
                report["group_commit"] = {
                    "batches": state["count"],
                    "statements": state["sum"],
                    "mean_batch": round(state["sum"]
                                        / max(state["count"], 1), 2)}
                print("group commit: %d statements over %d fsync batches "
                      "(mean %.2f/batch)"
                      % (state["sum"], state["count"],
                         report["group_commit"]["mean_batch"]), flush=True)

        single = report["writes"][0]["qps"]
        multi = max(row["qps"] for row in report["writes"][1:])
        print("write scaling: best multi-client %.1f qps vs single %.1f qps"
              % (multi, single), flush=True)
        assert multi > single, (
            "multi-client write QPS (%.1f) should beat single-client "
            "(%.1f): group commit + pipelining" % (multi, single))

        if not args.smoke:
            series = bench_selective_reads((1, 4, 16), total_ops=512)
            report["selective_reads"] = {
                "rows": 30000, "selectivity": 0.01, "series": series,
                "floor": 5.0}
            ratios = _selective_ratios(series)
            for (kind, clients), ratio in sorted(ratios.items()):
                print("selective %-5s @%3d clients: probe/scan = %.2fx"
                      % (kind, clients, ratio), flush=True)
            worst = min(ratios.values())
            report["selective_reads"]["worst_ratio"] = round(worst, 2)
            assert worst >= 5.0, (
                "indexed server reads must be >= 5x the index-free "
                "path on every (kind, clients) pair; worst was %.2fx: %r"
                % (worst, ratios))
            report["differential"] = run_differential(workdir)
            print("differential @64 clients: identical=%s"
                  % report["differential"]["identical"], flush=True)
            assert report["differential"]["identical"], \
                "64-client workload diverged from single-client"
            with open(OUT_PATH, "w") as fh:
                json.dump(report, fh, indent=1, sort_keys=True)
                fh.write("\n")
            print("wrote %s" % os.path.abspath(OUT_PATH), flush=True)
        print("bench-server: PASS", flush=True)
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
