"""Network-server throughput: QPS and p99 latency vs client count.

Hosts an in-process :class:`repro.server.Server` over a durable
(WAL + fsync) database and drives it with 1/4/16/64 blocking clients:

* **writes** — each client appends distinct integers to its own
  collection (autocommit per statement, so every op crosses the
  group-commit path);
* **reads** — each client runs a filtered retrieve against one shared
  collection (MVCC snapshot per query on the reader pool).

The interesting claim is the *shape*: multi-client write QPS must beat
single-client QPS, because the writer batches many connections'
commits into one fsync (the batch-size histogram is exported as
evidence) and the event loop overlaps protocol work with execution.

Also runs a **differential**: the same 4096-append workload executed
by 1 client and by 64 clients must leave databases whose canonically
ordered rows are byte-identical on the wire.

``--smoke`` runs a reduced sweep (1 and 16 clients) and asserts the
scaling claim; the full run writes ``BENCH_server.json``.  Run via
``make bench-server`` (smoke) / ``make bench-server-full``.
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time

from repro.server import Server, ServerThread
from repro.server.client import ServerClient

OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_server.json")


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _drive(port, clients, op_factory, ops_per_client):
    """Run *ops_per_client* ops on each of *clients* threads; returns
    (wall_seconds, per-op latencies)."""
    latencies = [[] for _ in range(clients)]
    errors = []
    barrier = threading.Barrier(clients + 1)

    def worker(cid):
        try:
            with ServerClient(port, timeout=120.0) as client:
                barrier.wait()
                for i in range(ops_per_client):
                    op = op_factory(cid, i)
                    started = time.perf_counter()
                    client.execute(op[0], params=op[1])
                    latencies[cid].append(time.perf_counter() - started)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [threading.Thread(target=worker, args=(cid,))
               for cid in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return wall, [lat for per in latencies for lat in per]


def bench_writes(port, clients, total_ops):
    ops = total_ops // clients
    with ServerClient(port) as admin:
        for cid in range(clients):
            admin.execute("create W%d_%d: { int4 }" % (clients, cid))

    def op(cid, i):
        return ("append to W%d_%d value (%d)" % (clients, cid, i), None)

    wall, latencies = _drive(port, clients, op, ops)
    done = clients * ops
    return {"clients": clients, "ops": done, "seconds": round(wall, 4),
            "qps": round(done / wall, 1),
            "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3)}


def bench_reads(port, clients, total_ops):
    ops = total_ops // clients

    def op(cid, i):
        return ("retrieve (x) from x in Shared where x < $k",
                {"k": 40 + (i % 20)})

    wall, latencies = _drive(port, clients, op, ops)
    done = clients * ops
    return {"clients": clients, "ops": done, "seconds": round(wall, 4),
            "qps": round(done / wall, 1),
            "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3)}


def _hosted_server(workdir, name):
    server = Server(os.path.join(workdir, name), max_clients=128,
                    queue_depth=512, query_timeout=120.0,
                    drain_timeout=10.0)
    return server


def run_differential(workdir, total_ops=4096):
    """The same appends via 1 client and via 64: canonical wire rows
    must match byte for byte."""
    payloads = []
    for clients in (1, 64):
        server = _hosted_server(workdir, "diff-%d" % clients)
        with ServerThread(server):
            port = server.port
            with ServerClient(port) as admin:
                admin.execute("create D: { int4 }")
            ops = total_ops // clients

            def op(cid, i, _c=clients, _o=ops):
                return ("append to D value (%d)" % (cid * _o + i), None)

            _drive(port, clients, op, ops)
            with ServerClient(port) as admin:
                rows = admin.execute("retrieve (x) from x in D").raw_rows
        canonical = json.dumps(sorted(rows, key=json.dumps),
                               separators=(",", ":")).encode()
        payloads.append(canonical)
    return {"ops": total_ops,
            "identical": payloads[0] == payloads[1],
            "bytes": len(payloads[0])}


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sweep (1 and 16 clients), no "
                             "BENCH_server.json")
    args = parser.parse_args(argv)

    client_counts = (1, 16) if args.smoke else (1, 4, 16, 64)
    write_ops = 256 if args.smoke else 1024
    read_ops = 256 if args.smoke else 1024

    workdir = tempfile.mkdtemp(prefix="repro-bench-server-")
    report = {"writes": [], "reads": []}
    try:
        server = _hosted_server(workdir, "main")
        with ServerThread(server):
            port = server.port
            with ServerClient(port) as admin:
                admin.execute("create Shared: { int4 }")
                for i in range(0, 200, 50):
                    admin.execute(
                        " ".join("append to Shared value (%d)" % v
                                 for v in range(i, i + 50)))
            for clients in client_counts:
                row = bench_writes(port, clients, write_ops)
                report["writes"].append(row)
                print("writes @%3d clients: %8.1f qps  p99 %7.3f ms"
                      % (clients, row["qps"], row["p99_ms"]), flush=True)
            for clients in client_counts:
                row = bench_reads(port, clients, read_ops)
                report["reads"].append(row)
                print("reads  @%3d clients: %8.1f qps  p99 %7.3f ms"
                      % (clients, row["qps"], row["p99_ms"]), flush=True)
            from repro.obs.metrics import SERVER_GROUP_COMMIT_BATCH
            hist = SERVER_GROUP_COMMIT_BATCH.to_json()["values"]
            if hist:
                state = hist[0]
                report["group_commit"] = {
                    "batches": state["count"],
                    "statements": state["sum"],
                    "mean_batch": round(state["sum"]
                                        / max(state["count"], 1), 2)}
                print("group commit: %d statements over %d fsync batches "
                      "(mean %.2f/batch)"
                      % (state["sum"], state["count"],
                         report["group_commit"]["mean_batch"]), flush=True)

        single = report["writes"][0]["qps"]
        multi = max(row["qps"] for row in report["writes"][1:])
        print("write scaling: best multi-client %.1f qps vs single %.1f qps"
              % (multi, single), flush=True)
        assert multi > single, (
            "multi-client write QPS (%.1f) should beat single-client "
            "(%.1f): group commit + pipelining" % (multi, single))

        if not args.smoke:
            report["differential"] = run_differential(workdir)
            print("differential @64 clients: identical=%s"
                  % report["differential"]["identical"], flush=True)
            assert report["differential"]["identical"], \
                "64-client workload diverged from single-client"
            with open(OUT_PATH, "w") as fh:
                json.dump(report, fh, indent=1, sort_keys=True)
                fh.write("\n")
            print("wrote %s" % os.path.abspath(OUT_PATH), flush=True)
        print("bench-server: PASS", flush=True)
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
