"""End-to-end EXCESS pipeline throughput: parse → translate → execute.

Covers the language substrate the paper's queries flow through, plus
the OID/store layer (allocation, dereference, typed extents).  No paper
claim attaches to these numbers; they document the reproduction's
substrate costs so the figure benchmarks can be read in context.
"""

from repro import ExecutionOptions, connect
from repro.core import evaluate
from repro.excess import parse
from repro.workloads import build_university

Q1 = """
    range of E is Employees
    retrieve (C.name) from C in E.kids where E.dept.floor = 2
"""

Q2 = """
    range of EMP is Employees
    retrieve (EMP.name, min(E.kids.age
        from E in Employees
        where E.dept.floor = EMP.dept.floor))
"""


def test_parse_query1(benchmark):
    statements = benchmark(lambda: parse(Q1))
    assert len(statements) == 2


def test_translate_query1(benchmark, uni):
    session = connect(uni.db).session

    def compile_q1():
        session.ranges.clear()
        return session.compile(Q1)

    expr = benchmark(compile_q1)
    assert expr.size() > 3


def test_execute_query1(benchmark, uni):
    session = connect(uni.db).session
    plan = session.compile(Q1)
    value = benchmark(lambda: evaluate(plan, uni.db.context()))
    assert len(value) > 0


def test_execute_query2_correlated(benchmark, small_uni):
    session = connect(small_uni.db).session
    plan = session.compile(Q2)
    value = benchmark(lambda: evaluate(plan, small_uni.db.context()))
    assert len(value) == len(small_uni.db.get("Employees"))


def test_full_pipeline_query1(benchmark, uni):
    def pipeline():
        conn = connect(uni.db, ExecutionOptions(engine="interpreted"))
        return conn.execute(Q1, optimize=False).value

    value = benchmark(pipeline)
    assert len(value) > 0


def test_oid_allocation_throughput(benchmark):
    from repro.core.hierarchy import TypeHierarchy
    from repro.core.oid import OIDGenerator
    h = TypeHierarchy()
    h.add_type("Person")
    h.add_type("Student", ["Person"])
    gen = OIDGenerator(h)

    def allocate():
        return [gen.new_oid("Student") for _ in range(100)]

    oids = benchmark(allocate)
    assert len(set(oids)) == 100


def test_deref_throughput(benchmark, uni):
    from repro.core import Input, Named
    from repro.core.operators import Deref, SetApply
    plan = SetApply(Deref(Input()), Named("Employees"))
    value = benchmark(lambda: evaluate(plan, uni.db.context()))
    assert len(value) == len(uni.db.get("Employees"))


def test_store_build_university(benchmark):
    uni = benchmark(lambda: build_university(
        n_departments=3, n_employees=15, n_students=20, seed=0))
    assert len(uni.db.get("Employees")) == 15


def test_persistence_save(benchmark, small_uni, tmp_path):
    from repro.storage import save_database
    path = str(tmp_path / "uni.json")
    benchmark(lambda: save_database(small_uni.db, path))


def test_persistence_load(benchmark, small_uni, tmp_path):
    from repro.storage import load_database, save_database
    path = str(tmp_path / "uni.json")
    save_database(small_uni.db, path)
    db2 = benchmark(lambda: load_database(path))
    assert len(db2.get("Employees")) == len(small_uni.db.get("Employees"))
