"""Figure 3 — `retrieve (TopTen[5].name, TopTen[5].salary)`.

The figure's plan is π ∘ DEREF ∘ ARR_EXTRACT: one element extracted,
one dereference, no scans.  The series contrasts it with the strawman
that materializes the whole array first (ARR_APPLY ∘ DEREF, then
extract), which the ARR_EXTRACT primitive exists to avoid — its result
"is not an array containing the element but simply the element itself".
"""

from conftest import print_row, run_counted

from repro.core import Named, evaluate, Input
from repro.core.operators import ArrApply, ArrExtract, Deref, Pi
from repro.workloads import figures


def _materialize_then_extract():
    return Pi(["name", "salary"],
              ArrExtract(5, ArrApply(Deref(Input()), Named("TopTen"))))


def test_fig3_extract_then_deref(benchmark, uni):
    plan = figures.figure_3()
    value = benchmark(lambda: evaluate(plan, uni.db.context()))
    assert value["salary"] > 0


def test_fig3_strawman_materialize_all(benchmark, uni):
    plan = _materialize_then_extract()
    value = benchmark(lambda: evaluate(plan, uni.db.context()))
    assert value["salary"] > 0


def test_fig3_claim_extract_touches_one_object(benchmark, uni):
    """The figure's plan performs exactly one DEREF; materializing the
    array dereferences all ten."""
    good = benchmark(lambda: evaluate(figures.figure_3(), uni.db.context()))
    _, s_good = run_counted(uni, figures.figure_3())
    straw, s_straw = run_counted(uni, _materialize_then_extract())
    assert good == straw
    print("\n  Figure 3 — dereferences performed:")
    print_row("ARR_EXTRACT first", s_good, keys=("deref_count",))
    print_row("materialize first", s_straw, keys=("deref_count",))
    assert s_good["deref_count"] == 1
    assert s_straw["deref_count"] == len(uni.db.get("TopTen"))
