"""Shared benchmark fixtures and reporting helpers.

The paper reports no measured tables (its system was still being
brought up on EXODUS); its evaluation artifacts are worked examples with
qualitative claims.  Each benchmark therefore (a) times the plan
alternatives of one figure with pytest-benchmark and (b) prints the
work-counter row the claim is about, asserting the claimed *direction*
(who wins) so a regression fails loudly.
"""

import pytest

from repro.core import evaluate
from repro.workloads import build_university, figures
from repro.workloads.dispatch import (build_population, define_boss_methods,
                                      define_rich_subords_methods)


@pytest.fixture(scope="session")
def uni():
    """The shared benchmark instance, sized so effects are visible."""
    handle = build_university(n_departments=4, n_employees=60,
                              n_students=150, kids_per_employee=2,
                              subords_per_employee=12, advisor_pool=6,
                              employee_name_pool=6, seed=1)
    figures.value_views(handle)
    build_population(handle)
    define_boss_methods(handle)
    define_rich_subords_methods(handle)
    return handle


@pytest.fixture(scope="session")
def small_uni():
    handle = build_university(n_departments=3, n_employees=12,
                              n_students=24, seed=1)
    figures.value_views(handle)
    return handle


def run_counted(uni, expr):
    """Evaluate once, returning (value, work counters)."""
    ctx = uni.db.context()
    value = evaluate(expr, ctx)
    return value, ctx.stats


def print_row(label, stats, keys=("elements_scanned", "de_elements",
                                  "cross_pairs", "deref_count")):
    cells = "  ".join("%s=%-7d" % (k, stats.get(k, 0)) for k in keys)
    print("    %-22s %s" % (label, cells))
