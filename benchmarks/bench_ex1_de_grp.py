"""Example 1 (Figures 6–8) — DE/GRP/join placement.

The paper's claims, measured:

* Figure 7 (DE ahead of grouping, rule 8 + π-ahead-of-GRP) is
  "especially advantageous when the duplication factor is large";
* Figure 8 (DE and π pushed past the join, rule-7 variants) makes DE
  operate "on |S| + |E| occurrences rather than |S| · |E|".

Series: wall-clock per figure, plus the counter row (DE occurrences,
×-pairs, elements scanned) behind each claim.
"""

from conftest import print_row, run_counted

from repro.core import evaluate
from repro.workloads import figures


def test_ex1_figure6_initial(benchmark, uni):
    plan = figures.figure_6()
    value = benchmark(lambda: evaluate(plan, uni.db.context()))
    assert value.distinct_count() > 0


def test_ex1_figure7_de_before_grouping(benchmark, uni):
    plan = figures.figure_7()
    value = benchmark(lambda: evaluate(plan, uni.db.context()))
    assert value.distinct_count() > 0


def test_ex1_figure8_de_past_join(benchmark, uni):
    plan = figures.figure_8()
    value = benchmark(lambda: evaluate(plan, uni.db.context()))
    assert value.distinct_count() > 0


def test_ex1_claims(benchmark, uni):
    benchmark(lambda: evaluate(figures.figure_8(), uni.db.context()))
    r6, s6 = run_counted(uni, figures.figure_6())
    r7, s7 = run_counted(uni, figures.figure_7())
    r8, s8 = run_counted(uni, figures.figure_8())
    assert r6 == r7 == r8

    n_students = len(uni.db.get("StudentsV"))
    n_employees = len(uni.db.get("EmployeesV"))
    print("\n  Example 1 (|S|=%d, |E|=%d):" % (n_students, n_employees))
    print_row("figure 6 (initial)", s6)
    print_row("figure 7 (DE first)", s7)
    print_row("figure 8 (DE past join)", s8)

    # Figure 8's DE input is on the order of |S| + |E|, not |S| · |E|.
    assert s8["de_elements"] < s7["de_elements"]
    assert s8["de_elements"] < 3 * (n_students + n_employees)
    assert s7["de_elements"] > n_students + n_employees
    # The join shrinks to the deduped inputs.
    assert s8["cross_pairs"] < s7["cross_pairs"]
    # Figure 7 groups fewer occurrences than figure 6 (dedup first).
    assert s7["grp_elements"] <= s6["grp_elements"]
