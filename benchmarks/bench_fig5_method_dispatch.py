"""Figure 5 + the Section 4 trade-off — overridden-method processing.

Three series, matching the paper's discussion point for point:

* **T1, cheap bodies ("boss")** — each body is "at most a DEREF and a
  TUP_EXTRACT"; the ⊎-based plan scans P once per distinct body, so the
  switch-table "would certainly be preferable".
* **T2, expensive bodies ("rich_subords")** — the Employee body scans a
  ``sub_ords`` set "much larger than the containing set", so "the cost
  of scanning the containing set … several times becomes negligible",
  and compile-time optimization of the inlined bodies pays.
* **T3, typed indexes** — "the need to scan P three times … disappears".
"""

from conftest import print_row, run_counted

from repro.core import evaluate
from repro.core.optimizer import Optimizer
from repro.workloads.dispatch import switch_plan, union_plan


# -- T1: cheap method ---------------------------------------------------

def test_t1_boss_switch_table(benchmark, uni):
    plan = switch_plan("boss")
    benchmark(lambda: evaluate(plan, uni.db.context()))


def test_t1_boss_union_plan(benchmark, uni):
    plan = union_plan(uni, "boss")
    benchmark(lambda: evaluate(plan, uni.db.context()))


def test_t1_boss_union_per_type(benchmark, uni):
    plan = union_plan(uni, "boss", collapse=False)
    benchmark(lambda: evaluate(plan, uni.db.context()))


# -- T2: expensive method ----------------------------------------------

def test_t2_rich_switch_table(benchmark, uni):
    plan = switch_plan("rich_subords")
    benchmark(lambda: evaluate(plan, uni.db.context()))


def test_t2_rich_union_plan(benchmark, uni):
    plan = union_plan(uni, "rich_subords")
    benchmark(lambda: evaluate(plan, uni.db.context()))


def test_t2_rich_union_optimized(benchmark, uni):
    optimized = Optimizer(max_depth=2, max_trees=600).optimize(
        union_plan(uni, "rich_subords")).best
    benchmark(lambda: evaluate(optimized, uni.db.context()))


# -- T3: indexes ----------------------------------------------------------

def test_t3_boss_union_indexed(benchmark, uni):
    uni.db.indexes.build_typed("P")
    plan = union_plan(uni, "boss", use_index=True)
    benchmark(lambda: evaluate(plan, uni.db.context()))


# -- The claims, as one reported table ------------------------------------

def test_dispatch_claims(benchmark, uni):
    benchmark(lambda: evaluate(switch_plan("boss"), uni.db.context()))
    uni.db.indexes.build_typed("P")
    population = len(uni.db.get("P"))
    print("\n  Section 4 trade-off (|P|=%d):" % population)

    rows = {}
    for method in ("boss", "rich_subords"):
        for label, plan in (
                ("switch", switch_plan(method)),
                ("union", union_plan(uni, method)),
                ("union+idx", union_plan(uni, method, use_index=True))):
            value, stats = run_counted(uni, plan)
            rows[(method, label)] = (value, stats)
            print_row("%s/%s" % (method, label), stats,
                      keys=("elements_scanned", "set_apply_elements",
                            "deref_count", "method_dispatches"))

    # All strategies agree per method.
    for method in ("boss", "rich_subords"):
        values = [rows[(method, label)][1] is not None
                  and rows[(method, label)][0]
                  for label in ("switch", "union", "union+idx")]
        assert values[0] == values[1] == values[2]

    # T1: the ⊎-plan triples the scans of P for the cheap method.
    boss_switch = rows[("boss", "switch")][1]["elements_scanned"]
    boss_union = rows[("boss", "union")][1]["elements_scanned"]
    assert boss_union == 3 * boss_switch

    # T2: for the expensive method the extra scans are a small fraction.
    rich_switch = rows[("rich_subords", "switch")][1]
    rich_union = rows[("rich_subords", "union")][1]
    extra = (rich_union["elements_scanned"]
             - rich_switch["elements_scanned"])
    total = sum(rich_union.values())
    assert extra / total < 0.2

    # T3: indexes restore switch-table scan counts.
    boss_indexed = rows[("boss", "union+idx")][1]
    assert boss_indexed["elements_scanned"] == boss_switch
    assert boss_indexed["index_lookups"] == 3


def test_optimization_claim(benchmark, uni):
    """The inlined ⊎-plan optimizes as one query (the point of Figure
    5): redundant work inside stored bodies is removed."""
    plan = union_plan(uni, "rich_subords")
    result = Optimizer(max_depth=2, max_trees=600).optimize(plan)
    benchmark(lambda: evaluate(result.best, uni.db.context()))
    v_orig, s_orig = run_counted(uni, plan)
    v_opt, s_opt = run_counted(uni, result.best)
    assert v_orig == v_opt
    print("\n  Compile-time optimization of the ⊎-plan:")
    print_row("as stored", s_orig, keys=("de_elements", "elements_scanned"))
    print_row("optimized", s_opt, keys=("de_elements", "elements_scanned"))
    assert s_opt["de_elements"] < s_orig["de_elements"]
