"""Transaction subsystem benchmarks: commit throughput and recovery
time as a function of log length.

Three measurements, all against the WAL + transaction manager of
:mod:`repro.storage.txn` (``sync=False`` throughout — the point is the
bookkeeping and framing cost, not the disk's fsync latency, which
varies by orders of magnitude across CI machines):

* **autocommit throughput** — one insert per transaction, so every
  operation pays the full begin/journal/group-write cycle;
* **batched-commit throughput** — the same inserts grouped N per
  explicit transaction, showing what group commit buys;
* **recovery time vs. log length** — replay of logs holding growing
  numbers of committed transactions, checking recovery stays linear.

Writes ``BENCH_txn.json`` at the repository root.  Run via
``make bench-txn`` or ``PYTHONPATH=src python benchmarks/bench_txn.py``.
"""

import json
import os
import sys
import tempfile
import time

from repro.core.values import Tup
from repro.storage import Database, TransactionManager, replay_log
from repro.storage.wal import WriteAheadLog, read_records

OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_txn.json")


def _fresh(workdir, name):
    db = Database()
    wal = WriteAheadLog(os.path.join(workdir, name), sync=False)
    manager = TransactionManager(db, wal=wal)
    return db, wal, manager


def bench_autocommit(workdir, n=2000):
    db, wal, _ = _fresh(workdir, "auto.log")
    start = time.perf_counter()
    for i in range(n):
        db.store.insert(Tup(serial=i), "Part")
    elapsed = time.perf_counter() - start
    wal.close()
    return {"txns": n, "seconds": elapsed,
            "txns_per_second": n / elapsed,
            "log_bytes": os.path.getsize(wal.path)}


def bench_batched(workdir, n=2000, batch=50):
    db, wal, manager = _fresh(workdir, "batched.log")
    start = time.perf_counter()
    for base in range(0, n, batch):
        manager.begin()
        for i in range(base, base + batch):
            db.store.insert(Tup(serial=i), "Part")
        manager.commit()
    elapsed = time.perf_counter() - start
    wal.close()
    return {"inserts": n, "batch": batch, "seconds": elapsed,
            "inserts_per_second": n / elapsed,
            "log_bytes": os.path.getsize(wal.path)}


def bench_recovery(workdir, lengths=(100, 500, 1000, 2000)):
    series = []
    for n in lengths:
        db, wal, _ = _fresh(workdir, "recov-%d.log" % n)
        for i in range(n):
            db.store.insert(Tup(serial=i), "Part")
        wal.close()
        records = read_records(wal.path)
        start = time.perf_counter()
        twin = Database()
        applied = replay_log(twin, records)
        elapsed = time.perf_counter() - start
        assert applied == n
        assert len(twin.store._objects) == len(db.store._objects)
        series.append({"committed_txns": n, "records": len(records),
                       "log_bytes": os.path.getsize(wal.path),
                       "replay_seconds": elapsed,
                       "txns_per_second": n / elapsed})
    return series


def main(argv=None):
    with tempfile.TemporaryDirectory(prefix="repro-bench-txn-") as workdir:
        results = {
            "benchmark": "txn",
            "sync": False,
            "autocommit": bench_autocommit(workdir),
            "batched_commit": bench_batched(workdir),
            "recovery": bench_recovery(workdir),
        }
    speedup = (results["batched_commit"]["inserts_per_second"]
               / results["autocommit"]["txns_per_second"])
    results["batched_over_autocommit_speedup"] = speedup
    with open(OUT_PATH, "w") as handle:
        json.dump(results, handle, indent=2)
    print("autocommit:      %8.0f txns/s" %
          results["autocommit"]["txns_per_second"])
    print("batched (x%d):   %8.0f inserts/s  (%.1fx)" %
          (results["batched_commit"]["batch"],
           results["batched_commit"]["inserts_per_second"], speedup))
    for row in results["recovery"]:
        print("recovery %5d txns: %7.3f s  (%8.0f txns/s)" %
              (row["committed_txns"], row["replay_seconds"],
               row["txns_per_second"]))
    print("wrote %s" % os.path.abspath(OUT_PATH))
    # Sanity: recovery must scale roughly linearly — the per-txn rate
    # of the longest log should be within 5x of the shortest (loose on
    # purpose; CI machines are noisy).
    rates = [row["txns_per_second"] for row in results["recovery"]]
    if min(rates) * 5 < max(rates) and rates.index(min(rates)) != 0:
        print("warning: recovery rate fell superlinearly", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
