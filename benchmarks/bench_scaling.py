"""Scaling series: how the Example-1 gap grows with database size.

The paper's |S|·|E| vs |S|+|E| argument is asymptotic; this bench
produces the series an evaluation section would plot — DE work and
wall-clock for Figures 7 and 8 across growing universities — and
asserts the gap widens monotonically.
"""

import time

import pytest

from repro.core import evaluate
from repro.workloads import build_university, figures

SIZES = [(20, 40), (40, 80), (60, 150)]


def _build(n_employees, n_students):
    uni = build_university(
        n_departments=4, n_employees=n_employees, n_students=n_students,
        advisor_pool=6, employee_name_pool=6, kids_per_employee=1,
        subords_per_employee=2, seed=1)
    figures.value_views(uni)
    return uni


@pytest.fixture(scope="module")
def universities():
    return {(e, s): _build(e, s) for e, s in SIZES}


def test_scaling_series(benchmark, universities):
    largest = universities[SIZES[-1]]
    benchmark(lambda: evaluate(figures.figure_8(), largest.db.context()))

    print("\n  Example 1 scaling (DE occurrences and ratio):")
    print("    %-12s %-10s %-10s %-8s" % ("|E|,|S|", "fig7 DE", "fig8 DE",
                                          "ratio"))
    ratios = []
    for size in SIZES:
        uni = universities[size]
        ctx7 = uni.db.context()
        r7 = evaluate(figures.figure_7(), ctx7)
        ctx8 = uni.db.context()
        r8 = evaluate(figures.figure_8(), ctx8)
        assert r7 == r8
        ratio = ctx7.stats["de_elements"] / ctx8.stats["de_elements"]
        ratios.append(ratio)
        print("    %-12s %-10d %-10d %.1fx"
              % ("%d,%d" % size, ctx7.stats["de_elements"],
                 ctx8.stats["de_elements"], ratio))
    # The gap grows with size: quadratic vs linear.
    assert ratios == sorted(ratios)
    assert ratios[-1] > ratios[0]


def test_wallclock_crossover(benchmark, universities):
    """Figure 8 wins by a growing wall-clock factor too."""
    largest = universities[SIZES[-1]]
    benchmark(lambda: evaluate(figures.figure_7(), largest.db.context()))

    def timed(plan, uni, repeat=3):
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            evaluate(plan, uni.db.context())
            best = min(best, time.perf_counter() - start)
        return best

    print("\n  Example 1 wall-clock (best of 3):")
    for size in SIZES:
        uni = universities[size]
        t7 = timed(figures.figure_7(), uni)
        t8 = timed(figures.figure_8(), uni)
        print("    %-12s fig7=%.1fms fig8=%.1fms speedup=%.1fx"
              % ("%d,%d" % size, t7 * 1e3, t8 * 1e3, t7 / t8))
    # At the largest size the rewritten plan must win clearly.
    uni = universities[SIZES[-1]]
    assert timed(figures.figure_8(), uni) < timed(figures.figure_7(), uni)


def test_dispatch_scaling(benchmark, universities):
    """The ⊎-plan's scan overhead stays a constant ×(distinct bodies)
    of the switch-table scans regardless of |P|."""
    from repro.workloads.dispatch import (build_population,
                                          define_boss_methods, switch_plan,
                                          union_plan)
    print("\n  Dispatch scan overhead by |P|:")
    last = None
    for size in SIZES:
        uni = universities[size]
        if "P" not in uni.db:
            build_population(uni)
            define_boss_methods(uni)
        ctx_switch = uni.db.context()
        evaluate(switch_plan("boss"), ctx_switch)
        ctx_union = uni.db.context()
        evaluate(union_plan(uni, "boss"), ctx_union)
        factor = (ctx_union.stats["elements_scanned"]
                  / ctx_switch.stats["elements_scanned"])
        print("    |P|=%-5d switch=%-6d union=%-6d factor=%.1f"
              % (len(uni.db.get("P")),
                 ctx_switch.stats["elements_scanned"],
                 ctx_union.stats["elements_scanned"], factor))
        assert factor == 3.0
        last = uni
    benchmark(lambda: evaluate(switch_plan("boss"), last.db.context()))
