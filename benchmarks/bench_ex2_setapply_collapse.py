"""Example 2, first transformation (Figures 9 → 10) — rule 15.

"Successive SET_APPLYs are collapsed, twice, … to eliminate one scan of
the set", including inside the operator's subscript ("this ability to
optimize within the subscripts of operators … is extremely useful").
The measured claim: Figure 10 scans fewer occurrences than Figure 9 and
is derivable from it purely by rule application.
"""

from conftest import print_row, run_counted

from repro.core import evaluate
from repro.core.transform import ALL_RULES, RewriteEngine
from repro.workloads import figures

FLOOR = 2


def test_ex2_figure9_initial(benchmark, uni):
    plan = figures.figure_9(FLOOR)
    value = benchmark(lambda: evaluate(plan, uni.db.context()))
    assert value.distinct_count() > 0


def test_ex2_figure10_collapsed(benchmark, uni):
    plan = figures.figure_10(FLOOR)
    value = benchmark(lambda: evaluate(plan, uni.db.context()))
    assert value.distinct_count() > 0


def test_ex2_rule15_derivation(benchmark, small_uni):
    """Time the rewrite search that derives Figure 10 from Figure 9."""
    engine = RewriteEngine(ALL_RULES, max_depth=2, max_trees=4000)

    def derive():
        return {d.expr for d in engine.explore(figures.figure_9(FLOOR))}

    reachable = benchmark(derive)
    assert figures.figure_10(FLOOR) in reachable


def test_ex2_scan_claim(benchmark, uni):
    benchmark(lambda: evaluate(figures.figure_10(FLOOR), uni.db.context()))
    r9, s9 = run_counted(uni, figures.figure_9(FLOOR))
    r10, s10 = run_counted(uni, figures.figure_10(FLOOR))
    assert r9 == r10
    print("\n  Example 2, rule 15 (floor=%d):" % FLOOR)
    print_row("figure 9 (initial)", s9,
              keys=("elements_scanned", "deref_count"))
    print_row("figure 10 (collapsed)", s10,
              keys=("elements_scanned", "deref_count"))
    assert s10["elements_scanned"] < s9["elements_scanned"]
