"""Example 2, alternative transformation (Figures 9 → 11) — rules 10 + 26.

Two claims, measured:

* rule 10: "selections can be pushed ahead of grouping, with enormous
  savings if the selectivity factor is low" — the grouping input
  shrinks by the floor predicate's selectivity;
* rule 26: pushing the rebuild projection inside the COMP means "the
  dept attribute needs to be DEREF'd only once" — per-student DEREFs
  drop from 2 to 1 (plus the entry dereference).

Series: wall-clock per figure at a selective floor, plus a selectivity
sweep showing where figure 11 wins by how much.
"""

from conftest import print_row, run_counted

from repro.core import evaluate
from repro.workloads import figures

FLOOR = 2


def test_ex2_figure9_initial(benchmark, uni):
    plan = figures.figure_9(FLOOR)
    benchmark(lambda: evaluate(plan, uni.db.context()))


def test_ex2_figure11_pushed(benchmark, uni):
    plan = figures.figure_11(FLOOR)
    benchmark(lambda: evaluate(plan, uni.db.context()))


def test_ex2_deref_claim(benchmark, uni):
    benchmark(lambda: evaluate(figures.figure_11(FLOOR), uni.db.context()))
    r9, s9 = run_counted(uni, figures.figure_9(FLOOR))
    r11, s11 = run_counted(uni, figures.figure_11(FLOOR))
    assert r9 == r11
    n = len(uni.db.get("Students"))
    print("\n  Example 2, rules 10+26 (|S|=%d, floor=%d):" % (n, FLOOR))
    print_row("figure 9 (initial)", s9,
              keys=("deref_count", "grp_elements", "elements_scanned"))
    print_row("figure 11 (pushed)", s11,
              keys=("deref_count", "grp_elements", "elements_scanned"))
    assert s9["deref_count"] == 3 * n   # entry + group key + filter
    assert s11["deref_count"] == 2 * n  # entry + rebuild (once!)
    # Selection ahead of grouping: GRP sees only qualifying students.
    assert s11["grp_elements"] < s9["grp_elements"]


def test_ex2_selectivity_sweep(benchmark, uni):
    """The "enormous savings if the selectivity factor is low" series:
    group-work ratio across floors (floor spread controls selectivity)."""
    benchmark(lambda: evaluate(figures.figure_11(FLOOR), uni.db.context()))
    print("\n  Example 2 — grouping work, figure 9 vs 11, per floor:")
    for floor in (1, 2, 3, 4, 5):
        r9, s9 = run_counted(uni, figures.figure_9(floor))
        r11, s11 = run_counted(uni, figures.figure_11(floor))
        assert r9 == r11
        qualifying = sum(len(g) for g in r11.elements())
        grp9 = s9.get("grp_elements", 0)
        grp11 = s11.get("grp_elements", 0)
        ratio = grp9 / grp11 if grp11 else float("inf")
        print("    floor=%d  qualifying=%-4d grp9=%-5d grp11=%-5d "
              "ratio=%.1fx" % (floor, qualifying, grp9, grp11, ratio))
        if qualifying:
            assert grp11 <= grp9
