"""Interpreted vs compiled engine, head to head.

Times the Figure 4 functional join and both Figure 5 dispatch
strategies under the recursive interpreter (``Expr.evaluate``) and the
streaming plan compiler (:mod:`repro.core.engine`), on a population
large enough for per-element overheads to dominate.  Compiled plans
are compiled once and executed per round — a compiled
:class:`~repro.core.engine.Pipeline` is a reusable artifact, which is
precisely its point (the interpreter has the same split: the tree is
built once and walked per round).

The final test aggregates the pytest-benchmark means into
``BENCH_engine.json`` — per-workload wall-clock, speedups, engine
work counters (including deref-cache hit/miss rates) — and asserts
the headline claim: the compiled engine is at least 2× faster on the
Fig. 4 and Fig. 5 workloads, with deref-cache hits actually observed.

Run via ``make bench-engine`` or
``PYTHONPATH=src python -m pytest benchmarks/bench_engine_compare.py``.
"""

import json
import os
from time import perf_counter

import pytest

from repro.core import evaluate
from repro.core.engine import compile_plan
from repro.workloads import build_university, figures
from repro.workloads.dispatch import (build_population, define_boss_methods,
                                      define_rich_subords_methods,
                                      switch_plan, union_plan)

#: workload -> engine -> mean seconds, filled as the benchmarks run.
MEANS = {}

SPEEDUP_FLOOR = 2.0
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_engine.json")


@pytest.fixture(scope="session")
def big_uni():
    """Sized so fig4 touches thousands of objects per run."""
    handle = build_university(n_departments=4, n_employees=2000,
                              n_students=500, subords_per_employee=12,
                              advisor_pool=6, employee_name_pool=6, seed=1)
    figures.value_views(handle)
    build_population(handle)
    define_boss_methods(handle)
    define_rich_subords_methods(handle)
    return handle


def _plans(uni):
    return {
        "fig4_functional_join": figures.figure_4(),
        "fig5_switch_dispatch": switch_plan("boss"),
        "fig5_union_dispatch": union_plan(uni, "boss"),
    }


def _record(benchmark, workload, engine, runner):
    value = benchmark(runner)
    MEANS.setdefault(workload, {})[engine] = benchmark.stats.stats.mean
    return value


def _interpreted(uni, workload):
    expr = _plans(uni)[workload]
    ctx = uni.db.context()

    def runner():
        ctx.begin_query()
        return evaluate(expr, ctx)
    return runner, ctx


def _compiled(uni, workload):
    pipeline = compile_plan(_plans(uni)[workload])
    ctx = uni.db.context()

    def runner():
        ctx.begin_query()
        return pipeline.execute(ctx)
    return runner, ctx


@pytest.mark.parametrize("workload", ["fig4_functional_join",
                                      "fig5_switch_dispatch",
                                      "fig5_union_dispatch"])
def test_interpreted(benchmark, big_uni, workload):
    runner, _ = _interpreted(big_uni, workload)
    value = _record(benchmark, workload, "interpreted", runner)
    assert len(value) > 0


@pytest.mark.parametrize("workload", ["fig4_functional_join",
                                      "fig5_switch_dispatch",
                                      "fig5_union_dispatch"])
def test_compiled(benchmark, big_uni, workload):
    runner, _ = _compiled(big_uni, workload)
    value = _record(benchmark, workload, "compiled", runner)
    assert len(value) > 0


def test_engines_agree_and_report(big_uni):
    """Correctness cross-check, speedup floor, and the JSON report."""
    if not MEANS:
        pytest.skip("benchmark means not collected (tests deselected)")
    report = {"population": {"n_employees": 2000, "n_students": 500},
              "speedup_floor": SPEEDUP_FLOOR, "workloads": {}}
    for workload in _plans(big_uni):
        i_runner, i_ctx = _interpreted(big_uni, workload)
        c_runner, c_ctx = _compiled(big_uni, workload)
        assert i_runner() == c_runner(), workload
        means = MEANS.get(workload, {})
        entry = {
            "interpreted_mean_s": means.get("interpreted"),
            "compiled_mean_s": means.get("compiled"),
            "interpreted_stats": dict(sorted(i_ctx.stats.items())),
            "compiled_stats": dict(sorted(c_ctx.stats.items())),
        }
        if means.get("interpreted") and means.get("compiled"):
            entry["speedup"] = means["interpreted"] / means["compiled"]
        report["workloads"][workload] = entry
    with open(OUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    hits = sum(w["compiled_stats"].get("deref_cache_hit", 0)
               for w in report["workloads"].values())
    assert hits > 0, "compiled runs never hit the deref cache"
    for workload in ("fig4_functional_join", "fig5_switch_dispatch"):
        speedup = report["workloads"][workload].get("speedup")
        assert speedup is not None, "no timing for %s" % workload
        assert speedup >= SPEEDUP_FLOOR, (
            "%s: compiled only %.2fx faster" % (workload, speedup))


# -- index-backed access paths: selectivity-swept lookups ----------------

LOOKUP_N = 40000
SELECTIVITIES = (0.001, 0.01, 0.1, 1.0)
POINT_FLOOR = 10.0   # probe ≥10× faster than scan at ≤1% selectivity
RANGE_FLOOR = 5.0    # probe ≥5× faster than scan at ≤1% selectivity


def _lookup_db(selectivity):
    """N rows whose ``band`` field makes point-probe selectivity exact
    (band 0 holds int(N·s) rows) and whose uniform ``uid`` controls
    range selectivity directly by the bound."""
    from repro.core.expr import Input
    from repro.core.operators import TupExtract
    from repro.core.values import MultiSet, Tup
    from repro.storage import Database
    db = Database()
    stride = max(1, int(LOOKUP_N * selectivity))
    db.create("T", MultiSet([Tup({"band": i // stride, "uid": i})
                             for i in range(LOOKUP_N)]))
    db.indexes.create_index("keyed", "T", TupExtract("band", Input()))
    db.indexes.create_index("ordered", "T", TupExtract("uid", Input()))
    return db


def _lookup_plans(selectivity):
    from repro.core.expr import Const, Input, Named
    from repro.core.operators import SetApply, TupExtract
    from repro.core.predicates import Atom, Comp
    matched = max(1, int(LOOKUP_N * selectivity))
    point = SetApply(Comp(Atom(TupExtract("band", Input()), "=",
                               Const(0)), Input()), Named("T"))
    rng = SetApply(Comp(Atom(TupExtract("uid", Input()), "<",
                             Const(matched)), Input()), Named("T"))
    return {"point": point, "range": rng}


def _best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


def test_lookup_sweep_report():
    """Time point and range lookups, probe vs scan, across
    selectivities; merge the series into BENCH_engine.json and assert
    the access-path floors at ≤1% selectivity."""
    sweep = {}
    for selectivity in SELECTIVITIES:
        db = _lookup_db(selectivity)
        ctx = db.context()
        row = {}
        for shape, plan in _lookup_plans(selectivity).items():
            probe = compile_plan(plan, access_paths="force")
            scan = compile_plan(plan, access_paths="off")

            def run(pipeline):
                ctx.begin_query()
                return pipeline.execute(ctx)

            assert run(probe) == run(scan), (shape, selectivity)
            # Warm the index build outside the timed region.
            run(probe)
            probe_s = _best_of(lambda: run(probe))
            scan_s = _best_of(lambda: run(scan))
            row[shape] = {"probe_s": probe_s, "scan_s": scan_s,
                          "speedup": scan_s / probe_s}
        sweep["%g" % selectivity] = row

    report = {}
    if os.path.exists(OUT_PATH):
        with open(OUT_PATH) as fh:
            report = json.load(fh)
    report["lookup_sweep"] = {
        "population": LOOKUP_N,
        "point_floor": POINT_FLOOR, "range_floor": RANGE_FLOOR,
        "selectivities": sweep,
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    for selectivity in (s for s in SELECTIVITIES if s <= 0.01):
        row = sweep["%g" % selectivity]
        assert row["point"]["speedup"] >= POINT_FLOOR, (
            "point probe only %.1fx at %g" % (row["point"]["speedup"],
                                              selectivity))
        assert row["range"]["speedup"] >= RANGE_FLOOR, (
            "range probe only %.1fx at %g" % (row["range"]["speedup"],
                                              selectivity))
