"""Interpreted vs compiled vs batched engines, head to head.

Times the Figure 4 functional join and both Figure 5 dispatch
strategies under the recursive interpreter (``Expr.evaluate``), the
streaming plan compiler (:mod:`repro.core.engine`), and the columnar
batch engine — serial and R(n) partition-parallel — on a population
large enough for per-element overheads to dominate.  Plans are
compiled once and executed per round — a compiled
:class:`~repro.core.engine.Pipeline` is a reusable artifact, which is
precisely its point (the interpreter has the same split: the tree is
built once and walked per round).

The aggregation test folds the pytest-benchmark means into
``BENCH_engine.json`` — per-workload wall-clock, speedups, engine
work counters (including deref-cache hit/miss rates) — and asserts
the headline claims: compiled is at least 2× faster than interpreted,
and batched at least 2× faster than compiled, on the Fig. 4 and
Fig. 5 workloads.  The partition-parallel series is recorded without
a speedup floor: fork + pickle overhead dominates on the small CI
boxes, so the series documents the shape rather than gating on it.

Run via ``make bench-engine`` (or ``make bench-batch`` for just the
batched/parallel series) or
``PYTHONPATH=src python -m pytest benchmarks/bench_engine_compare.py``.
"""

import json
import os
from time import perf_counter

import pytest

from repro.core import evaluate
from repro.core.engine import compile_batch_plan, compile_plan, partition_plan
from repro.workloads import build_university, figures
from repro.workloads.dispatch import (build_population, define_boss_methods,
                                      define_rich_subords_methods,
                                      switch_plan, union_plan)

#: workload -> engine -> mean seconds, filled as the benchmarks run.
MEANS = {}
MINS = {}

SPEEDUP_FLOOR = 2.0
#: batched over compiled, same floor the paper-era claim used for
#: compiled over interpreted.
BATCH_SPEEDUP_FLOOR = 2.0
PARALLEL_WORKERS = 2
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_engine.json")


@pytest.fixture(scope="session")
def big_uni():
    """Sized so fig4 touches thousands of objects per run."""
    handle = build_university(n_departments=4, n_employees=2000,
                              n_students=500, subords_per_employee=12,
                              advisor_pool=6, employee_name_pool=6, seed=1)
    figures.value_views(handle)
    build_population(handle)
    define_boss_methods(handle)
    define_rich_subords_methods(handle)
    return handle


def _plans(uni):
    return {
        "fig4_functional_join": figures.figure_4(),
        "fig5_switch_dispatch": switch_plan("boss"),
        "fig5_union_dispatch": union_plan(uni, "boss"),
    }


def _record(benchmark, workload, engine, runner):
    value = benchmark(runner)
    stats = benchmark.stats.stats
    MEANS.setdefault(workload, {})[engine] = stats.mean
    MINS.setdefault(workload, {})[engine] = stats.min
    return value


def _interpreted(uni, workload):
    expr = _plans(uni)[workload]
    ctx = uni.db.context()

    def runner():
        ctx.begin_query()
        return evaluate(expr, ctx)
    return runner, ctx


def _compiled(uni, workload):
    pipeline = compile_plan(_plans(uni)[workload])
    ctx = uni.db.context()

    def runner():
        ctx.begin_query()
        return pipeline.execute(ctx)
    return runner, ctx


def _batched(uni, workload):
    pipeline = compile_batch_plan(_plans(uni)[workload])
    ctx = uni.db.context()

    def runner():
        ctx.begin_query()
        return pipeline.execute(ctx)
    return runner, ctx


def _parallel(uni, workload):
    expr = _plans(uni)[workload]
    plan = partition_plan(expr, compile_batch_plan(expr),
                          parallel=PARALLEL_WORKERS)
    ctx = uni.db.context()

    def runner():
        ctx.begin_query()
        return plan.execute(ctx)
    return runner, ctx


@pytest.mark.parametrize("workload", ["fig4_functional_join",
                                      "fig5_switch_dispatch",
                                      "fig5_union_dispatch"])
def test_interpreted(benchmark, big_uni, workload):
    runner, _ = _interpreted(big_uni, workload)
    value = _record(benchmark, workload, "interpreted", runner)
    assert len(value) > 0


@pytest.mark.parametrize("workload", ["fig4_functional_join",
                                      "fig5_switch_dispatch",
                                      "fig5_union_dispatch"])
def test_compiled(benchmark, big_uni, workload):
    runner, _ = _compiled(big_uni, workload)
    value = _record(benchmark, workload, "compiled", runner)
    assert len(value) > 0


@pytest.mark.parametrize("workload", ["fig4_functional_join",
                                      "fig5_switch_dispatch",
                                      "fig5_union_dispatch"])
def test_batched(benchmark, big_uni, workload):
    runner, _ = _batched(big_uni, workload)
    value = _record(benchmark, workload, "batched", runner)
    assert len(value) > 0


@pytest.mark.parametrize("workload", ["fig4_functional_join",
                                      "fig5_switch_dispatch",
                                      "fig5_union_dispatch"])
def test_parallel(benchmark, big_uni, workload):
    runner, _ = _parallel(big_uni, workload)
    value = _record(benchmark, workload, "parallel", runner)
    assert len(value) > 0


def test_engines_agree_and_report(big_uni):
    """Correctness cross-check, speedup floor, and the JSON report."""
    if not MEANS:
        pytest.skip("benchmark means not collected (tests deselected)")
    report = {"population": {"n_employees": 2000, "n_students": 500},
              "speedup_floor": SPEEDUP_FLOOR,
              "batch_speedup_floor": BATCH_SPEEDUP_FLOOR,
              "parallel_workers": PARALLEL_WORKERS, "workloads": {}}
    for workload in _plans(big_uni):
        i_runner, i_ctx = _interpreted(big_uni, workload)
        c_runner, c_ctx = _compiled(big_uni, workload)
        b_runner, b_ctx = _batched(big_uni, workload)
        p_runner, p_ctx = _parallel(big_uni, workload)
        reference = i_runner()
        assert reference == c_runner(), workload
        assert reference == b_runner(), workload
        assert reference == p_runner(), workload
        means = MEANS.get(workload, {})
        entry = {
            "interpreted_mean_s": means.get("interpreted"),
            "compiled_mean_s": means.get("compiled"),
            "batched_mean_s": means.get("batched"),
            "parallel_mean_s": means.get("parallel"),
            "interpreted_stats": dict(sorted(i_ctx.stats.items())),
            "compiled_stats": dict(sorted(c_ctx.stats.items())),
            "batched_stats": dict(sorted(b_ctx.stats.items())),
            "parallel_stats": dict(sorted(p_ctx.stats.items())),
        }
        mins = MINS.get(workload, {})
        for engine in ("interpreted", "compiled", "batched", "parallel"):
            entry["%s_min_s" % engine] = mins.get(engine)
        # Speedups gate CI, so compute them from best-case (min) times:
        # shared runners inflate means unpredictably but leave the
        # fastest round intact (same rationale as _best_of below).
        if mins.get("interpreted") and mins.get("compiled"):
            entry["speedup"] = mins["interpreted"] / mins["compiled"]
        if mins.get("compiled") and mins.get("batched"):
            entry["batched_speedup_over_compiled"] = (
                mins["compiled"] / mins["batched"])
        if mins.get("batched") and mins.get("parallel"):
            entry["parallel_speedup_over_batched"] = (
                mins["batched"] / mins["parallel"])
        report["workloads"][workload] = entry
    with open(OUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    hits = sum(w["compiled_stats"].get("deref_cache_hit", 0)
               for w in report["workloads"].values())
    assert hits > 0, "compiled runs never hit the deref cache"
    for workload in ("fig4_functional_join", "fig5_switch_dispatch"):
        entry = report["workloads"][workload]
        if MINS.get(workload, {}).get("interpreted"):
            # ``make bench-batch`` deselects the interpreted series;
            # the full ``make bench-engine`` run always asserts this.
            speedup = entry.get("speedup")
            assert speedup is not None, "no timing for %s" % workload
            assert speedup >= SPEEDUP_FLOOR, (
                "%s: compiled only %.2fx faster" % (workload, speedup))
        batched = entry.get("batched_speedup_over_compiled")
        assert batched is not None, "no batched timing for %s" % workload
        assert batched >= BATCH_SPEEDUP_FLOOR, (
            "%s: batched only %.2fx over compiled" % (workload, batched))
    # Partition-parallel is recorded, not floored: 2-way forking costs
    # ~10 ms of pickle + pipe per run, which swamps these workloads on
    # the 1-CPU CI boxes.  The series exists to document the shape.


# -- index-backed access paths: selectivity-swept lookups ----------------

LOOKUP_N = 40000
SELECTIVITIES = (0.001, 0.01, 0.1, 1.0)
POINT_FLOOR = 10.0   # probe ≥10× faster than scan at ≤1% selectivity
RANGE_FLOOR = 5.0    # probe ≥5× faster than scan at ≤1% selectivity


def _lookup_db(selectivity):
    """N rows whose ``band`` field makes point-probe selectivity exact
    (band 0 holds int(N·s) rows) and whose uniform ``uid`` controls
    range selectivity directly by the bound."""
    from repro.core.expr import Input
    from repro.core.operators import TupExtract
    from repro.core.values import MultiSet, Tup
    from repro.storage import Database
    db = Database()
    stride = max(1, int(LOOKUP_N * selectivity))
    db.create("T", MultiSet([Tup({"band": i // stride, "uid": i})
                             for i in range(LOOKUP_N)]))
    db.indexes.create_index("keyed", "T", TupExtract("band", Input()))
    db.indexes.create_index("ordered", "T", TupExtract("uid", Input()))
    return db


def _lookup_plans(selectivity):
    from repro.core.expr import Const, Input, Named
    from repro.core.operators import SetApply, TupExtract
    from repro.core.predicates import Atom, Comp
    matched = max(1, int(LOOKUP_N * selectivity))
    point = SetApply(Comp(Atom(TupExtract("band", Input()), "=",
                               Const(0)), Input()), Named("T"))
    rng = SetApply(Comp(Atom(TupExtract("uid", Input()), "<",
                             Const(matched)), Input()), Named("T"))
    return {"point": point, "range": rng}


def _best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


def test_lookup_sweep_report():
    """Time point and range lookups, probe vs scan, across
    selectivities; merge the series into BENCH_engine.json and assert
    the access-path floors at ≤1% selectivity."""
    sweep = {}
    for selectivity in SELECTIVITIES:
        db = _lookup_db(selectivity)
        ctx = db.context()
        row = {}
        for shape, plan in _lookup_plans(selectivity).items():
            probe = compile_plan(plan, access_paths="force")
            scan = compile_plan(plan, access_paths="off")

            def run(pipeline):
                ctx.begin_query()
                return pipeline.execute(ctx)

            assert run(probe) == run(scan), (shape, selectivity)
            # Warm the index build outside the timed region.
            run(probe)
            probe_s = _best_of(lambda: run(probe))
            scan_s = _best_of(lambda: run(scan))
            row[shape] = {"probe_s": probe_s, "scan_s": scan_s,
                          "speedup": scan_s / probe_s}
        sweep["%g" % selectivity] = row

    report = {}
    if os.path.exists(OUT_PATH):
        with open(OUT_PATH) as fh:
            report = json.load(fh)
    report["lookup_sweep"] = {
        "population": LOOKUP_N,
        "point_floor": POINT_FLOOR, "range_floor": RANGE_FLOOR,
        "selectivities": sweep,
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    for selectivity in (s for s in SELECTIVITIES if s <= 0.01):
        row = sweep["%g" % selectivity]
        assert row["point"]["speedup"] >= POINT_FLOOR, (
            "point probe only %.1fx at %g" % (row["point"]["speedup"],
                                              selectivity))
        assert row["range"]["speedup"] >= RANGE_FLOOR, (
            "range probe only %.1fx at %g" % (row["range"]["speedup"],
                                              selectivity))
