"""Per-rule ablation: left-hand side vs right-hand side, timed.

DESIGN.md calls out the individually load-bearing rules; this bench
times both sides of each on sized data, verifying the direction each
rule is meant to be applied in actually wins there.  Rules measured:

* rule 5  — eliminating a cross product under DE;
* rule 7  — distributing DE across ×;
* rule 8  — DE before vs after grouping;
* rule 10 — selection ahead of grouping;
* rule 15 — combining successive SET_APPLYs;
* rule 27 — combining successive COMPs;
* rule X2 — deduping a SET_APPLY's input first.
"""

import pytest

from repro.core import Const, EvalContext, Func, Input, Named, evaluate
from repro.core.operators import (DE, Comp, Cross, Grp, SetApply,
                                  TupExtract, sigma)
from repro.core.predicates import And, Atom
from repro.core.transform import RewriteFacts, rule_by_number
from repro.core.values import MultiSet, Tup


@pytest.fixture(scope="module")
def data_ctx():
    """Sized synthetic data: a low-distinct multiset (high duplication)
    and a tuple relation."""
    dup = MultiSet(i % 20 for i in range(4000))
    rel = MultiSet(Tup(a=i % 15, b=i % 40) for i in range(2000))
    other = MultiSet(i % 10 for i in range(60))

    def make():
        return EvalContext({"DUP": dup, "REL": rel, "OTHER": other},
                           functions={"inc": lambda x: x + 1})
    return make


def _check_rule_derives(number, lhs, rhs, facts=None):
    rewrites = rule_by_number(number).apply(lhs, facts or RewriteFacts())
    assert rhs in rewrites, "rule %s should rewrite LHS to RHS" % number


# -- rule 5 ---------------------------------------------------------------

def _r5_sides():
    body = Func("inc", [TupExtract("field1", Input())])
    lhs = DE(SetApply(body, Cross(Named("OTHER"), Named("DUP"))))
    rhs = DE(SetApply(Func("inc", [Input()]), Named("OTHER")))
    return lhs, rhs


def test_rule5_lhs(benchmark, data_ctx):
    lhs, _ = _r5_sides()
    benchmark(lambda: evaluate(lhs, data_ctx()))


def test_rule5_rhs(benchmark, data_ctx):
    lhs, rhs = _r5_sides()
    facts = RewriteFacts().declare_nonempty(Named("DUP"))
    _check_rule_derives(5, lhs, rhs, facts)
    assert evaluate(lhs, data_ctx()) == evaluate(rhs, data_ctx())
    benchmark(lambda: evaluate(rhs, data_ctx()))


# -- rule 7 ---------------------------------------------------------------

def _r7_sides():
    lhs = DE(Cross(Named("DUP"), Named("OTHER")))
    rhs = Cross(DE(Named("DUP")), DE(Named("OTHER")))
    return lhs, rhs


def test_rule7_lhs(benchmark, data_ctx):
    lhs, _ = _r7_sides()
    benchmark(lambda: evaluate(lhs, data_ctx()))


def test_rule7_rhs(benchmark, data_ctx):
    lhs, rhs = _r7_sides()
    _check_rule_derives(7, lhs, rhs)
    assert evaluate(lhs, data_ctx()) == evaluate(rhs, data_ctx())
    benchmark(lambda: evaluate(rhs, data_ctx()))


# -- rule 8 ---------------------------------------------------------------

def _r8_sides():
    key = Func("inc", [Input()])
    lhs = Grp(key, DE(Named("DUP")))
    rhs = SetApply(DE(Input()), Grp(key, Named("DUP")))
    return lhs, rhs


def test_rule8_de_first(benchmark, data_ctx):
    lhs, _ = _r8_sides()
    benchmark(lambda: evaluate(lhs, data_ctx()))


def test_rule8_de_per_group(benchmark, data_ctx):
    lhs, rhs = _r8_sides()
    _check_rule_derives(8, lhs, rhs)
    assert evaluate(lhs, data_ctx()) == evaluate(rhs, data_ctx())
    benchmark(lambda: evaluate(rhs, data_ctx()))


# -- rule 10 ----------------------------------------------------------------

def _r10_sides():
    key = TupExtract("a", Input())
    pred = Atom(TupExtract("b", Input()), "=", Const(0))
    select_first = Grp(key, sigma(pred, Named("REL")))
    rewrites = rule_by_number(10).apply(select_first, RewriteFacts())
    group_first = rewrites[0]
    return select_first, group_first


def test_rule10_select_first(benchmark, data_ctx):
    select_first, group_first = _r10_sides()
    assert (evaluate(select_first, data_ctx())
            == evaluate(group_first, data_ctx()))
    benchmark(lambda: evaluate(select_first, data_ctx()))


def test_rule10_group_first(benchmark, data_ctx):
    _, group_first = _r10_sides()
    benchmark(lambda: evaluate(group_first, data_ctx()))


# -- rule 15 ----------------------------------------------------------------

def _r15_sides():
    lhs = SetApply(Func("inc", [Input()]),
                   SetApply(Func("inc", [Input()]), Named("DUP")))
    rhs = SetApply(Func("inc", [Func("inc", [Input()])]), Named("DUP"))
    return lhs, rhs


def test_rule15_two_passes(benchmark, data_ctx):
    lhs, _ = _r15_sides()
    benchmark(lambda: evaluate(lhs, data_ctx()))


def test_rule15_one_pass(benchmark, data_ctx):
    lhs, rhs = _r15_sides()
    _check_rule_derives(15, lhs, rhs)
    assert evaluate(lhs, data_ctx()) == evaluate(rhs, data_ctx())
    benchmark(lambda: evaluate(rhs, data_ctx()))


# -- rule 27 ----------------------------------------------------------------

def _r27_sides():
    p1 = Atom(TupExtract("a", Input()), ">", Const(3))
    p2 = Atom(TupExtract("b", Input()), "<", Const(30))
    lhs = SetApply(Comp(p1, Comp(p2, Input())), Named("REL"))
    rhs = SetApply(Comp(And(p2, p1), Input()), Named("REL"))
    return lhs, rhs


def test_rule27_stacked_comps(benchmark, data_ctx):
    lhs, _ = _r27_sides()
    benchmark(lambda: evaluate(lhs, data_ctx()))


def test_rule27_merged_comp(benchmark, data_ctx):
    lhs, rhs = _r27_sides()
    assert evaluate(lhs, data_ctx()) == evaluate(rhs, data_ctx())
    benchmark(lambda: evaluate(rhs, data_ctx()))


# -- rule X2 -----------------------------------------------------------------

def _x2_sides():
    body = Func("inc", [Input()])
    lhs = DE(SetApply(body, Named("DUP")))
    rhs = DE(SetApply(body, DE(Named("DUP"))))
    return lhs, rhs


def test_x2_apply_then_de(benchmark, data_ctx):
    lhs, _ = _x2_sides()
    benchmark(lambda: evaluate(lhs, data_ctx()))


def test_x2_de_input_first(benchmark, data_ctx):
    lhs, rhs = _x2_sides()
    _check_rule_derives("X2", lhs, rhs)
    assert evaluate(lhs, data_ctx()) == evaluate(rhs, data_ctx())
    benchmark(lambda: evaluate(rhs, data_ctx()))
