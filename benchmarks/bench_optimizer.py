"""Optimizer benchmarks: search cost and plan-quality improvement.

The paper's position is that the many-sorted rule set stays tractable
because "only a subset of the operators (and thus of the transformation
rules) will be applicable at any point".  Measured here:

* exploration throughput on the worked-example trees;
* end-to-end optimize() latency;
* the improvement factor the chosen plan achieves at run time.
"""

from conftest import run_counted

from repro.core import evaluate
from repro.core.optimizer import (CostModel, ObjectStats, Optimizer,
                                  Statistics)
from repro.core.transform import ALL_RULES, MULTISET_RULES, RewriteEngine
from repro.workloads import figures


def _stats(uni):
    s = Statistics()
    s.set_object("Students", ObjectStats(len(uni.db.get("Students"))))
    s.set_object("Employees", ObjectStats(len(uni.db.get("Employees"))))
    s.set_object("StudentsV", ObjectStats(len(uni.db.get("StudentsV"))))
    s.set_object("EmployeesV", ObjectStats(len(uni.db.get("EmployeesV"))))
    return s


def test_explore_example2_tree(benchmark, uni):
    engine = RewriteEngine(ALL_RULES, max_depth=2, max_trees=2000)
    trees = benchmark(lambda: engine.explore(figures.figure_9(2)))
    assert len(trees) > 1


def test_explore_many_sorted_pruning(benchmark, uni):
    """Array-free trees never consult array rules: exploring with the
    full rule set costs about the same as with multiset rules alone."""
    engine_all = RewriteEngine(ALL_RULES, max_depth=2, max_trees=2000)
    engine_ms = RewriteEngine(MULTISET_RULES, max_depth=2, max_trees=2000)
    tree = figures.figure_7()
    all_count = len(engine_all.explore(tree))
    benchmark(lambda: engine_all.explore(tree))
    # The multiset rules find the same multiset-sort rewrites.
    assert len(engine_ms.explore(tree)) <= all_count


def test_optimize_figure9(benchmark, uni):
    optimizer = Optimizer(cost_model=CostModel(_stats(uni)),
                          max_depth=2, max_trees=1500)
    result = benchmark(lambda: optimizer.optimize(figures.figure_9(2)))
    assert result.best_cost <= result.initial_cost


def test_optimized_plan_wins_at_runtime(benchmark, uni):
    """The chosen plan's measured work must beat the initial tree's —
    the cost model's ranking is validated by execution."""
    optimizer = Optimizer(cost_model=CostModel(_stats(uni)),
                          max_depth=3, max_trees=1500)
    result = optimizer.optimize(figures.figure_9(2))
    benchmark(lambda: evaluate(result.best, uni.db.context()))
    v_initial, s_initial = run_counted(uni, figures.figure_9(2))
    v_best, s_best = run_counted(uni, result.best)
    assert v_initial == v_best
    work = lambda s: sum(s.get(k, 0) for k in
                         ("elements_scanned", "deref_count", "de_elements"))
    print("\n  Optimizer on figure 9: %d -> %d work units (%s)"
          % (work(s_initial), work(s_best), " -> ".join(result.steps)))
    assert work(s_best) <= work(s_initial)


def test_optimize_greedy_strategy(benchmark, uni):
    """Hill-climbing reaches a good plan in a fraction of the
    exhaustive search's work on the same tree."""
    greedy = Optimizer(cost_model=CostModel(_stats(uni)),
                       strategy="greedy", max_depth=6)
    result = benchmark(lambda: greedy.optimize(figures.figure_9(2)))
    assert result.best_cost <= result.initial_cost


def test_greedy_vs_exhaustive_quality(benchmark, uni):
    model = CostModel(_stats(uni))
    exhaustive = Optimizer(cost_model=model, max_depth=2, max_trees=1500)
    greedy = Optimizer(cost_model=model, strategy="greedy", max_depth=8)
    tree = figures.figure_9(2)
    benchmark(lambda: greedy.optimize(tree))
    r_ex = exhaustive.optimize(tree)
    r_gr = greedy.optimize(tree)
    print("\n  Optimizer strategies on figure 9: exhaustive cost %.0f "
          "(%d trees), greedy cost %.0f (%d evals)"
          % (r_ex.best_cost, r_ex.explored, r_gr.best_cost, r_gr.explored))
    # Greedy explores far fewer trees and lands within 25% of exhaustive.
    assert r_gr.best_cost <= r_ex.best_cost * 1.25
