"""Figure 4 — the functional join:

    retrieve (Employees.dept.name) where Employees.city = "Madison"

The figure's plan is a chain of SET_APPLYs that dereferences, filters,
dereferences the qualifying employees' departments, and projects.  The
series contrasts it with the value-join strawman (a rel_join of
Employees against Departments on a materialized key), which a
reference-based model exists to avoid: the functional join touches
|E| + |qualifying| objects, the value join forms |E|·|D| pairs.
"""

from conftest import print_row, run_counted

from repro.core import Const, Input, Named, evaluate
from repro.core.operators import (Deref, Pi, SetApply, TupCreate, TupCat,
                                  TupExtract, join_field, rel_join, sigma)
from repro.core.predicates import Atom, And
from repro.workloads import figures


def _value_join_strawman(city="Madison"):
    """Join employees to departments by comparing the dept *reference*
    as a value against each department's recovered reference."""
    employees = SetApply(
        TupCat(TupCreate("ecity", TupExtract("city", Deref(Input()))),
               TupCreate("edept", TupExtract("dept", Deref(Input())))),
        Named("Employees"))
    departments = SetApply(
        TupCat(TupCreate("dname", TupExtract("name", Deref(Input()))),
               TupCreate("dref", Input())),
        Named("Departments"))
    pred = And(Atom(join_field(1, "edept"), "=", join_field(2, "dref")),
               Atom(join_field(1, "ecity"), "=", Const(city)))
    return SetApply(Pi(["dname"], Input()),
                    rel_join(pred, employees, departments))


def test_fig4_functional_join(benchmark, uni):
    plan = figures.figure_4()
    value = benchmark(lambda: evaluate(plan, uni.db.context()))
    assert len(value) > 0


def test_fig4_value_join_strawman(benchmark, uni):
    plan = _value_join_strawman()
    value = benchmark(lambda: evaluate(plan, uni.db.context()))
    assert len(value) > 0


def test_fig4_claim_functional_join_avoids_pairs(benchmark, uni):
    """Same distinct answer; the functional join forms zero ×-pairs."""
    benchmark(lambda: evaluate(figures.figure_4(), uni.db.context()))
    functional, s_fun = run_counted(uni, figures.figure_4())
    value_join, s_val = run_counted(uni, _value_join_strawman())
    names_fun = {t["name"] for t in functional.elements()}
    names_val = {t["dname"] for t in value_join.elements()}
    assert names_fun == names_val
    print("\n  Figure 4 — functional join vs value join:")
    print_row("functional (fig 4)", s_fun,
              keys=("elements_scanned", "deref_count", "cross_pairs"))
    print_row("value-join strawman", s_val,
              keys=("elements_scanned", "deref_count", "cross_pairs"))
    assert s_fun.get("cross_pairs", 0) == 0
    assert s_val["cross_pairs"] == (len(uni.db.get("Employees"))
                                    * len(uni.db.get("Departments")))
