PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench-engine

test:
	$(PYTHON) -m pytest -x -q

# Tier-2 sanity gate: one tiny run per paper figure (<30 s), asserting
# the paper-claimed winner directions and engine agreement.
bench-smoke:
	$(PYTHON) -m repro.cli bench --smoke

# Full interpreted-vs-compiled comparison; writes BENCH_engine.json.
bench-engine:
	$(PYTHON) -m pytest benchmarks/bench_engine_compare.py -q
