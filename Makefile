PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint verify-plans bench-smoke trace-smoke bench-engine bench-batch crashtest bench-txn sanitize batch-differential serve-smoke bench-server bench-server-reads bench-server-full

test:
	$(PYTHON) -m pytest -x -q

# Style + typing gates. Both tools are optional at dev time: skip with
# a notice when they aren't installed (the repo has no runtime deps).
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src/repro/core/analysis src/repro/obs \
			tests/analysis tests/obs; \
	else echo "ruff not installed; skipping style check"; fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy src/repro/core/analysis src/repro/core/engine \
			src/repro/obs; \
	else echo "mypy not installed; skipping type check"; fi

# Offline rewrite-soundness sweep: fire all 28 appendix rules on the
# generated corpus and require every firing to preserve schemas.
verify-plans:
	$(PYTHON) -m repro.core.analysis.rulecheck

# Abstract-interpretation sanitizer gate: the paper figures plus 240
# seeded random plans, each run interpreted / compiled / licensed /
# sanitized; any value mismatch or runtime-violated proof fails.
sanitize:
	$(PYTHON) -m repro.cli sanitize
	$(PYTHON) -m pytest tests/analysis/test_sanitizer.py tests/analysis/test_absint.py -q

# Four-mode differential gate: the 240-plan classic corpus plus the
# 60-plan batch-stressing corpus, each plan run interpreted /
# compiled / batched / 2-way partition-parallel; any divergence or
# sanitizer violation fails.
batch-differential:
	$(PYTHON) -m repro.cli sanitize --batched --parallel 2
	$(PYTHON) -m pytest tests/engine/test_batch_engine.py tests/engine/test_partitions.py -q

# Tier-2 sanity gate: one tiny run per paper figure (<30 s), asserting
# the paper-claimed winner directions and engine agreement.
bench-smoke:
	$(PYTHON) -m repro.cli bench --smoke

# Observability gate: the example queries with tracing on must yield
# non-empty span trees and EXPLAIN ANALYZE output, the metrics
# registry must round-trip through the Prometheus parser, and a
# disabled tracer must stay within 5% of an untraced run.
trace-smoke:
	$(PYTHON) -m repro.workloads.trace_smoke

# Full engine comparison (interpreted / compiled / batched /
# partition-parallel); writes BENCH_engine.json and asserts the
# compiled>=2x-over-interpreted and batched>=2x-over-compiled floors.
bench-engine:
	$(PYTHON) -m pytest benchmarks/bench_engine_compare.py -q

# The batched + partition-parallel series against the compiled
# baseline (interpreted deselected), asserting the batched>=2x floor;
# the aggregation test still cross-checks all four engines' values
# and rewrites BENCH_engine.json.
bench-batch:
	$(PYTHON) -m pytest benchmarks/bench_engine_compare.py -q \
		-k "not interpreted"

# Durability gate: deterministic fault injection over the WAL —
# crash-at-every-record-boundary, torn tails, partial fsyncs — with
# recovery required to restore exactly the committed prefix.
crashtest:
	$(PYTHON) -m repro.storage.faults

# Commit throughput + recovery-vs-log-length; writes BENCH_txn.json.
bench-txn:
	$(PYTHON) benchmarks/bench_txn.py

# Network-server gate: a hosted end-to-end script covering concurrent
# reads, transaction isolation, admission rejection, query timeout,
# group commit, and a checkpointing shutdown that reopens whole.
serve-smoke:
	$(PYTHON) -m repro.server.smoke

# Server throughput smoke: multi-client write QPS must beat
# single-client (group commit + pipelining), reduced sweep.
bench-server:
	$(PYTHON) benchmarks/bench_server.py --smoke

# Server read-path smoke: selective lookups with snapshot index
# probes must beat the same workload with access paths off.
bench-server-reads:
	$(PYTHON) benchmarks/bench_server.py --reads-smoke

# Full sweep (1/4/16/64 clients + 64-vs-1 differential); writes
# BENCH_server.json.
bench-server-full:
	$(PYTHON) benchmarks/bench_server.py
