"""repro — a reproduction of the EXCESS algebra (Vandenberg & DeWitt, SIGMOD 1991).

An executable implementation of "Algebraic Support for Complex Objects
with Arrays, Identity, and Inheritance": the many-sorted algebra over
multisets, tuples, arrays, and references; OID domains under multiple
inheritance; the EXTRA DDL and EXCESS query language; the transformation
rules; a rule-driven optimizer; and the two overridden-method processing
strategies.

See ``examples/quickstart.py`` for the full university database of the
paper's Figure 1.
"""

from .api import Connection, connect
from .core import (DNE, UNK, AlgebraError, Arr, Const, EvalContext, Expr,
                   Func, Input, MultiSet, Named, Ref, Tup, evaluate)
from .excess.session import Result
from .options import ExecutionOptions
from .storage import Database, ObjectStore

__version__ = "1.0.0"

__all__ = [
    "Connection", "ExecutionOptions", "Result", "connect",
    "Database", "ObjectStore",
    "AlgebraError", "Arr", "Const", "EvalContext", "Expr", "Func",
    "Input", "MultiSet", "Named", "Ref", "Tup", "evaluate",
    "DNE", "UNK",
    "__version__",
]
