"""The EXTRA type system: tuple types, inheritance, and type expressions.

EXTRA (Section 2.1) builds types from four orthogonal constructors —
tuple ``( … )``, multiset ``{ … }``, array ``array [l..u] of …``, and
reference ``ref T`` — over scalars and previously defined named tuple
types.  Top-level tuple types form a multiple-inheritance hierarchy;
"the semantics of this inheritance are that all attributes and methods
of Person are also attributes and methods of Student and Employee", and
any inherited attribute may be overridden with a new type specification.

A :class:`TypeSystem` owns the hierarchy, the effective (inherited +
overridden) field layout of every tuple type, the derived schema graphs,
and tuple construction/validation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.domains import DomainChecker
from ..core.hierarchy import HierarchyError, TypeHierarchy
from ..core.schema import SchemaCatalog, SchemaNode
from ..core.values import Arr, Ref, Tup


class TypeError_(ValueError):
    """An EXTRA typing error (named to avoid shadowing the builtin)."""


# ---------------------------------------------------------------------------
# Type expressions (the right-hand sides of field declarations).
# ---------------------------------------------------------------------------

class TypeExpr:
    """Base class for EXTRA type expressions."""

    def schema(self, system: "TypeSystem") -> SchemaNode:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.describe()

    def __eq__(self, other: Any) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(
            (k, repr(v)) for k, v in self.__dict__.items()))))


#: Scalar keyword → Python representation type.
SCALAR_KEYWORDS = {
    "int2": int, "int4": int, "int8": int, "int": int,
    "float4": float, "float8": float, "float": float,
    "bool": bool,
}


class ScalarType(TypeExpr):
    """A scalar: int4, float4, char[…], bool, or a registered ADT alias."""

    def __init__(self, keyword: str, py_type: type):
        self.keyword = keyword
        self.py_type = py_type

    def schema(self, system: "TypeSystem") -> SchemaNode:
        return SchemaNode.val(self.py_type)

    def describe(self) -> str:
        return self.keyword


class NamedType(TypeExpr):
    """A previously defined tuple type used *by value* (e.g. kids: {Person})."""

    def __init__(self, name: str):
        self.name = name

    def schema(self, system: "TypeSystem") -> SchemaNode:
        # Clone so the same named type can be embedded by value in
        # several places without sharing schema nodes (condition iv).
        return system.schema_for(self.name).clone()

    def describe(self) -> str:
        return self.name


class RefType(TypeExpr):
    """``ref T`` — an OID of an object of type T (or a subtype)."""

    def __init__(self, target: str):
        self.target = target

    def schema(self, system: "TypeSystem") -> SchemaNode:
        system.require(self.target)
        return SchemaNode.ref_to(self.target)

    def describe(self) -> str:
        return "ref %s" % self.target


class SetType(TypeExpr):
    """``{ T }`` — a multiset of T."""

    def __init__(self, element: TypeExpr):
        self.element = element

    def schema(self, system: "TypeSystem") -> SchemaNode:
        return SchemaNode.set_of(self.element.schema(system))

    def describe(self) -> str:
        return "{ %s }" % self.element.describe()


class ArrayType(TypeExpr):
    """``array [l..u] of T`` (fixed length) or ``array of T`` (variable)."""

    def __init__(self, element: TypeExpr, lower: Optional[int] = None,
                 upper: Optional[int] = None):
        if (lower is None) != (upper is None):
            raise TypeError_("array bounds must both be given or both omitted")
        if lower is not None and lower != 1:
            raise TypeError_("EXTRA arrays are 1-based; lower bound must be 1")
        self.element = element
        self.lower = lower
        self.upper = upper

    @property
    def fixed_length(self) -> Optional[int]:
        return self.upper

    def schema(self, system: "TypeSystem") -> SchemaNode:
        return SchemaNode.arr_of(self.element.schema(system),
                                 fixed_length=self.fixed_length)

    def describe(self) -> str:
        if self.fixed_length is not None:
            return "array [1..%d] of %s" % (self.fixed_length,
                                            self.element.describe())
        return "array of %s" % self.element.describe()


class TupleTypeExpr(TypeExpr):
    """An anonymous inline tuple type ``( f: T, … )``."""

    def __init__(self, fields: Sequence[Tuple[str, TypeExpr]]):
        self.fields = tuple(fields)

    def schema(self, system: "TypeSystem") -> SchemaNode:
        return SchemaNode.tup({name: t.schema(system)
                               for name, t in self.fields})

    def describe(self) -> str:
        return "(%s)" % ", ".join("%s: %s" % (n, t.describe())
                                  for n, t in self.fields)


# ---------------------------------------------------------------------------
# Named tuple types and the type system.
# ---------------------------------------------------------------------------

class TupleType:
    """A named, top-level tuple type with inheritance."""

    def __init__(self, name: str, own_fields: Sequence[Tuple[str, TypeExpr]],
                 parents: Sequence[str] = ()):
        self.name = name
        self.own_fields = tuple(own_fields)
        self.parents = tuple(parents)

    def __repr__(self) -> str:
        inherits = " inherits %s" % ", ".join(self.parents) if self.parents else ""
        return "<TupleType %s%s>" % (self.name, inherits)


class TypeSystem:
    """Registry of EXTRA tuple types over a shared hierarchy.

    Field inheritance follows C3 linearization: the effective layout
    starts from the *most distant* ancestors and is refined towards the
    type itself, so a type's own declaration (or the nearest override)
    wins, and under multiple inheritance the linearization order breaks
    ties deterministically.  Field *order* is ancestor-first, matching
    the intuition that a Student is a Person tuple extended with more
    fields.
    """

    def __init__(self, hierarchy: TypeHierarchy = None):
        self.hierarchy = hierarchy or TypeHierarchy()
        self.catalog = SchemaCatalog()
        self._types: Dict[str, TupleType] = {}
        self._schemas: Dict[str, SchemaNode] = {}
        self._scalar_aliases: Dict[str, type] = {"Date": str, "char": str}

    # -- registration -----------------------------------------------------

    def register_scalar_alias(self, name: str, py_type: type) -> None:
        """Register an ADT-style scalar alias (the E-language stand-in)."""
        self._scalar_aliases[name] = py_type

    def scalar_alias(self, name: str) -> Optional[type]:
        return self._scalar_aliases.get(name)

    def define(self, name: str, fields: Sequence[Tuple[str, TypeExpr]],
               parents: Sequence[str] = ()) -> TupleType:
        """Define tuple type *name* with the given own fields and parents."""
        if name in self._types:
            raise TypeError_("type %r already defined" % name)
        for parent in parents:
            if parent not in self._types:
                raise TypeError_("unknown parent type %r" % parent)
        tuple_type = TupleType(name, fields, parents)
        self._types[name] = tuple_type
        if name in self.hierarchy:
            # The name may already be in the hierarchy — a parentless
            # stub auto-registered by the storage layer, or a restored
            # persistence snapshot.  Accept exactly matching ancestry.
            if list(self.hierarchy.parents(name)) != list(parents):
                raise HierarchyError(
                    "type %r already in the hierarchy with a different "
                    "ancestry" % name)
        else:
            self.hierarchy.add_type(name, parents)
        return tuple_type

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def require(self, name: str) -> TupleType:
        try:
            return self._types[name]
        except KeyError:
            raise TypeError_("no EXTRA type named %r" % name)

    def names(self) -> List[str]:
        return sorted(self._types)

    # -- effective layout ----------------------------------------------

    def effective_fields(self, name: str) -> List[Tuple[str, TypeExpr]]:
        """The inherited-plus-own field layout of *name*.

        Ancestors contribute first (in reverse linearization order, so
        the root's fields lead); overrides replace the type expression
        in place without moving the field.
        """
        self.require(name)
        layout: Dict[str, TypeExpr] = {}
        for type_name in reversed(self.hierarchy.linearize(name)):
            for field_name, type_expr in self._types[type_name].own_fields:
                layout[field_name] = type_expr
        return list(layout.items())

    def field_type(self, name: str, field: str) -> TypeExpr:
        for field_name, type_expr in self.effective_fields(name):
            if field_name == field:
                return type_expr
        raise TypeError_("type %s has no attribute %r" % (name, field))

    # -- schemas -----------------------------------------------------------

    def schema_for(self, name: str) -> SchemaNode:
        """The schema graph of tuple type *name* (cached, registered).

        Reference fields carry their target by name (cycles through
        ``ref`` are fine, per condition iv); a cycle through *value*
        nesting is rejected — such a type would have no finite
        instances.
        """
        if name not in self._schemas:
            self.require(name)
            building = getattr(self, "_building", None)
            if building is None:
                building = set()
                self._building = building
            if name in building:
                raise TypeError_(
                    "type %r is value-recursive (a cycle not broken by "
                    "ref violates schema condition iv)" % name)
            building.add(name)
            try:
                schema = SchemaNode.tup(
                    {field: type_expr.schema(self)
                     for field, type_expr in self.effective_fields(name)},
                    name=name)
            finally:
                building.discard(name)
            self._schemas[name] = schema
            if name not in self.catalog:
                self.catalog.register(schema, name)
        return self._schemas[name]

    def checker(self, oid_generator=None) -> DomainChecker:
        """A domain checker wired to this type system."""
        for name in self.names():
            self.schema_for(name)
        return DomainChecker(self.catalog, self.hierarchy, oid_generator)

    # -- construction -----------------------------------------------------

    def new(self, type_name: str, values: Dict[str, Any] = None,
            check: bool = True, **kwargs: Any) -> Tup:
        """Build an instance of tuple type *type_name*.

        Field values come from *values* and/or keyword arguments (the
        positional parameter is named ``type_name`` so fields called
        ``name`` remain usable as keywords).  Fields are laid out in
        the effective order; missing fields raise.  With ``check``
        (default), each field value is verified against the field's
        domain (via DOM, so subtype values are accepted —
        substitutability).
        """
        provided: Dict[str, Any] = {}
        if values:
            provided.update(values)
        provided.update(kwargs)
        layout = self.effective_fields(type_name)
        expected = [f for f, _ in layout]
        missing = [f for f in expected if f not in provided]
        if missing:
            raise TypeError_("missing field(s) %s for type %s"
                             % (", ".join(missing), type_name))
        extra = [f for f in provided if f not in expected]
        if extra:
            raise TypeError_("unknown field(s) %s for type %s"
                             % (", ".join(extra), type_name))
        ordered = {f: provided[f] for f in expected}
        instance = Tup(ordered, type_name=type_name)
        if check:
            checker = self.checker()  # pre-builds subtype schemas (DOM)
            for field, type_expr in layout:
                reason = checker.explain(type_expr.schema(self), ordered[field])
                if reason is not None:
                    raise TypeError_("%s.%s: %s" % (type_name, field, reason))
        return instance
