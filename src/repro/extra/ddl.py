"""Parser and interpreter for the EXTRA data definition language.

Supports the statements of Figure 1 and Section 4:

* ``define type T: ( field: type, … ) [inherits A, B]``
* ``create Name : <type expression>``
* ``define T function f (p: type, …) returns <type> { <EXCESS body> }``

Type expressions compose the four constructors: ``ref T``, ``{ T }``,
``array [1..n] of T`` / ``array of T``, inline tuples, scalars
(``int4``, ``char[]``, ``char[20]``, ``float4``, ``bool``), and named
tuple types used by value.

``create`` registers a named, persistent top-level object initialized
to an empty instance of its type (empty multiset / empty array / tuple
of defaults); data is loaded through the API or EXCESS.  Function
bodies are EXCESS text, handed to a translator callback (wired up by
:mod:`repro.excess`) that turns them into stored algebraic query trees.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

from ..core.values import Arr, MultiSet, Tup
from ..lang import Lexer, ParseError
from .types import (SCALAR_KEYWORDS, ArrayType, NamedType, RefType,
                    ScalarType, SetType, TupleTypeExpr, TypeExpr, TypeSystem,
                    TypeError_)


class FunctionDef:
    """A parsed ``define T function f`` statement (body still EXCESS text)."""

    def __init__(self, type_name: str, name: str,
                 params: Sequence[Tuple[str, TypeExpr]],
                 returns: TypeExpr, body_text: str):
        self.type_name = type_name
        self.name = name
        self.params = tuple(params)
        self.returns = returns
        self.body_text = body_text

    def __repr__(self) -> str:
        return "<FunctionDef %s.%s(%s)>" % (
            self.type_name, self.name,
            ", ".join(n for n, _ in self.params))


def parse_type_expr(lexer: Lexer, types: TypeSystem) -> TypeExpr:
    """Parse one EXTRA type expression at the cursor."""
    token = lexer.peek()
    if token.is_word("ref"):
        lexer.advance()
        target = lexer.expect_ident().value
        return RefType(target)
    if token.kind == "OP" and token.value == "{":
        lexer.advance()
        element = parse_type_expr(lexer, types)
        lexer.expect_op("}")
        return SetType(element)
    if token.is_word("array"):
        lexer.advance()
        lower = upper = None
        if lexer.accept_op("["):
            lower = int(lexer.advance().value)
            lexer.expect_op("..")
            upper = int(lexer.advance().value)
            lexer.expect_op("]")
        lexer.expect_word("of")
        element = parse_type_expr(lexer, types)
        return ArrayType(element, lower, upper)
    if token.kind == "OP" and token.value == "(":
        return TupleTypeExpr(_parse_field_list(lexer, types))
    if token.kind == "IDENT":
        name = lexer.advance().value
        if name in SCALAR_KEYWORDS:
            return ScalarType(name, SCALAR_KEYWORDS[name])
        if name == "char":
            # char[] or char[20] — length is documentation only here.
            if lexer.accept_op("["):
                if lexer.peek().kind == "INT":
                    lexer.advance()
                lexer.expect_op("]")
            return ScalarType("char[]", str)
        alias = types.scalar_alias(name)
        if alias is not None:
            return ScalarType(name, alias)
        return NamedType(name)
    raise ParseError("expected a type expression, found %r"
                     % (token.value or "end of input"), token.line, token.column)


def _parse_field_list(lexer: Lexer, types: TypeSystem
                      ) -> List[Tuple[str, TypeExpr]]:
    lexer.expect_op("(")
    fields: List[Tuple[str, TypeExpr]] = []
    if not lexer.accept_op(")"):
        while True:
            name = lexer.expect_ident().value
            lexer.expect_op(":")
            fields.append((name, parse_type_expr(lexer, types)))
            if lexer.accept_op(")"):
                break
            lexer.expect_op(",")
    return fields


def default_instance(type_expr: TypeExpr, types: TypeSystem) -> Any:
    """The empty/default value a freshly created object of this type holds."""
    if isinstance(type_expr, SetType):
        return MultiSet()
    if isinstance(type_expr, ArrayType):
        return Arr()
    if isinstance(type_expr, ScalarType):
        return type_expr.py_type()
    if isinstance(type_expr, TupleTypeExpr):
        return Tup({name: default_instance(t, types)
                    for name, t in type_expr.fields})
    if isinstance(type_expr, NamedType):
        return Tup({name: default_instance(t, types)
                    for name, t in types.effective_fields(type_expr.name)},
                   type_name=type_expr.name)
    if isinstance(type_expr, RefType):
        raise TypeError_(
            "a bare 'create X : ref T' has no default instance; create the "
            "target object first and assign its reference")
    raise TypeError_("no default instance for %r" % type_expr)


class DDLInterpreter:
    """Executes EXTRA DDL statements against a database.

    Parameters
    ----------
    database:
        The :class:`repro.storage.Database` to define types/objects in.
    types:
        The type system; defaults to one attached to (and shared with)
        the database.
    function_translator:
        Callback ``(FunctionDef) -> None`` that translates an EXCESS
        function body and registers the stored method.  Wired up by
        ``repro.excess``; without it, ``define … function`` raises.
    """

    def __init__(self, database, types: TypeSystem = None,
                 function_translator: Callable = None):
        self.database = database
        self.types = types or ensure_type_system(database)
        self.function_translator = function_translator
        #: Declared types of created top-level objects, by name.
        self.created: dict = getattr(database, "created_types", {})
        database.created_types = self.created

    # -- statement dispatch ----------------------------------------------

    def run(self, source: str) -> List[Any]:
        """Execute every DDL statement in *source*; returns a list of
        results (type/object/function descriptors, in order)."""
        lexer = Lexer(source)
        results: List[Any] = []
        while not lexer.at_end():
            results.append(self.run_statement(lexer))
        return results

    def run_statement(self, lexer: Lexer) -> Any:
        token = lexer.peek()
        if token.is_word("define"):
            if lexer.peek(1).is_word("type"):
                return self._define_type(lexer)
            return self._define_function(lexer)
        if token.is_word("create"):
            return self._create(lexer)
        raise ParseError("expected a DDL statement, found %r"
                         % (token.value or "end of input"),
                         token.line, token.column)

    # -- statements -----------------------------------------------------

    def _define_type(self, lexer: Lexer):
        lexer.expect_word("define")
        lexer.expect_word("type")
        name = lexer.expect_ident().value
        lexer.expect_op(":")
        fields = _parse_field_list(lexer, self.types)
        parents: List[str] = []
        if lexer.accept_word("inherits"):
            parents.append(lexer.expect_ident().value)
            while lexer.accept_op(","):
                parents.append(lexer.expect_ident().value)
        return self.types.define(name, fields, parents)

    def _create(self, lexer: Lexer):
        lexer.expect_word("create")
        name = lexer.expect_ident().value
        lexer.expect_op(":")
        type_expr = parse_type_expr(lexer, self.types)
        self.created[name] = type_expr
        journal = getattr(self.database, "journal", None)
        if journal is not None:
            # The created *value* is journaled by database.create below;
            # the declared type only lives in this side table.
            journal.log_ddl({"kind": "created_type", "name": name,
                             "type": type_expr.describe()})
        self.database.create(name, default_instance(type_expr, self.types))
        return (name, type_expr)

    def _define_function(self, lexer: Lexer) -> FunctionDef:
        lexer.expect_word("define")
        type_name = lexer.expect_ident().value
        lexer.expect_word("function")
        func_name = lexer.expect_ident().value
        params: List[Tuple[str, TypeExpr]] = []
        lexer.expect_op("(")
        if not lexer.accept_op(")"):
            while True:
                param = lexer.expect_ident().value
                lexer.expect_op(":")
                params.append((param, parse_type_expr(lexer, self.types)))
                if lexer.accept_op(")"):
                    break
                lexer.expect_op(",")
        lexer.expect_word("returns")
        returns = parse_type_expr(lexer, self.types)
        body_text = _raw_braced_body(lexer)
        definition = FunctionDef(type_name, func_name, params, returns,
                                 body_text)
        if self.function_translator is None:
            raise TypeError_(
                "define function needs an EXCESS translator; run DDL "
                "through repro.excess.run()")
        self.function_translator(definition)
        return definition


def _raw_braced_body(lexer: Lexer) -> str:
    """Collect the raw token text of a balanced ``{ … }`` body."""
    lexer.expect_op("{")
    depth = 1
    parts: List[str] = []
    while depth > 0:
        token = lexer.advance()
        if token.kind == "EOF":
            raise ParseError("unterminated function body")
        if token.kind == "OP" and token.value == "{":
            depth += 1
        elif token.kind == "OP" and token.value == "}":
            depth -= 1
            if depth == 0:
                break
        if token.kind == "STRING":
            parts.append('"%s"' % token.value)
        else:
            parts.append(token.value)
    return " ".join(parts)


def ensure_type_system(database) -> TypeSystem:
    """The type system attached to *database*, created on first use."""
    types = getattr(database, "types", None)
    if types is None:
        types = TypeSystem(database.hierarchy)
        database.types = types
    return types
