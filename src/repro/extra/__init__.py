"""The EXTRA data model: type system and DDL (Section 2.1)."""

from .ddl import (DDLInterpreter, FunctionDef, default_instance,
                  ensure_type_system, parse_type_expr)
from .types import (ArrayType, NamedType, RefType, ScalarType, SetType,
                    TupleType, TupleTypeExpr, TypeExpr, TypeSystem,
                    TypeError_)

__all__ = [
    "DDLInterpreter", "FunctionDef", "default_instance",
    "ensure_type_system", "parse_type_expr",
    "TypeSystem", "TupleType", "TypeExpr", "ScalarType", "NamedType",
    "RefType", "SetType", "ArrayType", "TupleTypeExpr", "TypeError_",
]
