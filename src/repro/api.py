"""The public entry point: ``repro.connect(...) -> Connection``.

One constructor that covers every way a database can exist — in
memory, as a crash-safe JSON image, or as a durable directory with a
write-ahead log — and one ``execute()`` that covers every statement
kind on either engine, returning a uniform self-describing
:class:`~repro.excess.session.Result`.

Observability is wired here: each Connection owns a
:class:`~repro.obs.Tracer` (spans flow to ``Result.trace`` and
``Result.explain()``) and a :class:`~repro.obs.SlowQueryLog`, and every
``execute()`` feeds the process-wide metrics registry.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Any, List, Optional, Union

from .core.optimizer import CostModel, Optimizer, Statistics
from .excess.session import Result, Session
from .obs import SlowQueryLog, Tracer
from .options import _UNSET, ExecutionOptions, merge_legacy_options
from .obs.metrics import (
    DEREF_CACHE_HITS_TOTAL,
    DEREF_CACHE_MISSES_TOTAL,
    QUERIES_TOTAL,
    QUERY_ERRORS_TOTAL,
    QUERY_SECONDS,
    SLOW_QUERIES_TOTAL,
)
from .storage import Database, load_database, open_database

__all__ = ["Connection", "ExecutionOptions", "connect"]


class Connection:
    """A live handle on a database: session, tracer, slow-query log.

    Use :func:`connect` to obtain one.  The underlying
    :class:`~repro.excess.session.Session` stays reachable as
    ``connection.session`` for range declarations, explicit
    transactions, and other session-level state.
    """

    def __init__(self, database: Database,
                 options: Optional[ExecutionOptions] = None, *,
                 optimizer: Optional[Optimizer] = None,
                 slow_query_threshold: Optional[float] = 0.1,
                 _source: Optional[str] = None,
                 engine: Any = _UNSET, verify: Any = _UNSET,
                 trace: Any = _UNSET, typecheck: Any = _UNSET,
                 analyze: Any = _UNSET, sanitize: Any = _UNSET):
        options = merge_legacy_options(
            options, "Connection(...)", engine=engine, verify=verify,
            trace=trace, typecheck=typecheck, analyze=analyze,
            sanitize=sanitize)
        if optimizer is None:
            optimizer = Optimizer(
                cost_model=CostModel(Statistics.from_database(database),
                                     engine=options.engine,
                                     indexes=database.indexes))
        self.db = database
        self.session = Session(database, optimizer=optimizer,
                               options=options, _api_internal=True)
        self.tracer = Tracer(enabled=options.trace)
        # Every layer reads the tracer from its evaluation context; the
        # database carries it too so storage-side spans (WAL commits)
        # land in the same tree.
        self.session.context.tracer = self.tracer
        database.tracer = self.tracer
        self.slow_log = SlowQueryLog(threshold=slow_query_threshold)
        self._source = _source
        self._closed = False
        self._client_id = ""

    # -- lifecycle ----------------------------------------------------------

    @property
    def engine(self) -> str:
        return self.session.engine

    @property
    def options(self) -> ExecutionOptions:
        """The connection's current execution switches as one immutable
        snapshot (live toggles like ``tracing`` are reflected)."""
        return self.session.options.replace(trace=self.tracer.enabled)

    @options.setter
    def options(self, options: ExecutionOptions) -> None:
        self.session.apply_options(options)
        self.tracer.enabled = options.trace

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    @tracing.setter
    def tracing(self, on: bool) -> None:
        self.tracer.enabled = bool(on)

    @property
    def client_id(self) -> str:
        """Connection identifier stamped into slow-query-log entries
        and trace spans (set by the network server, e.g. ``"c3"``, so
        load attributes to clients); empty for local connections."""
        return self._client_id

    @client_id.setter
    def client_id(self, value: str) -> None:
        self._client_id = str(value)
        self.tracer.client_id = self._client_id

    @property
    def sanitizing(self) -> bool:
        return self.session.sanitize

    @sanitizing.setter
    def sanitizing(self, on: bool) -> None:
        self.session.sanitize = bool(on)
        if on:
            self.session.analyze = True

    def close(self) -> None:
        """Release the WAL handle of a durable database (idempotent)."""
        if self._closed:
            return
        self._closed = True
        wal = getattr(getattr(self.db, "journal", None), "wal", None)
        if wal is not None:
            wal.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        where = self._source or "in-memory"
        return "<Connection %s engine=%s%s>" % (
            where, self.engine, " tracing" if self.tracer.enabled else "")

    # -- execution ----------------------------------------------------------

    def execute(self, source: str, *,
                options: Optional[ExecutionOptions] = None,
                optimize: bool = True) -> Result:
        """Run a mixed DDL/DML script; returns the last statement's
        :class:`Result` (all of them on ``result.all``).

        ``options=`` overrides the connection's execution switches for
        this call alone — e.g. ``conn.execute(q,
        options=conn.options.replace(engine="batched", parallel=2))``
        runs one statement partition-parallel without touching the
        connection.  (The optimizer keeps the connection's cost model;
        only execution switches swap.)

        Each statement is timed into the process-wide latency histogram
        and, when over the connection's threshold, the slow-query log.
        """
        if options is not None:
            saved = self.options
            self.options = options
            try:
                return self.execute(source, optimize=optimize)
            finally:
                self.options = saved
        if self._closed:
            raise RuntimeError("connection is closed")
        started = perf_counter()
        try:
            results = self.session.run(source, optimize=optimize)
        except Exception:
            QUERY_ERRORS_TOTAL.inc()
            QUERY_SECONDS.observe(perf_counter() - started)
            raise
        QUERIES_TOTAL.inc(max(len(results), 1))
        QUERY_SECONDS.observe(perf_counter() - started)
        for result in results:
            if result.stats.deref_cache_hit:
                DEREF_CACHE_HITS_TOTAL.inc(result.stats.deref_cache_hit)
            if result.stats.deref_cache_miss:
                DEREF_CACHE_MISSES_TOTAL.inc(result.stats.deref_cache_miss)
            if result.seconds and self.slow_log.observe(
                    _statement_source(result), result.seconds,
                    stats=result.stats.as_dict(), engine=result.engine,
                    client=self._client_id):
                SLOW_QUERIES_TOTAL.inc()
        if not results:
            empty = Result("empty", None, engine=self.engine)
            empty.all = []
            return empty
        last = results[-1]
        last.all = results
        return last

    def query(self, source: str, *, optimize: bool = True) -> Any:
        """``execute(...).value`` — the last statement's raw value."""
        return self.execute(source, optimize=optimize).value

    # -- transactions (delegated) ------------------------------------------

    def begin(self) -> int:
        return self.session.begin()

    def commit(self) -> None:
        self.session.commit()

    def abort(self) -> None:
        self.session.abort()


def _statement_source(result: Result) -> str:
    statement = result.statement
    if isinstance(statement, str):
        return "(%s)" % statement
    return getattr(statement, "source", None) or repr(statement)


def connect(database: Union[Database, str, os.PathLike, None] = None,
            options: Optional[ExecutionOptions] = None, *,
            optimizer: Optional[Optimizer] = None,
            slow_query_threshold: Optional[float] = 0.1,
            engine: Any = _UNSET, verify: Any = _UNSET,
            trace: Any = _UNSET, typecheck: Any = _UNSET,
            analyze: Any = _UNSET, sanitize: Any = _UNSET) -> Connection:
    """Open a :class:`Connection`.

    *database* selects the storage flavor:

    * ``None`` — a fresh in-memory :class:`~repro.storage.Database`;
    * a :class:`~repro.storage.Database` — wrapped as-is;
    * a path ending in ``.json`` — a crash-safe image via
      :func:`~repro.storage.load_database`;
    * any other path — a durable directory (created on first use) with
      a write-ahead log via :func:`~repro.storage.open_database`.

    *options* is one :class:`~repro.options.ExecutionOptions` value
    carrying every execution switch:

    * ``engine`` — ``"compiled"`` (streaming pipelines, the default),
      ``"interpreted"``, or ``"batched"`` (columnar batches; honors
      ``batch_size`` and, with ``parallel >= 2``, OID-pool
      partition-parallel execution across forked workers);
    * ``trace`` — per-operator spans on every statement (see
      ``Result.trace`` / ``Result.explain()``);
    * ``verify`` — the inference gate before execution;
    * ``analyze`` — the abstract interpreter
      (:mod:`repro.core.analysis.absint`) over every optimized plan:
      statically-empty subtrees pruned, proven cardinality bounds clamp
      the cost model, proven-safe array bounds checks elided, and
      ``Result.explain()`` shows ``static [lo..hi]`` intervals;
    * ``sanitize`` — ``analyze`` with every proven fact turned into a
      runtime assertion on the compiled engines (a violation raises
      :class:`~repro.core.analysis.absint.SanitizerError`, pointing at
      an analyzer or engine bug).

    Override per statement with ``conn.execute(source, options=...)``.
    The per-keyword spellings (``connect(db, engine="batched")``) are
    deprecated shims over the same options value.
    """
    options = merge_legacy_options(
        options, "connect(...)", engine=engine, verify=verify,
        trace=trace, typecheck=typecheck, analyze=analyze,
        sanitize=sanitize)
    source: Optional[str] = None
    if database is None:
        db = Database()
    elif isinstance(database, Database):
        db = database
    else:
        path = os.fspath(database)
        source = path
        if path.endswith(".json"):
            db = load_database(path)
        else:
            db = open_database(path)
    return Connection(db, options, optimizer=optimizer,
                      slow_query_threshold=slow_query_threshold,
                      _source=source)
