"""The process-wide metrics registry: counters, gauges, histograms.

Instruments follow the Prometheus data model with a deliberately tiny
surface: a metric family has a name, a help string, a kind, and a map
from label sets to values.  Exports come in two shapes —
:meth:`MetricsRegistry.to_json` for programmatic consumption and
:meth:`MetricsRegistry.to_prometheus` in the Prometheus text
exposition format (``repro.cli metrics`` and the shell's ``.metrics``
print the latter).  :func:`parse_prometheus` parses that text back
into sample values, so the export round-trips (asserted by
``tests/obs/test_metrics.py``).

The module-level :data:`REGISTRY` is the process-wide default; the
standard instruments used across the engines, the transaction manager,
and the WAL live at the bottom of this module so every subsystem
shares one set of names.
"""

from __future__ import annotations

import re
import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "parse_prometheus",
]

#: A label set, normalized to a sorted tuple of (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: One exported sample: (metric name, label pairs, value).
Sample = Tuple[str, LabelKey, float]


def _labelkey(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _fmt_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    body = ",".join('%s="%s"' % (k, v.replace("\\", "\\\\")
                                 .replace('"', '\\"').replace("\n", "\\n"))
                    for k, v in labels)
    return "{%s}" % body


class Metric:
    """Base class: one metric family (name + help + per-labelset state)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str):
        if not _NAME_RE.match(name):
            raise ValueError("invalid metric name %r" % name)
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def samples(self) -> List[Sample]:
        raise NotImplementedError

    def to_json(self) -> Dict[str, Any]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _labelkey(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_labelkey(labels), 0.0)

    def samples(self) -> List[Sample]:
        with self._lock:
            return [(self.name, key, value)
                    for key, value in sorted(self._values.items())]

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "help": self.help,
                "values": [{"labels": dict(k), "value": v}
                           for k, v in sorted(self._values.items())]}


class Gauge(Metric):
    """A value that goes up and down; optionally provider-backed
    (the callable is sampled at export time)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}
        self._providers: Dict[LabelKey, Callable[[], float]] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_labelkey(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _labelkey(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def set_provider(self, fn: Callable[[], float], **labels: str) -> None:
        """Back this gauge by a callable, evaluated at export time
        (e.g. "age of the oldest live snapshot view")."""
        with self._lock:
            self._providers[_labelkey(labels)] = fn

    def value(self, **labels: str) -> float:
        key = _labelkey(labels)
        provider = self._providers.get(key)
        if provider is not None:
            try:
                return float(provider())
            except Exception:
                return 0.0
        return self._values.get(key, 0.0)

    def samples(self) -> List[Sample]:
        with self._lock:
            keys = sorted(set(self._values) | set(self._providers))
        return [(self.name, key,
                 self.value(**dict(key))) for key in keys]

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "help": self.help,
                "values": [{"labels": dict(k), "value": v}
                           for _, k, v in self.samples()]}


class _HistogramState:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class Histogram(Metric):
    """Fixed-bucket cumulative histogram (Prometheus ``le`` semantics)."""

    kind = "histogram"

    #: Default latency-ish buckets, in seconds.
    DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                       0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

    def __init__(self, name: str, help_text: str,
                 buckets: Optional[Iterable[float]] = None):
        super().__init__(name, help_text)
        bounds = sorted(set(float(b) for b in (buckets or
                                               self.DEFAULT_BUCKETS)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._states: Dict[LabelKey, _HistogramState] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _labelkey(labels)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _HistogramState(len(self.bounds))
            index = bisect_left(self.bounds, value)
            if index < len(state.bucket_counts):
                state.bucket_counts[index] += 1
            state.total += value
            state.count += 1

    def count(self, **labels: str) -> int:
        state = self._states.get(_labelkey(labels))
        return state.count if state is not None else 0

    def sum(self, **labels: str) -> float:
        state = self._states.get(_labelkey(labels))
        return state.total if state is not None else 0.0

    def samples(self) -> List[Sample]:
        out: List[Sample] = []
        with self._lock:
            for key, state in sorted(self._states.items()):
                cumulative = 0
                for bound, in_bucket in zip(self.bounds,
                                            state.bucket_counts):
                    cumulative += in_bucket
                    le = _fmt_value(bound)
                    out.append((self.name + "_bucket",
                                key + (("le", le),), float(cumulative)))
                out.append((self.name + "_bucket",
                            key + (("le", "+Inf"),), float(state.count)))
                out.append((self.name + "_sum", key, state.total))
                out.append((self.name + "_count", key, float(state.count)))
        return out

    def to_json(self) -> Dict[str, Any]:
        values = []
        for key, state in sorted(self._states.items()):
            values.append({
                "labels": dict(key),
                "count": state.count,
                "sum": state.total,
                "buckets": {_fmt_value(b): c for b, c in
                            zip(self.bounds, state.bucket_counts)},
            })
        return {"kind": self.kind, "help": self.help,
                "buckets": [_fmt_value(b) for b in self.bounds],
                "values": values}


class MetricsRegistry:
    """A named set of metric families with idempotent constructors —
    asking twice for the same name returns the same instrument (and
    raises if the kinds disagree)."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _intern(self, cls: type, name: str, help_text: str,
                **kwargs: Any) -> Metric:
        with self._lock:
            found = self._metrics.get(name)
            if found is not None:
                if not isinstance(found, cls):
                    raise ValueError(
                        "metric %r already registered as %s"
                        % (name, found.kind))
                return found
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._intern(Counter, name, help_text)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._intern(Gauge, name, help_text)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        metric = self._intern(Histogram, name, help_text, buckets=buckets)
        assert isinstance(metric, Histogram)
        return metric

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def reset(self) -> None:
        """Forget every instrument (tests only — live code holds
        references to instruments, which keep working but detached)."""
        with self._lock:
            self._metrics.clear()

    # -- exports -------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {name: metric.to_json()
                for name, metric in sorted(self._metrics.items())}

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append("# HELP %s %s"
                             % (name, metric.help.replace("\n", " ")))
            lines.append("# TYPE %s %s" % (name, metric.kind))
            for sample_name, labels, value in metric.samples():
                lines.append("%s%s %s" % (sample_name, _fmt_labels(labels),
                                          _fmt_value(value)))
        return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> Dict[Tuple[str, LabelKey], float]:
    """Parse Prometheus exposition text into ``{(name, labels): value}``.

    Strict enough to validate our own exporter round-trip; not a full
    OpenMetrics parser.  Raises ``ValueError`` on a malformed sample.
    """
    out: Dict[Tuple[str, LabelKey], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError("malformed sample line %r" % raw)
        labels_src = match.group("labels") or ""
        labels: List[Tuple[str, str]] = []
        consumed = 0
        for lm in _LABEL_RE.finditer(labels_src):
            labels.append((lm.group(1),
                           lm.group(2).replace('\\"', '"')
                           .replace("\\n", "\n").replace("\\\\", "\\")))
            consumed = lm.end()
        leftover = labels_src[consumed:].strip().strip(",")
        if leftover:
            raise ValueError("malformed labels in %r" % raw)
        value_src = match.group("value")
        if value_src == "+Inf":
            value = float("inf")
        elif value_src == "-Inf":
            value = float("-inf")
        else:
            value = float(value_src)
        out[(match.group("name"), tuple(sorted(labels)))] = value
    return out


# ---------------------------------------------------------------------------
# The process-wide registry and the standard instruments
# ---------------------------------------------------------------------------

#: Default registry used by every built-in subsystem.
REGISTRY = MetricsRegistry()

QUERY_SECONDS = REGISTRY.histogram(
    "repro_query_seconds",
    "End-to-end Connection.execute latency (parse+optimize+run).")
QUERIES_TOTAL = REGISTRY.counter(
    "repro_queries_total", "Statements executed through Connection.execute.")
QUERY_ERRORS_TOTAL = REGISTRY.counter(
    "repro_query_errors_total",
    "Connection.execute calls that raised.")
SLOW_QUERIES_TOTAL = REGISTRY.counter(
    "repro_slow_queries_total",
    "Statements slower than the slow-query threshold.")
TXN_COMMITS_TOTAL = REGISTRY.counter(
    "repro_txn_commits_total", "Committed transactions.")
TXN_ABORTS_TOTAL = REGISTRY.counter(
    "repro_txn_aborts_total", "Aborted (rolled back) transactions.")
WAL_FSYNCS_TOTAL = REGISTRY.counter(
    "repro_wal_fsyncs_total", "fsync calls issued by the write-ahead log.")
WAL_APPENDED_BYTES_TOTAL = REGISTRY.counter(
    "repro_wal_appended_bytes_total", "Bytes appended to the WAL.")
WAL_BATCH_RECORDS = REGISTRY.histogram(
    "repro_wal_batch_records",
    "Records per group-commit batch.",
    buckets=(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144))
SNAPSHOTS_TOTAL = REGISTRY.counter(
    "repro_snapshots_total", "Snapshot read views created.")
SNAPSHOT_VIEWS_LIVE = REGISTRY.gauge(
    "repro_snapshot_views_live", "Live (not yet collected) snapshot views.")
SNAPSHOT_OLDEST_AGE_SECONDS = REGISTRY.gauge(
    "repro_snapshot_oldest_age_seconds",
    "Age of the oldest live snapshot view.")
DEREF_CACHE_HITS_TOTAL = REGISTRY.counter(
    "repro_deref_cache_hits_total", "Deref-cache hits (compiled engine).")
DEREF_CACHE_MISSES_TOTAL = REGISTRY.counter(
    "repro_deref_cache_misses_total",
    "Deref-cache misses (compiled engine).")
REWRITE_FIRES_TOTAL = REGISTRY.counter(
    "repro_rewrite_fires_total",
    "Transformation-rule firings during optimization, by rule.")
REWRITE_SECONDS_TOTAL = REGISTRY.counter(
    "repro_rewrite_seconds_total",
    "Time spent inside rule matchers during optimization, by rule.")
INDEX_BUILDS_TOTAL = REGISTRY.counter(
    "repro_index_builds_total",
    "Index (re)builds by the catalog, by kind.")
INDEX_PROBES_TOTAL = REGISTRY.counter(
    "repro_index_probes_total",
    "Index probes served to the execution engines, by kind.")
INDEX_DROPS_TOTAL = REGISTRY.counter(
    "repro_index_drops_total", "Index definitions dropped, by kind.")
SANITIZER_CHECKS_TOTAL = REGISTRY.counter(
    "repro_sanitizer_checks_total",
    "Static facts asserted at runtime under sanitizer mode.")
SANITIZER_VIOLATIONS_TOTAL = REGISTRY.counter(
    "repro_sanitizer_violations_total",
    "Sanitizer assertions that failed (analyzer bugs).")

# -- network server (repro.server) ------------------------------------------

SERVER_CONNECTIONS_ACTIVE = REGISTRY.gauge(
    "repro_server_connections_active",
    "Client connections currently open on the network server.")
SERVER_CONNECTIONS_TOTAL = REGISTRY.counter(
    "repro_server_connections_total",
    "Client connections accepted since server start.")
SERVER_REQUESTS_TOTAL = REGISTRY.counter(
    "repro_server_requests_total",
    "Requests processed by the network server, by kind (read/write/txn).")
SERVER_QUERIES_QUEUED = REGISTRY.gauge(
    "repro_server_queries_queued",
    "Queries waiting for admission (write queue + reader backlog).")
SERVER_INFLIGHT_QUERIES = REGISTRY.gauge(
    "repro_server_inflight_queries",
    "Queries currently executing on the server.")
SERVER_TIMEOUTS_TOTAL = REGISTRY.counter(
    "repro_server_query_timeouts_total",
    "Queries that exceeded their per-query timeout.")
SERVER_ADMISSION_REJECTS_TOTAL = REGISTRY.counter(
    "repro_server_admission_rejects_total",
    "Requests rejected by admission control (queue depth exceeded).")
SERVER_GROUP_COMMIT_BATCH = REGISTRY.histogram(
    "repro_server_group_commit_batch",
    "Write statements batched per cross-connection group-commit fsync.",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128))
SERVER_ERRORS_TOTAL = REGISTRY.counter(
    "repro_server_errors_total",
    "Error responses sent to clients, by code.")
SERVER_PLAN_CACHE_HITS = REGISTRY.counter(
    "repro_server_plan_cache_hits",
    "Reader-path compiled-plan cache hits (per-connection caches, "
    "keyed by script text, index epoch, and execution options).")
SERVER_PLAN_CACHE_MISSES = REGISTRY.counter(
    "repro_server_plan_cache_misses",
    "Reader-path compiled-plan cache misses (each one is a full "
    "parse + optimize + compile against the snapshot).")
INDEX_EPOCH = REGISTRY.gauge(
    "repro_index_epoch",
    "Current index epoch: the committed-transaction version of the "
    "most advanced live transaction manager (every commit, including "
    "index DDL, advances it).")


def now() -> float:
    """Wall-clock seconds (indirection point for tests)."""
    return time.time()
