"""Hierarchical trace spans: the execution X-ray of one statement.

A :class:`Span` is one node of a statement's trace tree — a physical
operator of the compiled engine, a rewrite rule firing, a WAL commit,
or the statement itself.  Spans carry wall time, how often they were
entered (``calls``), the chunk/occurrence flow they produced
(``rows_out`` distinct chunks, ``card_out`` summed occurrence counts),
and the ``dne`` results they discarded, plus a free-form ``meta`` dict
for operator-specific detail (deref-cache hit ratios, rule fire
counts, WAL batch sizes).

The :class:`Tracer` is the recorder: it owns the current statement's
root span and a cursor for nesting.  A disabled tracer never allocates
a span, and every hook in the engines is guarded by ``tracer is None
or not tracer.enabled`` at *compile* (not per-element) time, so the
tracing layer costs nothing when off — the property the trace-smoke
gate (``make trace-smoke``) asserts.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One node of a trace tree.

    Attributes are plain integers/floats bumped by the instrumented
    code; nothing here is thread-safe (a tracer belongs to one
    connection, like the evaluation context it rides on).
    """

    __slots__ = ("name", "kind", "meta", "children", "wall", "calls",
                 "rows_out", "card_out", "dne_out", "expr")

    def __init__(self, name: str, kind: str = "span",
                 expr: Optional[Any] = None,
                 meta: Optional[Dict[str, Any]] = None):
        self.name = name
        #: One of ``statement``, ``plan``, ``operator``, ``rule``,
        #: ``wal``, or ``span`` (generic timed block).
        self.kind = kind
        self.meta: Dict[str, Any] = dict(meta) if meta else {}
        self.children: List["Span"] = []
        #: Inclusive wall-clock seconds (children included).
        self.wall = 0.0
        #: Times this span's code was entered.
        self.calls = 0
        #: Chunks yielded (stream operators) or non-null results
        #: produced (value operators).
        self.rows_out = 0
        #: Total occurrence count across yielded chunks — the actual
        #: output *cardinality* in the multiset sense.
        self.card_out = 0
        #: ``dne`` results produced (discarded by any enclosing
        #: collection operator — the null-discard count).
        self.dne_out = 0
        #: The algebra node this span measures, when it measures one.
        self.expr = expr

    def add(self, child: "Span") -> "Span":
        self.children.append(child)
        return child

    def child(self, name: str, kind: str = "span",
              expr: Optional[Any] = None,
              meta: Optional[Dict[str, Any]] = None) -> "Span":
        return self.add(Span(name, kind=kind, expr=expr, meta=meta))

    # -- tree access ---------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Pre-order walk of this span and its descendants."""
        yield self
        for child in self.children:
            for span in child.walk():
                yield span

    def find(self, kind: Optional[str] = None,
             name: Optional[str] = None) -> Optional["Span"]:
        """First descendant (or self) matching *kind* and/or *name*."""
        for span in self.walk():
            if kind is not None and span.kind != kind:
                continue
            if name is not None and span.name != name:
                continue
            return span
        return None

    def find_all(self, kind: Optional[str] = None,
                 name: Optional[str] = None) -> List["Span"]:
        """Every descendant (or self) matching *kind* and/or *name*."""
        out = []
        for span in self.walk():
            if kind is not None and span.kind != kind:
                continue
            if name is not None and span.name != name:
                continue
            out.append(span)
        return out

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly rendering of the whole subtree."""
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "wall_s": self.wall,
            "calls": self.calls,
            "rows_out": self.rows_out,
            "card_out": self.card_out,
            "dne_out": self.dne_out,
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:
        return ("<Span %s %r wall=%.6fs rows=%d card=%d (%d child(ren))>"
                % (self.kind, self.name, self.wall, self.rows_out,
                   self.card_out, len(self.children)))


class Tracer:
    """Span recorder for one connection/session.

    ``begin(name)`` opens a statement root; ``start_span``/``finish``
    (or the :meth:`record` context manager) nest timed spans under the
    cursor; ``end()`` closes the statement and returns the root.
    A tracer constructed with ``enabled=False`` ignores every call and
    allocates nothing.
    """

    __slots__ = ("enabled", "root", "_stack", "client_id")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.root: Optional[Span] = None
        self._stack: List[Span] = []
        #: Connection/client identifier stamped into every statement
        #: root span's meta (set by the network server so traces
        #: attribute load to clients); empty for local sessions.
        self.client_id = ""

    @property
    def current(self) -> Optional[Span]:
        """The span new children attach to (None when idle/disabled)."""
        return self._stack[-1] if self._stack else None

    def begin(self, name: str, kind: str = "statement",
              meta: Optional[Dict[str, Any]] = None) -> Optional[Span]:
        """Open a fresh root span (discarding any previous tree)."""
        if not self.enabled:
            return None
        if self.client_id:
            meta = dict(meta) if meta else {}
            meta.setdefault("client", self.client_id)
        self.root = Span(name, kind=kind, meta=meta)
        self._stack = [self.root]
        return self.root

    def end(self) -> Optional[Span]:
        """Close the statement; returns the finished root span."""
        root, self.root = self.root, None
        self._stack = []
        return root

    def start_span(self, name: str, kind: str = "span",
                   expr: Optional[Any] = None,
                   meta: Optional[Dict[str, Any]] = None) -> Optional[Span]:
        """Open a nested span and make it the cursor."""
        if not self.enabled:
            return None
        parent = self.current
        span = Span(name, kind=kind, expr=expr, meta=meta)
        if parent is not None:
            parent.add(span)
        else:
            # No statement root: the span becomes its own tree (useful
            # for ad-hoc tracing of a bare evaluate()).
            self.root = span
        self._stack.append(span)
        return span

    def finish(self, span: Optional[Span]) -> None:
        """Pop *span* (and anything left open below it) off the cursor."""
        if span is None or not self._stack:
            return
        while self._stack:
            popped = self._stack.pop()
            if popped is span:
                break

    def attach(self, span: Span) -> Span:
        """Hang a pre-built span tree under the cursor (the compiled
        engine builds its operator tree at plan-compile time)."""
        parent = self.current
        if parent is not None:
            parent.add(span)
        elif self.root is None:
            self.root = span
        return span

    @contextmanager
    def record(self, name: str, kind: str = "span",
               **meta: Any) -> Iterator[Optional[Span]]:
        """Timed block span: ``with tracer.record("wal.commit"): …``."""
        if not self.enabled:
            yield None
            return
        span = self.start_span(name, kind=kind, meta=meta or None)
        started = time.perf_counter()
        try:
            yield span
        finally:
            if span is not None:
                span.calls += 1
                span.wall += time.perf_counter() - started
            self.finish(span)
