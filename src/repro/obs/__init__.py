"""repro.obs — observability: trace spans, metrics, slow-query log.

Leaf package: imports nothing from the rest of ``repro`` so every
layer (storage, engines, session, CLI) can depend on it without
cycles.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    parse_prometheus,
)
from .slowlog import SlowQuery, SlowQueryLog
from .stats import COUNTER_FIELDS, QueryStats
from .trace import Span, Tracer

__all__ = [
    "COUNTER_FIELDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryStats",
    "REGISTRY",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "parse_prometheus",
]
