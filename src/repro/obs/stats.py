"""Typed per-statement statistics.

:class:`QueryStats` replaces the raw ``ctx.stats`` dict in the public
API while staying drop-in compatible with it: it implements the
read-only mapping protocol (``stats["deref_cache_hit"]``, ``.get``,
``in``, iteration) and compares equal to a plain dict with the same
non-zero counters, so existing tests and call sites that treat stats
as a dict keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

__all__ = ["QueryStats", "COUNTER_FIELDS"]

#: Counter names ticked by the engines (see ``EvalContext.tick`` call
#: sites) — each is a first-class field below.
COUNTER_FIELDS: Tuple[str, ...] = (
    "elements_scanned",
    "set_apply_elements",
    "arr_apply_elements",
    "comp_evals",
    "atom_evals",
    "func_calls",
    "method_dispatches",
    "deref_count",
    "deref_cache_hit",
    "deref_cache_miss",
    "cross_pairs",
    "de_elements",
    "grp_elements",
    "index_lookups",
    "index_join_probes",
    "hash_join_build",
    "hash_join_probes",
)


@dataclass
class QueryStats:
    """Per-statement counters, dict-compatible.

    Semantics match PR 1's ``ctx.stats``: only counters the statement
    actually ticked are "present" (zero-valued fields are hidden from
    the mapping view), which is what makes dict equality line up with
    the historical sparse dicts.
    """

    elements_scanned: int = 0
    set_apply_elements: int = 0
    arr_apply_elements: int = 0
    comp_evals: int = 0
    atom_evals: int = 0
    func_calls: int = 0
    method_dispatches: int = 0
    deref_count: int = 0
    deref_cache_hit: int = 0
    deref_cache_miss: int = 0
    cross_pairs: int = 0
    de_elements: int = 0
    grp_elements: int = 0
    index_lookups: int = 0
    index_join_probes: int = 0
    hash_join_build: int = 0
    hash_join_probes: int = 0
    #: Counters ticked under names this dataclass doesn't know about
    #: (future engines keep working without schema churn here).
    extra: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_counters(cls, counters: Mapping[str, int]) -> "QueryStats":
        known = {f.name for f in fields(cls)} - {"extra"}
        kwargs: Dict[str, Any] = {}
        extra: Dict[str, int] = {}
        for key, value in counters.items():
            if key in known:
                kwargs[key] = int(value)
            else:
                extra[key] = int(value)
        return cls(extra=extra, **kwargs)

    def as_dict(self) -> Dict[str, int]:
        """Sparse dict of the non-zero counters (the historical shape)."""
        out: Dict[str, int] = {}
        for name in COUNTER_FIELDS:
            value = getattr(self, name)
            if value:
                out[name] = value
        for key, value in self.extra.items():
            if value:
                out[key] = value
        return out

    # -- derived -------------------------------------------------------

    @property
    def deref_cache_hit_ratio(self) -> Optional[float]:
        """Hit ratio of the per-query deref cache, or None when the
        statement never dereferenced anything."""
        total = self.deref_cache_hit + self.deref_cache_miss
        if not total:
            return None
        return self.deref_cache_hit / total

    # -- mapping protocol ----------------------------------------------

    def __getitem__(self, key: str) -> int:
        try:
            return self.as_dict()[key]
        except KeyError:
            raise KeyError(key) from None

    def get(self, key: str, default: Any = None) -> Any:
        return self.as_dict().get(key, default)

    def keys(self) -> Iterator[str]:
        return iter(self.as_dict())

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self.as_dict().items())

    def values(self) -> Iterator[int]:
        return iter(self.as_dict().values())

    def __iter__(self) -> Iterator[str]:
        return iter(self.as_dict())

    def __len__(self) -> int:
        return len(self.as_dict())

    def __contains__(self, key: object) -> bool:
        return key in self.as_dict()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QueryStats):
            return self.as_dict() == other.as_dict()
        if isinstance(other, Mapping):
            return self.as_dict() == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join("%s=%d" % kv for kv in self.as_dict().items())
        return "QueryStats(%s)" % body
