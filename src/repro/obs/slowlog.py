"""Slow-query log: a bounded ring of statements over a latency threshold."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

__all__ = ["SlowQuery", "SlowQueryLog"]


@dataclass
class SlowQuery:
    """One slow statement: what ran, how long, and its counters."""

    source: str
    seconds: float
    stats: Dict[str, int] = field(default_factory=dict)
    engine: str = ""
    #: Connection/client identifier when the statement arrived over the
    #: network server (e.g. ``"c3"``); empty for local sessions.
    client: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"source": self.source, "seconds": self.seconds,
                "engine": self.engine, "client": self.client,
                "stats": dict(self.stats)}


class SlowQueryLog:
    """Keeps the most recent statements slower than ``threshold``
    seconds, newest last, bounded by ``capacity``.

    ``threshold=None`` disables recording entirely; ``threshold=0.0``
    records everything (useful in tests).  Appends are GIL-atomic
    (deque), so the server's reader threads and writer thread share one
    log without extra locking."""

    def __init__(self, threshold: Optional[float] = 0.1,
                 capacity: int = 128):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.threshold = threshold
        self.capacity = capacity
        self._entries: Deque[SlowQuery] = deque(maxlen=capacity)

    def observe(self, source: str, seconds: float,
                stats: Optional[Dict[str, int]] = None,
                engine: str = "", client: str = "") -> Optional[SlowQuery]:
        """Record *source* if it crossed the threshold; returns the
        entry when recorded, else None."""
        if self.threshold is None or seconds < self.threshold:
            return None
        entry = SlowQuery(source=source, seconds=seconds,
                          stats=dict(stats or {}), engine=engine,
                          client=client)
        self._entries.append(entry)
        return entry

    def entries(self) -> List[SlowQuery]:
        return list(self._entries)

    def by_client(self) -> Dict[str, List[SlowQuery]]:
        """Entries grouped by client id (``""`` for local sessions) —
        the attribution view the server's ``/slowlog`` endpoint serves."""
        out: Dict[str, List[SlowQuery]] = {}
        for entry in self._entries:
            out.setdefault(entry.client, []).append(entry)
        return out

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return True

    def render(self) -> str:
        """Human-readable table, slowest first."""
        if not self._entries:
            return "slow-query log is empty"
        rows = sorted(self._entries, key=lambda e: -e.seconds)
        lines = ["%8s  %-9s  %-6s  %s"
                 % ("seconds", "engine", "client", "statement")]
        for entry in rows:
            src = " ".join(entry.source.split())
            if len(src) > 60:
                src = src[:57] + "..."
            lines.append("%8.4f  %-9s  %-6s  %s"
                         % (entry.seconds, entry.engine or "-",
                            entry.client or "-", src))
        return "\n".join(lines)
