"""Execution options: one immutable bag for every knob that shapes how
a statement runs.

Historically each knob was a separate keyword threaded through
``connect()`` → ``Connection`` → ``Session`` → ``evaluate()``; adding
the batched engine (with ``batch_size`` and ``parallel``) made that
plumbing the API.  :class:`ExecutionOptions` collapses them into one
value:

* construct once, pass to :func:`repro.connect` as ``options=``;
* derive variants with :meth:`ExecutionOptions.replace`;
* override per statement via ``Connection.execute(source, options=...)``.

The old per-keyword spellings (``connect(db, engine=...)`` and friends)
still work behind :func:`merge_legacy_options`, which folds them into an
``ExecutionOptions`` under a DeprecationWarning.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from dataclasses import replace as _dc_replace
from typing import Any, Dict, Optional

__all__ = ["ENGINES", "ExecutionOptions", "merge_legacy_options"]

#: The recognized execution engines, in increasing order of machinery:
#: tree-walking interpreter, streaming compiled pipelines, and columnar
#: batch pipelines (the only engine that honors ``batch_size`` /
#: ``parallel``).
ENGINES = ("interpreted", "compiled", "batched")


@dataclass(frozen=True)
class ExecutionOptions:
    """How statements execute: engine choice plus every cross-cutting
    switch that used to be its own keyword argument.

    * ``engine`` — ``"interpreted"``, ``"compiled"``, or ``"batched"``.
    * ``verify`` — run the inheritance-aware inference gate before
      execution; the compiled engines receive duplicate-freedom facts
      as optimization licenses.
    * ``typecheck`` — static schema check of every retrieve before it
      runs.
    * ``analyze`` — abstract-interpret every optimized plan: prune
      statically-empty subtrees, clamp the cost model with proven
      bounds, license bounds-check elision.
    * ``sanitize`` — ``analyze`` with the facts flipped into runtime
      assertions (implies ``analyze``; forces serial batched
      execution).
    * ``trace`` — record per-operator spans on every statement.
    * ``batch_size`` — elements per :class:`~repro.core.engine.Batch`
      on the batched engine; ``None`` means the engine default.
    * ``parallel`` — on the batched engine, partition extents by OID
      pool across this many forked workers (``0``/``1`` = serial).
    * ``access_paths`` — index probe policy handed to the compiled
      engines: ``"auto"`` (cost-gated), ``"force"``, or ``"off"``.
    * ``readers`` — size of the network server's snapshot-reader
      thread pool (``None`` = the server's default); local connections
      ignore it.
    """

    engine: str = "compiled"
    verify: bool = False
    typecheck: bool = False
    analyze: bool = False
    sanitize: bool = False
    trace: bool = False
    batch_size: Optional[int] = None
    parallel: int = 0
    access_paths: str = "auto"
    readers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError("engine must be one of %s, got %r"
                             % ("/".join(ENGINES), self.engine))
        if self.sanitize and not self.analyze:
            # sanitize is analyze with assertions on; keep the pair
            # consistent so callers can read either flag.
            object.__setattr__(self, "analyze", True)
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1, got %r"
                             % (self.batch_size,))
        if self.parallel < 0:
            raise ValueError("parallel must be >= 0, got %r"
                             % (self.parallel,))
        if self.parallel >= 2 and self.engine != "batched":
            raise ValueError(
                "parallel=%d requires engine='batched' (the %r engine "
                "has no partition-parallel mode)"
                % (self.parallel, self.engine))
        if self.access_paths not in ("auto", "force", "off"):
            raise ValueError("access_paths must be 'auto', 'force', or "
                             "'off', got %r" % (self.access_paths,))
        if self.readers is not None and self.readers < 1:
            raise ValueError("readers must be >= 1, got %r"
                             % (self.readers,))

    def replace(self, **changes: Any) -> "ExecutionOptions":
        """A copy with *changes* applied (validation re-runs)."""
        return _dc_replace(self, **changes)

    def as_dict(self) -> Dict[str, Any]:
        """Field name → value (a fresh plain dict)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Sentinel for "keyword not passed" in deprecated signatures, so the
#: shims can tell an explicit ``engine="compiled"`` from the default.
_UNSET: Any = object()


def merge_legacy_options(options: Optional[ExecutionOptions],
                         where: str,
                         **legacy: Any) -> ExecutionOptions:
    """Fold deprecated per-keyword arguments into an ExecutionOptions.

    *legacy* maps field names to values, with :data:`_UNSET` meaning
    "not passed".  Passing any legacy keyword warns; combining them
    with ``options=`` is an error (two sources of truth).
    """
    passed = {k: v for k, v in legacy.items() if v is not _UNSET}
    if not passed:
        return options if options is not None else ExecutionOptions()
    if options is not None:
        raise TypeError(
            "%s: pass options=ExecutionOptions(...) or the legacy "
            "keywords (%s), not both" % (where, ", ".join(sorted(passed))))
    warnings.warn(
        "%s: the %s keyword%s deprecated; pass "
        "options=repro.ExecutionOptions(%s) instead"
        % (where, "/".join(sorted(passed)),
           " is" if len(passed) == 1 else "s are",
           ", ".join("%s=%r" % kv for kv in sorted(passed.items()))),
        DeprecationWarning, stacklevel=3)
    return ExecutionOptions(**passed)
