"""Builtin scalar and aggregate functions for EXCESS evaluation.

EXCESS supports "aggregate functions (written in E)" and arithmetic;
here they are Python callables registered into a database's function
table.  Aggregates consume a multiset; min/max/avg of an empty multiset
return ``dne`` (there is no such value), which downstream multiset
operators discard — the same discipline COMP uses.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..core.schema import SchemaNode
from ..core.values import DNE, Arr, MultiSet


def _occurrences(collection: Any):
    if isinstance(collection, (MultiSet, Arr)):
        return list(collection)
    raise TypeError("aggregate needs a multiset or array, got %r"
                    % (collection,))


def agg_min(collection: Any) -> Any:
    items = _occurrences(collection)
    return min(items) if items else DNE


def agg_max(collection: Any) -> Any:
    items = _occurrences(collection)
    return max(items) if items else DNE


def agg_count(collection: Any) -> int:
    return len(_occurrences(collection))


def agg_sum(collection: Any) -> Any:
    items = _occurrences(collection)
    return sum(items) if items else 0


def agg_avg(collection: Any) -> Any:
    items = _occurrences(collection)
    if not items:
        return DNE
    return sum(items) / len(items)


def plus(left: Any, right: Any) -> Any:
    """Polymorphic +: numeric addition, ⊎ on multisets, ARR_CAT on
    arrays, concatenation on strings."""
    if isinstance(left, MultiSet) and isinstance(right, MultiSet):
        return left.add_union(right)
    if isinstance(left, Arr) and isinstance(right, Arr):
        return left.concat(right)
    return left + right


def minus(left: Any, right: Any) -> Any:
    """Polymorphic −: numeric subtraction, multiset difference."""
    if isinstance(left, MultiSet) and isinstance(right, MultiSet):
        return left.difference(right)
    return left - right


def times(left: Any, right: Any) -> Any:
    return left * right


def divide(left: Any, right: Any) -> Any:
    return left / right


def neg(value: Any) -> Any:
    return -value


def bagof(array: Any) -> MultiSet:
    """Array → multiset coercion (order-forgetting); used when EXCESS
    iterates an array with a from-clause or range variable."""
    if isinstance(array, MultiSet):
        return array
    if isinstance(array, Arr):
        return MultiSet(array)
    raise TypeError("bagof needs an array or multiset, got %r" % (array,))


BUILTINS: Dict[str, Callable] = {
    "min": agg_min,
    "max": agg_max,
    "count": agg_count,
    "sum": agg_sum,
    "avg": agg_avg,
    "plus": plus,
    "minus": minus,
    "times": times,
    "divide": divide,
    "neg": neg,
    "bagof": bagof,
}

#: Builtins that can produce ``dne`` from non-null inputs (the empty-
#: collection aggregates); the null-flow analysis treats their results
#: as may-dne.
MAY_RETURN_DNE = frozenset(["min", "max", "avg"])


# -- declared type signatures for the static analysis layer -------------
#
# A signature is a callable (list of argument schemas) → result schema;
# None (or an unknown result) means "nothing known" and inference keeps
# going with the unknown placeholder.

def _element_schema(arg_schemas):
    """The element schema of a collection argument, if visible."""
    from ..core.typecheck import is_unknown, unknown_schema
    if arg_schemas and arg_schemas[0] is not None \
            and not is_unknown(arg_schemas[0]) \
            and arg_schemas[0].kind in ("set", "arr"):
        return arg_schemas[0].children[0].clone()
    return unknown_schema()


def _sig_aggregate_element(arg_schemas):
    return _element_schema(arg_schemas)


def _sig_count(arg_schemas):
    return SchemaNode.val(int)


def _sig_numeric(arg_schemas):
    return SchemaNode.val()


def _sig_polymorphic_binary(arg_schemas):
    """plus/minus keep their operand sort (⊎ on multisets, ARR_CAT on
    arrays, arithmetic on scalars)."""
    from ..core.typecheck import is_unknown, unknown_schema
    for schema in arg_schemas:
        if schema is not None and not is_unknown(schema):
            return schema.clone()
    return unknown_schema()


def _sig_bagof(arg_schemas):
    return SchemaNode.set_of(_element_schema(arg_schemas))


BUILTIN_SIGNATURES: Dict[str, Callable] = {
    "min": _sig_aggregate_element,
    "max": _sig_aggregate_element,
    "count": _sig_count,
    "sum": _sig_aggregate_element,
    "avg": _sig_numeric,
    "plus": _sig_polymorphic_binary,
    "minus": _sig_polymorphic_binary,
    "times": _sig_numeric,
    "divide": _sig_numeric,
    "neg": _sig_numeric,
    "bagof": _sig_bagof,
}


def register_builtins(database) -> None:
    """Register every builtin not already present on *database*."""
    signatures = getattr(database, "function_signatures", None)
    for name, fn in BUILTINS.items():
        if name not in database.functions:
            database.register_function(name, fn)
        if signatures is not None and name not in signatures:
            signatures[name] = BUILTIN_SIGNATURES.get(name)
