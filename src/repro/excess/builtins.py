"""Builtin scalar and aggregate functions for EXCESS evaluation.

EXCESS supports "aggregate functions (written in E)" and arithmetic;
here they are Python callables registered into a database's function
table.  Aggregates consume a multiset; min/max/avg of an empty multiset
return ``dne`` (there is no such value), which downstream multiset
operators discard — the same discipline COMP uses.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..core.values import DNE, Arr, MultiSet


def _occurrences(collection: Any):
    if isinstance(collection, (MultiSet, Arr)):
        return list(collection)
    raise TypeError("aggregate needs a multiset or array, got %r"
                    % (collection,))


def agg_min(collection: Any) -> Any:
    items = _occurrences(collection)
    return min(items) if items else DNE


def agg_max(collection: Any) -> Any:
    items = _occurrences(collection)
    return max(items) if items else DNE


def agg_count(collection: Any) -> int:
    return len(_occurrences(collection))


def agg_sum(collection: Any) -> Any:
    items = _occurrences(collection)
    return sum(items) if items else 0


def agg_avg(collection: Any) -> Any:
    items = _occurrences(collection)
    if not items:
        return DNE
    return sum(items) / len(items)


def plus(left: Any, right: Any) -> Any:
    """Polymorphic +: numeric addition, ⊎ on multisets, ARR_CAT on
    arrays, concatenation on strings."""
    if isinstance(left, MultiSet) and isinstance(right, MultiSet):
        return left.add_union(right)
    if isinstance(left, Arr) and isinstance(right, Arr):
        return left.concat(right)
    return left + right


def minus(left: Any, right: Any) -> Any:
    """Polymorphic −: numeric subtraction, multiset difference."""
    if isinstance(left, MultiSet) and isinstance(right, MultiSet):
        return left.difference(right)
    return left - right


def times(left: Any, right: Any) -> Any:
    return left * right


def divide(left: Any, right: Any) -> Any:
    return left / right


def neg(value: Any) -> Any:
    return -value


def bagof(array: Any) -> MultiSet:
    """Array → multiset coercion (order-forgetting); used when EXCESS
    iterates an array with a from-clause or range variable."""
    if isinstance(array, MultiSet):
        return array
    if isinstance(array, Arr):
        return MultiSet(array)
    raise TypeError("bagof needs an array or multiset, got %r" % (array,))


BUILTINS: Dict[str, Callable] = {
    "min": agg_min,
    "max": agg_max,
    "count": agg_count,
    "sum": agg_sum,
    "avg": agg_avg,
    "plus": plus,
    "minus": minus,
    "times": times,
    "divide": divide,
    "neg": neg,
    "bagof": bagof,
}


def register_builtins(database) -> None:
    """Register every builtin not already present on *database*."""
    for name, fn in BUILTINS.items():
        if name not in database.functions:
            database.register_function(name, fn)
