"""Recursive-descent parser for EXCESS DML statements.

Grammar (clauses may appear in any order after the target list, matching
the paper's examples, which write both ``… by … where …`` and
``… from … where …``)::

    statement   := range_decl | retrieve
    range_decl  := "range" "of" IDENT "is" IDENT {"," IDENT "is" IDENT}
    retrieve    := "retrieve" ["unique"] ["value"] "(" targets ")"
                   { from | where | by } ["into" IDENT]
    targets     := target {"," target}
    target      := [IDENT "="] expr
    from        := "from" IDENT "in" expr {"," IDENT "in" expr}
    where       := "where" pred
    by          := "by" expr {"," expr}

    pred        := conj {"or" conj}
    conj        := unit {"and" unit}
    unit        := "not" unit | "(" pred ")" | expr (CMP | "in") expr
    expr        := mult {("+"|"-") mult}
    mult        := unary {("*"|"/") unary}
    unary       := "-" unary | postfix
    postfix     := primary { "." IDENT ["(" args ")"] | "[" index "]" }
    primary     := literal | "(" expr ")" | "{" [args] "}" | "[" [args] "]"
                 | AGG "(" expr [from] [where] ")" | IDENT ["(" args ")"]
    index       := (INT|"last") [".." (INT|"last")]

Predicate-vs-expression parenthesis ambiguity (``where (x.a = 1)``) is
resolved by backtracking.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..lang import Lexer, ParseError
from . import ast

_COMPARATORS = {"=", "!=", "<", "<=", ">", ">="}

_CLAUSE_WORDS = ("from", "where", "by", "into", "retrieve", "range",
                 "define", "create", "and", "or", "not", "in", "is")


class Parser:
    """Parses EXCESS statements from a token stream."""

    def __init__(self, source: str):
        self.lexer = Lexer(source)

    # -- entry points ---------------------------------------------------

    def parse_statements(self) -> List[ast.Node]:
        statements: List[ast.Node] = []
        while not self.lexer.at_end():
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> ast.Node:
        token = self.lexer.peek()
        if token.is_word("range"):
            return self.parse_range_decl()
        if token.is_word("retrieve"):
            return self.parse_retrieve()
        if token.is_word("append"):
            return self.parse_append()
        if token.is_word("delete"):
            return self.parse_delete()
        if token.is_word("replace"):
            return self.parse_replace()
        raise ParseError("expected an EXCESS statement, found %r"
                         % (token.value or "end of input"),
                         token.line, token.column)

    def parse_append(self) -> ast.Append:
        self.lexer.expect_word("append")
        self.lexer.expect_word("to")
        collection = self.lexer.expect_ident().value
        value_mode = bool(self.lexer.accept_word("value"))
        self.lexer.expect_op("(")
        targets = [self.parse_target()]
        while self.lexer.accept_op(","):
            targets.append(self.parse_target())
        self.lexer.expect_op(")")
        from_clauses: List[ast.FromClause] = []
        where: Optional[ast.Pred] = None
        while True:
            token = self.lexer.peek()
            if token.is_word("from"):
                self.lexer.advance()
                from_clauses.extend(self._parse_from_list())
            elif token.is_word("where"):
                self.lexer.advance()
                where = self.parse_pred()
            else:
                break
        return ast.Append(collection, targets, from_clauses, where,
                          value_mode)

    def parse_delete(self) -> ast.Delete:
        self.lexer.expect_word("delete")
        var = self.lexer.expect_ident().value
        where = None
        if self.lexer.accept_word("where"):
            where = self.parse_pred()
        return ast.Delete(var, where)

    def parse_replace(self) -> ast.Replace:
        self.lexer.expect_word("replace")
        var = self.lexer.expect_ident().value
        self.lexer.expect_op("(")
        assignments = []
        while True:
            field = self.lexer.expect_ident().value
            self.lexer.expect_op("=")
            assignments.append((field, self.parse_expr()))
            if self.lexer.accept_op(")"):
                break
            self.lexer.expect_op(",")
        where = None
        if self.lexer.accept_word("where"):
            where = self.parse_pred()
        return ast.Replace(var, assignments, where)

    # -- statements ----------------------------------------------------

    def parse_range_decl(self) -> ast.RangeDecl:
        self.lexer.expect_word("range")
        self.lexer.expect_word("of")
        bindings: List[Tuple[str, str]] = []
        while True:
            var = self.lexer.expect_ident().value
            self.lexer.expect_word("is")
            collection = self.lexer.expect_ident().value
            bindings.append((var, collection))
            if not self.lexer.accept_op(","):
                break
        return ast.RangeDecl(bindings)

    def parse_retrieve(self) -> ast.Retrieve:
        self.lexer.expect_word("retrieve")
        unique = bool(self.lexer.accept_word("unique"))
        value_mode = bool(self.lexer.accept_word("value"))
        self.lexer.expect_op("(")
        targets = [self.parse_target()]
        while self.lexer.accept_op(","):
            targets.append(self.parse_target())
        self.lexer.expect_op(")")
        from_clauses: List[ast.FromClause] = []
        where: Optional[ast.Pred] = None
        by: List[ast.Node] = []
        into: Optional[str] = None
        while True:
            token = self.lexer.peek()
            if token.is_word("from"):
                self.lexer.advance()
                from_clauses.extend(self._parse_from_list())
            elif token.is_word("where"):
                if where is not None:
                    raise ParseError("duplicate where clause",
                                     token.line, token.column)
                self.lexer.advance()
                where = self.parse_pred()
                where.span = (token.line, token.column)
            elif token.is_word("by"):
                self.lexer.advance()
                by.append(self.parse_expr())
                while self.lexer.accept_op(","):
                    by.append(self.parse_expr())
            elif token.is_word("into"):
                self.lexer.advance()
                into = self.lexer.expect_ident().value
            else:
                break
        return ast.Retrieve(targets, from_clauses, where, by, unique,
                            value_mode, into)

    def parse_target(self) -> ast.Target:
        # "alias = expr" — only when an IDENT is directly followed by "=",
        # and the ident isn't itself the start of a comparison (targets
        # hold value expressions, so a leading "x =" can only be an alias).
        token = self.lexer.peek()
        span = (token.line, token.column)
        if (token.kind == "IDENT"
                and self.lexer.peek(1).kind == "OP"
                and self.lexer.peek(1).value == "="):
            alias = self.lexer.advance().value
            self.lexer.advance()  # '='
            target = ast.Target(self.parse_expr(), alias=alias)
        else:
            target = ast.Target(self.parse_expr())
        target.span = span
        return target

    def _parse_from_list(self) -> List[ast.FromClause]:
        clauses: List[ast.FromClause] = []
        while True:
            token = self.lexer.peek()
            var = self.lexer.expect_ident().value
            self.lexer.expect_word("in")
            clause = ast.FromClause(var, self.parse_expr())
            clause.span = (token.line, token.column)
            clauses.append(clause)
            if not self.lexer.accept_op(","):
                break
        return clauses

    # -- predicates -----------------------------------------------------

    def parse_pred(self) -> ast.Pred:
        pred = self._parse_conj()
        while self.lexer.accept_word("or"):
            pred = ast.OrPred(pred, self._parse_conj())
        return pred

    def _parse_conj(self) -> ast.Pred:
        pred = self._parse_pred_unit()
        while self.lexer.accept_word("and"):
            pred = ast.AndPred(pred, self._parse_pred_unit())
        return pred

    def _parse_pred_unit(self) -> ast.Pred:
        if self.lexer.accept_word("not"):
            return ast.NotPred(self._parse_pred_unit())
        token = self.lexer.peek()
        if token.kind == "OP" and token.value == "(":
            # Could be "(pred)" or a parenthesized comparison operand;
            # try the predicate reading first, backtracking on failure.
            saved = self.lexer.position
            try:
                self.lexer.advance()
                inner = self.parse_pred()
                self.lexer.expect_op(")")
                return inner
            except ParseError:
                self.lexer.position = saved
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Comparison:
        left = self.parse_expr()
        token = self.lexer.peek()
        if token.is_word("in"):
            self.lexer.advance()
            return ast.Comparison(left, "in", self.parse_expr())
        if token.kind == "OP" and token.value in _COMPARATORS:
            op = self.lexer.advance().value
            return ast.Comparison(left, op, self.parse_expr())
        raise ParseError("expected a comparison operator, found %r"
                         % (token.value or "end of input"),
                         token.line, token.column)

    # -- value expressions --------------------------------------------

    def parse_expr(self) -> ast.Node:
        left = self._parse_mult()
        while True:
            token = self.lexer.peek()
            if token.kind == "OP" and token.value in ("+", "-"):
                op = self.lexer.advance().value
                left = ast.BinOp(op, left, self._parse_mult())
            else:
                return left

    def _parse_mult(self) -> ast.Node:
        left = self._parse_unary()
        while True:
            token = self.lexer.peek()
            if token.kind == "OP" and token.value in ("*", "/"):
                op = self.lexer.advance().value
                left = ast.BinOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Node:
        if self.lexer.peek().kind == "OP" and self.lexer.peek().value == "-":
            self.lexer.advance()
            return ast.FuncCall("neg", [self._parse_unary()])
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Node:
        base = self._parse_primary()
        steps: List[ast.PathStep] = []
        while True:
            if self.lexer.accept_op("."):
                name = self.lexer.expect_ident().value
                if self.lexer.peek().kind == "OP" and self.lexer.peek().value == "(":
                    steps.append(ast.CallStep(name, self._parse_args()))
                else:
                    steps.append(ast.FieldStep(name))
            elif self.lexer.peek().kind == "OP" and self.lexer.peek().value == "[":
                self.lexer.advance()
                lower = self._parse_index_bound()
                upper = None
                if self.lexer.accept_op(".."):
                    upper = self._parse_index_bound()
                self.lexer.expect_op("]")
                steps.append(ast.IndexStep(lower, upper))
            else:
                break
        if steps:
            return ast.Path(base, steps)
        return base

    def _parse_index_bound(self):
        token = self.lexer.peek()
        if token.kind == "INT":
            return int(self.lexer.advance().value)
        if token.is_word("last"):
            self.lexer.advance()
            return "last"
        raise ParseError("expected an array index or 'last', found %r"
                         % (token.value or "end of input"),
                         token.line, token.column)

    def _parse_args(self) -> List[ast.Node]:
        self.lexer.expect_op("(")
        args: List[ast.Node] = []
        if not self.lexer.accept_op(")"):
            while True:
                args.append(self.parse_expr())
                if self.lexer.accept_op(")"):
                    break
                self.lexer.expect_op(",")
        return args

    def _parse_primary(self) -> ast.Node:
        token = self.lexer.peek()
        if token.kind == "INT":
            self.lexer.advance()
            return ast.Literal(int(token.value))
        if token.kind == "FLOAT":
            self.lexer.advance()
            return ast.Literal(float(token.value))
        if token.kind == "STRING":
            self.lexer.advance()
            return ast.Literal(token.value)
        if token.is_word("true"):
            self.lexer.advance()
            return ast.Literal(True)
        if token.is_word("false"):
            self.lexer.advance()
            return ast.Literal(False)
        if token.kind == "OP" and token.value == "(":
            self.lexer.advance()
            inner = self.parse_expr()
            self.lexer.expect_op(")")
            return inner
        if token.kind == "OP" and token.value == "{":
            self.lexer.advance()
            items: List[ast.Node] = []
            if not self.lexer.accept_op("}"):
                while True:
                    items.append(self.parse_expr())
                    if self.lexer.accept_op("}"):
                        break
                    self.lexer.expect_op(",")
            return ast.SetLiteral(items)
        if token.kind == "OP" and token.value == "[":
            self.lexer.advance()
            items = []
            if not self.lexer.accept_op("]"):
                while True:
                    items.append(self.parse_expr())
                    if self.lexer.accept_op("]"):
                        break
                    self.lexer.expect_op(",")
            return ast.ArrayLiteral(items)
        if token.kind == "IDENT":
            name = self.lexer.advance().value
            lowered = name.lower()
            if (lowered in ast.AGGREGATE_NAMES
                    and self.lexer.peek().kind == "OP"
                    and self.lexer.peek().value == "("):
                return self._parse_aggregate(lowered)
            if (self.lexer.peek().kind == "OP"
                    and self.lexer.peek().value == "("):
                return ast.FuncCall(name, self._parse_args())
            return ast.Name(name)
        raise ParseError("expected an expression, found %r"
                         % (token.value or "end of input"),
                         token.line, token.column)

    def _parse_aggregate(self, func: str) -> ast.Node:
        """``agg( expr [from …] [where …] )`` — a plain call
        ``agg(expr)`` (no subquery clauses) stays an aggregate whose
        operand is evaluated directly."""
        self.lexer.expect_op("(")
        expr = self.parse_expr()
        from_clauses: List[ast.FromClause] = []
        where: Optional[ast.Pred] = None
        while True:
            token = self.lexer.peek()
            if token.is_word("from"):
                self.lexer.advance()
                from_clauses.extend(self._parse_from_list())
            elif token.is_word("where"):
                self.lexer.advance()
                where = self.parse_pred()
            else:
                break
        self.lexer.expect_op(")")
        return ast.Aggregate(func, expr, from_clauses, where)


def parse(source: str) -> List[ast.Node]:
    """Parse EXCESS DML source into statement ASTs."""
    return Parser(source).parse_statements()
