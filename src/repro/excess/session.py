"""EXCESS sessions: one entry point for DDL + DML, optionally optimized.

A :class:`Session` holds the sticky pieces of an interactive EXCESS
connection — the ``range of`` declarations and the database — and
dispatches each statement to the EXTRA DDL interpreter or the EXCESS
translator.  ``run`` parses, translates, (optionally) optimizes, and
evaluates; ``retrieve … into X`` creates named results.
"""

from __future__ import annotations

import warnings
from time import perf_counter
from typing import Any, Dict, List, Optional

from ..core.expr import Expr, evaluate
from ..core.optimizer import Optimizer
from ..options import ExecutionOptions
from ..extra.ddl import DDLInterpreter, ensure_type_system
from ..extra.types import SetType
from ..lang import Lexer
from ..obs import QueryStats, Span
from . import ast
from .builtins import register_builtins
from .parser import Parser
from .translate import TranslationError, Translator


class Result:
    """The outcome of one executed statement — the same self-describing
    shape for retrieve, append, delete, and replace, on either engine.

    * ``value`` — the raw algebra value (a MultiSet for retrieves, the
      appended multiset / changed count for updates, None for DDL);
    * ``rows()`` — the value flattened to a plain list, occurrence
      counts expanded;
    * ``stats`` — a typed :class:`~repro.obs.QueryStats` snapshot of
      this statement's work counters alone (the session calls
      ``begin_query()`` per statement, so counters never leak across
      statements); it compares equal to the raw counter dict;
    * ``trace`` — the statement's root :class:`~repro.obs.Span` when it
      ran under an enabled tracer, else None;
    * ``explain()`` — the plan (annotated with actuals when a trace was
      recorded).
    """

    def __init__(self, statement: Any, expression: Optional[Expr],
                 value: Any = None, into: Optional[str] = None,
                 stats: Optional[Dict[str, int]] = None,
                 trace: Optional[Span] = None, engine: str = "",
                 seconds: float = 0.0, analysis: Any = None):
        self.statement = statement
        self.expression = expression
        self.value = value
        self.into = into
        self.stats = (stats if isinstance(stats, QueryStats)
                      else QueryStats.from_counters(stats or {}))
        self.trace = trace
        self.engine = engine
        self.seconds = seconds
        #: The :class:`~repro.core.analysis.absint.PlanAnalysis` of the
        #: executed tree when the session ran with ``analyze``/``sanitize``
        #: on; ``explain()`` uses it to print proven ``static [lo..hi]``
        #: cardinality bounds next to the estimates.
        self.analysis = analysis

    @property
    def kind(self) -> str:
        """``retrieve`` / ``append`` / ``delete`` / ``replace`` /
        ``ddl`` / ``range``."""
        if isinstance(self.statement, str):
            return self.statement
        if isinstance(self.statement, ast.RangeDecl):
            return "range"
        return type(self.statement).__name__.lower()

    def rows(self) -> List[Any]:
        """The value as a flat list (multiset counts expanded)."""
        from ..core.values import Arr, MultiSet
        value = self.value
        if value is None:
            return []
        if isinstance(value, MultiSet):
            out: List[Any] = []
            for element, count in value.items():
                out.extend([element] * count)
            return out
        if isinstance(value, Arr):
            return list(value)
        return [value]

    def explain(self, cost_model=None) -> str:
        """The statement's plan, one operator per line.

        With a recorded trace, this is EXPLAIN ANALYZE: actual per-
        operator cardinalities and wall time, plus estimated-vs-actual
        deviation when *cost_model* is given.  Without one it falls
        back to the static plan rendering.
        """
        if self.trace is not None:
            from ..core.explain import explain_analyze
            return explain_analyze(self.trace, cost_model=cost_model,
                                   analysis=self.analysis)
        if self.expression is not None:
            from ..core.explain import explain
            return explain(self.expression, cost_model)
        return "(no plan: %s statement)" % self.kind

    def __repr__(self) -> str:
        if self.into:
            return "<Result into %s: %r>" % (self.into, self.value)
        return "<Result %r>" % (self.value,)


class Session:
    """An EXCESS session over a database.

    With ``typecheck`` enabled, every compiled retrieve is passed
    through the static schema checker before execution, so sort errors
    surface at compile time rather than mid-evaluation.
    """

    def __init__(self, database, optimizer: Optimizer = None,
                 typecheck: bool = False, engine: str = "interpreted",
                 verify: bool = False, analyze: bool = False,
                 sanitize: bool = False, _api_internal: bool = False,
                 options: Optional[ExecutionOptions] = None):
        if not _api_internal:
            warnings.warn(
                "constructing Session(...) directly is deprecated; use "
                "repro.connect(database, engine=...) and the returned "
                "Connection (its .session exposes this object)",
                DeprecationWarning, stacklevel=2)
        if options is None:
            options = ExecutionOptions(engine=engine, verify=verify,
                                       typecheck=typecheck,
                                       analyze=analyze, sanitize=sanitize)
        self.db = database
        ensure_type_system(database)
        register_builtins(database)
        self.ranges: Dict[str, str] = {}
        self.optimizer = optimizer
        # The execution switches live as plain attributes (the CLI's
        # ``.engine`` meta-command and Connection's per-statement
        # override mutate them); ``apply_options`` sets the whole set
        # at once, the ``options`` property snapshots them back.
        self.apply_options(options)
        # One evaluation context for the whole session: the deref cache
        # and stats live here, reset per statement via begin_query().
        self.context = database.context()
        self.ddl = DDLInterpreter(database,
                                  function_translator=self._translate_function)

    # -- execution options --------------------------------------------------

    def apply_options(self, options: ExecutionOptions) -> None:
        """Set every execution switch from *options* at once.

        ``engine`` picks the evaluator; ``verify`` runs the
        inheritance-aware inference gate before execution (the compiled
        engines receive duplicate-freedom facts as optimization
        licenses); ``analyze`` runs the abstract interpreter
        (:mod:`repro.core.analysis.absint`) over every optimized plan
        (statically-empty subplans pruned, proven bounds clamp the cost
        model, bounds-elision licenses); ``sanitize`` implies
        ``analyze`` but flips the facts into runtime assertions, raising
        SanitizerError on the first violation; ``batch_size`` /
        ``parallel`` / ``access_paths`` shape the batched and compiled
        physical plans (see :class:`repro.options.ExecutionOptions`).
        """
        self.engine = options.engine
        self.verify = options.verify
        self.typecheck = options.typecheck
        self.analyze = options.analyze
        self.sanitize = options.sanitize
        self.batch_size = options.batch_size
        self.parallel = options.parallel
        self.access_paths = options.access_paths
        self.readers = options.readers

    @property
    def options(self) -> ExecutionOptions:
        """The current switches as one immutable snapshot (``trace``
        reflects the attached tracer, which lives on the context)."""
        tracer = getattr(self.context, "tracer", None) \
            if hasattr(self, "context") else None
        return ExecutionOptions(
            engine=self.engine, verify=self.verify,
            typecheck=self.typecheck, analyze=self.analyze,
            sanitize=self.sanitize,
            trace=bool(tracer is not None and tracer.enabled),
            batch_size=self.batch_size,
            # A live session may have been switched off the batched
            # engine (CLI ``.engine``) with a parallel degree still
            # set; the snapshot drops it rather than failing validation.
            parallel=self.parallel if self.engine == "batched" else 0,
            access_paths=self.access_paths,
            readers=self.readers)

    # -- translation --------------------------------------------------------

    def translator(self) -> Translator:
        return Translator(self.db, self.ranges)

    def _translate_function(self, definition) -> None:
        self.translator().translate_function(definition)

    def translate(self, statement: ast.Retrieve) -> Expr:
        """EXCESS retrieve AST → algebra tree (no execution)."""
        expr, _ = self.translator().translate_retrieve(statement)
        return expr

    def compile(self, source: str) -> Expr:
        """Source of a single retrieve statement → algebra tree."""
        statements = Parser(source).parse_statements()
        retrieves = [s for s in statements if isinstance(s, ast.Retrieve)]
        if len(retrieves) != 1:
            raise TranslationError(
                "compile() expects exactly one retrieve statement")
        for statement in statements:
            if isinstance(statement, ast.RangeDecl):
                for var, collection in statement.bindings:
                    self.ranges[var] = collection
        return self.translate(retrieves[0])

    # -- execution --------------------------------------------------------

    def _tracer(self):
        """The context's tracer when tracing is on, else None (so every
        hook below is one attribute check per statement)."""
        tracer = getattr(self.context, "tracer", None)
        if tracer is None or not tracer.enabled:
            return None
        return tracer

    def _run_traced(self, kind: str, runner, statement) -> Result:
        """Run one DML statement under a statement span + wall clock.

        The tracer's root span is opened before the runner so the
        engines' plan/operator spans nest under it; the finished tree
        lands on ``Result.trace``.
        """
        tracer = self._tracer()
        if tracer is not None:
            tracer.begin(kind, kind="statement")
        started = perf_counter()
        try:
            result = runner(statement)
        finally:
            elapsed = perf_counter() - started
            root = tracer.end() if tracer is not None else None
        result.seconds = elapsed
        result.engine = self.engine
        if root is not None:
            from ..core.values import MultiSet
            root.calls = 1
            root.wall = elapsed
            root.rows_out = 1 if result.value is not None else 0
            if isinstance(result.value, MultiSet):
                root.card_out = len(result.value)
            result.trace = root
        return result

    def run(self, source: str, optimize: bool = False) -> List[Result]:
        """Execute a mixed DDL/DML script; returns one Result per statement."""
        results: List[Result] = []
        lexer = Lexer(source)
        while not lexer.at_end():
            token = lexer.peek()
            if token.is_word("define", "create"):
                self.ddl.run_statement(lexer)
                results.append(Result("ddl", None, engine=self.engine))
                continue
            parser = Parser.__new__(Parser)
            parser.lexer = lexer
            statement = parser.parse_statement()
            if isinstance(statement, ast.RangeDecl):
                for var, collection in statement.bindings:
                    if collection not in self.db:
                        raise TranslationError(
                            "range over unknown object %r" % collection)
                    self.ranges[var] = collection
                results.append(Result(statement, None, engine=self.engine))
                continue
            if isinstance(statement, ast.Append):
                results.append(self._run_traced(
                    "append",
                    lambda s: self._run_update(self._run_append, s),
                    statement))
                continue
            if isinstance(statement, ast.Delete):
                results.append(self._run_traced(
                    "delete",
                    lambda s: self._run_update(self._run_delete, s),
                    statement))
                continue
            if isinstance(statement, ast.Replace):
                results.append(self._run_traced(
                    "replace",
                    lambda s: self._run_update(self._run_replace, s),
                    statement))
                continue
            results.append(self._run_traced(
                "retrieve",
                lambda s: self._run_retrieve(s, optimize),
                statement))
        return results

    # -- transactions -------------------------------------------------------

    def begin(self) -> int:
        """Begin an explicit transaction (statements batch until commit
        or abort; a manager is attached to the database on first use)."""
        return self.db.begin()

    def commit(self) -> None:
        self.db.commit()

    def abort(self) -> None:
        self.db.abort()

    def savepoint(self, name: Optional[str] = None) -> str:
        return self.db.transactions().savepoint(name)

    def rollback_to(self, name: str) -> None:
        self.db.transactions().rollback_to(name)

    def snapshot(self):
        """A stable read view of the committed database (see
        :meth:`repro.storage.txn.TransactionManager.snapshot`)."""
        return self.db.transactions().snapshot()

    def _run_update(self, runner, statement) -> Result:
        """Run one update statement, wrapped in an implicit transaction
        when a manager is attached and no explicit one is open — so a
        multi-object statement (replace over a whole extent, say)
        commits as one WAL group instead of per-element autocommits,
        and a mid-statement error rolls the statement back whole."""
        manager = self.db.txn
        if manager is None or manager.active is not None:
            return runner(statement)
        manager.begin()
        try:
            result = runner(statement)
        except BaseException:
            manager.abort()
            raise
        manager.commit()
        return result

    # -- update statements -------------------------------------------------

    def _run_append(self, statement: ast.Append) -> Result:
        """append to C (…): evaluate like a retrieve, ⊎ into C.

        When C is declared ``{ ref T }`` and the computed elements are
        plain structures, they are inserted into the store first and
        their fresh references appended — the EXCESS way to create
        objects with identity.
        """
        from ..core.values import MultiSet, Ref, Tup
        from ..extra.types import RefType, SetType
        collection = statement.collection
        existing = self.db.get(collection)
        if not isinstance(existing, MultiSet):
            raise TranslationError(
                "append target %r is not a multiset" % collection)
        retrieve = ast.Retrieve(statement.targets, statement.from_clauses,
                                statement.where,
                                value_mode=statement.value_mode)
        expr, _ = self.translator().translate_retrieve(retrieve)
        self.context.begin_query()
        value = evaluate(expr, self.context, mode=self.engine,
                         cost_model=(self.optimizer.cost_model
                                     if self.optimizer is not None else None),
                         access_paths=self.access_paths,
                         batch_size=self.batch_size, parallel=self.parallel)
        addition = value if isinstance(value, MultiSet) else MultiSet([value])

        declared = getattr(self.db, "created_types", {}).get(collection)
        if (isinstance(declared, SetType)
                and isinstance(declared.element, RefType)):
            target_type = declared.element.target
            converted = []
            for element in addition:
                if isinstance(element, Ref):
                    converted.append(element)
                else:
                    exact = (element.type_name if isinstance(element, Tup)
                             and element.type_name else target_type)
                    converted.append(self.db.store.insert(element, exact))
            addition = MultiSet(converted)
        self.db.create(collection, existing.add_union(addition))
        return Result(statement, expr, addition, collection,
                      stats=self.context.stats)

    def _element_filter(self, var: str, collection: str,
                        where: Optional[ast.Pred]):
        """A per-element qualification test compiled through the
        translator (so paths, implicit set-variables, and methods all
        work inside update predicates)."""
        from ..core.values import DNE, MultiSet, Ref
        from ..extra.types import NamedType, RefType
        from .translate import Scope, _QueryState

        translator = self.translator()
        elem_type = translator.collection_elem_type(collection)
        if isinstance(elem_type, RefType):
            elem_type = NamedType(elem_type.target)
        scope = Scope(bare=var, types={var: elem_type})
        stmt = ast.Retrieve([ast.Target(ast.Name(var))], (), where,
                            value_mode=True)
        expr, _ = _QueryState(translator, stmt, scope).build()
        # Evaluate predicates in the session context so their work
        # lands in this statement's counters (begin_query() has reset
        # them by the time the closures run).
        ctx = self.context

        def view(element):
            if isinstance(element, Ref):
                return self.db.store.get(element.oid, default=DNE)
            return element

        def qualifies(element) -> bool:
            if where is None:
                return True
            result = expr.evaluate(view(element), ctx)
            if result is DNE:
                return False
            if isinstance(result, MultiSet):
                return len(result) > 0
            return True

        return view, qualifies

    def _collection_for_var(self, var: str) -> str:
        if var in self.ranges:
            return self.ranges[var]
        if var in self.db:
            return var
        raise TranslationError(
            "%r is neither a range variable nor a named object" % var)

    def _run_delete(self, statement: ast.Delete) -> Result:
        from ..core.values import MultiSet
        collection = self._collection_for_var(statement.var)
        existing = self.db.get(collection)
        if not isinstance(existing, MultiSet):
            raise TranslationError(
                "delete target %r is not a multiset" % collection)
        _, qualifies = self._element_filter(statement.var, collection,
                                            statement.where)
        self.context.begin_query()
        kept = {element: count
                for element, count in existing.items()
                if not qualifies(element)}
        removed = len(existing) - sum(kept.values())
        self.db.create(collection, MultiSet(counts=kept))
        return Result(statement, None, removed, collection,
                      stats=self.context.stats)

    def _run_replace(self, statement: ast.Replace) -> Result:
        """replace V (f = e, …) [where P].

        Reference collections update the referenced objects in place —
        identity preserved, so every other reference observes the new
        value; value collections get their occurrences replaced.
        """
        from ..core.values import MultiSet, Ref, Tup
        collection = self._collection_for_var(statement.var)
        existing = self.db.get(collection)
        if not isinstance(existing, MultiSet):
            raise TranslationError(
                "replace target %r is not a multiset" % collection)
        view, qualifies = self._element_filter(statement.var, collection,
                                               statement.where)
        translator = self.translator()
        from ..extra.types import NamedType, RefType
        from .translate import Scope, _QueryState
        elem_type = translator.collection_elem_type(collection)
        if isinstance(elem_type, RefType):
            elem_type = NamedType(elem_type.target)
        scope = Scope(bare=statement.var, types={statement.var: elem_type})
        compiled = []
        for field, value_ast in statement.assignments:
            stmt = ast.Retrieve([ast.Target(value_ast)], (), None,
                                value_mode=True)
            expr, _ = _QueryState(translator, stmt, scope).build()
            compiled.append((field, expr))
        ctx = self.context
        self.context.begin_query()
        changed = 0
        out = {}
        for element, count in existing.items():
            if not qualifies(element):
                out[element] = out.get(element, 0) + count
                continue
            old = view(element)
            if not isinstance(old, Tup):
                raise TranslationError(
                    "replace needs tuple-valued elements, got %r" % (old,))
            updates = {field: expr.evaluate(old, ctx)
                       for field, expr in compiled}
            new_value = old.replace(**updates)
            changed += count
            if isinstance(element, Ref):
                self.db.store.update(element.oid, new_value)
                out[element] = out.get(element, 0) + count
            else:
                out[new_value] = out.get(new_value, 0) + count
        self.db.create(collection, MultiSet(counts=out))
        return Result(statement, None, changed, collection,
                      stats=self.context.stats)

    def _verify_plan(self, expr: Expr):
        """Run the analysis layer's inference over *expr* (raising on
        sort errors) and return the plan facts the compiled engine may
        consume as optimization licenses."""
        from ..core.analysis import facts_for_database, inference_for_database
        inference_for_database(self.db).check(expr)
        if self.engine == "compiled":
            return facts_for_database(self.db)
        return None

    def _optimize(self, expr: Expr) -> Expr:
        """Run the optimizer, recording an ``optimize`` span with one
        child span per transformation rule (matcher calls, fires, and
        time) when tracing is on."""
        tracer = self._tracer()
        if tracer is None:
            return self.optimizer.optimize(expr).best
        span = tracer.start_span("optimize", kind="rule")
        previous = getattr(self.optimizer, "collect_rule_stats", False)
        self.optimizer.collect_rule_stats = True
        started = perf_counter()
        try:
            outcome = self.optimizer.optimize(expr)
        finally:
            self.optimizer.collect_rule_stats = previous
            span.calls = 1
            span.wall = perf_counter() - started
            tracer.finish(span)
        span.meta["explored"] = outcome.explored
        span.meta["steps"] = list(outcome.steps)
        from ..obs.metrics import REWRITE_FIRES_TOTAL, REWRITE_SECONDS_TOTAL
        for name, row in sorted((outcome.rule_stats or {}).items()):
            child = span.child(name, kind="rule")
            child.calls = row["calls"]
            child.wall = row["seconds"]
            child.meta["fires"] = row["fires"]
            if row["fires"]:
                REWRITE_FIRES_TOTAL.inc(row["fires"], rule=name)
            REWRITE_SECONDS_TOTAL.inc(row["seconds"], rule=name)
        return outcome.best

    def _analyze_plan(self, expr: Expr):
        """Abstract-interpret *expr* and fold the proofs back into the
        plan: statically-empty subtrees are replaced by literal empty
        collections (never under the sanitizer, whose whole point is to
        execute and check the original operators), and the returned
        analysis is re-run whenever pruning produced a new tree so its
        id-keyed facts match the nodes actually executed."""
        from ..core.analysis.absint import analyze
        statistics = (self.optimizer.cost_model.stats
                      if self.optimizer is not None else None)
        analysis = analyze(expr, database=self.db, statistics=statistics)
        if not self.sanitize:
            from ..core.optimizer import prune_statically_empty
            pruned = prune_statically_empty(expr, analysis)
            if pruned is not expr:
                expr = pruned
                analysis = analyze(expr, database=self.db,
                                   statistics=statistics)
        return expr, analysis

    def _run_retrieve(self, statement: ast.Retrieve,
                      optimize: bool) -> Result:
        expr, result_type = self.translator().translate_retrieve(statement)
        if self.typecheck:
            from ..core.typecheck import checker_for_database
            checker_for_database(self.db).check(expr)
        if optimize and self.optimizer is not None:
            expr = self._optimize(expr)
        analysis = None
        if self.analyze:
            expr, analysis = self._analyze_plan(expr)
        facts = self._verify_plan(expr) if self.verify else None
        self.context.begin_query()
        cost_model = (self.optimizer.cost_model
                      if self.optimizer is not None else None)
        saved_bounds = None
        if analysis is not None and cost_model is not None:
            saved_bounds = cost_model.bounds
            cost_model.bounds = analysis.bounds_map()
        try:
            value = evaluate(expr, self.context, mode=self.engine,
                             facts=facts, cost_model=cost_model,
                             analysis=analysis, sanitize=self.sanitize,
                             access_paths=self.access_paths,
                             batch_size=self.batch_size,
                             parallel=self.parallel)
        finally:
            if analysis is not None and cost_model is not None:
                cost_model.bounds = saved_bounds
        if statement.into:
            self.db.create(statement.into, value)
            if result_type is not None:
                self.db.created_types[statement.into] = result_type
        return Result(statement, expr, value, statement.into,
                      stats=self.context.stats, analysis=analysis)

    def query(self, source: str, optimize: bool = False) -> Any:
        """Deprecated: run a script and return the last statement's value.

        Use :meth:`repro.Connection.execute` (whose Result carries the
        value plus rows/stats/trace) instead."""
        warnings.warn(
            "Session.query(...) is deprecated; use "
            "repro.connect(...).execute(source).value",
            DeprecationWarning, stacklevel=2)
        return self._last_value(source, optimize=optimize)

    def _last_value(self, source: str, optimize: bool = False) -> Any:
        results = self.run(source, optimize=optimize)
        for result in reversed(results):
            if result.expression is not None:
                return result.value
        return None


def run(database, source: str, optimize: bool = False,
        engine: str = "interpreted") -> Any:
    """Deprecated one-shot convenience: execute *source*, return the
    last value.  Use ``repro.connect(database).execute(source)``."""
    warnings.warn(
        "repro.excess.run(database, source) is deprecated; use "
        "repro.connect(database, engine=...).execute(source)",
        DeprecationWarning, stacklevel=2)
    session = Session(database, engine=engine, _api_internal=True)
    return session._last_value(source, optimize=optimize)
