"""The EXCESS query language (Section 2.2) and its algebra bridge.

* :mod:`repro.excess.parser` — QUEL-style surface syntax;
* :mod:`repro.excess.translate` — EXCESS → algebra (theorem, part i);
* :mod:`repro.excess.printer` — algebra → EXCESS (theorem, part ii);
* :mod:`repro.excess.session` — execution sessions mixing DDL and DML.
"""

from .builtins import BUILTINS, register_builtins
from .parser import Parser, parse
from .session import Result, Session, run
from .translate import TranslationError, Translator

__all__ = ["Parser", "parse", "Session", "Result", "run",
           "Translator", "TranslationError", "BUILTINS",
           "register_builtins"]
