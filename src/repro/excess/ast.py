"""Abstract syntax for EXCESS DML statements.

The EXCESS of Section 2.2 is QUEL-derived: ``range of`` declarations,
``retrieve`` statements with target lists, ``from`` bindings, ``where``
predicates, ``by`` grouping, ``unique`` duplicate elimination, nested
aggregates, path expressions with implicit dereferencing, and array
indexing.  These classes are the parser's output and the translator's
input.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple


class Node:
    """Base AST node with structural equality for tests.

    ``span`` — a ``(line, column)`` pair recorded by the parser —
    rides along outside ``_fields`` so it never disturbs structural
    equality; the translator forwards it to the analysis layer's
    source map for diagnostics.
    """

    _fields: Tuple[str, ...] = ()
    span: Optional[Tuple[int, int]] = None

    def _values(self):
        return tuple(getattr(self, f) for f in self._fields)

    def __eq__(self, other):
        return type(self) is type(other) and self._values() == other._values()

    def __hash__(self):
        return hash((type(self).__name__, repr(self._values())))

    def __repr__(self):
        inner = ", ".join(repr(v) for v in self._values())
        return "%s(%s)" % (type(self).__name__, inner)


# -- value expressions -------------------------------------------------

class Literal(Node):
    """A scalar literal: integer, float, string, or boolean."""

    _fields = ("value",)

    def __init__(self, value: Any):
        self.value = value


class Name(Node):
    """A bare identifier: range variable, parameter, or named object."""

    _fields = ("name",)

    def __init__(self, name: str):
        self.name = name


class PathStep(Node):
    """One step of a path: field access, method call, or indexing."""


class FieldStep(PathStep):
    """``.field`` — attribute access (dereferencing refs implicitly)."""

    _fields = ("name",)

    def __init__(self, name: str):
        self.name = name


class CallStep(PathStep):
    """``.method(args…)`` — method invocation on the current value."""

    _fields = ("name", "args")

    def __init__(self, name: str, args: Sequence["Node"]):
        self.name = name
        self.args = tuple(args)


class IndexStep(PathStep):
    """``[i]`` or ``[i..j]`` — array extraction or subarray."""

    _fields = ("lower", "upper")

    def __init__(self, lower, upper=None):
        self.lower = lower
        self.upper = upper  # None = single-element extraction

    @property
    def is_slice(self) -> bool:
        return self.upper is not None


class Path(Node):
    """A base expression followed by steps: ``E.dept.floor``, ``TopTen[5].name``."""

    _fields = ("base", "steps")

    def __init__(self, base: Node, steps: Sequence[PathStep]):
        self.base = base
        self.steps = tuple(steps)


class FuncCall(Node):
    """``f(a, b, …)`` — scalar/builtin function application."""

    _fields = ("name", "args")

    def __init__(self, name: str, args: Sequence[Node]):
        self.name = name
        self.args = tuple(args)


class BinOp(Node):
    """Arithmetic or collection operator: + - * / (typed at translation)."""

    _fields = ("op", "left", "right")

    def __init__(self, op: str, left: Node, right: Node):
        self.op = op
        self.left = left
        self.right = right


class SetLiteral(Node):
    """``{ e1, e2, … }`` — multiset constructor in a target/expression."""

    _fields = ("items",)

    def __init__(self, items: Sequence[Node]):
        self.items = tuple(items)


class ArrayLiteral(Node):
    """``[ e1, e2, … ]`` — array constructor."""

    _fields = ("items",)

    def __init__(self, items: Sequence[Node]):
        self.items = tuple(items)


class Aggregate(Node):
    """``min(expr from v in dom where …)`` — an aggregate over a
    (possibly correlated) subquery (Section 2.2's second example)."""

    _fields = ("func", "expr", "from_clauses", "where")

    def __init__(self, func: str, expr: Node,
                 from_clauses: Sequence["FromClause"] = (),
                 where: Optional["Pred"] = None):
        self.func = func
        self.expr = expr
        self.from_clauses = tuple(from_clauses)
        self.where = where


#: Names recognised as aggregate functions.
AGGREGATE_NAMES = ("min", "max", "count", "sum", "avg")


# -- predicates --------------------------------------------------------

class Pred(Node):
    """Base class for where-clause predicates."""


class Comparison(Pred):
    """``left <op> right`` with op in =, !=, <, <=, >, >=, in."""

    _fields = ("left", "op", "right")

    def __init__(self, left: Node, op: str, right: Node):
        self.left = left
        self.op = op
        self.right = right


class AndPred(Pred):
    _fields = ("left", "right")

    def __init__(self, left: Pred, right: Pred):
        self.left = left
        self.right = right


class OrPred(Pred):
    _fields = ("left", "right")

    def __init__(self, left: Pred, right: Pred):
        self.left = left
        self.right = right


class NotPred(Pred):
    _fields = ("inner",)

    def __init__(self, inner: Pred):
        self.inner = inner


# -- statements --------------------------------------------------------

class FromClause(Node):
    """``var in domain`` — a local iteration binding."""

    _fields = ("var", "domain")

    def __init__(self, var: str, domain: Node):
        self.var = var
        self.domain = domain


class Target(Node):
    """One element of the retrieval list, optionally aliased."""

    _fields = ("alias", "expr")

    def __init__(self, expr: Node, alias: Optional[str] = None):
        self.alias = alias
        self.expr = expr


class RangeDecl(Node):
    """``range of E is Employees`` (possibly several pairs)."""

    _fields = ("bindings",)

    def __init__(self, bindings: Sequence[Tuple[str, str]]):
        self.bindings = tuple(bindings)


class Append(Node):
    """``append to Name (targets…) [from …] [where …]``.

    Evaluates like a retrieve and ⊎'s the result into the named
    multiset (QUEL heritage; Section 2.2's "facilities for … updating
    complex structures").
    """

    _fields = ("collection", "targets", "from_clauses", "where",
               "value_mode")

    def __init__(self, collection: str, targets: Sequence["Target"],
                 from_clauses: Sequence[FromClause] = (),
                 where: Optional[Pred] = None, value_mode: bool = False):
        self.collection = collection
        self.targets = tuple(targets)
        self.from_clauses = tuple(from_clauses)
        self.where = where
        self.value_mode = value_mode


class Delete(Node):
    """``delete V [where pred]`` — V ranges over a named multiset;
    qualifying occurrences are removed from the collection."""

    _fields = ("var", "where")

    def __init__(self, var: str, where: Optional[Pred] = None):
        self.var = var
        self.where = where


class Replace(Node):
    """``replace V (field = expr, …) [where pred]``.

    For collections of references the *referenced objects* are updated
    in place — identity is preserved, so every other reference sees the
    change; for value collections the occurrences are replaced.
    """

    _fields = ("var", "assignments", "where")

    def __init__(self, var: str, assignments: Sequence[Tuple[str, Node]],
                 where: Optional[Pred] = None):
        self.var = var
        self.assignments = tuple(assignments)
        self.where = where


class Retrieve(Node):
    """A ``retrieve`` statement.

    ``value_mode`` is a documented extension used by the equipollence
    printer: ``retrieve value (expr) …`` yields the bare expression
    value (per binding when iterating) instead of wrapping results in
    1-tuples.
    """

    _fields = ("targets", "from_clauses", "where", "by", "unique",
               "value_mode", "into")

    def __init__(self, targets: Sequence[Target],
                 from_clauses: Sequence[FromClause] = (),
                 where: Optional[Pred] = None,
                 by: Sequence[Node] = (),
                 unique: bool = False,
                 value_mode: bool = False,
                 into: Optional[str] = None):
        self.targets = tuple(targets)
        self.from_clauses = tuple(from_clauses)
        self.where = where
        self.by = tuple(by)
        self.unique = unique
        self.value_mode = value_mode
        self.into = into
