"""Translation of EXCESS statements into algebra trees.

This is the constructive content of the equipollence theorem's first
half (Section 3.4): an algorithm mapping any EXCESS query to an
algebraic query tree.  It works the way the paper describes — "like one
of the methods for translating a QUEL-like relational query into
relational algebra: everything in the retrieval list is combined using
either joins or cross-products, then the criteria of the where clause
are applied, then the actual information desired is projected" — with
the complications the paper flags: retrieval-list elements are built
from SET_APPLY, TUP_EXTRACT, DEREF, and ARR_EXTRACT chains rather than
bare attributes.

Key mechanisms:

* **Environment tuples.**  Each iteration variable becomes a field of an
  *environment tuple*; the variable set is combined by nesting, per
  variable, the pattern ``SET_COLLAPSE(SET_APPLY_{…SET(INPUT) ×
  domain…})`` so later domains may depend on earlier variables
  (correlated ``from`` clauses and the correlated aggregate of Section
  2.2's second example).  A query with a single variable skips the
  tuple and binds the element itself (producing exactly the
  Figure-4-shaped chains).
* **Implicit variables.**  QUEL heritage: a set-valued *named object*
  used with a path (``Employees.city``) ranges implicitly, and a
  set-valued attribute path with further steps (``this.kids.name``)
  introduces one implicit variable per distinct prefix, so two mentions
  of ``this.kids`` correlate — exactly what the get_ssnum method of
  Section 4 needs.
* **Implicit dereferencing.**  A path step through a ``ref`` attribute
  inserts DEREF (``E.dept.floor``); range variables over sets of
  references are dereferenced on entry, matching the "initial
  dereferencing of Students and Employees" the paper's example trees
  start with.
* **Typed translation.**  The EXTRA type system drives all of the
  above; where types are unknown the translator falls back to
  polymorphic builtins (plus/minus) and untyped extraction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.expr import Const, Expr, Input, Named
from ..core.methods import MethodCall, Param
from ..core.operators import (DE, AddUnion, ArrCat, ArrCollapse, ArrCreate,
                              ArrCross, ArrDE, ArrDiff, ArrExtract, Comp,
                              Cross, Deref, Diff, Grp, RefOp, SetApply,
                              SetCollapse, SetCreate, SubArr, TupCat,
                              TupCreate, TupExtract)
from ..core.predicates import And, Atom, Not, Or, Predicate
from ..core.values import Arr, MultiSet, Tup
from ..core.expr import Func
from ..extra.ddl import ensure_type_system
from ..extra.types import (ArrayType, NamedType, RefType, ScalarType,
                           SetType, TupleTypeExpr, TypeExpr)
from . import ast


class TranslationError(ValueError):
    """The statement cannot be translated (unknown name, bad path, …)."""


#: Function names the translator maps straight to algebra operators,
#: giving EXCESS syntactic reach over every primitive (used by the
#: algebra→EXCESS printer for the reverse half of the theorem).
_OPERATOR_FUNCS: Dict[str, Callable] = {
    "addunion": lambda a, b: AddUnion(a, b),
    "diff": lambda a, b: Diff(a, b),
    "cross": lambda a, b: Cross(a, b),
    "de": lambda a: DE(a),
    "collapse": lambda a: SetCollapse(a),
    "setof": lambda a: SetCreate(a),
    "arr": lambda a: ArrCreate(a),
    "arrcat": lambda a, b: ArrCat(a, b),
    "arrcollapse": lambda a: ArrCollapse(a),
    "arrde": lambda a: ArrDE(a),
    "arrdiff": lambda a, b: ArrDiff(a, b),
    "arrcross": lambda a, b: ArrCross(a, b),
    "deref": lambda a: Deref(a),
    "mkref": lambda a: RefOp(a),
    "tupcat": lambda a, b: TupCat(a, b),
}


class VarSpec:
    """One iteration variable: how to build its domain, and its type."""

    def __init__(self, name: str, key: Any, domain_ast: Optional[ast.Node],
                 collection_name: Optional[str], elem_type: Optional[TypeExpr],
                 deref: bool):
        self.name = name
        self.key = key
        self.domain_ast = domain_ast          # from/implicit-path domains
        self.collection_name = collection_name  # range/named-object domains
        self.elem_type = elem_type
        self.deref = deref
        self.span = None  # parser (line, column), when known


class Scope:
    """Variable bindings available while compiling an expression."""

    def __init__(self, variables: Sequence[str] = (), bare: Optional[str] = None,
                 types: Dict[str, Optional[TypeExpr]] = None,
                 params: Dict[str, Optional[TypeExpr]] = None):
        self.variables = list(variables)
        self.bare = bare
        self.types = dict(types or {})
        self.params = dict(params or {})

    def has_var(self, name: str) -> bool:
        return name == self.bare or name in self.variables

    def access(self, name: str) -> Expr:
        if name == self.bare:
            return Input()
        if name in self.variables:
            return TupExtract(name, Input())
        raise TranslationError("variable %r is not in scope" % name)

    def var_type(self, name: str) -> Optional[TypeExpr]:
        return self.types.get(name)

    def extended(self, name: str, elem_type: Optional[TypeExpr]) -> "Scope":
        scope = Scope(self.variables, self.bare, self.types, self.params)
        scope.variables.append(name)
        scope.types[name] = elem_type
        return scope

    def all_var_names(self) -> List[str]:
        names = list(self.variables)
        if self.bare:
            names.append(self.bare)
        return names


class Translator:
    """Translates parsed EXCESS statements against a database."""

    def __init__(self, database, ranges: Dict[str, str] = None):
        self.db = database
        self.types = ensure_type_system(database)
        self.ranges = dict(ranges or {})
        if not hasattr(database, "method_signatures"):
            database.method_signatures = {}
        self._counter = 0
        # expr → source position, fed by the parser's (line, column)
        # annotations; the plan linter uses it to point findings back
        # at the query text.
        from ..core.analysis.diagnostics import SourceMap
        self.source_map = SourceMap()

    def record_span(self, expr: Optional[Expr],
                    span: Optional[Tuple[int, int]]) -> None:
        """Attach a parser span to a translated expression (and its
        span-less sub-expressions)."""
        if expr is None or span is None:
            return
        from ..core.analysis.diagnostics import Span
        self.source_map.record(expr, Span(span[0], span[1]))

    # ------------------------------------------------------------------
    # Collection typing helpers
    # ------------------------------------------------------------------

    def _created_type(self, name: str) -> Optional[TypeExpr]:
        return getattr(self.db, "created_types", {}).get(name)

    def collection_elem_type(self, name: str) -> Optional[TypeExpr]:
        declared = self._created_type(name)
        if isinstance(declared, (SetType, ArrayType)):
            return declared.element
        if declared is None and name in self.db:
            value = self.db.get(name)
            if isinstance(value, MultiSet):
                for element in value.elements():
                    if isinstance(element, Tup) and element.type_name:
                        return NamedType(element.type_name)
                    break
        return None

    def _is_set_object(self, name: str) -> bool:
        declared = self._created_type(name)
        if isinstance(declared, SetType):
            return True
        return name in self.db and isinstance(self.db.get(name), MultiSet)

    def _fresh(self, hint: str) -> str:
        self._counter += 1
        return "_%s%d" % (hint, self._counter)

    # ------------------------------------------------------------------
    # Statement translation
    # ------------------------------------------------------------------

    def translate_retrieve(self, stmt: ast.Retrieve,
                           outer: Optional[Scope] = None
                           ) -> Tuple[Expr, Optional[TypeExpr]]:
        """Translate a retrieve statement to one algebra expression.

        Returns (expression, best-effort result type).  *outer* carries
        enclosing bindings (a method's ``this`` or an aggregate's outer
        environment).
        """
        state = _QueryState(self, stmt, outer)
        return state.build()

    def translate_function(self, definition) -> None:
        """Translate a ``define T function f`` body and register it."""
        from .parser import parse
        statements = parse(definition.body_text)
        if len(statements) != 1 or not isinstance(statements[0], ast.Retrieve):
            raise TranslationError(
                "function body must be a single retrieve statement")
        this_type = NamedType(definition.type_name)
        scope = Scope(bare="this", types={"this": this_type},
                      params={name: t for name, t in definition.params})
        body, _ = self.translate_retrieve(statements[0], outer=scope)
        self.db.methods.define(definition.type_name, definition.name,
                               [name for name, _ in definition.params], body)
        self.db.method_signatures[(definition.type_name, definition.name)] = (
            tuple(definition.params), definition.returns)

    # ------------------------------------------------------------------
    # Expression compilation (shared with _QueryState)
    # ------------------------------------------------------------------

    def method_return_type(self, type_name: Optional[str],
                           method: str) -> Optional[TypeExpr]:
        if type_name is None:
            return None
        hierarchy = self.db.hierarchy
        if type_name not in hierarchy:
            return None
        for candidate in hierarchy.linearize(type_name):
            signature = self.db.method_signatures.get((candidate, method))
            if signature is not None:
                return signature[1]
        return None

    def has_method(self, type_name: Optional[str], method: str) -> bool:
        if type_name is None or self.db.methods is None:
            return False
        hierarchy = self.db.hierarchy
        if type_name not in hierarchy:
            return False
        try:
            self.db.methods.resolve(type_name, method)
            return True
        except Exception:
            return False


class _QueryState:
    """Per-retrieve translation state: variables, discovery, assembly."""

    def __init__(self, translator: Translator, stmt: ast.Retrieve,
                 outer: Optional[Scope]):
        self.t = translator
        self.stmt = stmt
        self.outer = outer
        self.specs: List[VarSpec] = []
        self.spec_by_key: Dict[Any, VarSpec] = {}

    # -- variable registration -------------------------------------------

    def _register(self, key: Any, make: Callable[[], VarSpec]) -> VarSpec:
        if key not in self.spec_by_key:
            spec = make()
            self.spec_by_key[key] = spec
            self.specs.append(spec)
        return self.spec_by_key[key]

    def _register_from_var(self, clause: ast.FromClause,
                           scope: Scope) -> VarSpec:
        def make():
            _, domain_type = self._compile(clause.domain, scope,
                                           discover=True)
            elem, deref = _element_of(domain_type)
            spec = VarSpec(clause.var, ("from", clause.var), clause.domain,
                           None, elem, deref)
            spec.span = clause.span
            return spec
        return self._register(("from", clause.var), make)

    def _register_range_var(self, var: str, collection: str) -> VarSpec:
        def make():
            elem_type = self.t.collection_elem_type(collection)
            elem, deref = _element_of(
                SetType(elem_type) if elem_type is not None else None)
            return VarSpec(var, ("range", var), None, collection, elem, deref)
        return self._register(("range", var), make)

    def _register_path_var(self, prefix: ast.Node, scope: Scope,
                           set_type: Optional[SetType]) -> VarSpec:
        def make():
            elem, deref = _element_of(set_type)
            return VarSpec(self.t._fresh("it"), ("path", prefix), prefix,
                           None, elem, deref)
        return self._register(("path", prefix), make)

    # -- main assembly ---------------------------------------------------

    def build(self) -> Tuple[Expr, Optional[TypeExpr]]:
        stmt = self.stmt
        # Discovery pass: register every variable the statement uses.
        discovery_scope = self._scope_for_discovery()
        for clause in stmt.from_clauses:
            self._register_from_var(clause, discovery_scope)
            discovery_scope = discovery_scope.extended(
                clause.var, self.spec_by_key[("from", clause.var)].elem_type)
        for target in stmt.targets:
            self._compile(target.expr, discovery_scope, discover=True)
        for key_expr in stmt.by:
            self._compile(key_expr, discovery_scope, discover=True)
        if stmt.where is not None:
            self._compile_pred(stmt.where, discovery_scope, discover=True)

        self._order_specs()
        env, scope = self._build_env()
        plan = env

        if stmt.where is not None and plan is not None:
            pred = self._compile_pred(stmt.where, scope, discover=False)
            plan = SetApply(Comp(pred, Input()), plan)
            self.t.record_span(plan, stmt.where.span)

        group_key: Optional[Expr] = None
        if stmt.by:
            group_key = self._compile_by(scope)
            if plan is None:
                raise TranslationError("'by' requires an iterated query")
            plan = Grp(group_key, plan)

        target_body, result_type = self._compile_targets(scope)

        if plan is None:
            result = target_body
            if stmt.where is not None:
                pred = self._compile_pred(stmt.where, scope, discover=False)
                result = Comp(pred, result)
            if stmt.unique:
                result = DE(result) if isinstance(result_type, SetType) else result
            return result, result_type
        if stmt.by:
            per_group: Expr = SetApply(target_body, Input())
            if stmt.unique:
                per_group = DE(per_group)
            plan = SetApply(per_group, plan)
            return plan, SetType(SetType(result_type)
                                 if result_type else None)
        plan = SetApply(target_body, plan)
        if stmt.unique:
            plan = DE(plan)
        return plan, SetType(result_type) if result_type else None

    def _order_specs(self) -> None:
        """Topologically order variables so every domain only references
        variables bound before it (a ``from C in E.kids`` clause places
        E's binding ahead of C's regardless of discovery order)."""

        def references(spec: VarSpec, other: VarSpec) -> bool:
            if spec.domain_ast is None:
                return False
            if (other.key[0] == "path" and other is not spec
                    and _ast_contains(spec.domain_ast, other.domain_ast)):
                return True
            names = set()
            _collect_names(spec.domain_ast, names)
            if other.key[0] in ("range", "from") and other.name in names:
                return True
            if (other.key[0] == "range"
                    and other.key[1] in names):
                return True
            return False

        ordered: List[VarSpec] = []
        remaining = list(self.specs)
        while remaining:
            progressed = False
            for spec in list(remaining):
                if all(not references(spec, other) for other in remaining
                       if other is not spec):
                    ordered.append(spec)
                    remaining.remove(spec)
                    progressed = True
            if not progressed:
                raise TranslationError(
                    "circular variable dependencies among %s"
                    % [s.name for s in remaining])
        self.specs = ordered

    def _scope_for_discovery(self) -> Scope:
        if self.outer is not None:
            return Scope(self.outer.variables, self.outer.bare,
                         self.outer.types, self.outer.params)
        return Scope()

    def _build_env(self) -> Tuple[Optional[Expr], Scope]:
        """Construct the environment expression and final scope."""
        outer = self.outer
        if not self.specs:
            scope = self._scope_for_discovery()
            return None, scope

        env: Optional[Expr] = None
        if outer is not None and (outer.variables or outer.bare):
            if outer.bare is not None and not outer.variables:
                scope = Scope([outer.bare], None,
                              {outer.bare: outer.types.get(outer.bare)},
                              outer.params)
                env = SetCreate(TupCreate(outer.bare, Input()))
            else:
                scope = Scope(outer.variables, None, outer.types, outer.params)
                env = SetCreate(Input())
        else:
            scope = Scope(params=(outer.params if outer else {}))

        # Single-variable fast path: bind the element bare (Figure 4 shape).
        if env is None and len(self.specs) == 1:
            spec = self.specs[0]
            domain = self._domain_expr(spec, scope)
            scope = Scope([], spec.name,
                          dict(scope.types, **{spec.name: spec.elem_type}),
                          scope.params)
            return domain, scope

        for spec in self.specs:
            domain = self._domain_expr(spec, scope)
            if env is None:
                env = SetApply(TupCreate(spec.name, Input()), domain)
            else:
                flatten = SetApply(
                    TupCat(TupExtract("field1", Input()),
                           TupCreate(spec.name,
                                     TupExtract("field2", Input()))),
                    Cross(SetCreate(Input()), domain))
                env = SetCollapse(SetApply(flatten, env))
            scope = scope.extended(spec.name, spec.elem_type)
        return env, scope

    def _domain_expr(self, spec: VarSpec, scope: Scope) -> Expr:
        if spec.collection_name is not None:
            domain: Expr = Named(spec.collection_name)
            declared = self.t._created_type(spec.collection_name)
            if isinstance(declared, ArrayType):
                # Iterating an array (e.g. TopTen) forgets order; the
                # bagof builtin is the array→multiset coercion.
                domain = Func("bagof", [domain])
        else:
            domain, domain_type = self._compile(spec.domain_ast, scope,
                                                discover=False,
                                                as_domain_of=spec)
            if isinstance(domain_type, ArrayType):
                domain = Func("bagof", [domain])
        if spec.deref:
            domain = SetApply(Deref(Input()), domain)
        self.t.record_span(domain, getattr(spec, "span", None))
        return domain

    # -- targets / by ------------------------------------------------------

    def _compile_targets(self, scope: Scope) -> Tuple[Expr, Optional[TypeExpr]]:
        stmt = self.stmt
        if stmt.value_mode:
            if len(stmt.targets) != 1:
                raise TranslationError(
                    "'retrieve value' takes exactly one target expression")
            expr, expr_type = self._compile(stmt.targets[0].expr, scope,
                                            discover=False)
            self.t.record_span(expr, stmt.targets[0].span)
            return expr, expr_type
        used: Dict[str, int] = {}
        fields: List[Tuple[str, Expr, Optional[TypeExpr]]] = []
        for index, target in enumerate(stmt.targets):
            alias = target.alias or _default_alias(target.expr, index)
            if alias in used:
                used[alias] += 1
                alias = "%s_%d" % (alias, used[alias])
            else:
                used[alias] = 0
            expr, expr_type = self._compile(target.expr, scope, discover=False)
            self.t.record_span(expr, target.span)
            fields.append((alias, expr, expr_type))
        body: Optional[Expr] = None
        for alias, expr, _ in fields:
            piece = TupCreate(alias, expr)
            body = piece if body is None else TupCat(body, piece)
        if all(t is not None for _, _, t in fields):
            result_type: Optional[TypeExpr] = TupleTypeExpr(
                [(alias, t) for alias, _, t in fields])
        else:
            result_type = None
        return body, result_type

    def _compile_by(self, scope: Scope) -> Expr:
        keys = []
        for index, key_ast in enumerate(self.stmt.by):
            expr, _ = self._compile(key_ast, scope, discover=False)
            keys.append((_default_alias(key_ast, index), expr))
        if len(keys) == 1:
            return keys[0][1]
        body: Optional[Expr] = None
        for alias, expr in keys:
            piece = TupCreate(alias, expr)
            body = piece if body is None else TupCat(body, piece)
        return body

    # -- predicates -------------------------------------------------------

    def _compile_pred(self, pred: ast.Pred, scope: Scope,
                      discover: bool) -> Predicate:
        if isinstance(pred, ast.Comparison):
            left, _ = self._compile(pred.left, scope, discover)
            right, _ = self._compile(pred.right, scope, discover)
            return Atom(left, pred.op, right)
        if isinstance(pred, ast.AndPred):
            return And(self._compile_pred(pred.left, scope, discover),
                       self._compile_pred(pred.right, scope, discover))
        if isinstance(pred, ast.OrPred):
            return Or(self._compile_pred(pred.left, scope, discover),
                      self._compile_pred(pred.right, scope, discover))
        if isinstance(pred, ast.NotPred):
            return Not(self._compile_pred(pred.inner, scope, discover))
        raise TranslationError("unsupported predicate %r" % (pred,))

    # -- expressions -----------------------------------------------------

    def _compile(self, node: ast.Node, scope: Scope, discover: bool,
                 as_domain_of: Optional[VarSpec] = None
                 ) -> Tuple[Expr, Optional[TypeExpr]]:
        if isinstance(node, ast.Literal):
            value = node.value
            scalar = {int: "int4", float: "float4", str: "char[]",
                      bool: "bool"}.get(type(value))
            return Const(value), (ScalarType(scalar, type(value))
                                  if scalar else None)
        if isinstance(node, ast.Name):
            return self._compile_name(node, scope, discover)
        if isinstance(node, ast.Path):
            return self._compile_path(node, scope, discover, as_domain_of)
        if isinstance(node, ast.BinOp):
            return self._compile_binop(node, scope, discover)
        if isinstance(node, ast.FuncCall):
            return self._compile_func(node, scope, discover)
        if isinstance(node, ast.SetLiteral):
            items = [self._compile(i, scope, discover)[0] for i in node.items]
            if not items:
                return Const(MultiSet()), None
            expr: Expr = SetCreate(items[0])
            for item in items[1:]:
                expr = AddUnion(expr, SetCreate(item))
            return expr, None
        if isinstance(node, ast.ArrayLiteral):
            items = [self._compile(i, scope, discover)[0] for i in node.items]
            if not items:
                return Const(Arr()), None
            expr = ArrCreate(items[0])
            for item in items[1:]:
                expr = ArrCat(expr, ArrCreate(item))
            return expr, None
        if isinstance(node, ast.Aggregate):
            return self._compile_aggregate(node, scope, discover)
        raise TranslationError("unsupported expression %r" % (node,))

    def _compile_name(self, node: ast.Name, scope: Scope, discover: bool
                      ) -> Tuple[Expr, Optional[TypeExpr]]:
        name = node.name
        if scope.has_var(name):
            return scope.access(name), scope.var_type(name)
        if name in scope.params:
            return Param(name), scope.params[name]
        if name in self.t.ranges:
            spec = self._register_range_var(name, self.t.ranges[name])
            if discover:
                return Input(), spec.elem_type
            return scope.access(spec.name), spec.elem_type
        if name in self.t.db:
            elem = self.t.collection_elem_type(name)
            declared = self.t._created_type(name)
            if declared is None and elem is not None:
                declared = SetType(elem)
            return Named(name), declared
        raise TranslationError("unknown name %r" % name)

    def _compile_binop(self, node: ast.BinOp, scope: Scope, discover: bool
                       ) -> Tuple[Expr, Optional[TypeExpr]]:
        left, left_type = self._compile(node.left, scope, discover)
        right, right_type = self._compile(node.right, scope, discover)
        setish = isinstance(left_type, SetType) or isinstance(right_type, SetType)
        arrish = isinstance(left_type, ArrayType) or isinstance(right_type,
                                                                ArrayType)
        if node.op == "+":
            if setish:
                return AddUnion(left, right), left_type or right_type
            if arrish:
                return ArrCat(left, right), left_type or right_type
            return Func("plus", [left, right]), left_type or right_type
        if node.op == "-":
            if setish:
                return Diff(left, right), left_type or right_type
            return Func("minus", [left, right]), left_type or right_type
        if node.op == "*":
            return Func("times", [left, right]), left_type or right_type
        if node.op == "/":
            return Func("divide", [left, right]), ScalarType("float4", float)
        raise TranslationError("unknown operator %r" % node.op)

    def _compile_func(self, node: ast.FuncCall, scope: Scope, discover: bool
                      ) -> Tuple[Expr, Optional[TypeExpr]]:
        lowered = node.name.lower()
        # tup("f", e) / extract("f", e): the field name is a literal.
        if lowered in ("tup", "extract"):
            if (len(node.args) != 2
                    or not isinstance(node.args[0], ast.Literal)
                    or not isinstance(node.args[0].value, str)):
                raise TranslationError(
                    '%s() needs a string field name and a value' % lowered)
            field = node.args[0].value
            value, _ = self._compile(node.args[1], scope, discover)
            if lowered == "tup":
                return TupCreate(field, value), None
            return TupExtract(field, value), None
        args = [self._compile(a, scope, discover)[0] for a in node.args]
        if lowered in _OPERATOR_FUNCS:
            maker = _OPERATOR_FUNCS[lowered]
            try:
                return maker(*args), None
            except TypeError:
                raise TranslationError(
                    "wrong number of arguments for %s" % node.name)
        return Func(node.name, args), None

    def _compile_aggregate(self, node: ast.Aggregate, scope: Scope,
                           discover: bool) -> Tuple[Expr, Optional[TypeExpr]]:
        if not node.from_clauses and node.where is None:
            operand, _ = self._compile(node.expr, scope, discover)
            return Func(node.func, [operand]), None
        subquery = ast.Retrieve(
            targets=[ast.Target(node.expr)],
            from_clauses=node.from_clauses,
            where=node.where,
            value_mode=True)
        if discover:
            # The subquery manages its own variables; nothing of the
            # outer statement's env depends on its internals, but its
            # *outer* references must be discovered via the shared scope
            # when they touch range variables.  Building the real tree
            # registers those through the nested translation below, so
            # discovery only needs outer-name side effects:
            self._discover_outer_names(node, scope)
            return Const(0), None
        inner_translator = _QueryState(self.t, subquery, scope)
        inner_expr, _ = inner_translator.build()
        return Func(node.func, [inner_expr]), None

    def _discover_outer_names(self, node: ast.Aggregate, scope: Scope) -> None:
        """Register outer range variables mentioned inside an aggregate."""
        local = {clause.var for clause in node.from_clauses}

        def walk(n):
            if isinstance(n, ast.Name):
                if (n.name not in local and not scope.has_var(n.name)
                        and n.name in self.t.ranges):
                    self._register_range_var(n.name, self.t.ranges[n.name])
                return
            if isinstance(n, ast.Node):
                for value in n._values():
                    walk(value)
            elif isinstance(n, (list, tuple)):
                for item in n:
                    walk(item)

        walk(node.expr)
        for clause in node.from_clauses:
            walk(clause.domain)
        if node.where is not None:
            walk(node.where)

    # -- paths --------------------------------------------------------------

    def _compile_path(self, node: ast.Path, scope: Scope, discover: bool,
                      as_domain_of: Optional[VarSpec] = None
                      ) -> Tuple[Expr, Optional[TypeExpr]]:
        expr, current = self._compile(node.base, scope, discover)
        steps = list(node.steps)
        for index, step in enumerate(steps):
            prefix = (ast.Path(node.base, steps[:index])
                      if index else node.base)
            expr, current = self._apply_step(
                expr, current, step, prefix, scope, discover,
                is_final_domain=(as_domain_of is not None
                                 and as_domain_of.key == ("path", node)
                                 and index == len(steps) - 1))
        return expr, current

    def _apply_step(self, expr: Expr, current: Optional[TypeExpr],
                    step: ast.PathStep, prefix: ast.Node, scope: Scope,
                    discover: bool, is_final_domain: bool = False
                    ) -> Tuple[Expr, Optional[TypeExpr]]:
        # Implicit dereference through ref-typed values.
        while isinstance(current, RefType):
            expr = Deref(expr)
            current = NamedType(current.target)
        # A set-valued value with a field/call step ranges implicitly —
        # unless this path is itself being compiled as a domain.
        if (isinstance(current, SetType) or
            (current is None and isinstance(expr, Named)
             and self.t._is_set_object(expr.name))) and isinstance(
                 step, (ast.FieldStep, ast.CallStep)) and not is_final_domain:
            set_type = current if isinstance(current, SetType) else (
                SetType(self.t.collection_elem_type(expr.name))
                if isinstance(expr, Named)
                and self.t.collection_elem_type(expr.name) else None)
            spec = self._register_path_var(prefix, scope, set_type)
            if discover:
                expr, current = Input(), spec.elem_type
            else:
                expr, current = scope.access(spec.name), spec.elem_type
            while isinstance(current, RefType):
                expr = Deref(expr)
                current = NamedType(current.target)

        if isinstance(step, ast.FieldStep):
            type_name = current.name if isinstance(current, NamedType) else None
            if type_name is not None:
                if _has_field(self.t.types, type_name, step.name):
                    field_type = self.t.types.field_type(type_name, step.name)
                    return TupExtract(step.name, expr), field_type
                if self.t.has_method(type_name, step.name):
                    return (MethodCall(step.name, [], expr),
                            self.t.method_return_type(type_name, step.name))
                if step.name in self.t.db.functions:
                    # A registered scalar function used as a virtual
                    # field (GEM-style "dot application").
                    return Func(step.name, [expr]), None
                raise TranslationError(
                    "type %s has no attribute or method %r"
                    % (type_name, step.name))
            if isinstance(current, TupleTypeExpr):
                for fname, ftype in current.fields:
                    if fname == step.name:
                        return TupExtract(step.name, expr), ftype
            # Untyped: assume a field.
            return TupExtract(step.name, expr), None

        if isinstance(step, ast.CallStep):
            args = [self._compile(a, scope, discover)[0] for a in step.args]
            type_name = current.name if isinstance(current, NamedType) else None
            return (MethodCall(step.name, args, expr),
                    self.t.method_return_type(type_name, step.name))

        if isinstance(step, ast.IndexStep):
            elem = current.element if isinstance(current, ArrayType) else None
            if step.is_slice:
                return (SubArr(step.lower, step.upper, expr),
                        ArrayType(elem) if elem else None)
            return ArrExtract(step.lower, expr), elem
        raise TranslationError("unsupported path step %r" % (step,))


def _element_of(domain_type: Optional[TypeExpr]
                ) -> Tuple[Optional[TypeExpr], bool]:
    """(element type, needs-deref) for a set- or array-typed domain."""
    if isinstance(domain_type, (SetType, ArrayType)):
        element = domain_type.element
        if isinstance(element, RefType):
            return NamedType(element.target), True
        return element, False
    return None, False


def _has_field(types, type_name: str, field: str) -> bool:
    try:
        types.field_type(type_name, field)
        return True
    except Exception:
        return False


def _ast_contains(haystack, needle) -> bool:
    """Structural sub-tree containment over AST nodes."""
    if haystack == needle:
        return True
    if isinstance(haystack, ast.Node):
        return any(_ast_contains(v, needle) for v in haystack._values())
    if isinstance(haystack, (list, tuple)):
        return any(_ast_contains(v, needle) for v in haystack)
    return False


def _collect_names(node, out: set) -> None:
    """Collect every bare identifier mentioned in an AST subtree."""
    if isinstance(node, ast.Name):
        out.add(node.name)
    if isinstance(node, ast.Node):
        for value in node._values():
            _collect_names(value, out)
    elif isinstance(node, (list, tuple)):
        for item in node:
            _collect_names(item, out)


def _default_alias(node: ast.Node, index: int) -> str:
    if isinstance(node, ast.Path):
        for step in reversed(node.steps):
            if isinstance(step, ast.FieldStep):
                return step.name
            if isinstance(step, ast.CallStep):
                return step.name
        return _default_alias(node.base, index)
    if isinstance(node, ast.Name):
        return node.name
    if isinstance(node, ast.Aggregate):
        return node.func
    if isinstance(node, ast.FuncCall):
        return node.name
    return "col%d" % (index + 1)
