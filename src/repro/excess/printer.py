"""Algebra → EXCESS translation (the theorem's second half, §3.4).

The paper proves the reduction by cases on the outermost operator: each
algebra expression with n operators is expressed as EXCESS statements
over sub-results retrieved ``into`` temporary named objects — e.g.

    E = E1 − E2   ⇒   retrieve (x) from x in (E1 − E2) into E
    E = SET(E1)   ⇒   retrieve ( { E1 } ) into E

:func:`print_program` follows that structure literally: it emits one
``retrieve … into`` statement per operator, bottom-up, and returns the
program plus the name holding the final result.  Running the program
through :class:`~repro.excess.session.Session` must reproduce the value
of evaluating the original tree — the round-trip the equipollence tests
check.

Bodies of the looping operators (SET_APPLY subscripts, COMP predicates,
GRP keys) are printed *inline* over an iteration variable, which covers
every non-binding composition of primitives (paths, operator functions,
literals, scalar functions).  Out of scope, as documented limitations:
typed SET_APPLY (a plan-level construct with no surface syntax),
ARR_APPLY with arbitrary bodies (the paper's own proof handles it via a
``define function`` detour), and bodies containing nested binding
operators.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

from ..core.expr import Const, Expr, Func, Input, Named
from ..core.operators import (DE, AddUnion, ArrCat, ArrCollapse, ArrCreate,
                              ArrCross, ArrDE, ArrDiff, ArrExtract, Comp,
                              Cross, Deref, Diff, Grp, Pi, RefOp, SetApply,
                              SetCollapse, SetCreate, SubArr, TupCat,
                              TupCreate, TupExtract)
from ..core.predicates import And, Atom, Not, Predicate, TruePred
from ..core.values import Arr, MultiSet, Tup, is_scalar


class UnprintableError(ValueError):
    """The expression falls outside the printer's supported subset."""


_temp_counter = itertools.count(1)


def _fresh_temp() -> str:
    return "_T%d" % next(_temp_counter)


def to_excess(expr: Expr) -> Tuple[str, str]:
    """Translate an algebra tree to an EXCESS program.

    Returns ``(program_text, result_name)``: executing the program
    leaves the tree's value in the named object ``result_name``.
    """
    statements: List[str] = []
    result = _emit(expr, statements)
    return "\n".join(statements), result


def _emit(expr: Expr, statements: List[str]) -> str:
    """Emit statements computing *expr*; return the holding temp name."""
    temp = _fresh_temp()

    if isinstance(expr, Named):
        statements.append("retrieve value (%s) into %s" % (expr.name, temp))
        return temp
    if isinstance(expr, Const):
        statements.append("retrieve value (%s) into %s"
                          % (_literal(expr.value), temp))
        return temp

    binary = {AddUnion: "addunion", Diff: "diff", Cross: "cross",
              ArrCat: "arrcat", ArrDiff: "arrdiff", ArrCross: "arrcross"}
    for node_type, func in binary.items():
        if isinstance(expr, node_type):
            left = _emit(expr.left, statements)
            right = _emit(expr.right, statements)
            statements.append("retrieve value (%s(%s, %s)) into %s"
                              % (func, left, right, temp))
            return temp

    unary = {SetCollapse: "collapse", SetCreate: "setof", DE: "de",
             ArrCollapse: "arrcollapse", ArrDE: "arrde", ArrCreate: "arr",
             Deref: "deref", RefOp: "mkref"}
    for node_type, func in unary.items():
        if isinstance(expr, node_type):
            source = _emit(expr.source, statements)
            statements.append("retrieve value (%s(%s)) into %s"
                              % (func, source, temp))
            return temp

    if isinstance(expr, TupExtract):
        source = _emit(expr.source, statements)
        statements.append("retrieve value (%s.%s) into %s"
                          % (source, expr.field, temp))
        return temp
    if isinstance(expr, TupCreate):
        source = _emit(expr.source, statements)
        statements.append("retrieve (%s = %s) into %s"
                          % (expr.field, source, temp))
        return temp
    if isinstance(expr, TupCat):
        left = _emit(expr.left, statements)
        right = _emit(expr.right, statements)
        statements.append("retrieve value (tupcat(%s, %s)) into %s"
                          % (left, right, temp))
        return temp
    if isinstance(expr, Pi):
        source = _emit(expr.source, statements)
        targets = ", ".join("%s = %s.%s" % (n, source, n) for n in expr.names)
        statements.append("retrieve (%s) into %s" % (targets, temp))
        return temp
    if isinstance(expr, ArrExtract):
        source = _emit(expr.source, statements)
        statements.append("retrieve value (%s[%s]) into %s"
                          % (source, expr.position, temp))
        return temp
    if isinstance(expr, SubArr):
        source = _emit(expr.source, statements)
        statements.append("retrieve value (%s[%s..%s]) into %s"
                          % (source, expr.lower, expr.upper, temp))
        return temp
    if isinstance(expr, Func):
        args = [_emit(a, statements) for a in expr.args]
        statements.append("retrieve value (%s(%s)) into %s"
                          % (expr.name, ", ".join(args), temp))
        return temp

    if isinstance(expr, SetApply):
        if expr.type_filter is not None:
            raise UnprintableError(
                "typed SET_APPLY has no EXCESS surface syntax")
        source = _emit(expr.source, statements)
        # σ-shape prints as a where clause (COMP body over INPUT).
        if isinstance(expr.body, Comp) and isinstance(expr.body.source, Input):
            pred = _inline_pred(expr.body.pred, "x")
            statements.append(
                "retrieve value (x) from x in %s where %s into %s"
                % (source, pred, temp))
            return temp
        body = _inline(expr.body, "x")
        statements.append("retrieve value (%s) from x in %s into %s"
                          % (body, source, temp))
        return temp

    if isinstance(expr, Grp):
        source = _emit(expr.source, statements)
        key = _inline(expr.by, "x")
        statements.append(
            "retrieve value (x) from x in %s by %s into %s"
            % (source, key, temp))
        return temp

    if isinstance(expr, Comp):
        source = _emit(expr.source, statements)
        pred = _inline_pred(expr.pred, source)
        statements.append("retrieve value (%s) where %s into %s"
                          % (source, pred, temp))
        return temp

    raise UnprintableError("cannot print %s to EXCESS"
                           % type(expr).__name__)


def _literal(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return '"%s"' % value
    if is_scalar(value):
        return repr(value)
    if isinstance(value, MultiSet):
        return "{%s}" % ", ".join(_literal(v) for v in value)
    if isinstance(value, Arr):
        return "[%s]" % ", ".join(_literal(v) for v in value)
    if isinstance(value, Tup):
        # Build tuples with tup()/tupcat(); the empty tuple via tupcat
        # identity is unreachable, so synthesize from the first field.
        pieces = ['tup("%s", %s)' % (n, _literal(v)) for n, v in value.fields]
        if not pieces:
            raise UnprintableError("the empty tuple has no literal syntax")
        text = pieces[0]
        for piece in pieces[1:]:
            text = "tupcat(%s, %s)" % (text, piece)
        return text
    raise UnprintableError("unprintable literal %r" % (value,))


def _inline(expr: Expr, var: str) -> str:
    """Print a loop body as an inline EXCESS expression over *var*."""
    if isinstance(expr, Input):
        return var
    if isinstance(expr, Named):
        return expr.name
    if isinstance(expr, Const):
        return _literal(expr.value)
    if isinstance(expr, TupExtract):
        return "%s.%s" % (_inline(expr.source, var), expr.field)
    if isinstance(expr, Deref):
        return "deref(%s)" % _inline(expr.source, var)
    if isinstance(expr, RefOp):
        return "mkref(%s)" % _inline(expr.source, var)
    if isinstance(expr, ArrExtract):
        return "%s[%s]" % (_inline(expr.source, var), expr.position)
    if isinstance(expr, SubArr):
        return "%s[%s..%s]" % (_inline(expr.source, var), expr.lower,
                               expr.upper)
    if isinstance(expr, Func):
        return "%s(%s)" % (expr.name,
                           ", ".join(_inline(a, var) for a in expr.args))
    if isinstance(expr, TupCreate):
        return 'tup("%s", %s)' % (expr.field, _inline(expr.source, var))
    if isinstance(expr, TupCat):
        return "tupcat(%s, %s)" % (_inline(expr.left, var),
                                   _inline(expr.right, var))
    binary = {AddUnion: "addunion", Diff: "diff", Cross: "cross",
              ArrCat: "arrcat", ArrDiff: "arrdiff", ArrCross: "arrcross"}
    for node_type, func in binary.items():
        if isinstance(expr, node_type):
            return "%s(%s, %s)" % (func, _inline(expr.left, var),
                                   _inline(expr.right, var))
    unary = {SetCollapse: "collapse", SetCreate: "setof", DE: "de",
             ArrCollapse: "arrcollapse", ArrDE: "arrde", ArrCreate: "arr"}
    for node_type, func in unary.items():
        if isinstance(expr, node_type):
            return "%s(%s)" % (func, _inline(expr.source, var))
    raise UnprintableError("cannot inline %s in a loop body"
                           % type(expr).__name__)


def _inline_pred(pred: Predicate, var: str) -> str:
    if isinstance(pred, Atom):
        return "%s %s %s" % (_inline_operand(pred.left, var), pred.op,
                             _inline_operand(pred.right, var))
    if isinstance(pred, And):
        return "(%s and %s)" % (_inline_pred(pred.left, var),
                                _inline_pred(pred.right, var))
    if isinstance(pred, Not):
        return "not (%s)" % _inline_pred(pred.inner, var)
    if isinstance(pred, TruePred):
        return "1 = 1"
    raise UnprintableError("cannot print predicate %s"
                           % type(pred).__name__)


def _inline_operand(expr: Expr, var: str) -> str:
    text = _inline(expr, var)
    return "(%s)" % text if " " in text else text
