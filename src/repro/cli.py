"""An interactive EXCESS shell: ``python -m repro``.

Reads EXTRA/EXCESS statements (DDL, queries, updates), executes them
against an in-memory database, and pretty-prints results.  Meta
commands (lines starting with a dot):

    .help                this text
    .names               list named top-level objects
    .types               list defined EXTRA types
    .plan <retrieve …>   show the algebra tree without executing
    .lint <retrieve …>   run the plan linter (typing, dead π, redundant
                         DE, dangling DEREF, dne hazards, dispatch)
    .optimize on|off     toggle rule-based optimization of queries
    .engine [name]       show or set the execution engine
                         (interpreted | compiled | batched)
    .parallel [n]        show or set the partition-parallel worker
                         count (batched engine only; 0 = serial)
    .begin               begin an explicit transaction
    .commit              commit the active transaction
    .abort               abort (roll back) the active transaction
    .stats               work counters of the last executed query
    .trace on|off        toggle per-operator trace spans on statements
    .sanitize on|off     toggle the abstract-interpretation sanitizer:
                         every statically proven fact (cardinality
                         bounds, emptiness, array bounds, duplicate
                         freedom) is asserted against the values the
                         compiled engine actually produces
    .analyze <stmt …>    EXPLAIN ANALYZE: execute under tracing and
                         show the plan with actual vs estimated
                         cardinalities and per-operator wall time
    .metrics [json]      the process-wide metrics registry (Prometheus
                         text format, or JSON)
    .indexes             access methods: one row per index definition
                         with kind, key, size, probe hits, liveness
    .indexes create typed|keyed|ordered <name> [field]
    .indexes drop   typed|keyed|ordered <name> [field]
    .slowlog [clear]     the slow-query log (or clear it)
    .demo                load the populated Figure-1 university
    .save <path>         persist the database to a JSON snapshot
    .load <path>         replace the database with a saved snapshot
    .quit                exit

Statements may span lines; they execute when the line ends with ``;``
(the terminator is stripped — the languages themselves don't use it).

``python -m repro.cli bench --smoke`` runs the quick benchmark smoke
check (the paper's claimed plan-quality directions plus
interpreted/compiled engine agreement) without entering the shell.

``python -m repro.cli lint [--demo] [path]`` lints the retrieve
statements in *path* (stdin when omitted) without executing them,
printing coded diagnostics with source positions; the exit status is 1
when any error-severity finding is reported.

``python -m repro.cli metrics [--json]`` prints the process metrics
registry and exits.

``python -m repro.cli sanitize [--plans N] [--seed N]`` runs the
abstract-interpretation sanitizer sweep — the paper-figure queries plus
seeded random plans, each executed interpreted, compiled, compiled with
analysis licenses, and compiled with every proven fact asserted at
runtime — and exits nonzero on any disagreement or violation.

``python -m repro.cli index list|create|drop <dir> …`` manages index
definitions of a durable database directory: creates and drops are
journaled DDL (they survive restarts and replay from the WAL), and
``list`` shows the same table as the shell's ``.indexes``.

``python -m repro.cli serve --db <dir> [--port N] [--metrics-port N]``
hosts the concurrent network server (:mod:`repro.server`): newline-
delimited JSON over TCP, MVCC snapshot readers, group-committed
writes, and an optional HTTP ``/metrics`` endpoint.  Equivalent to
``python -m repro.server``; see ``--help`` there for every flag.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from .api import connect
from .core.optimizer import CostModel, Optimizer, Statistics
from .options import ENGINES, ExecutionOptions
from .core.values import Arr, MultiSet
from .lang import ParseError
from .storage import Database

PROMPT = "excess> "
CONTINUATION = "   ...> "

#: Non-shell entry points: ``python -m repro.cli <subcommand> …``.
SUBCOMMANDS = ("bench", "index", "lint", "metrics", "sanitize", "serve")


def format_value(value, indent: str = "  ", limit: int = 20) -> str:
    """Human-oriented rendering of an algebra value."""
    if isinstance(value, MultiSet):
        lines = ["{multiset, %d occurrence(s), %d distinct}"
                 % (len(value), value.distinct_count())]
        for i, (element, count) in enumerate(sorted(
                value.items(), key=lambda kv: repr(kv[0]))):
            if i >= limit:
                lines.append(indent + "… (%d more)"
                             % (value.distinct_count() - limit))
                break
            suffix = "  ×%d" % count if count > 1 else ""
            lines.append(indent + repr(element) + suffix)
        return "\n".join(lines)
    if isinstance(value, Arr):
        return "[array, %d element(s)] %r" % (len(value), value)
    return repr(value)


def render_indexes(catalog) -> str:
    """The ``.indexes`` table: one row per index definition."""
    rows = catalog.describe_rows()
    if not rows:
        return "(no indexes defined)"
    lines = ["%-8s %-16s %-20s %8s %6s %s"
             % ("kind", "name", "key", "size", "hits", "state")]
    for row in rows:
        lines.append("%-8s %-16s %-20s %8s %6d %s" % (
            row["kind"], row["name"], row["key"] or "-",
            "-" if row["size"] is None else row["size"],
            row["hits"], "live" if row["live"] else "stale"))
    return "\n".join(lines)


def _index_key(kind: str, field: str, value=None):
    """The key expression for a keyed/ordered index CLI argument:
    ``field`` names a tuple field (TUP_EXTRACT over INPUT — behind a
    DEREF when the stored collection holds references, mirroring what
    the translator emits for ``var.field``); an empty field indexes the
    element itself."""
    if kind == "typed":
        return None
    from .core.expr import Input
    from .core.operators.tuples import TupExtract
    if not field:
        return Input()
    base = Input()
    from .core.values import MultiSet, Ref
    if isinstance(value, MultiSet) and any(
            isinstance(element, Ref) for element, _ in value.items()):
        from .core.operators.refs import Deref
        base = Deref(base)
    return TupExtract(field, base)


def lint_source(session, source: str):
    """Lint every retrieve statement in *source* without executing.

    Range declarations update the session's bindings so later
    statements resolve; DDL and update statements are skipped.  Returns
    ``(blocks, errors)`` — printable text blocks and the count of
    error-severity diagnostics.
    """
    from .core.analysis import Linter
    from .excess import ast as excess_ast
    from .excess.parser import Parser
    blocks: List[str] = []
    errors = 0
    for statement in Parser(source).parse_statements():
        if isinstance(statement, excess_ast.RangeDecl):
            for var, collection in statement.bindings:
                session.ranges[var] = collection
            continue
        if not isinstance(statement, excess_ast.Retrieve):
            continue
        translator = session.translator()
        expr, _ = translator.translate_retrieve(statement)
        diagnostics = Linter(session.db,
                             source_map=translator.source_map).lint(expr)
        errors += sum(1 for d in diagnostics if d.severity == "error")
        if diagnostics:
            blocks.extend(d.describe() for d in diagnostics)
        else:
            blocks.append("ok: no findings")
    return blocks, errors


class Shell:
    """The REPL engine, separated from I/O for testability."""

    def __init__(self, database: Optional[Database] = None):
        self.db = database or Database()
        self.conn = connect(self.db,
                            ExecutionOptions(engine="interpreted"))
        self.session = self.conn.session
        self.optimize = False
        self.last_stats = {}

    def _reconnect(self) -> None:
        """Rebind the connection after the database was swapped out
        (``.load``) or repopulated (``.demo``), preserving the chosen
        execution options and tracing state."""
        self.conn = connect(self.db, self.conn.options)
        self.session = self.conn.session

    # -- meta commands -------------------------------------------------

    def handle_meta(self, line: str) -> str:
        command, _, argument = line.partition(" ")
        command = command.lower()
        if command == ".help":
            return __doc__.strip()
        if command == ".names":
            names = self.db.names()
            return "\n".join(names) if names else "(no named objects)"
        if command == ".types":
            types = getattr(self.db, "types", None)
            if types is None or not types.names():
                return "(no types defined)"
            return "\n".join(
                "%s%s" % (name,
                          " inherits " + ", ".join(
                              self.db.hierarchy.parents(name))
                          if self.db.hierarchy.parents(name) else "")
                for name in types.names())
        if command == ".plan":
            try:
                expr = self.session.compile(argument)
            except (ParseError, Exception) as error:
                return "error: %s" % error
            from .core.explain import explain
            model = CostModel(Statistics.from_database(self.db))
            text = explain(expr, model)
            if self.optimize:
                result = self._optimizer().optimize(expr)
                text += ("\n-- optimized (%.0f -> %.0f, via %s) --\n%s"
                         % (result.initial_cost, result.best_cost,
                            " -> ".join(result.steps) or "<unchanged>",
                            explain(result.best, model)))
            return text
        if command == ".lint":
            if not argument.strip():
                return "usage: .lint <retrieve …>"
            try:
                blocks, _ = lint_source(self.session, argument)
            except (ParseError, Exception) as error:
                return "error: %s" % error
            return "\n".join(blocks) if blocks else "(nothing to lint)"
        if command == ".optimize":
            self.optimize = argument.strip().lower() == "on"
            return "optimization %s" % ("on" if self.optimize else "off")
        if command == ".engine":
            choice = argument.strip().lower()
            if not choice:
                return "engine: %s" % self.session.engine
            if choice not in ENGINES:
                return "usage: .engine %s" % "|".join(ENGINES)
            self.session.engine = choice
            return "engine set to %s" % choice
        if command == ".parallel":
            choice = argument.strip()
            if not choice:
                return "parallel: %d" % self.session.parallel
            try:
                degree = int(choice)
            except ValueError:
                return "usage: .parallel <n>"
            if degree < 0:
                return "usage: .parallel <n>  (n >= 0)"
            self.session.parallel = degree
            note = ("" if self.session.engine == "batched" or degree < 2
                    else " (takes effect with .engine batched)")
            return "parallel set to %d%s" % (degree, note)
        if command == ".begin":
            from .storage import TxnError
            try:
                txid = self.session.begin()
            except TxnError as error:
                return "error: %s" % error
            return "transaction %d begun" % txid
        if command == ".commit":
            from .storage import TxnError
            try:
                self.session.commit()
            except TxnError as error:
                return "error: %s" % error
            return "committed"
        if command == ".abort":
            from .storage import TxnError
            try:
                self.session.abort()
            except TxnError as error:
                return "error: %s" % error
            return "aborted (rolled back)"
        if command == ".stats":
            if not self.last_stats:
                return "(no query executed yet)"
            return "\n".join("%-22s %d" % (k, v)
                             for k, v in sorted(self.last_stats.items()))
        if command == ".trace":
            choice = argument.strip().lower()
            if choice in ("on", "off"):
                self.conn.tracing = choice == "on"
            return "tracing %s" % ("on" if self.conn.tracing else "off")
        if command == ".sanitize":
            choice = argument.strip().lower()
            if choice in ("on", "off"):
                self.conn.sanitizing = choice == "on"
            state = "on" if self.conn.sanitizing else "off"
            if self.conn.sanitizing and self.session.engine == "interpreted":
                return ("sanitizer %s (note: a no-op on the %s engine — "
                        "switch with .engine compiled or .engine batched)"
                        % (state, self.session.engine))
            return "sanitizer %s" % state
        if command == ".analyze":
            if not argument.strip():
                return "usage: .analyze <statement …>"
            was_tracing = self.conn.tracing
            self.conn.tracing = True
            try:
                if self.optimize:
                    self.conn.session.optimizer = self._optimizer()
                result = self.conn.execute(argument, optimize=self.optimize)
            except (ParseError, Exception) as error:
                return "error: %s" % error
            finally:
                self.conn.tracing = was_tracing
            if result.trace is None:
                return "(nothing to analyze: %s statement)" % result.kind
            self.last_stats = dict(result.stats)
            model = CostModel(Statistics.from_database(self.db),
                              engine=self.session.engine,
                              indexes=self.db.indexes)
            return result.explain(cost_model=model)
        if command == ".metrics":
            from .obs import REGISTRY
            if argument.strip().lower() == "json":
                import json
                return json.dumps(REGISTRY.to_json(), indent=2,
                                  sort_keys=True)
            return REGISTRY.to_prometheus().rstrip("\n")
        if command == ".indexes":
            words = argument.split()
            if not words:
                return render_indexes(self.db.indexes)
            action = words[0].lower()
            if action not in ("create", "drop") or len(words) < 3:
                return ("usage: .indexes [create|drop "
                        "typed|keyed|ordered <name> [field]]")
            kind, name = words[1].lower(), words[2]
            try:
                stored = self.db.get(name)
            except KeyError:
                stored = None
            field = words[3] if len(words) > 3 else ""
            key = (None if action == "drop" and not field
                   else _index_key(kind, field, stored))
            try:
                if action == "create":
                    self.db.indexes.create_index(kind, name, key)
                    return "created %s index on %s" % (kind, name)
                dropped = self.db.indexes.drop_index(kind, name, key)
                return ("dropped %s index on %s" % (kind, name)
                        if dropped else "no such index")
            except (KeyError, ValueError, TypeError) as error:
                return "error: %s" % error
        if command == ".slowlog":
            if argument.strip().lower() == "clear":
                self.conn.slow_log.clear()
                return "slow-query log cleared"
            return self.conn.slow_log.render()
        if command == ".demo":
            from .workloads import build_university
            build_university(database=self.db)
            self._reconnect()
            return ("loaded the Figure-1 university "
                    "(Employees, Students, Departments, TopTen)")
        if command == ".save":
            if not argument.strip():
                return "usage: .save <path>"
            from .storage import save_database
            save_database(self.db, argument.strip())
            return "saved to %s" % argument.strip()
        if command == ".load":
            if not argument.strip():
                return "usage: .load <path>"
            from .storage import load_database
            try:
                self.db = load_database(argument.strip())
            except (OSError, ValueError) as error:
                return "error: %s" % error
            self._reconnect()
            missing = getattr(self.db, "missing_functions", [])
            note = (" (re-register functions: %s)" % ", ".join(missing)
                    if missing else "")
            return "loaded %s%s" % (argument.strip(), note)
        if command in (".quit", ".exit"):
            raise EOFError
        return "unknown command %r (try .help)" % command

    def _optimizer(self) -> Optimizer:
        stats = Statistics.from_database(self.db)
        model = CostModel(stats, engine=self.session.engine,
                          indexes=self.db.indexes)
        return Optimizer(cost_model=model, max_depth=3, max_trees=500)

    # -- statements -------------------------------------------------------

    def execute(self, source: str) -> List[str]:
        """Execute statements; returns printable result blocks."""
        out: List[str] = []
        try:
            if self.optimize:
                # Fresh statistics per execute: the shell mutates the
                # database between statements.
                self.conn.session.optimizer = self._optimizer()
            last = self.conn.execute(source, optimize=self.optimize)
        except (ParseError, Exception) as error:
            return ["error: %s" % error]
        for result in last.all:
            if result.expression is None and result.value is None:
                out.append("ok")
            elif result.expression is None:
                out.append("ok (%r affected %s)"
                           % (result.value, result.into or ""))
            else:
                self.last_stats = dict(result.stats)
                if result.into:
                    out.append("stored %s" % result.into)
                else:
                    out.append(format_value(result.value))
        return out

    def feed(self, line: str) -> List[str]:
        """One input line → zero or more output blocks."""
        stripped = line.strip()
        if not stripped:
            return []
        if stripped.startswith("."):
            return [self.handle_meta(stripped)]
        return self.execute(stripped)


def run_lint(argv: List[str]) -> int:
    """The ``lint`` subcommand: diagnostics only, no execution."""
    database = Database()
    if "--demo" in argv:
        from .workloads import build_university
        build_university(database=database)
        argv = [a for a in argv if a != "--demo"]
    if argv:
        with open(argv[0]) as handle:
            source = handle.read()
    else:
        source = sys.stdin.read()
    session = connect(database).session
    try:
        blocks, errors = lint_source(session, source.replace(";", "\n"))
    except (ParseError, Exception) as error:
        print("error: %s" % error)
        return 2
    for block in blocks:
        print(block)
    return 1 if errors else 0


def run_sanitize(argv: List[str]) -> int:
    """The ``sanitize`` subcommand: the differential sanitizer sweep.

    Runs the paper-figure queries over the university database plus a
    seeded batch of random plans through four modes — interpreted,
    compiled, compiled-with-licenses, compiled-with-sanitizer — and
    exits nonzero if any mode disagrees with the interpreter or any
    statically proven fact is violated at runtime.
    """
    from .workloads.plangen import N_PLANS, run_sanitize_sweep
    n_plans, seed, parallel, batched = N_PLANS, 0, 0, False
    it = iter(argv)
    for word in it:
        if word == "--plans":
            n_plans = int(next(it, "0"))
        elif word == "--seed":
            seed = int(next(it, "0"))
        elif word == "--parallel":
            parallel = int(next(it, "0"))
        elif word == "--batched":
            batched = True
        else:
            print("usage: python -m repro.cli sanitize "
                  "[--plans N] [--seed N] [--batched] [--parallel N]")
            return 2
    report = run_sanitize_sweep(n_plans=n_plans, seed=seed,
                                batched=batched, parallel=parallel)
    print(report.render())
    return 1 if report.failed else 0


def run_index(argv: List[str]) -> int:
    """The ``index`` subcommand: journaled index DDL on a durable
    database directory, without entering the shell."""
    usage = ("usage: python -m repro.cli index list <dir>\n"
             "       python -m repro.cli index create <dir> "
             "typed|keyed|ordered <name> [field]\n"
             "       python -m repro.cli index drop <dir> "
             "typed|keyed|ordered <name> [field]")
    if len(argv) < 2 or argv[0] not in ("list", "create", "drop"):
        print(usage)
        return 2
    action, directory = argv[0], argv[1]
    from .storage import open_database
    db = open_database(directory)
    try:
        if action == "list":
            print(render_indexes(db.indexes))
            return 0
        if len(argv) < 4:
            print(usage)
            return 2
        kind, name = argv[2].lower(), argv[3]
        try:
            stored = db.get(name)
        except KeyError:
            stored = None
        field = argv[4] if len(argv) > 4 else ""
        key = (None if action == "drop" and not field
               else _index_key(kind, field, stored))
        try:
            if action == "create":
                db.indexes.create_index(kind, name, key)
                print("created %s index on %s" % (kind, name))
            else:
                dropped = db.indexes.drop_index(kind, name, key)
                if not dropped:
                    print("no such index")
                    return 1
                print("dropped %s index on %s" % (kind, name))
        except (KeyError, ValueError, TypeError) as error:
            print("error: %s" % error)
            return 1
        return 0
    finally:
        wal = getattr(getattr(db, "journal", None), "wal", None)
        if wal is not None:
            wal.close()


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "index":
        return run_index(argv[1:])
    if argv and argv[0] == "bench":
        from .workloads.smoke import run_smoke
        return run_smoke(smoke="--smoke" in argv[1:] or len(argv) == 1)
    if argv and argv[0] == "lint":
        return run_lint(argv[1:])
    if argv and argv[0] == "sanitize":
        return run_sanitize(argv[1:])
    if argv and argv[0] == "serve":
        from .server.__main__ import main as serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "metrics":
        from .obs import REGISTRY
        if "--json" in argv[1:]:
            import json
            print(json.dumps(REGISTRY.to_json(), indent=2, sort_keys=True))
        else:
            print(REGISTRY.to_prometheus(), end="")
        return 0
    shell = Shell()
    banner = ("repro — the EXCESS algebra (Vandenberg & DeWitt, "
              "SIGMOD 1991)\nType .help for commands, .demo for sample "
              "data; end statements with ';'.")
    if argv and argv[0] == "--demo":
        print(shell.handle_meta(".demo"))
        argv = argv[1:]
    if not sys.stdin.isatty():
        # Batch mode: read everything, execute statement blocks.
        source = sys.stdin.read()
        for block in _split_statements(source):
            for output in shell.feed(block):
                print(output)
        return 0
    print(banner)
    buffer: List[str] = []
    while True:
        try:
            line = input(CONTINUATION if buffer else PROMPT)
        except EOFError:
            print()
            return 0
        if line.strip().startswith(".") and not buffer:
            try:
                print(shell.handle_meta(line.strip()))
            except EOFError:
                return 0
            continue
        buffer.append(line)
        if line.rstrip().endswith(";"):
            statement = "\n".join(buffer).rstrip().rstrip(";")
            buffer = []
            for output in shell.feed(statement):
                print(output)


def _split_statements(source: str) -> List[str]:
    """Split batch input on ';' terminators (dots pass through whole)."""
    blocks: List[str] = []
    for chunk in source.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        # Meta commands are line-oriented even in batch mode.
        lines = chunk.splitlines()
        plain: List[str] = []
        for line in lines:
            if line.strip().startswith("."):
                if plain:
                    blocks.append("\n".join(plain))
                    plain = []
                blocks.append(line.strip())
            else:
                plain.append(line)
        if plain:
            blocks.append("\n".join(plain))
    return blocks


if __name__ == "__main__":
    raise SystemExit(main())
