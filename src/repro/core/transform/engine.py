"""The rewrite engine: apply rules anywhere in a query tree.

The optimizer (Section 5) explores a space of equivalent query trees by
applying transformation rules at every node.  The engine provides:

* :func:`rewrites_at_root` — rule applications at one node;
* :func:`single_step_rewrites` — all trees one rewrite away (the rule
  may fire at any position, including inside SET_APPLY/GRP/COMP
  subscripts — "this ability to optimize within the subscripts of
  operators in a straightforward manner is extremely useful", §5);
* :class:`RewriteEngine` — bounded breadth-first exploration of the
  equivalence class, recording which rule produced each tree (the
  derivation), as the EXODUS optimizer generator's rule engine would.

The many-sortedness pays off exactly as the paper argues: a rule whose
pattern mentions SET_APPLY never even runs its matcher against an array
node, so the large rule count does not blow up the search.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..expr import Expr
from ..predicates import Predicate
from .rule import NO_FACTS, RewriteFacts, Rule


class RuleStatsCollector:
    """Per-rule matcher accounting for one optimization run.

    ``calls`` counts matcher invocations (every position the search
    tried the rule at), ``fires`` the applications that produced a
    replacement, ``seconds`` the wall time spent inside ``apply``.
    """

    __slots__ = ("rows",)

    def __init__(self):
        self.rows: Dict[str, Dict[str, Any]] = {}

    def observe(self, rule: Rule, fires: int, seconds: float) -> None:
        row = self.rows.get(rule.name)
        if row is None:
            row = self.rows[rule.name] = {
                "calls": 0, "fires": 0, "seconds": 0.0}
        row["calls"] += 1
        row["fires"] += fires
        row["seconds"] += seconds


def rewrites_at_root(expr: Expr, rules: Sequence[Rule],
                     facts: RewriteFacts = NO_FACTS,
                     collector: Optional[RuleStatsCollector] = None
                     ) -> List[Tuple[Rule, Expr]]:
    """All (rule, replacement) pairs produced at this node."""
    out: List[Tuple[Rule, Expr]] = []
    if collector is None:
        for rule in rules:
            for replacement in rule.apply(expr, facts):
                out.append((rule, replacement))
        return out
    for rule in rules:
        started = perf_counter()
        replacements = list(rule.apply(expr, facts))
        collector.observe(rule, len(replacements), perf_counter() - started)
        for replacement in replacements:
            out.append((rule, replacement))
    return out


def _positions(expr: Expr):
    """Every sub-expression with a rebuild function: yields
    (node, rebuild) where rebuild(replacement) produces the whole tree
    with that node replaced.  Includes predicate operand positions, so
    rules fire inside COMP subscripts too."""
    return _positions_under(expr, lambda replacement: replacement)


def _positions_under(expr: Expr, rebuild):
    yield expr, rebuild
    for field in expr._fields:
        value = getattr(expr, field)
        if isinstance(value, Expr):
            def inner_rebuild(repl, expr=expr, field=field, rebuild=rebuild):
                return rebuild(expr.replace(**{field: repl}))
            for pos in _positions_under(value, inner_rebuild):
                yield pos
        elif isinstance(value, Predicate):
            for pos in _pred_positions(expr, field, value, rebuild):
                yield pos
        elif isinstance(value, (list, tuple)):
            for index, item in enumerate(value):
                if not isinstance(item, Expr):
                    continue

                def seq_rebuild(repl, expr=expr, field=field, index=index,
                                value=value, rebuild=rebuild):
                    new_seq = list(value)
                    new_seq[index] = repl
                    if isinstance(value, tuple):
                        new_seq = tuple(new_seq)
                    return rebuild(expr.replace(**{field: new_seq}))
                for pos in _positions_under(item, seq_rebuild):
                    yield pos


def _pred_positions(parent: Expr, field: str, pred: Predicate, rebuild):
    """Positions of operand expressions inside a predicate tree."""
    for sub_field in pred._fields:
        value = getattr(pred, sub_field)
        if isinstance(value, Expr):
            def expr_rebuild(repl, parent=parent, field=field, pred=pred,
                             sub_field=sub_field, rebuild=rebuild):
                new_pred = type(pred)(**{
                    f: (repl if f == sub_field else getattr(pred, f))
                    for f in pred._fields})
                return rebuild(parent.replace(**{field: new_pred}))
            for pos in _positions_under(value, expr_rebuild):
                yield pos
        elif isinstance(value, Predicate):
            def pred_rebuild_factory(sub_field=sub_field, pred=pred,
                                     parent=parent, field=field,
                                     rebuild=rebuild):
                def assemble(new_inner_pred):
                    new_pred = type(pred)(**{
                        f: (new_inner_pred if f == sub_field
                            else getattr(pred, f))
                        for f in pred._fields})
                    return rebuild(parent.replace(**{field: new_pred}))
                return assemble
            assemble = pred_rebuild_factory()
            # Recurse by wrapping the inner predicate in a synthetic
            # holder: reuse _pred_positions through a tiny adaptor.
            for pos in _nested_pred_positions(value, assemble):
                yield pos


def _nested_pred_positions(pred: Predicate, assemble):
    for sub_field in pred._fields:
        value = getattr(pred, sub_field)
        if isinstance(value, Expr):
            def expr_rebuild(repl, pred=pred, sub_field=sub_field,
                             assemble=assemble):
                new_pred = type(pred)(**{
                    f: (repl if f == sub_field else getattr(pred, f))
                    for f in pred._fields})
                return assemble(new_pred)
            for pos in _positions_under(value, expr_rebuild):
                yield pos
        elif isinstance(value, Predicate):
            def inner_assemble(new_inner, pred=pred, sub_field=sub_field,
                               assemble=assemble):
                new_pred = type(pred)(**{
                    f: (new_inner if f == sub_field else getattr(pred, f))
                    for f in pred._fields})
                return assemble(new_pred)
            for pos in _nested_pred_positions(value, inner_assemble):
                yield pos


def single_step_rewrites(expr: Expr, rules: Sequence[Rule],
                         facts: RewriteFacts = NO_FACTS,
                         collector: Optional[RuleStatsCollector] = None
                         ) -> List[Tuple[Rule, Expr]]:
    """Every tree reachable by one rule application at any position."""
    out: List[Tuple[Rule, Expr]] = []
    seen = {expr}
    for node, rebuild in _positions(expr):
        for rule, replacement in rewrites_at_root(node, rules, facts,
                                                  collector):
            candidate = rebuild(replacement)
            if candidate not in seen:
                seen.add(candidate)
                out.append((rule, candidate))
    return out


class Derivation:
    """A tree in the explored space plus the path that produced it."""

    def __init__(self, expr: Expr, steps: Tuple[str, ...] = ()):
        self.expr = expr
        self.steps = steps

    def __repr__(self) -> str:
        return "Derivation(%s via %s)" % (self.expr.describe(),
                                          " -> ".join(self.steps) or "<input>")


class RewriteEngine:
    """Bounded breadth-first exploration of a query's equivalence class."""

    def __init__(self, rules: Sequence[Rule], facts: RewriteFacts = NO_FACTS,
                 max_trees: int = 2000, max_depth: int = 6, verifier=None):
        self.rules = list(rules)
        self.facts = facts
        self.max_trees = max_trees
        self.max_depth = max_depth
        #: Optional debug hook called as ``verifier(rule, before, after)``
        #: for every new tree the engine admits; a soundness gate (see
        #: :mod:`repro.core.analysis.soundness`) raises if the rewrite
        #: changed the inferred schema.
        self.verifier = verifier

    def explore(self, expr: Expr,
                collector: Optional[RuleStatsCollector] = None
                ) -> List[Derivation]:
        """All distinct trees reachable within the bounds, including the
        input itself (first)."""
        seen: Dict[Expr, Derivation] = {expr: Derivation(expr)}
        frontier: List[Derivation] = [seen[expr]]
        depth = 0
        while frontier and depth < self.max_depth and len(seen) < self.max_trees:
            next_frontier: List[Derivation] = []
            for derivation in frontier:
                for rule, candidate in single_step_rewrites(
                        derivation.expr, self.rules, self.facts, collector):
                    if candidate in seen:
                        continue
                    if self.verifier is not None:
                        self.verifier(rule, derivation.expr, candidate)
                    new = Derivation(candidate,
                                     derivation.steps + (rule.name,))
                    seen[candidate] = new
                    next_frontier.append(new)
                    if len(seen) >= self.max_trees:
                        break
                if len(seen) >= self.max_trees:
                    break
            frontier = next_frontier
            depth += 1
        return list(seen.values())
