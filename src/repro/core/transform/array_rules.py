"""Array transformation rules (Appendix §3, rules 16–22, plus analogs).

The paper notes "many of the multiset rules carry over to arrays; we do
not list those here" — the ``XA…`` rules implement those carried-over
analogs (combining successive ARR_APPLYs, distributing over ARR_CAT,
identity elimination) that the array benchmarks and examples use.

Indexing erratum: rules 18 and 20 as printed compose positions as
``m+p`` / ``j+m``; with 1-based inclusive bounds the correct composition
is ``m+p−1`` / ``j+m−1`` (the p-th element of A[m..n] is A[m+p−1]).  We
implement the correct arithmetic; the property tests would reject the
printed form.
"""

from __future__ import annotations

from typing import List

from ..expr import Expr, Input, substitute_input
from ..operators.arrays import (ArrApply, ArrCat, ArrCollapse, ArrDE,
                                ArrExtract, SubArr)
from .rule import NO_FACTS, RewriteFacts, Rule, contains_comp


def _is_int(position) -> bool:
    return isinstance(position, int)


class ArrCatAssociativity(Rule):
    """Rule 16: ARR_CAT(A, ARR_CAT(B, C)) = ARR_CAT(ARR_CAT(A, B), C)."""

    name = "arrcat-associativity"
    number = 16
    description = "Concatenation associativity"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, ArrCat):
            if isinstance(expr.right, ArrCat):
                a, b, c = expr.left, expr.right.left, expr.right.right
                out.append(ArrCat(ArrCat(a, b), c))
            if isinstance(expr.left, ArrCat):
                a, b, c = expr.left.left, expr.left.right, expr.right
                out.append(ArrCat(a, ArrCat(b, c)))
        return out


class ExtractFromConcatenation(Rule):
    """Rule 17: ARR_EXTRACT_n(ARR_CAT(A, B)) splits on n vs |A|.

    Needs |A| statically (a declared fact or an array constant): when
    n ≤ |A| the extraction reads A, otherwise position n−|A| of B.
    """

    name = "extract-from-concatenation"
    number = 17
    description = "Extracting an element from a concatenation"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if not (isinstance(expr, ArrExtract) and _is_int(expr.position)
                and isinstance(expr.source, ArrCat)):
            return []
        cat = expr.source
        length = facts.known_length(cat.left)
        if length is None:
            return []
        if expr.position <= length:
            return [ArrExtract(expr.position, cat.left)]
        return [ArrExtract(expr.position - length, cat.right)]


class ExtractFromSubarray(Rule):
    """Rule 18: ARR_EXTRACT_p(SUBARR_{m,n}(A)) = ARR_EXTRACT_{m+p−1}(A)
    when p ≤ n−m+1 (else the left side is out of bounds)."""

    name = "extract-from-subarray"
    number = 18
    description = "Extracting from a subarray"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if not (isinstance(expr, ArrExtract) and _is_int(expr.position)
                and isinstance(expr.source, SubArr)):
            return []
        sub = expr.source
        if not (_is_int(sub.lower) and _is_int(sub.upper)):
            return []
        p, m, n = expr.position, sub.lower, sub.upper
        if p > n - m + 1:
            return []
        return [ArrExtract(m + p - 1, sub.source)]


class ExtractFromArrApply(Rule):
    """Rule 19: ARR_EXTRACT_n(ARR_APPLY_E(A)) = E(ARR_EXTRACT_n(A));
    E is not (and contains no) COMP, so it cannot drop elements and
    shift positions."""

    name = "extract-from-arrapply"
    number = 19
    description = "Extracting from ARR_APPLY"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if not (isinstance(expr, ArrExtract)
                and isinstance(expr.source, ArrApply)):
            return []
        apply_node = expr.source
        if apply_node.type_filter is not None:
            return []
        if contains_comp(apply_node.body) or not apply_node.body.uses_input():
            return []
        extracted = ArrExtract(expr.position, apply_node.source)
        return [substitute_input(apply_node.body, extracted)]


class CombineSuccessiveSubarrays(Rule):
    """Rule 20: SUBARR_{m,n}(SUBARR_{j,k}(A)) = SUBARR_{j+m−1, j+n−1}(A)
    when n ≤ k−j+1 (the outer range must stay within the inner one)."""

    name = "combine-successive-subarrays"
    number = 20
    description = "Combining successive SUBARRs"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if not (isinstance(expr, SubArr) and isinstance(expr.source, SubArr)):
            return []
        outer, inner = expr, expr.source
        if not all(_is_int(b) for b in
                   (outer.lower, outer.upper, inner.lower, inner.upper)):
            return []
        m, n, j, k = outer.lower, outer.upper, inner.lower, inner.upper
        if n > k - j + 1:
            return []
        return [SubArr(j + m - 1, j + n - 1, inner.source)]


class SubarrayFromConcatenation(Rule):
    """Rule 21: SUBARR_{m,n}(ARR_CAT(A, B)) splits on m vs |A|.

    With m ≤ |A|:  ARR_CAT(SUBARR_{m,|A|}(A), SUBARR_{1, n−|A|}(B))
    (the right part degenerates to [] when n ≤ |A|, since an inverted
    range is empty).  With m > |A|:  SUBARR_{m−|A|, n−|A|}(B).
    """

    name = "subarray-from-concatenation"
    number = 21
    description = "Taking a subarray from a concatenation"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if not (isinstance(expr, SubArr) and _is_int(expr.lower)
                and _is_int(expr.upper) and isinstance(expr.source, ArrCat)):
            return []
        cat = expr.source
        length = facts.known_length(cat.left)
        if length is None:
            return []
        m, n = expr.lower, expr.upper
        if n < m:
            return []  # an inverted range is already the empty array
        if m <= length:
            if n <= length:
                return [SubArr(m, n, cat.left)]
            return [ArrCat(SubArr(m, length, cat.left),
                           SubArr(1, n - length, cat.right))]
        return [SubArr(m - length, n - length, cat.right)]


class SubarrayFromArrApply(Rule):
    """Rule 22: SUBARR_{m,n}(ARR_APPLY_E(A)) = ARR_APPLY_E(SUBARR_{m,n}(A));
    E contains no COMP."""

    name = "subarray-from-arrapply"
    number = 22
    description = "Taking a subarray from an ARR_APPLY"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, SubArr) and isinstance(expr.source, ArrApply):
            apply_node = expr.source
            if (apply_node.type_filter is None
                    and not contains_comp(apply_node.body)):
                out.append(ArrApply(
                    apply_node.body,
                    SubArr(expr.lower, expr.upper, apply_node.source)))
        if isinstance(expr, ArrApply) and isinstance(expr.source, SubArr):
            sub = expr.source
            if expr.type_filter is None and not contains_comp(expr.body):
                out.append(SubArr(sub.lower, sub.upper,
                                  ArrApply(expr.body, sub.source)))
        return out


class CombineSuccessiveArrApplys(Rule):
    """XA1: ARR_APPLY_{E1}(ARR_APPLY_{E2}(A)) = ARR_APPLY_{E1(E2)}(A) —
    the array analog of rule 15, with the same strictness guard."""

    name = "combine-successive-arrapplys"
    number = "XA1"
    description = "Combine successive ARR_APPLYs"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if not (isinstance(expr, ArrApply) and isinstance(expr.source, ArrApply)):
            return []
        outer, inner = expr, expr.source
        if outer.type_filter is not None or inner.type_filter is not None:
            return []
        if not outer.body.uses_input():
            return []
        return [ArrApply(substitute_input(outer.body, inner.body),
                         inner.source)]


class IdentityArrApplyElimination(Rule):
    """XA2: ARR_APPLY_{INPUT}(A) = A."""

    name = "identity-arrapply-elimination"
    number = "XA2"
    description = "An identity ARR_APPLY body does nothing"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if (isinstance(expr, ArrApply) and expr.type_filter is None
                and isinstance(expr.body, Input)):
            return [expr.source]
        return []


class DistributeArrApplyOverArrCat(Rule):
    """XA3: ARR_APPLY_E(ARR_CAT(A, B)) =
    ARR_CAT(ARR_APPLY_E(A), ARR_APPLY_E(B)) — rule 12's array analog."""

    name = "distribute-arrapply-arrcat"
    number = "XA3"
    description = "Distribute ARR_APPLY over ARR_CAT"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, ArrApply) and isinstance(expr.source, ArrCat):
            cat = expr.source
            out.append(ArrCat(
                ArrApply(expr.body, cat.left, type_filter=expr.type_filter),
                ArrApply(expr.body, cat.right, type_filter=expr.type_filter)))
        if (isinstance(expr, ArrCat) and isinstance(expr.left, ArrApply)
                and isinstance(expr.right, ArrApply)
                and expr.left.body == expr.right.body
                and expr.left.type_filter == expr.right.type_filter):
            out.append(ArrApply(
                expr.left.body, ArrCat(expr.left.source, expr.right.source),
                type_filter=expr.left.type_filter))
        return out


class ArrDEIdempotence(Rule):
    """XA4: ARR_DE(ARR_DE(A)) = ARR_DE(A)."""

    name = "arrde-idempotence"
    number = "XA4"
    description = "ARR_DE is idempotent"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if isinstance(expr, ArrDE) and isinstance(expr.source, ArrDE):
            return [expr.source]
        return []


class DistributeArrCollapseOverArrCat(Rule):
    """XA5: ARR_COLLAPSE(ARR_CAT(A, B)) =
    ARR_CAT(ARR_COLLAPSE(A), ARR_COLLAPSE(B)) — rule 11's array analog."""

    name = "distribute-arrcollapse-arrcat"
    number = "XA5"
    description = "Distribute ARR_COLLAPSE over ARR_CAT"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, ArrCollapse) and isinstance(expr.source, ArrCat):
            cat = expr.source
            out.append(ArrCat(ArrCollapse(cat.left), ArrCollapse(cat.right)))
        if (isinstance(expr, ArrCat) and isinstance(expr.left, ArrCollapse)
                and isinstance(expr.right, ArrCollapse)):
            out.append(ArrCollapse(
                ArrCat(expr.left.source, expr.right.source)))
        return out


class EmptyArrayIdentities(Rule):
    """XA6: ARR_CAT(A, []) = A = ARR_CAT([], A);  ARR_APPLY_E([]) = [];
    ARR_DE([]) = [];  the empty array is ARR_CAT's identity and every
    array operator's annihilator."""

    name = "empty-array-identities"
    number = "XA6"
    description = "Identity and annihilator laws for the empty array"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        from ...core.expr import Const
        from ..values import Arr
        empty = Const(Arr())
        out: List[Expr] = []
        if isinstance(expr, ArrCat):
            if expr.right == empty:
                out.append(expr.left)
            if expr.left == empty:
                out.append(expr.right)
        if isinstance(expr, ArrApply) and expr.source == empty:
            out.append(empty)
        if isinstance(expr, (ArrDE, ArrCollapse)) and expr.source == empty:
            out.append(empty)
        return out


class ArrDEOfSingleton(Rule):
    """XA7: ARR_DE(ARR(A)) = ARR(A) — a one-element array has no dups."""

    name = "arrde-of-singleton"
    number = "XA7"
    description = "ARR_DE of a singleton array is the identity"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        from .rule import NO_FACTS as _  # noqa: keep signature uniform
        from ..operators.arrays import ArrCreate as _ArrCreate
        if isinstance(expr, ArrDE) and isinstance(expr.source, _ArrCreate):
            return [expr.source]
        return []


class ArrCollapseOfSingleton(Rule):
    """XA8: ARR_COLLAPSE(ARR(A)) = A — collapsing a singleton nest."""

    name = "arrcollapse-of-singleton"
    number = "XA8"
    description = "ARR_COLLAPSE of a singleton ARR is the identity"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        from ..operators.arrays import ArrCreate as _ArrCreate
        if isinstance(expr, ArrCollapse) and isinstance(expr.source,
                                                        _ArrCreate):
            return [expr.source.source]
        return []


ARRAY_RULES = [
    ArrCatAssociativity(),
    ExtractFromConcatenation(),
    ExtractFromSubarray(),
    ExtractFromArrApply(),
    CombineSuccessiveSubarrays(),
    SubarrayFromConcatenation(),
    SubarrayFromArrApply(),
    CombineSuccessiveArrApplys(),
    IdentityArrApplyElimination(),
    DistributeArrApplyOverArrCat(),
    ArrDEIdempotence(),
    DistributeArrCollapseOverArrCat(),
    EmptyArrayIdentities(),
    ArrDEOfSingleton(),
    ArrCollapseOfSingleton(),
]
