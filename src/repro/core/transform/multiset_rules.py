"""Multiset transformation rules (Appendix §2, rules 1–15, plus extras).

Rules marked with an appendix number reproduce the paper's equation;
rules tagged ``X…`` are sound additions used by the worked examples of
Section 5 (DE absorption, operator-identity elimination) — the paper's
list "is not exhaustive" by its own statement.

Null caveat: rules 4 and 10 are stated by the paper over predicate
logic; in the presence of the ``unk`` truth value their two sides can
differ in how many ``unk`` occurrences the result holds.  They are exact
on the U-free fragment, which is what the property tests exercise (the
paper's own examples never produce UNK).
"""

from __future__ import annotations

from typing import List

from ..expr import Const, Expr, Input, substitute_input
from ..operators.derived import sigma, union
from ..operators.multiset import (DE, AddUnion, Cross, Diff, Grp, SetApply,
                                  SetCollapse, SetCreate)
from ..operators.tuples import TupCat, TupExtract
from ..predicates import Atom, Comp, Or, TruePred
from ..values import MultiSet
from .rule import (NO_FACTS, RewriteFacts, Rule, make_pairwise_body,
                   match_intersection, match_or, match_pairwise_body,
                   match_sigma, match_union, pair_side_only)


class BinaryAssociativity(Rule):
    """Rule 1: A <op> (B <op> C) = (A <op> B) <op> C for ⊎, ∪, ∩."""

    name = "binary-associativity"
    number = 1
    description = "Associativity of ⊎, ∪, and ∩"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        # ⊎ — a primitive node.
        if isinstance(expr, AddUnion):
            if isinstance(expr.left, AddUnion):
                a, b, c = expr.left.left, expr.left.right, expr.right
                out.append(AddUnion(a, AddUnion(b, c)))
            if isinstance(expr.right, AddUnion):
                a, b, c = expr.left, expr.right.left, expr.right.right
                out.append(AddUnion(AddUnion(a, b), c))
        # ∪ and ∩ — derived shapes.
        u = match_union(expr)
        if u:
            x, c = u
            inner = match_union(x)
            if inner:
                a, b = inner
                out.append(union(a, union(b, c)))
            right_inner = match_union(c)
            if right_inner:
                b, c2 = right_inner
                out.append(union(union(x, b), c2))
        i = match_intersection(expr)
        if i:
            x, c = i
            inner = match_intersection(x)
            if inner:
                a, b = inner
                out.append(Diff(a, Diff(a, Diff(b, Diff(b, c)))))
            right_inner = match_intersection(c)
            if right_inner:
                b, c2 = right_inner
                left = Diff(x, Diff(x, b))
                out.append(Diff(left, Diff(left, c2)))
        return out


class DistributeCrossOverAddUnion(Rule):
    """Rule 2: A × (B ⊎ C) = (A × B) ⊎ (A × C), and the left variant."""

    name = "distribute-cross-addunion"
    number = 2
    description = "Distribution of × over ⊎"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, Cross):
            if isinstance(expr.right, AddUnion):
                a, b, c = expr.left, expr.right.left, expr.right.right
                out.append(AddUnion(Cross(a, b), Cross(a, c)))
            if isinstance(expr.left, AddUnion):
                a, b, c = expr.left.left, expr.left.right, expr.right
                out.append(AddUnion(Cross(a, c), Cross(b, c)))
        if isinstance(expr, AddUnion):
            left, right = expr.left, expr.right
            if isinstance(left, Cross) and isinstance(right, Cross):
                if left.left == right.left:
                    out.append(Cross(left.left, AddUnion(left.right, right.right)))
                if left.right == right.right:
                    out.append(Cross(AddUnion(left.left, right.left), left.right))
        return out


_PAIR_FLATTEN = TupCat(TupExtract("field1", Input()),
                       TupExtract("field2", Input()))


class RelCrossCommutativity(Rule):
    """Rule 3: rel_×(A, B) = rel_×(B, A).

    rel_× is the derived shape SET_APPLY_{TUP_CAT(field1,field2)}(A × B);
    commutativity holds because TUP_CAT itself commutes (rule 23) under
    named-record tuple equality.
    """

    name = "rel-cross-commutativity"
    number = 3
    description = "Commutativity of the relational-like cartesian product"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if (isinstance(expr, SetApply) and expr.type_filter is None
                and expr.body == _PAIR_FLATTEN
                and isinstance(expr.source, Cross)):
            cross = expr.source
            return [SetApply(_PAIR_FLATTEN, Cross(cross.right, cross.left))]
        return []


class DisjunctiveSelectionSplit(Rule):
    """Rule 4: σ_{P1 ∨ P2}(A) = σ_{P1}(A) ∪ σ_{P2}(A)."""

    name = "disjunctive-selection-split"
    number = 4
    description = "Breaking down a disjunctive selection"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        matched = match_sigma(expr)
        if matched:
            pred, source = matched
            disjuncts = match_or(pred)
            if disjuncts:
                p1, p2 = disjuncts
                out.append(union(sigma(p1, source), sigma(p2, source)))
        # Reverse: σ_{P1}(A) ∪ σ_{P2}(A) → σ_{P1∨P2}(A).
        u = match_union(expr)
        if u:
            left, right = u
            ml, mr = match_sigma(left), match_sigma(right)
            if ml and mr and ml[1] == mr[1]:
                out.append(sigma(Or(ml[0], mr[0]), ml[1]))
        return out


class EliminateCrossUnderDE(Rule):
    """Rule 5: DE(SET_APPLY_E(A × B)) = DE(SET_APPLY_{E'}(A)); E applies
    only to A.

    Side condition (implicit in the paper): B must be non-empty,
    otherwise the left side is empty while the right is not — the rule
    only fires when the facts declare the eliminated input non-empty.
    """

    name = "eliminate-cross-under-de"
    number = 5
    description = "Eliminating a cross product under duplicate elimination"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if not (isinstance(expr, DE) and isinstance(expr.source, SetApply)):
            return []
        apply_node = expr.source
        if apply_node.type_filter is not None:
            return []
        if not isinstance(apply_node.source, Cross):
            return []
        cross = apply_node.source
        out: List[Expr] = []
        e1 = pair_side_only(apply_node.body, "1")
        if e1 is not None and facts.is_nonempty(cross.right):
            out.append(DE(SetApply(e1, cross.left)))
        e2 = pair_side_only(apply_node.body, "2")
        if e2 is not None and facts.is_nonempty(cross.left):
            out.append(DE(SetApply(e2, cross.right)))
        return out


class GroupingIsDuplicateFree(Rule):
    """Rule 6: DE(GRP_E(A)) = GRP_E(A) — grouping yields a set."""

    name = "grouping-is-duplicate-free"
    number = 6
    description = "The result of grouping is a set without duplicates"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if isinstance(expr, DE) and isinstance(expr.source, Grp):
            return [expr.source]
        return []


class DistributeDEOverCross(Rule):
    """Rule 7: DE(A × B) = DE(A) × DE(B)."""

    name = "distribute-de-cross"
    number = 7
    description = "Distribute DE across ×"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, DE) and isinstance(expr.source, Cross):
            out.append(Cross(DE(expr.source.left), DE(expr.source.right)))
        if (isinstance(expr, Cross) and isinstance(expr.left, DE)
                and isinstance(expr.right, DE)):
            out.append(DE(Cross(expr.left.source, expr.right.source)))
        return out


class DEBeforeOrAfterGrouping(Rule):
    """Rule 8: GRP_E(DE(A)) = SET_APPLY_{DE}(GRP_E(A)).

    Duplicates can be removed before grouping or within each group —
    Example 1 of Section 5 uses this to shrink the DE input from
    |S|·|E| occurrences to |S|+|E|.
    """

    name = "de-before-or-after-grouping"
    number = 8
    description = "Duplicates removed before or after a set is grouped"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, Grp) and isinstance(expr.source, DE):
            out.append(SetApply(DE(Input()), Grp(expr.by, expr.source.source)))
        if (isinstance(expr, SetApply) and expr.type_filter is None
                and expr.body == DE(Input())
                and isinstance(expr.source, Grp)):
            grp = expr.source
            out.append(Grp(grp.by, DE(grp.source)))
        return out


class GroupOneSideOfCross(Rule):
    """Rule 9: GRP_E(A × B) = SET_APPLY_{INPUT × B}(GRP_{E'}(A)); E
    applies only to A (and, implicitly, B is non-empty)."""

    name = "group-one-side-of-cross"
    number = 9
    description = "Group one input of a × and recombine per group"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if not (isinstance(expr, Grp) and isinstance(expr.source, Cross)):
            return []
        cross = expr.source
        if cross.right.uses_input():
            return []
        e1 = pair_side_only(expr.by, "1")
        if e1 is None or not facts.is_nonempty(cross.right):
            return []
        return [SetApply(Cross(Input(), cross.right), Grp(e1, cross.left))]


def _nonempty_comp(body: Expr) -> Comp:
    """COMP that keeps *body*'s result only when it is a non-empty
    multiset (empty groups must vanish, matching σ-then-GRP)."""
    return Comp(Atom(Input(), "!=", Const(MultiSet())), body)


class GroupingPastSelection(Rule):
    """Rule 10: GRP_{E1}(σ_{E2}(A)) = SET_APPLY_{σ_{E2}(INPUT)}(GRP_{E1}(A)).

    Erratum handled: as printed, the right side retains groups that the
    selection empties entirely, which the left side never produces.  The
    generated right side therefore filters empty groups with a COMP —
    expressible in the algebra and exactly equal to the left side.
    """

    name = "grouping-past-selection"
    number = 10
    description = "Push grouping ahead of a selection"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, Grp):
            matched = match_sigma(expr.source)
            if matched:
                pred, source = matched
                body = _nonempty_comp(sigma(pred, Input()))
                out.append(SetApply(body, Grp(expr.by, source)))
        # Reverse: recognise the canonical right-hand shape.
        if (isinstance(expr, SetApply) and expr.type_filter is None
                and isinstance(expr.source, Grp)
                and isinstance(expr.body, Comp)):
            comp = expr.body
            if comp == _nonempty_comp(comp.source):
                matched = match_sigma(comp.source)
                if matched and isinstance(matched[1], Input):
                    pred = matched[0]
                    grp = expr.source
                    out.append(Grp(grp.by, sigma(pred, grp.source)))
        return out


class DistributeCollapseOverAddUnion(Rule):
    """Rule 11: SET_COLLAPSE(A ⊎ B) = SET_COLLAPSE(A) ⊎ SET_COLLAPSE(B)."""

    name = "distribute-collapse-addunion"
    number = 11
    description = "Distribute SET_COLLAPSE over ⊎"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, SetCollapse) and isinstance(expr.source, AddUnion):
            au = expr.source
            out.append(AddUnion(SetCollapse(au.left), SetCollapse(au.right)))
        if (isinstance(expr, AddUnion) and isinstance(expr.left, SetCollapse)
                and isinstance(expr.right, SetCollapse)):
            out.append(SetCollapse(
                AddUnion(expr.left.source, expr.right.source)))
        return out


class DistributeSetApplyOverAddUnion(Rule):
    """Rule 12: SET_APPLY_E(A ⊎ B) = SET_APPLY_E(A) ⊎ SET_APPLY_E(B)."""

    name = "distribute-setapply-addunion"
    number = 12
    description = "Distribute SET_APPLY over ⊎"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, SetApply) and isinstance(expr.source, AddUnion):
            au = expr.source
            out.append(AddUnion(
                SetApply(expr.body, au.left, type_filter=expr.type_filter),
                SetApply(expr.body, au.right, type_filter=expr.type_filter)))
        if (isinstance(expr, AddUnion) and isinstance(expr.left, SetApply)
                and isinstance(expr.right, SetApply)
                and expr.left.body == expr.right.body
                and expr.left.type_filter == expr.right.type_filter):
            out.append(SetApply(expr.left.body,
                                AddUnion(expr.left.source, expr.right.source),
                                type_filter=expr.left.type_filter))
        return out


class DistributeSetApplyOverCross(Rule):
    """Rule 13: SET_APPLY_E(A × B) = SET_APPLY_{E1}(A) × SET_APPLY_{E2}(B)
    when E = E1(E2) factors into independent per-side maps that rebuild
    the pair."""

    name = "distribute-setapply-cross"
    number = 13
    description = "Distribute SET_APPLY over ×"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if (isinstance(expr, SetApply) and expr.type_filter is None
                and isinstance(expr.source, Cross)):
            factored = match_pairwise_body(expr.body)
            if factored:
                e1, e2 = factored
                cross = expr.source
                out.append(Cross(SetApply(e1, cross.left),
                                 SetApply(e2, cross.right)))
        if (isinstance(expr, Cross) and isinstance(expr.left, SetApply)
                and isinstance(expr.right, SetApply)
                and expr.left.type_filter is None
                and expr.right.type_filter is None):
            out.append(SetApply(
                make_pairwise_body(expr.left.body, expr.right.body),
                Cross(expr.left.source, expr.right.source)))
        return out


class SetApplyInsideCollapse(Rule):
    """Rule 14: SET_APPLY_E(SET_COLLAPSE(A)) =
    SET_COLLAPSE(SET_APPLY_{SET_APPLY_E(INPUT)}(A))."""

    name = "setapply-inside-collapse"
    number = 14
    description = "Push SET_APPLY inside a SET_COLLAPSE"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, SetApply) and isinstance(expr.source, SetCollapse):
            inner = SetApply(expr.body, Input(), type_filter=expr.type_filter)
            out.append(SetCollapse(SetApply(inner, expr.source.source)))
        if isinstance(expr, SetCollapse) and isinstance(expr.source, SetApply):
            outer_apply = expr.source
            if (outer_apply.type_filter is None
                    and isinstance(outer_apply.body, SetApply)
                    and isinstance(outer_apply.body.source, Input)):
                inner = outer_apply.body
                out.append(SetApply(inner.body, SetCollapse(outer_apply.source),
                                    type_filter=inner.type_filter))
        return out


class CombineSuccessiveSetApplys(Rule):
    """Rule 15: SET_APPLY_{E1}(SET_APPLY_{E2}(A)) = SET_APPLY_{E1(E2)}(A).

    The composition E1(E2) is INPUT-substitution.  Guard: E1 must
    actually consume INPUT (a constant body would resurrect occurrences
    that E2 mapped to dne), and neither apply may carry a type filter
    (the outer filter would inspect E2-results, not base occurrences).
    """

    name = "combine-successive-setapplys"
    number = 15
    description = "Combine successive SET_APPLYs"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if not (isinstance(expr, SetApply) and isinstance(expr.source, SetApply)):
            return []
        outer, inner = expr, expr.source
        if outer.type_filter is not None or inner.type_filter is not None:
            return []
        if not outer.body.uses_input():
            return []
        return [SetApply(substitute_input(outer.body, inner.body),
                         inner.source)]


class DEIdempotence(Rule):
    """X1: DE(DE(A)) = DE(A)."""

    name = "de-idempotence"
    number = "X1"
    description = "DE is idempotent"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if isinstance(expr, DE) and isinstance(expr.source, DE):
            return [expr.source]
        return []


class DEAbsorbsInputDuplicates(Rule):
    """X2: DE(SET_APPLY_E(A)) = DE(SET_APPLY_E(DE(A))).

    Sound unconditionally: deduplicating the input cannot change the
    *set* of results.  This is the engine behind Example 1's second
    transformation (Figure 8), pushing DE below the join inputs.
    """

    name = "de-absorbs-input-duplicates"
    number = "X2"
    description = "DE of a SET_APPLY may dedupe the apply's input first"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, DE) and isinstance(expr.source, SetApply):
            apply_node = expr.source
            if not isinstance(apply_node.source, DE):
                out.append(DE(apply_node.replace(source=DE(apply_node.source))))
            else:
                out.append(DE(apply_node.replace(
                    source=apply_node.source.source)))
        return out


class DEDistributesIntoAddUnion(Rule):
    """X3: DE(A ⊎ B) = DE(DE(A) ⊎ DE(B))."""

    name = "de-distributes-into-addunion"
    number = "X3"
    description = "DE of a ⊎ may dedupe the inputs first"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if isinstance(expr, DE) and isinstance(expr.source, AddUnion):
            au = expr.source
            if not (isinstance(au.left, DE) and isinstance(au.right, DE)):
                return [DE(AddUnion(DE(au.left), DE(au.right)))]
            return [DE(AddUnion(au.left.source, au.right.source))]
        return []


class IdentitySetApplyElimination(Rule):
    """X5: SET_APPLY_{INPUT}(A) = A."""

    name = "identity-setapply-elimination"
    number = "X5"
    description = "An identity SET_APPLY body does nothing"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if (isinstance(expr, SetApply) and expr.type_filter is None
                and isinstance(expr.body, Input)):
            return [expr.source]
        return []


class TrueCompElimination(Rule):
    """X6: COMP_{true}(A) = A."""

    name = "true-comp-elimination"
    number = "X6"
    description = "COMP with the constant-true predicate is the identity"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if isinstance(expr, Comp) and expr.pred == TruePred():
            return [expr.source]
        return []


class SigmaOverDifference(Rule):
    """X7: σ_P(A − B) = σ_P(A) − σ_P(B).

    Selection distributes over multiset difference because COMP is a
    per-occurrence test: an element's surviving count max(0, a−b) is
    filtered identically on both sides.  (U-free fragment, like rules
    4/10/27: unk outputs of distinct elements pool into one unk count.)
    """

    name = "sigma-over-difference"
    number = "X7"
    description = "Selection distributes over multiset difference"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        matched = match_sigma(expr)
        if matched and isinstance(matched[1], Diff):
            pred, diff = matched
            out.append(Diff(sigma(pred, diff.left), sigma(pred, diff.right)))
        if isinstance(expr, Diff):
            ml, mr = match_sigma(expr.left), match_sigma(expr.right)
            if ml and mr and ml[0] == mr[0]:
                out.append(sigma(ml[0], Diff(ml[1], mr[1])))
        return out


class CollapseOfSingleton(Rule):
    """X8: SET_COLLAPSE(SET(A)) = A — collapsing a singleton nest."""

    name = "collapse-of-singleton"
    number = "X8"
    description = "SET_COLLAPSE of a singleton SET is the identity"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if isinstance(expr, SetCollapse) and isinstance(expr.source, SetCreate):
            return [expr.source.source]
        return []


class DEOfSingleton(Rule):
    """X9: DE(SET(A)) = SET(A) — a singleton has no duplicates."""

    name = "de-of-singleton"
    number = "X9"
    description = "DE of a singleton SET is the identity"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if isinstance(expr, DE) and isinstance(expr.source, SetCreate):
            return [expr.source]
        return []


class SelfDifferenceIsEmpty(Rule):
    """X10: A − A = ∅ (A must be deterministic to evaluate once)."""

    name = "self-difference-is-empty"
    number = "X10"
    description = "Subtracting a multiset from itself yields the empty set"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        from .rule import is_deterministic
        if (isinstance(expr, Diff) and expr.left == expr.right
                and is_deterministic(expr.left)
                and not expr.left.uses_input()):
            return [Const(MultiSet())]
        return []


class EmptySetIdentities(Rule):
    """X11: A ⊎ ∅ = A,  A − ∅ = A,  A × ∅ = ∅,  SET_APPLY_E(∅) = ∅."""

    name = "empty-set-identities"
    number = "X11"
    description = "Identity and annihilator laws for the empty multiset"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        empty = Const(MultiSet())
        out: List[Expr] = []
        if isinstance(expr, AddUnion):
            if expr.right == empty:
                out.append(expr.left)
            if expr.left == empty:
                out.append(expr.right)
        if isinstance(expr, Diff) and expr.right == empty:
            out.append(expr.left)
        if isinstance(expr, Cross) and empty in (expr.left, expr.right):
            out.append(empty)
        if isinstance(expr, SetApply) and expr.source == empty:
            out.append(empty)
        if isinstance(expr, (DE, SetCollapse, Grp)) and expr.source == empty:
            out.append(empty)
        return out


MULTISET_RULES = [
    BinaryAssociativity(),
    DistributeCrossOverAddUnion(),
    RelCrossCommutativity(),
    DisjunctiveSelectionSplit(),
    EliminateCrossUnderDE(),
    GroupingIsDuplicateFree(),
    DistributeDEOverCross(),
    DEBeforeOrAfterGrouping(),
    GroupOneSideOfCross(),
    GroupingPastSelection(),
    DistributeCollapseOverAddUnion(),
    DistributeSetApplyOverAddUnion(),
    DistributeSetApplyOverCross(),
    SetApplyInsideCollapse(),
    CombineSuccessiveSetApplys(),
    DEIdempotence(),
    DEAbsorbsInputDuplicates(),
    DEDistributesIntoAddUnion(),
    IdentitySetApplyElimination(),
    TrueCompElimination(),
    SigmaOverDifference(),
    CollapseOfSingleton(),
    DEOfSingleton(),
    SelfDifferenceIsEmpty(),
    EmptySetIdentities(),
]
