"""Tuple, reference, and predicate rules (Appendix §4, rules 23–28).

Rule 26 — "push any expression inside COMP" — is the powerful
generalization the paper singles out (it subsumes commuting relational
selections and projections).  The equation is

    E(COMP_{P1}(A)) = COMP_{P2}(E(A))    with P1(INPUT) = P2(E(INPUT)).

Read right-to-left the rewrite is purely syntactic (compose P2 with E).
Read left-to-right it requires *factoring* P1 through E; two sound
factorizations are implemented:

* subtree factoring — occurrences of E itself inside P1's operands are
  replaced by INPUT (P1 literally re-computed E);
* field-map factoring — when E rebuilds a tuple field-wise (a π, a
  TUP_CAT of TUP[f](e_f), or a mix), each occurrence of e_f inside P1
  becomes INPUT.f.  This is exactly the Example-2 rewrite (Figure 11),
  where E = π_{name, DEREF(dept)} lets the COMP test the already
  dereferenced department so it "needs to access the fields of dept"
  only once.

Both factorizations are verified by substituting back and comparing
structurally, so an unsound factoring can never be emitted.

Null caveat on rule 27: with three-valued predicates the merged
conjunction can turn an ``unk`` outcome into ``dne`` when the other
conjunct is false; the rule is exact on the U-free fragment (see the
module docstring of multiset_rules).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..expr import Const, Expr, Input, substitute_input
from ..operators.refs import Deref, RefOp
from ..operators.tuples import Pi, TupCat, TupCreate, TupExtract
from ..predicates import And, Comp, Predicate
from .rule import NO_FACTS, RewriteFacts, Rule, is_deterministic, static_fields


class TupCatCommutativity(Rule):
    """Rule 23: TUP_CAT(A, B) = TUP_CAT(B, A) (tuples are named records)."""

    name = "tupcat-commutativity"
    number = 23
    description = "Commutativity of TUP_CAT"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if isinstance(expr, TupCat):
            return [TupCat(expr.right, expr.left)]
        return []


class DistributePiOverTupCat(Rule):
    """Rule 24: π_L(TUP_CAT(A, B)) = TUP_CAT(π_{L1}(A), π_{L2}(B))
    where L splits into A-fields and B-fields (statically known)."""

    name = "distribute-pi-tupcat"
    number = 24
    description = "Distribute π over TUP_CAT"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, Pi) and isinstance(expr.source, TupCat):
            cat = expr.source
            left_fields = static_fields(cat.left)
            right_fields = static_fields(cat.right)
            if left_fields is not None and right_fields is not None:
                l1 = [n for n in expr.names if n in left_fields]
                l2 = [n for n in expr.names if n in right_fields]
                if len(l1) + len(l2) == len(expr.names):
                    out.append(TupCat(Pi(l1, cat.left), Pi(l2, cat.right)))
        if (isinstance(expr, TupCat) and isinstance(expr.left, Pi)
                and isinstance(expr.right, Pi)):
            out.append(Pi(tuple(expr.left.names) + tuple(expr.right.names),
                          TupCat(expr.left.source, expr.right.source)))
        return out


class ExtractFieldFromTupCat(Rule):
    """Rule 25: TUP_EXTRACT_f(TUP_CAT(A, B)) = TUP_EXTRACT_f(A) when f
    is statically a field of A (symmetrically for B)."""

    name = "extract-field-from-tupcat"
    number = 25
    description = "Extracting a field from a TUP_CAT"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if not (isinstance(expr, TupExtract)
                and isinstance(expr.source, TupCat)):
            return []
        cat = expr.source
        out: List[Expr] = []
        left_fields = static_fields(cat.left)
        if left_fields is not None and expr.field in left_fields:
            out.append(TupExtract(expr.field, cat.left))
        right_fields = static_fields(cat.right)
        if right_fields is not None and expr.field in right_fields:
            out.append(TupExtract(expr.field, cat.right))
        return out


# ---------------------------------------------------------------------------
# Rule 26 machinery.
# ---------------------------------------------------------------------------

def _replace_subtree(expr: Expr, pattern: Expr, replacement: Expr) -> Expr:
    """Replace occurrences of *pattern* (structural equality) in the
    non-binding positions of *expr*.  Binding bodies rebind INPUT, so a
    textual match inside one would mean something different."""
    if expr == pattern:
        return replacement
    updates = {}
    for field in expr._fields:
        if field in expr._binding_fields:
            continue
        value = getattr(expr, field)
        if isinstance(value, Expr):
            new = _replace_subtree(value, pattern, replacement)
            if new is not value:
                updates[field] = new
        elif isinstance(value, (list, tuple)):
            new_seq = [_replace_subtree(v, pattern, replacement)
                       if isinstance(v, Expr) else v for v in value]
            if any(a is not b for a, b in zip(new_seq, value)):
                updates[field] = tuple(new_seq) if isinstance(
                    value, tuple) else list(new_seq)
    return expr.replace(**updates) if updates else expr


def field_map(expr: Expr) -> Optional[Dict[str, Expr]]:
    """If *expr* rebuilds a tuple field-wise from INPUT, return
    {field: producing-expression}; otherwise None.

    Recognised shapes: TUP[f](e), π_L(INPUT), and TUP_CAT combinations
    of those.
    """
    if isinstance(expr, TupCreate):
        return {expr.field: expr.source}
    if isinstance(expr, Pi) and isinstance(expr.source, Input):
        return {name: TupExtract(name, Input()) for name in expr.names}
    if isinstance(expr, TupCat):
        left = field_map(expr.left)
        right = field_map(expr.right)
        if left is None or right is None:
            return None
        if set(left) & set(right):
            return None
        merged = dict(left)
        merged.update(right)
        return merged
    return None


def _pred_substitute(pred: Predicate, replacement: Expr) -> Predicate:
    """P[INPUT := replacement] applied to every operand expression."""
    return pred.map_exprs(lambda e: substitute_input(e, replacement))


def _factor_pred(pred: Predicate, e_in: Expr) -> Optional[Predicate]:
    """Find P2 with P1 = P2(E(INPUT)), or None.

    Tries subtree factoring, then field-map factoring; the candidate is
    verified by substituting E back in and comparing with P1.
    """
    # Subtree factoring: replace occurrences of E itself by INPUT.
    candidate = pred.map_exprs(
        lambda e: _replace_subtree(e, e_in, Input()))
    if candidate != pred and _pred_substitute(candidate, e_in) == pred:
        return candidate
    # Field-map factoring: replace each field-producing expression e_f
    # by INPUT.f, then verify by mapping INPUT.f back to e_f (the
    # semantic identity TUP_EXTRACT_f(E(x)) = e_f(x) justifies it).
    mapping = field_map(e_in)
    if mapping:
        ordered = sorted(mapping.items(),
                         key=lambda item: item[1].size(), reverse=True)

        def rewrite(e: Expr) -> Expr:
            for name, producer in ordered:
                e = _replace_subtree(e, producer, TupExtract(name, Input()))
            return e

        def back(e: Expr) -> Expr:
            for name, producer in ordered:
                e = _replace_subtree(e, TupExtract(name, Input()), producer)
            return e

        candidate = pred.map_exprs(rewrite)
        if candidate != pred and candidate.map_exprs(back) == pred:
            # Reject leftover raw INPUT uses: P2 may only see the
            # rebuilt tuple through its fields.
            probe = candidate.map_exprs(
                lambda e: _replace_subtree(
                    _strip_field_reads(e, mapping), Input(), Input()))
            if not any(op.uses_input()
                       for op in probe.deep_exprs()):
                return candidate
    return None


def _strip_field_reads(expr: Expr, mapping) -> Expr:
    """Replace every INPUT.f (f in mapping) with a constant, exposing
    any remaining raw INPUT reference."""
    for name in mapping:
        expr = _replace_subtree(expr, TupExtract(name, Input()), Const(0))
    return expr


def _one_layer(expr: Expr):
    """If *expr* reads exactly one INPUT-carrying sub-expression in a
    non-binding position, yield (field, child, E_in) where E_in is the
    node as a function of that child."""
    carriers = []
    for field in expr._fields:
        if field in expr._binding_fields:
            continue
        value = getattr(expr, field)
        if isinstance(value, Expr):
            carriers.append((field, value))
    if len(carriers) == 1:
        field, child = carriers[0]
        return field, child, expr.replace(**{field: Input()})
    # Multi-child nodes qualify when exactly one child could carry data
    # dependent on the COMP; require the others to be INPUT-free and
    # deterministic so duplication/reordering is safe.
    candidates = [(f, c) for f, c in carriers if isinstance(c, Comp)]
    if len(candidates) == 1:
        field, child = candidates[0]
        others_ok = all(
            is_deterministic(c) and not c.uses_input()
            for f, c in carriers if f != field)
        if others_ok:
            return field, child, expr.replace(**{field: Input()})
    return None


def _non_binding_subtrees(expr: Expr):
    """All sub-expressions reachable without crossing a binding field
    (the positions where a COMP's value flows into this expression)."""
    for field in expr._fields:
        if field in expr._binding_fields:
            continue
        value = getattr(expr, field)
        children = []
        if isinstance(value, Expr):
            children = [value]
        elif isinstance(value, (list, tuple)):
            children = [v for v in value if isinstance(v, Expr)]
        for child in children:
            yield child
            for sub in _non_binding_subtrees(child):
                yield sub


class PushExpressionInsideComp(Rule):
    """Rule 26 (left-to-right): E(COMP_{P1}(A)) = COMP_{P2}(E(A)).

    E may read its input several times (a field-map rebuild does), so
    the match looks for a COMP subtree c such that replacing *every*
    occurrence of c by INPUT leaves an expression E with P1 = P2 ∘ E for
    some P2 (see the factorizations in the module docstring).  E and the
    COMP's own source must be deterministic (duplicating them is safe)
    and E strict in INPUT (dne flows through).
    """

    name = "push-expression-inside-comp"
    number = 26
    description = "Push any expression inside COMP"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if isinstance(expr, (Comp, Input)):
            return []
        candidates = []
        for node in _non_binding_subtrees(expr):
            if isinstance(node, Comp) and node not in candidates:
                candidates.append(node)
        out: List[Expr] = []
        for comp in candidates:
            e_in = _replace_subtree(expr, comp, Input())
            if not (e_in.uses_input() and is_deterministic(e_in)
                    and is_deterministic(comp.source)):
                continue
            p2 = _factor_pred(comp.pred, e_in)
            if p2 is None:
                continue
            out.append(Comp(p2, _replace_subtree(expr, comp, comp.source)))
        return out


class PullExpressionOutOfComp(Rule):
    """Rule 26 (right-to-left): COMP_{P2}(E(A)) = E(COMP_{P1}(A)) with
    P1 = P2[INPUT := E(INPUT)] — always constructible syntactically."""

    name = "pull-expression-out-of-comp"
    number = "26R"
    description = "Pull an expression back out of COMP"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        if not isinstance(expr, Comp):
            return []
        inner = expr.source
        if isinstance(inner, (Comp, Input, Const)):
            return []
        layer = _one_layer(inner)
        if layer is None:
            return []
        field, child, e_in = layer
        if isinstance(child, Comp):
            return []  # stacked COMPs belong to rule 27
        if not (is_deterministic(e_in) and e_in.uses_input()):
            return []
        p1 = _pred_substitute(expr.pred, e_in)
        return [inner.replace(**{field: Comp(p1, child)})]


class CombineSuccessiveComps(Rule):
    """Rule 27: COMP_{P1}(COMP_{P2}(A)) = COMP_{P2 ∧ P1}(A).

    The inner predicate is placed first in the conjunction (it was
    evaluated first); ∧ is commutative on the U-free fragment.
    """

    name = "combine-successive-comps"
    number = 27
    description = "Combine successive COMPs into a conjunction"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, Comp) and isinstance(expr.source, Comp):
            inner = expr.source
            out.append(Comp(And(inner.pred, expr.pred), inner.source))
        if isinstance(expr, Comp) and isinstance(expr.pred, And):
            conj = expr.pred
            out.append(Comp(conj.right, Comp(conj.left, expr.source)))
        return out


class RefDerefInvertibility(Rule):
    """Rule 28: DEREF(REF(A)) = REF(DEREF(A)) = A."""

    name = "ref-deref-invertibility"
    number = 28
    description = "Invertibility of REF and DEREF"

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        out: List[Expr] = []
        if isinstance(expr, Deref) and isinstance(expr.source, RefOp):
            out.append(expr.source.source)
        if isinstance(expr, RefOp) and isinstance(expr.source, Deref):
            out.append(expr.source.source)
        return out


OBJECT_RULES = [
    TupCatCommutativity(),
    DistributePiOverTupCat(),
    ExtractFieldFromTupCat(),
    PushExpressionInsideComp(),
    PullExpressionOutOfComp(),
    CombineSuccessiveComps(),
    RefDerefInvertibility(),
]
