"""Transformation rules and the rewrite engine (Section 5 + Appendix).

``ALL_RULES`` reproduces the appendix's list: rules 1–15 (multisets),
16–22 (arrays), 23–28 (tuples, references, predicates), plus the sound
carried-over analogs and identities (tags ``X…``/``XA…``) that the
paper's worked examples rely on but its non-exhaustive listing omits.
"""

from .array_rules import ARRAY_RULES
from .engine import (Derivation, RewriteEngine, RuleStatsCollector,
                     rewrites_at_root, single_step_rewrites)
from .multiset_rules import MULTISET_RULES
from .object_rules import OBJECT_RULES
from .rule import NO_FACTS, RewriteFacts, Rule

ALL_RULES = MULTISET_RULES + ARRAY_RULES + OBJECT_RULES


def rule_by_number(number) -> Rule:
    """Look up a rule by its appendix number (int) or tag (str)."""
    for rule in ALL_RULES:
        if rule.number == number:
            return rule
    raise KeyError("no rule numbered %r" % (number,))


__all__ = [
    "ALL_RULES", "MULTISET_RULES", "ARRAY_RULES", "OBJECT_RULES",
    "Rule", "RewriteFacts", "NO_FACTS",
    "RewriteEngine", "Derivation", "RuleStatsCollector",
    "rewrites_at_root", "single_step_rewrites", "rule_by_number",
]
