"""Rule framework for algebraic transformations (Section 5 + Appendix).

A :class:`Rule` rewrites a *single node* of a query tree into zero or
more semantically equivalent nodes; the engine (see
:mod:`repro.core.transform.engine`) applies rules at every position.
Rules fire bidirectionally where that is sound, so one Rule object
covers both reading directions of the paper's equation.

Several appendix rules carry side conditions the paper leaves implicit
(they state equations over abstract instances, and the optimizer "knows"
catalog facts).  :class:`RewriteFacts` carries the statically known
facts a rule may need:

* *non-emptiness* of an input (rules 5 and 9 are only valid when the
  eliminated/retained input is non-empty);
* *known length* of an array input (rules 17 and 21 split on n ≤ |A|).

A rule that needs a fact simply does not fire without it — rewrites are
only ever generated when provably sound.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional

from ..expr import Const, Expr, Input, substitute_input
from ..operators.multiset import AddUnion, Diff, SetApply
from ..operators.tuples import Pi, TupCat, TupCreate, TupExtract
from ..predicates import And, Comp, Not, Predicate
from ..values import Arr, MultiSet, Tup


class RewriteFacts:
    """Catalog facts available to the rewriter.

    Facts are keyed by structural expression equality, so declaring
    ``nonempty(Named("Employees"))`` covers every occurrence of that
    leaf in the tree.
    """

    def __init__(self):
        self._nonempty: set = set()
        self._lengths: Dict[Expr, int] = {}

    def declare_nonempty(self, expr: Expr) -> "RewriteFacts":
        self._nonempty.add(expr)
        return self

    def declare_length(self, expr: Expr, length: int) -> "RewriteFacts":
        self._lengths[expr] = length
        return self

    def is_nonempty(self, expr: Expr) -> bool:
        if expr in self._nonempty:
            return True
        if isinstance(expr, Const):
            value = expr.value
            if isinstance(value, (MultiSet, Arr)):
                return len(value) > 0
        return False

    def known_length(self, expr: Expr) -> Optional[int]:
        if expr in self._lengths:
            return self._lengths[expr]
        if isinstance(expr, Const) and isinstance(expr.value, Arr):
            return len(expr.value)
        return None


#: Shared empty fact set for fact-free rewriting.
NO_FACTS = RewriteFacts()


class Rule:
    """A named, numbered rewrite rule.

    Subclasses implement :meth:`apply`, returning the list of equivalent
    replacements for *expr* (possibly empty).  ``number`` is the
    appendix rule number when the rule reproduces one; original
    additions use a string tag like ``"X2"``.
    """

    name: str = "rule"
    number: Any = None
    description: str = ""

    def apply(self, expr: Expr, facts: RewriteFacts = NO_FACTS) -> List[Expr]:
        raise NotImplementedError

    def __repr__(self) -> str:
        tag = " #%s" % self.number if self.number is not None else ""
        return "<Rule %s%s>" % (self.name, tag)


# ---------------------------------------------------------------------------
# Shape recognisers for derived operators and × pair bodies.
# ---------------------------------------------------------------------------

def match_union(expr: Expr) -> Optional[tuple]:
    """Recognise the derived ∪ shape (A − B) ⊎ B; returns (A, B)."""
    if (isinstance(expr, AddUnion) and isinstance(expr.left, Diff)
            and expr.left.right == expr.right):
        return (expr.left.left, expr.right)
    return None


def match_intersection(expr: Expr) -> Optional[tuple]:
    """Recognise the derived ∩ shape A − (A − B); returns (A, B)."""
    if (isinstance(expr, Diff) and isinstance(expr.right, Diff)
            and expr.right.left == expr.left):
        return (expr.left, expr.right.right)
    return None


def match_or(pred: Predicate) -> Optional[tuple]:
    """Recognise derived ∨: ¬(¬a ∧ ¬b); returns (a, b)."""
    if (isinstance(pred, Not) and isinstance(pred.inner, And)
            and isinstance(pred.inner.left, Not)
            and isinstance(pred.inner.right, Not)):
        return (pred.inner.left.inner, pred.inner.right.inner)
    return None


def match_sigma(expr: Expr) -> Optional[tuple]:
    """Recognise σ = SET_APPLY_{COMP_P(INPUT)}(A); returns (P, A)."""
    if (isinstance(expr, SetApply) and expr.type_filter is None
            and isinstance(expr.body, Comp)
            and isinstance(expr.body.source, Input)):
        return (expr.body.pred, expr.source)
    return None


_PAIR_FIELDS = {"1": "field1", "2": "field2"}


def pair_side_only(body: Expr, side: str) -> Optional[Expr]:
    """If *body* touches only ``field<side>`` of a ×-produced pair,
    return the equivalent single-input body (with the extraction
    replaced by INPUT); otherwise None.

    This is the formal content of the appendix's side condition
    "E applies only to A" on rules 5, 9, and 13.
    """
    field = _PAIR_FIELDS[str(side)]
    other = _PAIR_FIELDS["2" if str(side) == "1" else "1"]

    marker = _SideMarker()

    def rewrite(expr: Expr) -> Optional[Expr]:
        if isinstance(expr, TupExtract) and isinstance(expr.source, Input):
            if expr.field == field:
                return Input()
            if expr.field == other:
                marker.touched_other = True
                return expr
            # Extracting a non-pair field from the raw pair: not a pair body.
            marker.touched_other = True
            return expr
        if isinstance(expr, Input):
            # The body uses the whole pair — cannot factor to one side.
            marker.touched_other = True
            return expr
        return None

    result = _rewrite_non_binding(body, rewrite)
    if marker.touched_other:
        return None
    return result


class _SideMarker:
    def __init__(self):
        self.touched_other = False


def _rewrite_non_binding(expr: Expr, fn) -> Expr:
    """Bottom-up rewrite of non-binding positions; *fn* returns a
    replacement or None to recurse."""
    direct = fn(expr)
    if direct is not None:
        return direct
    updates = {}
    for field in expr._fields:
        if field in expr._binding_fields:
            continue
        value = getattr(expr, field)
        if isinstance(value, Expr):
            new = _rewrite_non_binding(value, fn)
            if new is not value:
                updates[field] = new
        elif isinstance(value, (list, tuple)):
            new_seq = [_rewrite_non_binding(v, fn) if isinstance(v, Expr) else v
                       for v in value]
            if any(a is not b for a, b in zip(new_seq, value)):
                updates[field] = tuple(new_seq) if isinstance(
                    value, tuple) else list(new_seq)
    return expr.replace(**updates) if updates else expr


def match_pairwise_body(body: Expr) -> Optional[tuple]:
    """Recognise a SET_APPLY-over-× body that maps the two pair sides
    independently back into a pair:

        TUP_CAT(TUP[field1](E1(field1-of-INPUT)),
                TUP[field2](E2(field2-of-INPUT)))

    Returns (E1, E2) as single-input bodies, for rule 13.
    """
    if not isinstance(body, TupCat):
        return None
    left, right = body.left, body.right
    if not (isinstance(left, TupCreate) and left.field == "field1"
            and isinstance(right, TupCreate) and right.field == "field2"):
        return None
    e1 = pair_side_only(left.source, "1")
    e2 = pair_side_only(right.source, "2")
    if e1 is None or e2 is None:
        return None
    return (e1, e2)


def make_pairwise_body(e1: Expr, e2: Expr) -> Expr:
    """Inverse of :func:`match_pairwise_body` (used right-to-left)."""
    return TupCat(
        TupCreate("field1", substitute_input(
            e1, TupExtract("field1", Input()))),
        TupCreate("field2", substitute_input(
            e2, TupExtract("field2", Input()))))


def static_fields(expr: Expr) -> Optional[FrozenSet[str]]:
    """The statically known output field set of a tuple-producing
    expression, or None when it cannot be determined.

    Supports π, TUP, TUP_CAT, and tuple constants — enough for rules
    24 and 25 to fire on the shapes the paper's examples build.
    """
    if isinstance(expr, Pi):
        return frozenset(expr.names)
    if isinstance(expr, TupCreate):
        return frozenset([expr.field])
    if isinstance(expr, TupCat):
        left = static_fields(expr.left)
        right = static_fields(expr.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(expr, Const) and isinstance(expr.value, Tup):
        return frozenset(expr.value.field_names)
    return None


def is_deterministic(expr: Expr) -> bool:
    """True when re-evaluating *expr* cannot observe/do anything new.

    REF allocates store objects, so expressions containing it are not
    freely duplicable/reorderable; everything else in the algebra is
    pure.
    """
    from ..operators.refs import RefOp
    return not any(isinstance(node, RefOp) for node in expr.walk())


def contains_comp(expr: Expr) -> bool:
    """True when *expr* contains a COMP anywhere (conservative guard for
    the array rules 19 and 22, whose side condition is "E is not COMP" —
    a COMP inside E could drop elements and shift positions)."""
    return any(isinstance(node, Comp) for node in expr.walk())
