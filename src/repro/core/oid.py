"""OID generation and domain semantics under multiple inheritance.

Section 3.1 gives object-identifier domains a set-theoretic semantics.
The base construction: let f : T → P be a 1-1 map from type names to
positive integers; then R(n), the raw OID pool of type n, is the set of
integers whose decimal representation begins with f(n) ones followed by a
zero.  The pools R(n) are pairwise disjoint and each is infinite.

On top of the raw pools, the *domain* of OIDs for a type, written
Odom(A), must obey five rules (quoted informally):

  1. every Odom is infinite;
  2. Odom(A) minus the Odoms of all of A's subtypes is still infinite;
  3. A → B (B inherits from A) implies Odom(B) ⊆ Odom(A);
  4. types sharing no descendants have disjoint Odoms;
  5. if every type in a set B inherits from every type in a set A, then
     the OIDs of the B's are OIDs of every A (⋃ᵢ Odom(Bᵢ) ⊆ ⋂ⱼ Odom(Aⱼ)).

We realise these rules structurally:

    Odom(A) = ⋃ { R(t) : t is A or a descendant of A }.

Rule 1 holds because R(A) ⊆ Odom(A) is infinite.  Rule 2 holds because
R(A) itself is disjoint from every other pool.  Rule 3 holds because
descendants(B) ⊆ descendants(A).  Rule 4 holds because the union ranges
over disjoint descendant sets.  Rule 5 holds because every Bᵢ is a
descendant of every Aⱼ, so R-pools of B-descendants occur in every
Odom(Aⱼ).

An OID therefore *encodes* the exact type it was allocated for, and
membership in Odom(A) is decidable by decoding the prefix and asking the
hierarchy whether that exact type is A or below it.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Set

from .hierarchy import TypeHierarchy
from .values import Ref


class OIDError(ValueError):
    """Raised for malformed OIDs or illegal domain operations."""


def pool_code(oid) -> int:
    """The f-code of the raw pool R(n) an OID was drawn from.

    Decodes the ``1…10`` prefix of the paper's construction without
    needing a generator instance: the count of leading ones is f(n).
    Returns 0 for values that are not well-formed pool OIDs (non-ints,
    or integers lacking the prefix) — callers use the code as a
    deterministic partition key, so "no pool" must not raise.
    """
    if not isinstance(oid, int) or oid < 0:
        return 0
    digits = str(oid)
    ones = 0
    while ones < len(digits) and digits[ones] == "1":
        ones += 1
    if ones == 0 or ones >= len(digits) or digits[ones] != "0":
        return 0
    return ones


class OIDGenerator:
    """Allocates OIDs using the paper's integer-prefix construction.

    Parameters
    ----------
    hierarchy:
        The type hierarchy used to answer Odom membership questions.
        Types are assigned their f-codes on first allocation (or via
        :meth:`code_for`), in registration order, which keeps the mapping
        1-1 as required.
    """

    def __init__(self, hierarchy: TypeHierarchy):
        self._hierarchy = hierarchy
        self._codes: Dict[str, int] = {}
        self._next_code = 1
        self._counters: Dict[str, int] = {}
        # Identity allocation is shared process state: the network
        # server's writer thread and any number of reader threads
        # (REF minting objects mid-query passes through to the live
        # store) may allocate concurrently.  The read-modify-write on
        # the per-type counter and the f-code assignment are not
        # GIL-atomic, so both take this lock; reentrant because
        # new_oid → code_for.
        self._lock = threading.RLock()

    @property
    def hierarchy(self) -> TypeHierarchy:
        return self._hierarchy

    # -- the f : T → P map ------------------------------------------------

    def code_for(self, type_name: str) -> int:
        """The positive integer f(type_name); assigned on first use."""
        if type_name not in self._hierarchy:
            raise OIDError("unknown type %r" % type_name)
        with self._lock:
            if type_name not in self._codes:
                self._codes[type_name] = self._next_code
                self._next_code += 1
            return self._codes[type_name]

    def _type_for_code(self, code: int) -> str:
        for name, c in self._codes.items():
            if c == code:
                return name
        raise OIDError("no type has f-code %d" % code)

    # -- allocation ---------------------------------------------------------

    def new_oid(self, exact_type: str) -> int:
        """Allocate a fresh OID drawn from R(exact_type).

        The integer's decimal form is f(exact_type) ones, a zero, then a
        per-type counter — the paper's construction verbatim.
        """
        with self._lock:
            code = self.code_for(exact_type)
            counter = self._counters.get(exact_type, 0) + 1
            self._counters[exact_type] = counter
        return int("1" * code + "0" + str(counter))

    def new_ref(self, exact_type: str) -> Ref:
        """Allocate a fresh OID and wrap it in a :class:`Ref`."""
        return Ref(self.new_oid(exact_type), exact_type)

    # -- persistence -------------------------------------------------------

    def snapshot(self) -> dict:
        """The generator's durable state: the f-codes and counters."""
        with self._lock:
            return {"codes": dict(self._codes),
                    "counters": dict(self._counters)}

    def restore(self, state: dict) -> None:
        """Restore a snapshot (keeps OID allocation gap-free and the
        f-map stable across save/load cycles)."""
        with self._lock:
            self._codes = dict(state.get("codes", {}))
            self._counters = dict(state.get("counters", {}))
            self._next_code = max(self._codes.values(), default=0) + 1

    # -- decoding -----------------------------------------------------------

    def exact_type_of(self, oid: int) -> str:
        """Decode the R-pool (exact allocation type) an OID belongs to."""
        digits = str(oid)
        ones = 0
        while ones < len(digits) and digits[ones] == "1":
            ones += 1
        if ones == 0 or ones >= len(digits) or digits[ones] != "0":
            raise OIDError("malformed OID %r (no 1…10 prefix)" % oid)
        return self._type_for_code(ones)

    def in_raw_pool(self, oid: int, type_name: str) -> bool:
        """oid ∈ R(type_name)?"""
        try:
            return self.exact_type_of(oid) == type_name
        except OIDError:
            return False

    def in_odom(self, oid: int, type_name: str) -> bool:
        """oid ∈ Odom(type_name)?  True when the OID's exact type is
        *type_name* or one of its descendants (rules 3 and 5)."""
        try:
            exact = self.exact_type_of(oid)
        except OIDError:
            return False
        if type_name not in self._hierarchy:
            raise OIDError("unknown type %r" % type_name)
        return self._hierarchy.is_subtype(exact, type_name)

    def odom_types(self, type_name: str) -> Set[str]:
        """The set of raw pools whose union forms Odom(type_name)."""
        return self._hierarchy.descendants_or_self(type_name)

    # -- rule checking (used by tests and sanity tooling) --------------------

    def odom_sample(self, type_name: str, per_type: int = 3) -> List[int]:
        """A finite sample of Odom(type_name): the first few counters of
        every contributing raw pool.  Purely for inspection/testing —
        domains themselves are infinite."""
        sample = []
        for t in sorted(self.odom_types(type_name)):
            code = self.code_for(t)
            for counter in range(1, per_type + 1):
                sample.append(int("1" * code + "0" + str(counter)))
        return sample

    def check_rules(self) -> None:
        """Verify rules 2–5 hold for the registered hierarchy.

        Rules about infinitude (1 and the ∞ part of 2) hold by
        construction — every raw pool has unboundedly many counters — so
        this checks the finite, structural content: pool disjointness and
        the containment relations between Odoms expressed as sets of
        contributing pools.
        """
        types = self._hierarchy.types()
        pools = {t: self.odom_types(t) for t in types}
        for a in types:
            # Rule 2 (structural part): A's own raw pool is never given
            # away to a subtype, so the residue contains R(A).
            residue = pools[a] - set().union(
                *[pools[c] for c in self._hierarchy.children(a)] or [set()])
            if a not in residue:
                raise OIDError("rule 2 violated at %r" % a)
            for b in types:
                related = self._hierarchy.is_subtype(
                    a, b) or self._hierarchy.is_subtype(b, a)
                shared = (self._hierarchy.descendants_or_self(a)
                          & self._hierarchy.descendants_or_self(b))
                if not shared and pools[a] & pools[b]:
                    raise OIDError("rule 4 violated between %r and %r" % (a, b))
                if self._hierarchy.is_subtype(b, a):
                    if not pools[b] <= pools[a]:
                        raise OIDError("rule 3 violated: Odom(%r) ⊄ Odom(%r)"
                                       % (b, a))

    def migrate_ok(self, oid: int, new_type: str) -> bool:
        """Can an object with *oid* present itself as *new_type* without
        changing identity?

        Type migration (end of §3.1) is legal exactly when the OID is
        already in Odom(new_type) — i.e. migrating upward, or sideways
        within the descendant cone the OID was drawn from.
        """
        return self.in_odom(oid, new_type)
