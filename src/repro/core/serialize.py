"""JSON serialization for algebra values, expressions, and predicates.

EXTRA's named objects are *persistent* structures; the paper's system
kept them in the EXODUS storage manager.  This module provides the
value encoding that :mod:`repro.storage.persist` uses for durability,
plus expression/predicate encoding so *stored methods* (compiled query
trees) survive a save/load cycle — exactly what "when the method is
invoked, its stored query tree is plugged in" requires of a persistent
system.

Encodings are tagged dicts:

* values — ``{"t": "val"|"tup"|"set"|"arr"|"ref"|"null", …}``;
* expressions — ``{"node": <class name>, <field>: …}``, generically
  derived from each node class's ``_fields`` declaration;
* predicates — ``{"pred": <class name>, …}`` likewise.

The node registry is assembled from the operator modules, so new
operators serialize automatically as long as they follow the
``_fields`` protocol.
"""

from __future__ import annotations

from typing import Any, Dict, Type

from .expr import Const, Expr, Func, Input, Named
from .methods import IndexedTypeScan, MethodCall, Param
from .predicates import And, Atom, Comp, Not, Predicate, TruePred
from .values import Arr, MultiSet, Null, Ref, Tup, is_scalar
from . import operators as _operators


class SerializationError(ValueError):
    """Unknown node kind or malformed payload."""


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------

def value_to_json(value: Any) -> Any:
    if is_scalar(value):
        return {"t": "val", "v": value}
    if isinstance(value, Null):
        return {"t": "null", "kind": value.kind}
    if isinstance(value, Tup):
        return {"t": "tup", "type": value.type_name,
                "fields": [[name, value_to_json(v)]
                           for name, v in value.fields]}
    if isinstance(value, MultiSet):
        return {"t": "set",
                "counts": [[value_to_json(element), count]
                           for element, count in value.items()]}
    if isinstance(value, Arr):
        return {"t": "arr", "items": [value_to_json(v) for v in value]}
    if isinstance(value, Ref):
        return {"t": "ref", "oid": value.oid, "type": value.type_name}
    raise SerializationError("cannot serialize value %r" % (value,))


def value_from_json(payload: Any) -> Any:
    tag = payload.get("t")
    if tag == "val":
        return payload["v"]
    if tag == "null":
        return Null(payload["kind"])
    if tag == "tup":
        return Tup({name: value_from_json(v)
                    for name, v in payload["fields"]},
                   type_name=payload.get("type"))
    if tag == "set":
        counts: Dict[Any, int] = {}
        for element_json, count in payload["counts"]:
            element = value_from_json(element_json)
            counts[element] = counts.get(element, 0) + count
        return MultiSet(counts=counts)
    if tag == "arr":
        return Arr(value_from_json(v) for v in payload["items"])
    if tag == "ref":
        return Ref(payload["oid"], payload.get("type"))
    raise SerializationError("unknown value tag %r" % (tag,))


# ---------------------------------------------------------------------------
# Expressions & predicates
# ---------------------------------------------------------------------------

def _node_registry() -> Dict[str, Type]:
    registry: Dict[str, Type] = {}
    for name in _operators.__all__:
        candidate = getattr(_operators, name, None)
        if isinstance(candidate, type) and issubclass(candidate, Expr):
            registry[candidate.__name__] = candidate
    for extra in (Input, Named, Const, Func, Comp, Param, MethodCall,
                  IndexedTypeScan):
        registry[extra.__name__] = extra
    return registry


def _pred_registry() -> Dict[str, Type]:
    return {cls.__name__: cls for cls in (Atom, And, Not, TruePred)}


_NODES = _node_registry()
_PREDS = _pred_registry()


def expr_to_json(expr: Expr) -> Any:
    name = type(expr).__name__
    if name not in _NODES:
        raise SerializationError("unregistered expression node %r" % name)
    payload: Dict[str, Any] = {"node": name}
    for field in expr._fields:
        payload[field] = _field_to_json(getattr(expr, field))
    return payload


def pred_to_json(pred: Predicate) -> Any:
    name = type(pred).__name__
    if name not in _PREDS:
        raise SerializationError("unregistered predicate node %r" % name)
    payload: Dict[str, Any] = {"pred": name}
    for field in pred._fields:
        payload[field] = _field_to_json(getattr(pred, field))
    return payload


def _field_to_json(value: Any) -> Any:
    if isinstance(value, Expr):
        return expr_to_json(value)
    if isinstance(value, Predicate):
        return pred_to_json(value)
    if isinstance(value, frozenset):
        return {"frozenset": sorted(value)}
    if isinstance(value, (list, tuple)):
        return {"seq": [_field_to_json(v) for v in value]}
    if value is None or isinstance(value, (str, int, float, bool)):
        return {"plain": value}
    # Const payloads and similar embedded algebra values.
    return {"value": value_to_json(value)}


def _field_from_json(payload: Any) -> Any:
    if "node" in payload:
        return expr_from_json(payload)
    if "pred" in payload:
        return pred_from_json(payload)
    if "frozenset" in payload:
        return frozenset(payload["frozenset"])
    if "seq" in payload:
        return [_field_from_json(v) for v in payload["seq"]]
    if "plain" in payload:
        return payload["plain"]
    if "value" in payload:
        return value_from_json(payload["value"])
    raise SerializationError("malformed field payload %r" % (payload,))


def expr_from_json(payload: Any) -> Expr:
    name = payload.get("node")
    cls = _NODES.get(name)
    if cls is None:
        raise SerializationError("unknown expression node %r" % name)
    kwargs = {field: _field_from_json(payload[field])
              for field in cls._fields}
    return cls(**kwargs)


def pred_from_json(payload: Any) -> Predicate:
    name = payload.get("pred")
    cls = _PREDS.get(name)
    if cls is None:
        raise SerializationError("unknown predicate node %r" % name)
    kwargs = {field: _field_from_json(payload[field])
              for field in cls._fields}
    return cls(**kwargs)
