"""Methods, overriding, and the two dispatch strategies of Section 4.

An EXTRA/EXCESS *method* is an EXCESS statement (here: an algebraic
expression) defined on a type and inherited — and possibly overridden —
by its subtypes.  When a method is defined it is translated once into a
stored query tree; invoking it "plugs in" that tree, so the whole query
(invoker + method body) optimizes as one tree rather than a black box.

The problem: invoking method ``f`` over a collection P : {Person} whose
occurrences may really be Students or Employees.  Two strategies:

* **switch-table** (:class:`MethodCall` inside a SET_APPLY) — resolve
  the receiver's exact type at run time and execute the matching stored
  body.  No compile-time optimization across bodies.
* **⊎-based** (:func:`build_union_plan`) — one typed SET_APPLY per
  relevant type (or per *distinct* body, the paper's "easy initial
  improvement"), results combined with ⊎.  The bodies are ordinary
  subtrees, so every transformation rule applies; the price is one scan
  of P per branch — unless per-type indexes exist, which
  :class:`IndexedTypeScan` exploits to remove the extra scans entirely.

Method bodies are expressions over ``INPUT`` (the receiver, the paper's
``this``) and :class:`Param` placeholders for declared parameters, bound
by substitution at invocation time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .expr import AlgebraError, EvalContext, Expr, Input
from .hierarchy import TypeHierarchy
from .operators.multiset import AddUnion, SetApply, exact_type_of
from .values import DNE, MultiSet, Ref, is_null


class MethodError(AlgebraError):
    """Unknown method, bad override, or unresolvable dispatch."""


class Param(Expr):
    """A method-parameter placeholder, replaced at invocation time."""

    _fields = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        raise MethodError(
            "unbound method parameter %r (instantiate the method body "
            "before evaluating it)" % self.name)

    def describe(self) -> str:
        return "$%s" % self.name


def bind_params(body: Expr, bindings: Dict[str, Expr]) -> Expr:
    """Replace every :class:`Param` in *body* with its bound argument.

    Descends everywhere — including binding bodies and COMP predicate
    operands — since parameters are lexical placeholders, not INPUT
    references.
    """

    def rewrite(expr: Expr) -> Expr:
        if isinstance(expr, Param):
            try:
                return bindings[expr.name]
            except KeyError:
                raise MethodError("no argument bound for parameter %r"
                                  % expr.name)
        updates = {}
        for field in expr._fields:
            value = getattr(expr, field)
            if isinstance(value, Expr):
                new = rewrite(value)
                if new is not value:
                    updates[field] = new
            elif hasattr(value, "map_exprs"):  # a Predicate
                new = value.map_exprs(rewrite)
                if new != value:
                    updates[field] = new
            elif isinstance(value, (list, tuple)):
                new_seq = [rewrite(v) if isinstance(v, Expr) else v
                           for v in value]
                if any(a is not b for a, b in zip(new_seq, value)):
                    updates[field] = tuple(new_seq) if isinstance(
                        value, tuple) else new_seq
        return expr.replace(**updates) if updates else expr

    return rewrite(body)


class Method:
    """A stored method: a name, a defining type, parameters, and a body.

    Overriding requires identical type signatures (Section 4); since the
    algebra is dynamically checked here, we enforce the checkable part —
    identical parameter lists.
    """

    def __init__(self, type_name: str, name: str,
                 params: Sequence[str], body: Expr):
        self.type_name = type_name
        self.name = name
        self.params = tuple(params)
        self.body = body

    def instantiate(self, args: Sequence[Expr]) -> Expr:
        """The body with arguments substituted for parameters.

        The result is an expression over INPUT = the receiver, ready to
        be used as a SET_APPLY subscript or evaluated directly.
        """
        if len(args) != len(self.params):
            raise MethodError(
                "%s.%s expects %d argument(s), got %d"
                % (self.type_name, self.name, len(self.params), len(args)))
        return bind_params(self.body, dict(zip(self.params, args)))

    def __repr__(self) -> str:
        return "<Method %s.%s(%s)>" % (self.type_name, self.name,
                                       ", ".join(self.params))


class MethodRegistry:
    """All method definitions, resolved through the type hierarchy."""

    def __init__(self, hierarchy: TypeHierarchy):
        self.hierarchy = hierarchy
        self._methods: Dict[Tuple[str, str], Method] = {}

    def define(self, type_name: str, name: str, params: Sequence[str],
               body: Expr) -> Method:
        """Define (or override) method *name* on *type_name*.

        An override must keep the signature of every inherited
        definition of the same name.
        """
        if type_name not in self.hierarchy:
            raise MethodError("unknown type %r" % type_name)
        for ancestor in self.hierarchy.ancestors(type_name):
            inherited = self._methods.get((ancestor, name))
            if inherited and inherited.params != tuple(params):
                raise MethodError(
                    "override of %s.%s must keep the signature (%s), got (%s)"
                    % (ancestor, name, ", ".join(inherited.params),
                       ", ".join(params)))
        method = Method(type_name, name, params, body)
        self._methods[(type_name, name)] = method
        return method

    def defined_on(self, type_name: str, name: str) -> Optional[Method]:
        """The definition *directly* on this type, if any."""
        return self._methods.get((type_name, name))

    def resolve(self, exact_type: str, name: str) -> Method:
        """The method a receiver of *exact_type* executes.

        C3 linearization of the ancestry decides which definition wins
        under multiple inheritance (self first, then parents in a
        consistent order).
        """
        for candidate in self.hierarchy.linearize(exact_type):
            method = self._methods.get((candidate, name))
            if method is not None:
                return method
        raise MethodError("no method %r on type %r or its ancestors"
                          % (name, exact_type))

    def implementations(self, root_type: str, name: str) -> Dict[str, Method]:
        """exact type → resolved method, for every type at or below
        *root_type* — the branches of a ⊎-based plan."""
        out: Dict[str, Method] = {}
        for t in sorted(self.hierarchy.descendants_or_self(root_type)):
            out[t] = self.resolve(t, name)
        return out

    def distinct_implementations(self, root_type: str, name: str
                                 ) -> List[Tuple[Method, List[str]]]:
        """The paper's improvement: group types by the method they
        actually execute, so the plan needs only as many SET_APPLYs as
        there are distinct bodies."""
        groups: Dict[Tuple[str, str], List[str]] = {}
        impls = self.implementations(root_type, name)
        for t, method in impls.items():
            groups.setdefault((method.type_name, method.name), []).append(t)
        return [(self._methods[key], sorted(types))
                for key, types in sorted(groups.items())]


class MethodCall(Expr):
    """Run-time ("switch-table") method dispatch on a single receiver.

    Resolves the receiver's exact type when evaluated and runs the
    matching stored body.  A Ref receiver is dereferenced so the body's
    ``this`` is the object itself; dispatch still uses the ref's exact
    recorded type.  Used inside SET_APPLY this is precisely the paper's
    first strategy: the "switch table … implicitly associated with the
    set P".
    """

    _fields = ("name", "args", "receiver")
    _binding_fields = ("args",)  # arguments are bound per-receiver too

    def __init__(self, name: str, args: Sequence[Expr], receiver: Expr):
        self.name = name
        self.args = tuple(args)
        self.receiver = receiver

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        if ctx.methods is None:
            raise MethodError("no method registry in the context")
        receiver = self.receiver.evaluate(input_value, ctx)
        if is_null(receiver):
            return receiver
        exact = exact_type_of(receiver, ctx)
        if exact is None:
            raise MethodError(
                "cannot dispatch %r: receiver %r has no exact type"
                % (self.name, receiver))
        ctx.tick("method_dispatches")
        method = ctx.methods.resolve(exact, self.name)
        body = method.instantiate(list(self.args))
        if isinstance(receiver, Ref):
            ctx.tick("deref_count")
            receiver = ctx.store.get(receiver.oid, default=DNE)
            if receiver is DNE:
                return DNE
        return body.evaluate(receiver, ctx)

    def describe(self) -> str:
        inner = ", ".join(a.describe() for a in self.args)
        return "%s.%s(%s)" % (self.receiver.describe(), self.name, inner)


class IndexedTypeScan(Expr):
    """A typed scan of a named multiset served by a partition index.

    Evaluates to the sub-multiset of the named object whose occurrences
    have an exact type in *types*.  When the context carries an index
    catalog with a typed index on the object, the lookup is direct and
    no scan work is charged; otherwise it degrades to a filtered scan
    (charging ``set_apply_elements`` like a typed SET_APPLY would).
    """

    _fields = ("object_name", "types")

    def __init__(self, object_name: str, types):
        self.object_name = object_name
        if isinstance(types, str):
            types = [types]
        self.types = frozenset(types)

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        catalog = getattr(ctx, "indexes", None)
        if catalog is not None:
            index = catalog.typed(self.object_name)
            if index is not None:
                ctx.tick("index_lookups")
                return index.lookup(self.types)
        collection = ctx.lookup(self.object_name)
        if not isinstance(collection, MultiSet):
            raise MethodError("IndexedTypeScan needs a multiset object")
        tally = {}
        for element, count in collection.items():
            ctx.tick("elements_scanned", count)
            if exact_type_of(element, ctx) in self.types:
                tally[element] = count
        return MultiSet(counts=tally)

    def describe(self) -> str:
        return "IDXSCAN[%s](%s)" % ("/".join(sorted(self.types)),
                                    self.object_name)


def switch_table_plan(name: str, args: Sequence[Expr], source: Expr) -> Expr:
    """Strategy 1: SET_APPLY with run-time dispatch per occurrence."""
    return SetApply(MethodCall(name, args, Input()), source)


def build_union_plan(registry: MethodRegistry, root_type: str, name: str,
                     args: Sequence[Expr], source: Expr,
                     collapse_identical: bool = True,
                     deref_receiver: bool = False,
                     use_index: Optional[str] = None) -> Expr:
    """Strategy 2: the ⊎-based compile-time plan (Figure 5).

    One typed SET_APPLY per implementation (per *distinct* body when
    ``collapse_identical``), unioned with ⊎.  Each branch's body is the
    fully inlined stored query tree, so the optimizer can transform it
    together with the invoking query.

    ``deref_receiver`` inserts a DEREF so bodies written against objects
    work over collections of references.  ``use_index`` names the source
    object; branch inputs then become :class:`IndexedTypeScan` leaves,
    reproducing the paper's index-based variant in which "the need to
    scan P three times … disappears".
    """
    from .operators.refs import Deref

    if collapse_identical:
        branches = registry.distinct_implementations(root_type, name)
    else:
        branches = [(method, [t])
                    for t, method in
                    sorted(registry.implementations(root_type, name).items())]
    if not branches:
        raise MethodError("no implementations of %s on %s" % (name, root_type))
    plan: Optional[Expr] = None
    for method, types in branches:
        body = method.instantiate(list(args))
        if deref_receiver:
            from .expr import substitute_input
            body = substitute_input(body, Deref(Input()))
        if use_index is not None:
            branch_source: Expr = IndexedTypeScan(use_index, types)
            branch = SetApply(body, branch_source)
        else:
            branch = SetApply(body, source, type_filter=frozenset(types))
        plan = branch if plan is None else AddUnion(plan, branch)
    return plan
