"""A multiple-inheritance type hierarchy (a DAG of type names).

Both the OID domain machinery (Section 3.1) and the EXTRA type system
(Section 2.1) need the same substrate: a directed acyclic graph over type
names where an edge A → B means "B inherits from A".  This module holds
that substrate.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set


class HierarchyError(ValueError):
    """Raised for cycles, unknown types, or duplicate registrations."""


class TypeHierarchy:
    """A DAG of type names under the "inherits from" relation.

    Terminology follows the paper: A → B means B inherits from A, so A is
    a *supertype* (parent) and B a *subtype* (child).  "Descendants" and
    "ancestors" are transitive and do not include the type itself unless
    the ``_or_self`` variant is used.
    """

    def __init__(self):
        self._parents: Dict[str, List[str]] = {}
        self._children: Dict[str, List[str]] = {}

    # -- construction ----------------------------------------------------

    def add_type(self, name: str, parents: Iterable[str] = ()) -> None:
        """Register *name* with the given direct supertypes.

        Parents must already be registered; cycles are rejected.
        """
        if name in self._parents:
            raise HierarchyError("type %r already registered" % name)
        parents = list(parents)
        for parent in parents:
            if parent not in self._parents:
                raise HierarchyError(
                    "unknown parent type %r for %r" % (parent, name))
        if len(set(parents)) != len(parents):
            raise HierarchyError("duplicate parent in %r" % (parents,))
        self._parents[name] = parents
        self._children[name] = []
        for parent in parents:
            self._children[parent].append(name)

    def __contains__(self, name: str) -> bool:
        return name in self._parents

    def types(self) -> List[str]:
        return list(self._parents)

    def _require(self, name: str) -> None:
        if name not in self._parents:
            raise HierarchyError("unknown type %r" % name)

    # -- navigation --------------------------------------------------------

    def parents(self, name: str) -> List[str]:
        self._require(name)
        return list(self._parents[name])

    def children(self, name: str) -> List[str]:
        self._require(name)
        return list(self._children[name])

    def ancestors(self, name: str) -> Set[str]:
        """All proper supertypes of *name* (transitive)."""
        self._require(name)
        out: Set[str] = set()
        stack = list(self._parents[name])
        while stack:
            t = stack.pop()
            if t not in out:
                out.add(t)
                stack.extend(self._parents[t])
        return out

    def descendants(self, name: str) -> Set[str]:
        """All proper subtypes of *name* (transitive)."""
        self._require(name)
        out: Set[str] = set()
        stack = list(self._children[name])
        while stack:
            t = stack.pop()
            if t not in out:
                out.add(t)
                stack.extend(self._children[t])
        return out

    def ancestors_or_self(self, name: str) -> Set[str]:
        return self.ancestors(name) | {name}

    def descendants_or_self(self, name: str) -> Set[str]:
        return self.descendants(name) | {name}

    def is_subtype(self, sub: str, sup: str) -> bool:
        """True iff *sub* is *sup* or inherits (transitively) from it."""
        return sub == sup or sup in self.ancestors(sub)

    def linearize(self, name: str) -> List[str]:
        """C3 linearization of *name*'s ancestry (self first).

        Used for method-override resolution under multiple inheritance:
        the first type in the linearization that defines a method wins.
        """
        self._require(name)

        def merge(sequences: List[List[str]]) -> List[str]:
            result: List[str] = []
            sequences = [list(s) for s in sequences if s]
            while sequences:
                for seq in sequences:
                    head = seq[0]
                    if not any(head in other[1:] for other in sequences):
                        break
                else:
                    raise HierarchyError(
                        "inconsistent hierarchy: cannot linearize %r" % name)
                result.append(head)
                sequences = [[t for t in s if t != head] for s in sequences]
                sequences = [s for s in sequences if s]
            return result

        parents = self._parents[name]
        if not parents:
            return [name]
        return [name] + merge(
            [self.linearize(p) for p in parents] + [list(parents)])

    def topological(self) -> Iterator[str]:
        """Types in an order where every parent precedes its children."""
        seen: Set[str] = set()

        def visit(t: str):
            for p in self._parents[t]:
                if p not in seen:
                    for x in visit(p):
                        yield x
            if t not in seen:
                seen.add(t)
                yield t

        for t in self._parents:
            for x in visit(t):
                yield x

    def roots(self) -> List[str]:
        """Types with no supertypes."""
        return [t for t, ps in self._parents.items() if not ps]
