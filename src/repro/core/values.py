"""Runtime values for the EXCESS algebra.

The algebra of Vandenberg & DeWitt (SIGMOD 1991) is *many-sorted*: its
structures are scalars, tuples, multisets, arrays, and references (OIDs),
composed arbitrarily.  This module defines the immutable runtime
representation of each sort.

Design notes
------------
* Every value is immutable and hashable, so multisets of multisets, arrays
  of tuples of arrays, etc. all work uniformly.  Plain Python ``int``,
  ``float``, ``str``, and ``bool`` serve as the "val" sort.
* Two distinguished nulls exist, following Section 3.2.4 of the paper:
  ``DNE`` ("does not exist") and ``UNK`` ("unknown").  ``dne`` values are
  discarded whenever a multiset is formed — this is precisely how the COMP
  operator simulates relational selection.  ``unk`` values propagate.
* Multiset equality is cardinality-wise: two multisets are equal iff every
  element has the same cardinality in both (Section 3.2.1).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Tuple


class Null:
    """A null constant.  Exactly two instances exist: ``DNE`` and ``UNK``.

    ``DNE`` means "does not exist" and is silently dropped by multiset
    constructors; ``UNK`` means "unknown" and propagates through
    comparisons (three-valued logic).
    """

    __slots__ = ("kind",)

    _instances: Dict[str, "Null"] = {}

    def __new__(cls, kind: str) -> "Null":
        if kind not in ("dne", "unk"):
            raise ValueError("null kind must be 'dne' or 'unk', got %r" % kind)
        if kind not in cls._instances:
            inst = super().__new__(cls)
            inst.kind = kind
            cls._instances[kind] = inst
        return cls._instances[kind]

    def __repr__(self) -> str:
        return self.kind

    def __hash__(self) -> int:
        return hash(("Null", self.kind))

    def __eq__(self, other: Any) -> bool:
        return self is other

    def __reduce__(self):
        return (Null, (self.kind,))


#: The "does not exist" null — discarded by multiset construction.
DNE = Null("dne")
#: The "unknown" null — propagates through predicates.
UNK = Null("unk")


def is_null(value: Any) -> bool:
    """Return True if *value* is one of the two null constants."""
    return isinstance(value, Null)


class Ref:
    """A reference: an object identifier (OID) treated as an algebraic value.

    The paper's "ref" type constructor gives identity to any structure;
    a ``Ref`` is an opaque handle whose equality is OID equality.  The
    target object lives in an object store and is reached via DEREF.

    Parameters
    ----------
    oid:
        The object identifier.  The paper constructs OIDs as integers whose
        decimal representation encodes the type (see :mod:`repro.core.oid`);
        any hashable token works here.
    type_name:
        Optional name of the (most specific known) type of the referent;
        carried for diagnostics and typed dispatch, not for equality.
    """

    __slots__ = ("oid", "type_name")

    def __init__(self, oid: Any, type_name: str = None):
        object.__setattr__(self, "oid", oid)
        object.__setattr__(self, "type_name", type_name)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Ref is immutable")

    def __repr__(self) -> str:
        if self.type_name:
            return "Ref(%r, %s)" % (self.oid, self.type_name)
        return "Ref(%r)" % (self.oid,)

    def __hash__(self) -> int:
        return hash(("Ref", self.oid))

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Ref) and self.oid == other.oid

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __reduce__(self):
        # Slot classes with an immutable __setattr__ break default
        # pickling; partition-parallel execution ships results between
        # processes, so rebuild through the constructor instead.
        return (Ref, (self.oid, self.type_name))


class Tup:
    """An immutable, ordered, named tuple of algebra values.

    Field order is preserved (it matters for π and TUP_CAT results) and
    fields are accessed by name.  The empty tuple ``Tup()`` is a legal
    value (Section 3.1, condition ii).

    A tuple may carry a declared ``type_name`` — the EXTRA tuple type it
    is an instance of.  Substitutability (Section 3.1) means a multiset
    of Person may hold Student tuples; the declared name is what the
    typed SET_APPLY of Section 4 dispatches on.  The name participates
    in equality: a Student is never value-equal to an untyped tuple.
    """

    __slots__ = ("_fields", "_map", "_hash", "type_name")

    def __init__(self, fields: Mapping[str, Any] = None,
                 type_name: str = None, **kwargs: Any):
        items: Dict[str, Any] = {}
        if fields:
            items.update(fields)
        items.update(kwargs)
        object.__setattr__(self, "_fields", tuple(items.items()))
        # The same pairs as a dict, for O(1) field access (dict insertion
        # order keeps it consistent with _fields).
        object.__setattr__(self, "_map", items)
        object.__setattr__(self, "type_name", type_name)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Tup is immutable")

    @classmethod
    def _from_map(cls, items: Dict[str, Any],
                  type_name: str = None) -> "Tup":
        """Internal fast constructor: adopt *items* (not copied) as the
        field map.  Callers must hand over a fresh dict."""
        self = cls.__new__(cls)
        object.__setattr__(self, "_fields", tuple(items.items()))
        object.__setattr__(self, "_map", items)
        object.__setattr__(self, "type_name", type_name)
        object.__setattr__(self, "_hash", None)
        return self

    @property
    def fields(self) -> Tuple[Tuple[str, Any], ...]:
        """The (name, value) pairs, in declaration order."""
        return self._fields

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __contains__(self, name: str) -> bool:
        return name in self._map

    def __getitem__(self, name: str) -> Any:
        try:
            return self._map[name]
        except KeyError:
            raise KeyError("tuple has no field %r (fields: %s)"
                           % (name, ", ".join(self.field_names) or "<none>"))

    def get(self, name: str, default: Any = None) -> Any:
        return self._map.get(name, default)

    def project(self, names: Iterable[str]) -> "Tup":
        """Return a new tuple keeping only *names*, in the order given.

        The declared type name is dropped: a projection of a Student is
        no longer a Student.
        """
        m = self._map
        try:
            return Tup._from_map({name: m[name] for name in names})
        except KeyError:
            return Tup({name: self[name] for name in names})

    def concat(self, other: "Tup") -> "Tup":
        """TUP_CAT: concatenate two tuples.

        Raises ``ValueError`` on duplicate field names, since the result
        would be ambiguous under field extraction.
        """
        mine = self._map
        clash = [n for n in other._map if n in mine]
        if clash:
            raise ValueError("TUP_CAT field name clash: %s" % ", ".join(clash))
        merged = dict(self._fields)
        merged.update(other._fields)
        return Tup(merged)

    def replace(self, **changes: Any) -> "Tup":
        """Return a copy (same declared type) with fields replaced."""
        out = dict(self._fields)
        for name, value in changes.items():
            if name not in out:
                raise KeyError("tuple has no field %r" % name)
            out[name] = value
        return Tup(out, type_name=self.type_name)

    def __iter__(self) -> Iterator[Tuple[str, Any]]:
        return iter(self._fields)

    def __repr__(self) -> str:
        inner = ", ".join("%s=%r" % (n, v) for n, v in self._fields)
        if self.type_name:
            return "%s(%s)" % (self.type_name, inner)
        return "(%s)" % inner

    def __hash__(self) -> int:
        # Field order is presentational only: tuples are named records, so
        # equality (and hence hashing) is order-insensitive.  This is what
        # validates TUP_CAT commutativity (Appendix rule 23).
        if self._hash is None:
            object.__setattr__(
                self, "_hash",
                hash(("Tup", self.type_name, frozenset(self._fields))))
        return self._hash

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Tup)
                and self.type_name == other.type_name
                and self._map == other._map)

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __reduce__(self):
        # See Ref.__reduce__: constructor-based pickling for the
        # immutable slot classes, used by partition-parallel workers.
        return (Tup, (dict(self._map), self.type_name))


class Arr:
    """An immutable one-dimensional array of algebra values.

    Algebra arrays are variable-length (Section 3.2.3); fixed-length
    semantics are enforced at the EXTRA type level, not here.  The empty
    array ``Arr()`` is legal.  Indexing follows the paper: positions are
    1-based in operator subscripts (ARR_EXTRACT, SUBARR), while this class
    itself exposes ordinary 0-based Python indexing.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[Any] = ()):
        object.__setattr__(self, "_items", tuple(items))
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Arr is immutable")

    @property
    def items(self) -> Tuple[Any, ...]:
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Arr(self._items[index])
        return self._items[index]

    def extract(self, position: int) -> Any:
        """ARR_EXTRACT: return the element at 1-based *position*.

        The result is the element itself, not a singleton array.
        """
        if not 1 <= position <= len(self._items):
            raise IndexError(
                "ARR_EXTRACT position %d out of bounds for array of length %d"
                % (position, len(self._items)))
        return self._items[position - 1]

    def subarr(self, lower, upper) -> "Arr":
        """SUBARR: elements from 1-based *lower* to *upper*, inclusive.

        Either bound may be the token ``"last"``.  Bounds beyond the end
        are clamped; an empty range yields the empty array.
        """
        n = len(self._items)
        lo = n if lower == "last" else int(lower)
        hi = n if upper == "last" else int(upper)
        if lo < 1:
            raise IndexError("SUBARR lower bound must be >= 1, got %r" % (lower,))
        if hi < lo:
            return Arr()
        return Arr(self._items[lo - 1:min(hi, n)])

    def concat(self, other: "Arr") -> "Arr":
        """ARR_CAT: all of self's elements followed by all of other's."""
        return Arr(self._items + other._items)

    def __repr__(self) -> str:
        return "[%s]" % ", ".join(repr(v) for v in self._items)

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(self, "_hash", hash(("Arr", self._items)))
        return self._hash

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Arr) and self._items == other._items

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __reduce__(self):
        # See Ref.__reduce__.
        return (Arr, (self._items,))


class MultiSet:
    """An immutable multiset (bag) of algebra values.

    A multiset maps each distinct element to a positive cardinality.  Two
    multisets are equal iff every element has the same cardinality in both
    (Section 3.2.1).  ``DNE`` occurrences are silently dropped at
    construction time, per the paper's null semantics; ``UNK`` occurrences
    are kept (they are ordinary, if inscrutable, values).
    """

    __slots__ = ("_counts", "_hash")

    def __init__(self, items: Iterable[Any] = (), counts: Mapping[Any, int] = None):
        tally: Dict[Any, int] = {}
        if counts is not None:
            for element, n in counts.items():
                if element is DNE:
                    continue
                if n < 0:
                    raise ValueError("negative cardinality %d for %r" % (n, element))
                if n > 0:
                    tally[element] = tally.get(element, 0) + n
        for element in items:
            if element is DNE:
                continue
            tally[element] = tally.get(element, 0) + 1
        object.__setattr__(self, "_counts", tally)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("MultiSet is immutable")

    # -- construction fast path ---------------------------------------

    @classmethod
    def _from_tally(cls, tally: Dict[Any, int]) -> "MultiSet":
        """Adopt *tally* as the counts dict without copying or checking.

        Internal fast path for operators and the streaming engine, which
        build tallies element-by-element and can guarantee the invariants
        (no DNE keys, strictly positive counts).  The caller must not
        mutate *tally* afterwards.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "_counts", tally)
        object.__setattr__(self, "_hash", None)
        return self

    # -- inspection ---------------------------------------------------

    @property
    def counts(self) -> Mapping[Any, int]:
        """Copy of element → cardinality (safe to mutate).

        Hot paths should prefer :meth:`items` / :meth:`occurrences`,
        which iterate the underlying tally without copying it.
        """
        return dict(self._counts)

    def items(self):
        """Zero-copy iteration over (element, cardinality) pairs."""
        return self._counts.items()

    def occurrences(self):
        """Alias of :meth:`items`: the multiset as (element, count)
        occurrence pairs — the chunk format the streaming engine uses."""
        return self._counts.items()

    def cardinality(self, element: Any) -> int:
        """Number of occurrences of *element* (0 if absent)."""
        return self._counts.get(element, 0)

    def __len__(self) -> int:
        """Total number of occurrences, |A| in the paper's notation."""
        return sum(self._counts.values())

    def distinct_count(self) -> int:
        """Number of distinct elements."""
        return len(self._counts)

    def __contains__(self, element: Any) -> bool:
        return element in self._counts

    def __iter__(self) -> Iterator[Any]:
        """Iterate over every *occurrence* (elements repeat per cardinality)."""
        for element, n in self._counts.items():
            for _ in range(n):
                yield element

    def elements(self) -> Iterator[Any]:
        """Iterate over distinct elements only."""
        return iter(self._counts)

    def is_set(self) -> bool:
        """True when no element occurs more than once."""
        return all(n == 1 for n in self._counts.values())

    # -- primitive multiset algebra -----------------------------------

    def add_union(self, other: "MultiSet") -> "MultiSet":
        """⊎ — additive union: result cardinalities are summed."""
        tally = dict(self._counts)
        for element, n in other._counts.items():
            tally[element] = tally.get(element, 0) + n
        return MultiSet._from_tally(tally)

    def difference(self, other: "MultiSet") -> "MultiSet":
        """− : result cardinality is max(0, card(A) − card(B))."""
        tally = {}
        for element, n in self._counts.items():
            remaining = n - other._counts.get(element, 0)
            if remaining > 0:
                tally[element] = remaining
        return MultiSet._from_tally(tally)

    def union(self, other: "MultiSet") -> "MultiSet":
        """∪ — derived: cardinalities are the max of the inputs.

        Appendix §1: A ∪ B = (A − B) ⊎ B.
        """
        tally = dict(other._counts)
        for element, n in self._counts.items():
            tally[element] = max(tally.get(element, 0), n)
        return MultiSet._from_tally(tally)

    def intersection(self, other: "MultiSet") -> "MultiSet":
        """∩ — derived: cardinalities are the min of the inputs.

        Appendix §1: A ∩ B = A − (A − B).
        """
        tally = {}
        for element, n in self._counts.items():
            m = min(n, other._counts.get(element, 0))
            if m > 0:
                tally[element] = m
        return MultiSet._from_tally(tally)

    def dedup(self) -> "MultiSet":
        """DE — duplicate elimination: every cardinality becomes 1."""
        return MultiSet._from_tally({element: 1 for element in self._counts})

    def cross(self, other: "MultiSet") -> "MultiSet":
        """× — cartesian product producing pairs as 2-field tuples.

        The result elements are tuples with fields ``field1`` and
        ``field2`` (the appendix's rel_join definition extracts them by
        those names); cardinalities multiply, so duplicates are preserved.
        """
        tally: Dict[Any, int] = {}
        for a, na in self._counts.items():
            for b, nb in other._counts.items():
                pair = Tup(field1=a, field2=b)
                tally[pair] = tally.get(pair, 0) + na * nb
        return MultiSet._from_tally(tally)

    def collapse(self) -> "MultiSet":
        """SET_COLLAPSE — ⊎ of all member multisets.

        Every occurrence of the input must itself be a multiset.
        """
        tally: Dict[Any, int] = {}
        for element, n in self._counts.items():
            if not isinstance(element, MultiSet):
                raise TypeError(
                    "SET_COLLAPSE requires a multiset of multisets; found %r"
                    % (element,))
            for inner, m in element._counts.items():
                tally[inner] = tally.get(inner, 0) + n * m
        return MultiSet._from_tally(tally)

    # -- dunder plumbing ----------------------------------------------

    def __repr__(self) -> str:
        parts = []
        for element, n in self._counts.items():
            if n == 1:
                parts.append(repr(element))
            else:
                parts.append("%r*%d" % (element, n))
        return "{%s}" % ", ".join(parts)

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash",
                hash(("MultiSet", frozenset(self._counts.items()))))
        return self._hash

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, MultiSet) and self._counts == other._counts

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __reduce__(self):
        # See Ref.__reduce__.
        return (MultiSet, ((), dict(self._counts)))


#: The sorts of the algebra, used by schema inference and dispatch.
SCALAR_TYPES = (int, float, str, bool)


def is_scalar(value: Any) -> bool:
    """True for "val"-sort values (plain Python scalars)."""
    return isinstance(value, SCALAR_TYPES)


def is_value(value: Any) -> bool:
    """True for any legal algebra value of any sort."""
    return (is_scalar(value)
            or isinstance(value, (Tup, Arr, MultiSet, Ref, Null)))


def sort_of(value: Any) -> str:
    """Return the sort name of *value*: val, tup, arr, set, ref, or null."""
    if is_scalar(value):
        return "val"
    if isinstance(value, Tup):
        return "tup"
    if isinstance(value, Arr):
        return "arr"
    if isinstance(value, MultiSet):
        return "set"
    if isinstance(value, Ref):
        return "ref"
    if isinstance(value, Null):
        return "null"
    raise TypeError("not an algebra value: %r" % (value,))
