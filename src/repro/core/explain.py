"""Readable, multi-line rendering of algebra query trees.

``describe()`` gives the compact one-line algebraic form; ``explain``
renders the same tree the way the paper draws its figures — one
operator per line, children indented, with the operator's subscript
(body/predicate/key) shown inline and, when a cost model is supplied,
the estimated cost and cardinality of every node.
"""

from __future__ import annotations

from typing import List

from .expr import Const, Expr, Func, Input, Named
from .methods import IndexedTypeScan, MethodCall
from .operators.arrays import ArrApply
from .operators.multiset import Grp, SetApply
from .predicates import Comp


def _label(expr: Expr) -> str:
    """The node's own line: operator name plus its subscript."""
    if isinstance(expr, Named):
        return expr.name
    if isinstance(expr, Const):
        text = repr(expr.value)
        return "CONST %s" % (text if len(text) <= 40 else text[:37] + "…")
    if isinstance(expr, Input):
        return "INPUT"
    if isinstance(expr, SetApply):
        parts = ["SET_APPLY"]
        if expr.type_filter is not None:
            parts.append("<%s>" % "/".join(sorted(expr.type_filter)))
        parts.append("[%s]" % expr.body.describe())
        return " ".join(parts)
    if isinstance(expr, ArrApply):
        return "ARR_APPLY [%s]" % expr.body.describe()
    if isinstance(expr, Grp):
        return "GRP by [%s]" % expr.by.describe()
    if isinstance(expr, Comp):
        return "COMP [%s]" % expr.pred.describe()
    if isinstance(expr, Func):
        return "FUNC %s/%d" % (expr.name, len(expr.args))
    if isinstance(expr, MethodCall):
        return "METHOD %s (run-time dispatch)" % expr.name
    if isinstance(expr, IndexedTypeScan):
        return "INDEX SCAN %s<%s>" % (expr.object_name,
                                      "/".join(sorted(expr.types)))
    name = type(expr).__name__
    # Non-expression parameters (field names, positions, bounds).
    params = []
    for field in expr._fields:
        value = getattr(expr, field)
        if not isinstance(value, Expr) and not hasattr(value, "test"):
            if isinstance(value, (list, tuple)):
                if not any(isinstance(v, Expr) for v in value):
                    params.append("%s" % (list(value),))
            elif value is not None:
                params.append(str(value))
    return name.upper() + (" " + " ".join(params) if params else "")


def _structural_children(expr: Expr) -> List[Expr]:
    """Children drawn as separate plan lines: the data-flow inputs, not
    the subscript bodies (those are shown inline in the label)."""
    skip = set(expr._binding_fields)
    if isinstance(expr, (SetApply, ArrApply, Grp)):
        skip |= {"body", "by"}
    out: List[Expr] = []
    for field in expr._fields:
        if field in skip:
            continue
        value = getattr(expr, field)
        if isinstance(value, Expr):
            out.append(value)
        elif isinstance(value, (list, tuple)):
            out.extend(v for v in value if isinstance(v, Expr))
    return out


def explain(expr: Expr, cost_model=None, named_schemas=None) -> str:
    """Render *expr* as an indented plan.

    With a :class:`~repro.core.optimizer.CostModel`, each line carries
    the node's estimated cost and output cardinality.
    """
    lines: List[str] = []

    def annotate(node: Expr) -> str:
        if cost_model is None:
            return ""
        estimate = cost_model.estimate(node)
        return "  (cost≈%.0f, card≈%.0f)" % (estimate.cost, estimate.card)

    def walk(node: Expr, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(_label(node) + annotate(node))
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + _label(node) + annotate(node))
            child_prefix = prefix + ("   " if is_last else "│  ")
        children = _structural_children(node)
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    walk(expr, "", True, True)
    return "\n".join(lines)
