"""Readable, multi-line rendering of algebra query trees.

``describe()`` gives the compact one-line algebraic form; ``explain``
renders the same tree the way the paper draws its figures — one
operator per line, children indented, with the operator's subscript
(body/predicate/key) shown inline and, when a cost model is supplied,
the estimated cost and cardinality of every node.
"""

from __future__ import annotations

from typing import List

from .expr import Const, Expr, Func, Input, Named
from .methods import IndexedTypeScan, MethodCall
from .operators.arrays import ArrApply
from .operators.multiset import Grp, SetApply
from .predicates import Comp


def _label(expr: Expr) -> str:
    """The node's own line: operator name plus its subscript."""
    if isinstance(expr, Named):
        return expr.name
    if isinstance(expr, Const):
        text = repr(expr.value)
        return "CONST %s" % (text if len(text) <= 40 else text[:37] + "…")
    if isinstance(expr, Input):
        return "INPUT"
    if isinstance(expr, SetApply):
        parts = ["SET_APPLY"]
        if expr.type_filter is not None:
            parts.append("<%s>" % "/".join(sorted(expr.type_filter)))
        parts.append("[%s]" % expr.body.describe())
        return " ".join(parts)
    if isinstance(expr, ArrApply):
        return "ARR_APPLY [%s]" % expr.body.describe()
    if isinstance(expr, Grp):
        return "GRP by [%s]" % expr.by.describe()
    if isinstance(expr, Comp):
        return "COMP [%s]" % expr.pred.describe()
    if isinstance(expr, Func):
        return "FUNC %s/%d" % (expr.name, len(expr.args))
    if isinstance(expr, MethodCall):
        return "METHOD %s (run-time dispatch)" % expr.name
    if isinstance(expr, IndexedTypeScan):
        return "INDEX SCAN %s<%s>" % (expr.object_name,
                                      "/".join(sorted(expr.types)))
    name = type(expr).__name__
    # Non-expression parameters (field names, positions, bounds).
    params = []
    for field in expr._fields:
        value = getattr(expr, field)
        if not isinstance(value, Expr) and not hasattr(value, "test"):
            if isinstance(value, (list, tuple)):
                if not any(isinstance(v, Expr) for v in value):
                    params.append("%s" % (list(value),))
            elif value is not None:
                params.append(str(value))
    return name.upper() + (" " + " ".join(params) if params else "")


def _structural_children(expr: Expr) -> List[Expr]:
    """Children drawn as separate plan lines: the data-flow inputs, not
    the subscript bodies (those are shown inline in the label)."""
    skip = set(expr._binding_fields)
    if isinstance(expr, (SetApply, ArrApply, Grp)):
        skip |= {"body", "by"}
    out: List[Expr] = []
    for field in expr._fields:
        if field in skip:
            continue
        value = getattr(expr, field)
        if isinstance(value, Expr):
            out.append(value)
        elif isinstance(value, (list, tuple)):
            out.extend(v for v in value if isinstance(v, Expr))
    return out


def explain(expr: Expr, cost_model=None, named_schemas=None) -> str:
    """Render *expr* as an indented plan.

    With a :class:`~repro.core.optimizer.CostModel`, each line carries
    the node's estimated cost and output cardinality.
    """
    lines: List[str] = []

    def annotate(node: Expr) -> str:
        if cost_model is None:
            return ""
        estimate = cost_model.estimate(node)
        return "  (cost≈%.0f, card≈%.0f)" % (estimate.cost, estimate.card)

    def walk(node: Expr, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(_label(node) + annotate(node))
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + _label(node) + annotate(node))
            child_prefix = prefix + ("   " if is_last else "│  ")
        children = _structural_children(node)
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    walk(expr, "", True, True)
    return "\n".join(lines)


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return "%.3fs" % seconds
    if seconds >= 0.001:
        return "%.3fms" % (seconds * 1e3)
    return "%.1fµs" % (seconds * 1e6)


def _deviation(actual: float, estimated: float) -> str:
    """Estimated-vs-actual cardinality drift, PostgreSQL-style."""
    if estimated <= 0:
        return "deviation n/a" if actual else "exact"
    if actual <= 0:
        return "×%.1f over-estimated" % estimated
    ratio = actual / estimated
    if 0.999 <= ratio <= 1.001:
        return "exact"
    if ratio >= 1:
        return "×%.1f under-estimated" % ratio
    return "×%.1f over-estimated" % (1.0 / ratio)


def _analyze_annotation(span, cost_model, analysis=None) -> str:
    """The parenthesised actuals for one span line."""
    bits: List[str] = []
    access_path = span.meta.get("access_path")
    if access_path is not None:
        bits.append("via %s" % access_path)
    if span.kind == "operator":
        actual = span.card_out / span.calls if span.calls else 0.0
        bits.append("actual card=%.0f" % actual)
        if span.calls > 1:
            bits.append("calls=%d" % span.calls)
        if span.dne_out:
            bits.append("dne=%d" % span.dne_out)
        bits.append(_fmt_seconds(span.wall))
        if cost_model is not None and span.expr is not None:
            estimate = cost_model.estimate(span.expr)
            bits.append("est card≈%.0f" % estimate.card)
            bits.append(_deviation(actual, estimate.card))
        if analysis is not None and span.expr is not None:
            proven = analysis.describe_bounds(span.expr)
            if proven is not None:
                bits.append("static %s" % proven)
    elif span.kind in ("statement", "plan"):
        bits.append(_fmt_seconds(span.wall))
        if span.card_out:
            bits.append("card=%d" % span.card_out)
        ratio = span.meta.get("deref_cache_hit_ratio")
        if ratio is not None:
            bits.append("deref-cache hit %.0f%%" % (100.0 * ratio))
    elif span.kind == "wal":
        bits.append(_fmt_seconds(span.wall))
        if "records" in span.meta:
            bits.append("%d records" % span.meta["records"])
    elif span.name == "optimize":
        bits.append(_fmt_seconds(span.wall))
        if "explored" in span.meta:
            bits.append("%d trees" % span.meta["explored"])
        fired = sum(1 for c in span.children if c.meta.get("fires"))
        bits.append("%d/%d rules fired" % (fired, len(span.children)))
    elif span.kind == "rule":
        bits.append("fires=%d" % span.meta.get("fires", 0))
        bits.append("calls=%d" % span.calls)
        bits.append(_fmt_seconds(span.wall))
    else:
        bits.append(_fmt_seconds(span.wall))
    return "  (%s)" % ", ".join(bits) if bits else ""


def explain_analyze(root, cost_model=None, analysis=None) -> str:
    """Render an executed statement's trace (a :class:`repro.obs.Span`
    tree) as an indented plan carrying per-operator *actuals* — output
    cardinality, calls, discarded ``dne`` results, wall time — and,
    when a :class:`~repro.core.optimizer.CostModel` is given, each
    operator's estimated cardinality with the deviation between the
    two.  Rule spans that never fired are folded into a summary count
    on their ``optimize`` parent.

    With *analysis* (a :class:`~repro.core.analysis.absint.PlanAnalysis`
    over the executed tree), operator lines additionally carry the
    statically *proven* cardinality interval as ``static [lo..hi]`` —
    sound bounds the actual cardinality must fall inside, next to the
    statistical estimate that merely tries to.
    """
    lines: List[str] = []

    def shown_children(span):
        if span.name == "optimize":
            return [c for c in span.children if c.meta.get("fires")]
        return span.children

    def walk(span, prefix: str, is_last: bool, is_root: bool) -> None:
        note = _analyze_annotation(span, cost_model, analysis)
        if is_root:
            lines.append(span.name + note)
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + span.name + note)
            child_prefix = prefix + ("   " if is_last else "│  ")
        children = shown_children(span)
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    walk(root, "", True, True)
    return "\n".join(lines)
