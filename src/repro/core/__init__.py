"""Core of the reproduction: values, schemas, OIDs, operators, rules.

The public surface re-exports the pieces most callers need; subpackages
hold the detail (``repro.core.operators``, ``repro.core.transform``).
"""

from .expr import (AlgebraError, Const, EvalContext, Expr, Func, Input,
                   Named, evaluate, substitute_input)
from .hierarchy import HierarchyError, TypeHierarchy
from .oid import OIDError, OIDGenerator
from .predicates import (And, Atom, Comp, Not, Or, Predicate, TruePred,
                         kleene_and, kleene_not, kleene_or)
from .schema import SchemaCatalog, SchemaError, SchemaNode, infer_schema
from .typecheck import AlgebraTypeError, TypeChecker, checker_for_database
from .values import (DNE, UNK, Arr, MultiSet, Null, Ref, Tup, is_null,
                     is_scalar, is_value, sort_of)

__all__ = [
    "AlgebraError", "Const", "EvalContext", "Expr", "Func", "Input",
    "Named", "evaluate", "substitute_input",
    "HierarchyError", "TypeHierarchy", "OIDError", "OIDGenerator",
    "And", "Atom", "Comp", "Not", "Or", "Predicate", "TruePred",
    "kleene_and", "kleene_not", "kleene_or",
    "SchemaCatalog", "SchemaError", "SchemaNode", "infer_schema",
    "AlgebraTypeError", "TypeChecker", "checker_for_database",
    "DNE", "UNK", "Arr", "MultiSet", "Null", "Ref", "Tup",
    "is_null", "is_scalar", "is_value", "sort_of",
]
