"""Predicates and the COMP operator (Section 3.2.4).

The algebra treats selection functionally: ``COMP_P(S)`` returns its input
``S`` unchanged when predicate P holds on S, the null ``unk`` when P
evaluates to UNKNOWN, and the null ``dne`` when P is false.  Multiset
constructors discard ``dne``, which is how relational selection falls out
(see ``repro.core.operators.derived.sigma``).

Predicates are atomic comparisons composed with ∧ and ¬ (∨ is derived).
An atom compares two arbitrary algebraic expressions, each evaluated with
the COMP input bound to INPUT; comparators come from a fixed set,
including multiset membership (conceptually an equality test against
every occurrence of the right operand).  Equality is pure *value*
equality — OIDs are just values of the ref sort, so one notion of
equality suffices (a deliberate contrast with two-equality designs the
paper cites).

Truth values use Kleene three-valued logic: T, F, U.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

from .expr import AlgebraError, EvalContext, Expr
from .values import DNE, UNK, Arr, MultiSet, is_null

#: Three-valued truth constants.
T, F, U = "T", "F", "U"


def kleene_and(a: str, b: str) -> str:
    if a == F or b == F:
        return F
    if a == U or b == U:
        return U
    return T


def kleene_or(a: str, b: str) -> str:
    if a == T or b == T:
        return T
    if a == U or b == U:
        return U
    return F


def kleene_not(a: str) -> str:
    if a == T:
        return F
    if a == F:
        return T
    return U


class Predicate:
    """Base class for predicate trees.

    Like :class:`~repro.core.expr.Expr`, subclasses declare ``_fields``
    for structural equality and rewriting.  ``test`` returns a Kleene
    truth value given the COMP input (bound to INPUT inside operand
    expressions).
    """

    _fields: Tuple[str, ...] = ()

    def test(self, comp_input: Any, ctx: EvalContext) -> str:
        raise NotImplementedError

    def _values(self) -> Tuple[Any, ...]:
        return tuple(getattr(self, f) for f in self._fields)

    def __eq__(self, other: Any) -> bool:
        return type(self) is type(other) and self._values() == other._values()

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._values()))

    def __repr__(self) -> str:
        return self.describe()

    def describe(self) -> str:
        inner = ", ".join(
            v.describe() if isinstance(v, (Expr, Predicate)) else repr(v)
            for v in self._values())
        return "%s(%s)" % (type(self).__name__, inner)

    def exprs(self) -> List[Expr]:
        """The operand expressions appearing directly in this node."""
        return [v for v in self._values() if isinstance(v, Expr)]

    def deep_exprs(self) -> List[Expr]:
        """All operand expressions in this predicate tree (recursive)."""
        out = list(self.exprs())
        for value in self._values():
            if isinstance(value, Predicate):
                out.extend(value.deep_exprs())
        return out

    def map_exprs(self, fn: Callable[[Expr], Expr]) -> "Predicate":
        """A copy with *fn* applied to every operand expression (deep)."""
        kwargs = {}
        for field in self._fields:
            value = getattr(self, field)
            if isinstance(value, Expr):
                kwargs[field] = fn(value)
            elif isinstance(value, Predicate):
                kwargs[field] = value.map_exprs(fn)
            else:
                kwargs[field] = value
        return type(self)(**kwargs)


def _compare_scalars(op: str, left: Any, right: Any) -> str:
    """Order comparison on two non-null values; U on incomparable types."""
    try:
        if op == "<":
            return T if left < right else F
        if op == "<=":
            return T if left <= right else F
        if op == ">":
            return T if left > right else F
        if op == ">=":
            return T if left >= right else F
    except TypeError:
        return U
    raise AlgebraError("unknown comparator %r" % op)


#: The fixed comparator set of the COMP operator.
COMPARATORS = ("=", "!=", "<", "<=", ">", ">=", "in")


class Atom(Predicate):
    """An atomic comparison ``left <op> right``.

    Null semantics: if either operand is ``unk`` the atom is U; if either
    is ``dne`` the atom is F (the thing does not exist, so no comparison
    against it succeeds — and COMP will turn F into a discardable dne).
    """

    _fields = ("left", "op", "right")

    def __init__(self, left: Expr, op: str, right: Expr):
        if op not in COMPARATORS:
            raise AlgebraError(
                "comparator must be one of %s, got %r" % (", ".join(COMPARATORS), op))
        self.left = left
        self.op = op
        self.right = right

    def test(self, comp_input: Any, ctx: EvalContext) -> str:
        lhs = self.left.evaluate(comp_input, ctx)
        rhs = self.right.evaluate(comp_input, ctx)
        ctx.tick("atom_evals")
        if lhs is DNE or rhs is DNE:
            return F
        if lhs is UNK or rhs is UNK:
            return U
        if self.op == "=":
            return T if lhs == rhs else F
        if self.op == "!=":
            return F if lhs == rhs else T
        if self.op == "in":
            if isinstance(rhs, MultiSet):
                return T if lhs in rhs else F
            if isinstance(rhs, Arr):
                return T if any(lhs == item for item in rhs) else F
            raise AlgebraError("'in' needs a multiset or array right operand, "
                               "got %r" % (rhs,))
        return _compare_scalars(self.op, lhs, rhs)

    def describe(self) -> str:
        return "(%s %s %s)" % (self.left.describe(), self.op,
                               self.right.describe())


class And(Predicate):
    _fields = ("left", "right")

    def __init__(self, left: Predicate, right: Predicate):
        self.left = left
        self.right = right

    def test(self, comp_input: Any, ctx: EvalContext) -> str:
        return kleene_and(self.left.test(comp_input, ctx),
                          self.right.test(comp_input, ctx))

    def describe(self) -> str:
        return "(%s ∧ %s)" % (self.left.describe(), self.right.describe())


class Not(Predicate):
    _fields = ("inner",)

    def __init__(self, inner: Predicate):
        self.inner = inner

    def test(self, comp_input: Any, ctx: EvalContext) -> str:
        return kleene_not(self.inner.test(comp_input, ctx))

    def describe(self) -> str:
        return "¬%s" % self.inner.describe()


def Or(left: Predicate, right: Predicate) -> Predicate:
    """Derived disjunction: a ∨ b ≡ ¬(¬a ∧ ¬b)."""
    return Not(And(Not(left), Not(right)))


class TruePred(Predicate):
    """The always-true predicate (useful as a rewrite identity)."""

    _fields = ()

    def test(self, comp_input: Any, ctx: EvalContext) -> str:
        return T

    def describe(self) -> str:
        return "true"


class Comp(Expr):
    """COMP — the functional selection operator.

    ``Comp(pred, source)`` evaluates *source*, binds the result as the
    predicate's INPUT, and returns: the unmodified input when the
    predicate is T; ``unk`` when U; ``dne`` when F.  Nulls flowing in
    propagate straight through (a null input cannot satisfy anything and
    stays what it is).
    """

    _fields = ("pred", "source")
    _binding_fields = ("pred",)

    def __init__(self, pred: Predicate, source: Expr):
        self.pred = pred
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        value = self.source.evaluate(input_value, ctx)
        if is_null(value):
            return value
        ctx.tick("comp_evals")
        verdict = self.pred.test(value, ctx)
        if verdict == T:
            return value
        if verdict == U:
            return UNK
        return DNE

    def describe(self) -> str:
        return "COMP[%s](%s)" % (self.pred.describe(), self.source.describe())
