"""Domain membership: dom(S) and DOM(S) from Section 3.1.

The complex domain of a schema S is defined recursively on the root node
kind:

* val — the scalar domain D (OIDs excluded: refs are a separate sort);
* tup — the cross product of the component domains (the empty tuple's
  domain is {()});
* set — all finite multisets whose distinct elements lie in the
  component's domain;
* arr — all finite arrays (including the empty array) of elements of
  the component's domain;
* ref — Odom of the target type: R(S1) ∪ ⋃ R(Sᵢ) over subtypes (the
  amended rule v′).

Inheritance then extends every domain by substitutability:

    DOM(S) = dom(S) ∪ ⋃ dom(Sᵢ)  over subtypes Sᵢ of S.

Note the asymmetry the paper points out: tuple/set/array domains absorb
subtype members *through their components* (an array of A may hold
B's when A → B), while a ref node's domain is a set of OIDs governed by
the Odom rules — "ref A → ref B" is not implied by "A → B" except via
the OID-domain containment of rule 3, which this construction realises.

This module provides checking ("is value v ∈ DOM(S)?") with readable
failure explanations, plus a deterministic domain *sampler* used by the
property-based tests.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional

from .hierarchy import TypeHierarchy
from .oid import OIDGenerator
from .schema import SchemaCatalog, SchemaNode
from .values import Arr, MultiSet, Null, Ref, Tup, is_scalar


class DomainChecker:
    """Decides membership of values in schema domains.

    Parameters
    ----------
    catalog:
        Resolves named schemas (for ref targets and for the subtype
        schemas needed by DOM).
    hierarchy:
        The inheritance hierarchy; when omitted, DOM(S) degenerates to
        dom(S) and ref checking only validates the sort.
    oid_generator:
        When provided, ref membership is the real Odom test (decode the
        OID's exact pool, ask the hierarchy); otherwise the Ref's carried
        type name is trusted.
    """

    def __init__(self, catalog: SchemaCatalog = None,
                 hierarchy: TypeHierarchy = None,
                 oid_generator: OIDGenerator = None):
        self.catalog = catalog or SchemaCatalog()
        self.hierarchy = hierarchy
        self.oids = oid_generator

    # -- membership ------------------------------------------------------

    def contains(self, schema: SchemaNode, value: Any) -> bool:
        return self.explain(schema, value) is None

    def explain(self, schema: SchemaNode, value: Any) -> Optional[str]:
        """None if value ∈ DOM(schema); otherwise a human-readable reason.

        Nulls are members of every domain (they are query-processing
        artifacts, not schema citizens, and may appear transiently
        anywhere).
        """
        if isinstance(value, Null):
            return None
        # DOM(S): try dom(S) itself, then dom of each subtype's schema.
        reason = self._explain_dom(schema, value)
        if reason is None:
            return None
        for sub_schema in self._subtype_schemas(schema):
            if self._explain_dom(sub_schema, value) is None:
                return None
        return reason

    def _subtype_schemas(self, schema: SchemaNode) -> List[SchemaNode]:
        type_name = schema.base_name or schema.name
        if self.hierarchy is None or type_name not in self.hierarchy:
            return []
        out = []
        for sub in self.hierarchy.descendants(type_name):
            if sub in self.catalog:
                out.append(self.catalog.resolve(sub))
        return out

    def _explain_dom(self, schema: SchemaNode, value: Any) -> Optional[str]:
        kind = schema.kind
        if kind == "val":
            if not is_scalar(value):
                return "expected a scalar, got %r" % (value,)
            if schema.scalar_type is not None:
                # bool is an int subtype in Python; keep them distinct.
                if schema.scalar_type is int and isinstance(value, bool):
                    return "expected int, got bool %r" % (value,)
                if not isinstance(value, schema.scalar_type):
                    return "expected %s, got %r" % (
                        schema.scalar_type.__name__, value)
            return None
        if kind == "tup":
            if not isinstance(value, Tup):
                return "expected a tuple, got %r" % (value,)
            if list(value.field_names) != list(schema.field_names):
                return ("tuple fields %s do not match schema fields %s"
                        % (list(value.field_names), list(schema.field_names)))
            for name, child in schema.fields():
                reason = self.explain(child, value[name])
                if reason is not None:
                    return "field %s: %s" % (name, reason)
            return None
        if kind == "set":
            if not isinstance(value, MultiSet):
                return "expected a multiset, got %r" % (value,)
            child = schema.children[0]
            for element in value.elements():
                reason = self.explain(child, element)
                if reason is not None:
                    return "multiset element %r: %s" % (element, reason)
            return None
        if kind == "arr":
            if not isinstance(value, Arr):
                return "expected an array, got %r" % (value,)
            if (schema.fixed_length is not None
                    and len(value) != schema.fixed_length):
                return ("fixed-length array needs %d elements, got %d"
                        % (schema.fixed_length, len(value)))
            child = schema.children[0]
            for i, element in enumerate(value):
                reason = self.explain(child, element)
                if reason is not None:
                    return "array element %d: %s" % (i + 1, reason)
            return None
        if kind == "ref":
            if not isinstance(value, Ref):
                return "expected a reference, got %r" % (value,)
            target_name = schema.target
            if target_name is None:
                return None  # inline (structural) ref target: sort is enough
            if self.oids is not None and isinstance(value.oid, int):
                if not self.oids.in_odom(value.oid, target_name):
                    return ("OID %r is not in Odom(%s)"
                            % (value.oid, target_name))
                return None
            if self.hierarchy is not None and value.type_name is not None:
                if value.type_name not in self.hierarchy:
                    return "unknown ref type %r" % value.type_name
                if not self.hierarchy.is_subtype(value.type_name, target_name):
                    return ("ref to %s where ref %s expected"
                            % (value.type_name, target_name))
            return None
        raise AssertionError(kind)


class DomainSampler:
    """Draws pseudo-random members of dom(S) for property-based tests.

    Deterministic given the seed.  Ref nodes require an *allocator*
    callback ``alloc(type_name) -> Ref`` (typically the object store,
    which also creates a referent) so sampled values stay meaningful.
    """

    def __init__(self, rng: random.Random = None, alloc=None,
                 max_elements: int = 4):
        self.rng = rng or random.Random(0)
        self.alloc = alloc
        self.max_elements = max_elements

    def sample(self, schema: SchemaNode, depth: int = 0) -> Any:
        kind = schema.kind
        if kind == "val":
            return self._scalar(schema.scalar_type)
        if kind == "tup":
            return Tup({name: self.sample(child, depth + 1)
                        for name, child in schema.fields()})
        if kind == "set":
            n = self.rng.randint(0, max(0, self.max_elements - depth))
            return MultiSet(self.sample(schema.children[0], depth + 1)
                            for _ in range(n))
        if kind == "arr":
            if schema.fixed_length is not None:
                n = schema.fixed_length
            else:
                n = self.rng.randint(0, max(0, self.max_elements - depth))
            return Arr(self.sample(schema.children[0], depth + 1)
                       for _ in range(n))
        if kind == "ref":
            if self.alloc is None:
                raise ValueError(
                    "sampling a ref schema needs an allocator callback")
            return self.alloc(schema.target)
        raise AssertionError(kind)

    def _scalar(self, scalar_type: Optional[type]) -> Any:
        if scalar_type is None:
            scalar_type = self.rng.choice([int, float, str, bool])
        if scalar_type is int:
            return self.rng.randint(-50, 50)
        if scalar_type is float:
            return round(self.rng.uniform(-50, 50), 3)
        if scalar_type is str:
            length = self.rng.randint(0, 6)
            return "".join(self.rng.choice("abcxyz") for _ in range(length))
        if scalar_type is bool:
            return self.rng.choice([True, False])
        raise ValueError("unsupported scalar type %r" % scalar_type)
