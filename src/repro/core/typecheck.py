"""Static schema inference for algebra trees.

The algebra is many-sorted, and the paper's well-formedness story is
all static: every operator has input sorts it accepts and an output
schema derivable from its inputs.  This module implements that
discipline — given schemas for the named top-level objects (and, inside
operator subscripts, for INPUT), it infers the result schema of a whole
tree, rejecting sort errors *before* evaluation (π on a multiset,
SET_APPLY on a tuple, DEREF of a non-ref, TUP_CAT field clashes, …).

It deliberately mirrors the run-time checks in the operators, so a
tree that typechecks cannot raise a sort error at evaluation (function
results and untyped leaves are the honest exceptions: a registered
scalar function's output is opaque unless a signature is declared).

Unknown pieces are represented by ``None`` ("any"), which unifies with
everything — inference degrades gracefully instead of refusing
partially-typed trees.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .expr import Const, Expr, Func, Input, Named
from .methods import IndexedTypeScan, MethodCall, Param
from .operators.arrays import (ArrApply, ArrCat, ArrCollapse, ArrCreate,
                               ArrCross, ArrDE, ArrDiff, ArrExtract, SubArr)
from .operators.multiset import (DE, AddUnion, Cross, Diff, Grp, SetApply,
                                 SetCollapse, SetCreate)
from .operators.refs import Deref, RefOp
from .operators.tuples import Pi, TupCat, TupCreate, TupExtract
from .predicates import Comp
from .schema import (UNKNOWN_NAME, SchemaCatalog, SchemaNode,
                     infer_schema)


class AlgebraTypeError(TypeError):
    """A static sort/schema violation in an algebra tree.

    Besides the human-readable message, the error carries structured
    fields so downstream tooling (the linter's diagnostics) can report
    *which* operator failed and what sort mismatch occurred without
    parsing the message text.
    """

    def __init__(self, message: str, operator: Optional[str] = None,
                 expected: Optional[str] = None, got: Optional[str] = None,
                 expr: Optional[Expr] = None):
        super().__init__(message)
        self.operator = operator
        self.expected = expected
        self.got = got
        self.expr = expr


#: ``None`` denotes the unknown ("any") schema throughout.
MaybeSchema = Optional[SchemaNode]

#: Marker base name for "collection of something unknown" components.
#: A collection whose element schema could not be inferred still *is* a
#: known collection; its component is an UNKNOWN-flavoured val node that
#: every check treats as "any" rather than as a genuine scalar.
_UNKNOWN_BASE = UNKNOWN_NAME


def unknown_schema() -> SchemaNode:
    """A fresh unknown-component placeholder node."""
    return SchemaNode.val(name=_UNKNOWN_BASE)


def is_unknown(schema: MaybeSchema) -> bool:
    """True for the unknown-component placeholder (or ``None``)."""
    return schema is None or (schema.kind == "val"
                              and schema.base_name == _UNKNOWN_BASE)


def _expect(schema: MaybeSchema, kind: str, operator: str) -> MaybeSchema:
    """Check *schema* (if known) has node *kind*; return its component
    knowledge for further inference."""
    if is_unknown(schema):
        return None
    if schema.kind != kind:
        raise AlgebraTypeError(
            "%s expects a %s input, got %s (%s)"
            % (operator, kind, schema.kind, schema.describe()),
            operator=operator, expected=kind, got=schema.kind)
    return schema


def _same_sort(a: MaybeSchema, b: MaybeSchema, operator: str) -> MaybeSchema:
    if is_unknown(a):
        return b
    if is_unknown(b):
        return a
    if a.kind != b.kind:
        raise AlgebraTypeError(
            "%s expects matching sorts, got %s and %s"
            % (operator, a.kind, b.kind),
            operator=operator, expected=a.kind, got=b.kind)
    return a


def _element(schema: MaybeSchema) -> MaybeSchema:
    if schema is None or not schema.children:
        return None
    child = schema.children[0]
    return None if is_unknown(child) else child


class TypeChecker:
    """Infers result schemas; raises :class:`AlgebraTypeError` on
    sort violations.

    Parameters
    ----------
    named_schemas:
        Schemas of the named top-level objects (what a catalog of
        ``create``\\ d objects provides).
    catalog:
        Resolves ref targets for DEREF inference.
    signatures:
        Optional result schemas for registered scalar functions,
        name → SchemaNode (or a callable arg-schemas → SchemaNode).
    """

    def __init__(self, named_schemas: Optional[Dict[str, SchemaNode]] = None,
                 catalog: Optional[SchemaCatalog] = None,
                 signatures: Optional[Dict[str, Any]] = None):
        self.named = dict(named_schemas or {})
        self.catalog = catalog or SchemaCatalog()
        self.signatures = dict(signatures or {})

    # -- public API ----------------------------------------------------

    def check(self, expr: Expr,
              input_schema: MaybeSchema = None) -> MaybeSchema:
        """Infer the schema of *expr*; INPUT is bound to *input_schema*."""
        method = getattr(self, "_chk_%s" % type(expr).__name__, None)
        if method is None:
            return None  # unknown node kinds stay opaque
        try:
            return method(expr, input_schema)
        except AlgebraTypeError as error:
            if error.expr is None:
                # The innermost failing node wins; outer frames pass it up.
                error.expr = expr
            raise

    # -- leaves --------------------------------------------------------------

    def _chk_Input(self, expr, input_schema):
        return input_schema

    def _chk_Named(self, expr, input_schema):
        return self.named.get(expr.name)

    def _chk_Const(self, expr, input_schema):
        try:
            return infer_schema(expr.value)
        except TypeError:
            return None

    def _chk_Param(self, expr, input_schema):
        return None

    def _chk_Func(self, expr, input_schema):
        for arg in expr.args:
            self.check(arg, input_schema)
        signature = self.signatures.get(expr.name)
        if callable(signature):
            return signature([self.check(a, input_schema)
                              for a in expr.args])
        return signature

    # -- multiset operators ---------------------------------------------

    def _chk_SetApply(self, expr, input_schema):
        source = _expect(self.check(expr.source, input_schema), "set",
                         "SET_APPLY")
        body = self.check(expr.body, _element(source))
        return SchemaNode.set_of(body if body is not None
                                 else unknown_schema())

    def _chk_Grp(self, expr, input_schema):
        source = _expect(self.check(expr.source, input_schema), "set", "GRP")
        self.check(expr.by, _element(source))
        inner = _element(source)
        return SchemaNode.set_of(SchemaNode.set_of(
            inner.clone() if inner is not None else unknown_schema()))

    def _chk_DE(self, expr, input_schema):
        return _expect(self.check(expr.source, input_schema), "set", "DE")

    def _chk_SetCreate(self, expr, input_schema):
        inner = self.check(expr.source, input_schema)
        return SchemaNode.set_of(inner if inner is not None
                                 else unknown_schema())

    def _chk_SetCollapse(self, expr, input_schema):
        source = _expect(self.check(expr.source, input_schema), "set",
                         "SET_COLLAPSE")
        inner = _element(source)
        if inner is not None and inner.kind != "set":
            raise AlgebraTypeError(
                "SET_COLLAPSE needs a multiset of multisets, inner sort "
                "is %s" % inner.kind,
                operator="SET_COLLAPSE", expected="set", got=inner.kind)
        return inner if inner is not None else SchemaNode.set_of(
            unknown_schema())

    def _chk_AddUnion(self, expr, input_schema):
        left = _expect(self.check(expr.left, input_schema), "set", "⊎")
        right = _expect(self.check(expr.right, input_schema), "set", "⊎")
        return _same_sort(left, right, "⊎")

    def _chk_Diff(self, expr, input_schema):
        left = _expect(self.check(expr.left, input_schema), "set", "−")
        _expect(self.check(expr.right, input_schema), "set", "−")
        return left

    def _chk_Cross(self, expr, input_schema):
        left = _expect(self.check(expr.left, input_schema), "set", "×")
        right = _expect(self.check(expr.right, input_schema), "set", "×")
        pair = SchemaNode.tup({
            "field1": (_element(left).clone() if _element(left) is not None
                       else unknown_schema()),
            "field2": (_element(right).clone() if _element(right) is not None
                       else unknown_schema())})
        return SchemaNode.set_of(pair)

    # -- tuple operators ---------------------------------------------------

    def _chk_Pi(self, expr, input_schema):
        source = _expect(self.check(expr.source, input_schema), "tup", "π")
        if source is None:
            return None
        fields = {}
        for name in expr.names:
            try:
                fields[name] = source.field(name).clone()
            except Exception:
                raise AlgebraTypeError(
                    "π names field %r absent from %s"
                    % (name, source.describe()),
                    operator="π", expected=name, got=source.describe())
        return SchemaNode.tup(fields)

    def _chk_TupExtract(self, expr, input_schema):
        source = _expect(self.check(expr.source, input_schema), "tup",
                         "TUP_EXTRACT")
        if source is None:
            return None
        try:
            return source.field(expr.field)
        except Exception:
            raise AlgebraTypeError(
                "TUP_EXTRACT names field %r absent from %s"
                % (expr.field, source.describe()),
                operator="TUP_EXTRACT", expected=expr.field,
                got=source.describe())

    def _chk_TupCreate(self, expr, input_schema):
        inner = self.check(expr.source, input_schema)
        return SchemaNode.tup({expr.field: inner if inner is not None
                               else unknown_schema()})

    def _chk_TupCat(self, expr, input_schema):
        left = _expect(self.check(expr.left, input_schema), "tup", "TUP_CAT")
        right = _expect(self.check(expr.right, input_schema), "tup",
                        "TUP_CAT")
        if left is None or right is None:
            return None
        clash = set(left.field_names) & set(right.field_names)
        if clash:
            raise AlgebraTypeError(
                "TUP_CAT field clash: %s" % ", ".join(sorted(clash)),
                operator="TUP_CAT", expected="disjoint fields",
                got=", ".join(sorted(clash)))
        fields = {name: child.clone() for name, child in left.fields()}
        fields.update({name: child.clone()
                       for name, child in right.fields()})
        return SchemaNode.tup(fields)

    # -- array operators -----------------------------------------------------

    def _chk_ArrApply(self, expr, input_schema):
        source = _expect(self.check(expr.source, input_schema), "arr",
                         "ARR_APPLY")
        body = self.check(expr.body, _element(source))
        return SchemaNode.arr_of(body if body is not None
                                 else unknown_schema())

    def _chk_ArrCreate(self, expr, input_schema):
        inner = self.check(expr.source, input_schema)
        return SchemaNode.arr_of(inner if inner is not None
                                 else unknown_schema())

    def _chk_ArrExtract(self, expr, input_schema):
        source = _expect(self.check(expr.source, input_schema), "arr",
                         "ARR_EXTRACT")
        return _element(source)

    def _chk_SubArr(self, expr, input_schema):
        return _expect(self.check(expr.source, input_schema), "arr",
                       "SUBARR")

    def _chk_ArrCat(self, expr, input_schema):
        left = _expect(self.check(expr.left, input_schema), "arr", "ARR_CAT")
        _expect(self.check(expr.right, input_schema), "arr", "ARR_CAT")
        return left

    def _chk_ArrDiff(self, expr, input_schema):
        left = _expect(self.check(expr.left, input_schema), "arr", "ARR_DIFF")
        _expect(self.check(expr.right, input_schema), "arr", "ARR_DIFF")
        return left

    def _chk_ArrDE(self, expr, input_schema):
        return _expect(self.check(expr.source, input_schema), "arr",
                       "ARR_DE")

    def _chk_ArrCollapse(self, expr, input_schema):
        source = _expect(self.check(expr.source, input_schema), "arr",
                         "ARR_COLLAPSE")
        inner = _element(source)
        if inner is not None and inner.kind != "arr":
            raise AlgebraTypeError(
                "ARR_COLLAPSE needs an array of arrays, inner sort is %s"
                % inner.kind,
                operator="ARR_COLLAPSE", expected="arr", got=inner.kind)
        return inner

    def _chk_ArrCross(self, expr, input_schema):
        left = _expect(self.check(expr.left, input_schema), "arr",
                       "ARR_CROSS")
        right = _expect(self.check(expr.right, input_schema), "arr",
                        "ARR_CROSS")
        pair = SchemaNode.tup({
            "field1": (_element(left).clone() if _element(left) is not None
                       else unknown_schema()),
            "field2": (_element(right).clone() if _element(right) is not None
                       else unknown_schema())})
        return SchemaNode.arr_of(pair)

    # -- references, predicates, methods ------------------------------------

    def _chk_Deref(self, expr, input_schema):
        source = _expect(self.check(expr.source, input_schema), "ref",
                         "DEREF")
        if source is None:
            return None
        if source.target is not None and source.target in self.catalog:
            return self.catalog.resolve(source.target)
        if source.children:
            return source.children[0]
        return None

    def _chk_RefOp(self, expr, input_schema):
        inner = self.check(expr.source, input_schema)
        if inner is not None:
            return SchemaNode.ref_to(inner)
        return SchemaNode.ref_to(unknown_schema())

    def _chk_Comp(self, expr, input_schema):
        source = self.check(expr.source, input_schema)
        for operand in expr.pred.deep_exprs():
            self.check(operand, source)
        return source

    def _chk_MethodCall(self, expr, input_schema):
        self.check(expr.receiver, input_schema)
        return None  # method result schemas live in the EXTRA layer

    def _chk_IndexedTypeScan(self, expr, input_schema):
        return self.named.get(expr.object_name)


def database_schemas(db) -> "tuple[Dict[str, SchemaNode], SchemaCatalog]":
    """(named-object schemas, type catalog) for a database.

    Named-object schemas come from the declared ``created_types`` (or
    are inferred from the stored values); the catalog resolves ref
    targets through the EXTRA type system.
    """
    from ..extra.ddl import ensure_type_system
    types = ensure_type_system(db)
    catalog = types.catalog
    named: Dict[str, SchemaNode] = {}
    for name in db.names():
        declared = getattr(db, "created_types", {}).get(name)
        if declared is not None:
            named[name] = declared.schema(types)
        else:
            try:
                named[name] = infer_schema(db.get(name))
            except TypeError:
                pass
    for type_name in types.names():
        types.schema_for(type_name)
    return named, catalog


def checker_for_database(db) -> TypeChecker:
    """A TypeChecker wired to a database: named-object schemas, the
    type catalog, and any declared scalar-function signatures."""
    named, catalog = database_schemas(db)
    return TypeChecker(named, catalog,
                       getattr(db, "function_signatures", None))
