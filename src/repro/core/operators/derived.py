"""Derived operators (Appendix §1).

Each derived operator is a *constructor function* returning a composition
of primitives — the paper stresses that the simplicity of the primitives
lets richer operators be defined readily, and that an optimizer can then
test such derived operators for utility.  Because these return primitive
trees, every transformation rule applies through them transparently.
"""

from __future__ import annotations

from ..expr import Expr, Input
from ..predicates import Comp, Predicate
from .arrays import ArrApply
from .multiset import AddUnion, Cross, Diff, SetApply
from .tuples import TupCat, TupExtract


def union(left: Expr, right: Expr) -> Expr:
    """∪ — max-of-cardinalities union:  A ∪ B = (A − B) ⊎ B."""
    return AddUnion(Diff(left, right), right)


def intersection(left: Expr, right: Expr) -> Expr:
    """∩ — min-of-cardinalities intersection:  A ∩ B = A − (A − B)."""
    return Diff(left, Diff(left, right))


def sigma(pred: Predicate, source: Expr) -> Expr:
    """Multiset selection:  σ_P(A) = SET_APPLY_{COMP_P(INPUT)}(A).

    COMP returns ``dne`` for failing occurrences and SET_APPLY's output
    multiset discards them — relational selection falls out of the null
    discipline.
    """
    return SetApply(Comp(pred, Input()), source)


def arr_sigma(pred: Predicate, source: Expr) -> Expr:
    """Array selection:  σ_P(A) = ARR_APPLY_{COMP_P(INPUT)}(A)."""
    return ArrApply(Comp(pred, Input()), source)


def _pair_flatten() -> Expr:
    """TUP_CAT(field1, field2) applied to a ×-produced pair."""
    return TupCat(TupExtract("field1", Input()),
                  TupExtract("field2", Input()))


def rel_join(pred: Predicate, left: Expr, right: Expr) -> Expr:
    """Relational-like Θ-join.

    rel_join_Θ(A, B) =
        SET_APPLY_{TUP_CAT(field1, field2)}(SET_APPLY_{COMP_Θ(INPUT)}(A × B))

    The predicate sees the raw pair, so its operands address the join
    sides as ``field1`` / ``field2`` paths (e.g.
    ``TupExtract("x", TupExtract("field1", Input()))``).  The final
    TUP_CAT flattens qualifying pairs into single tuples, which requires
    both inputs to be multisets of tuples with disjoint field names.
    """
    return SetApply(_pair_flatten(),
                    SetApply(Comp(pred, Input()), Cross(left, right)))


def rel_cross(left: Expr, right: Expr) -> Expr:
    """Relational-like cartesian product (pairs flattened by TUP_CAT)."""
    return SetApply(_pair_flatten(), Cross(left, right))


def join_field(side: str, field: str) -> Expr:
    """Convenience: the path ``fieldN.field`` over a ×-produced pair.

    *side* is 1 or 2 (as a string or int); use inside rel_join
    predicates.
    """
    return TupExtract(field, TupExtract("field%s" % side, Input()))
