"""All 23 primitive operators of the EXCESS algebra, plus derived forms.

Primitives (Section 3.2):

* multiset — ⊎ (:class:`AddUnion`), SET (:class:`SetCreate`),
  SET_APPLY (:class:`SetApply`), GRP (:class:`Grp`), DE (:class:`DE`),
  − (:class:`Diff`), × (:class:`Cross`), SET_COLLAPSE
  (:class:`SetCollapse`);
* tuple — π (:class:`Pi`), TUP_CAT (:class:`TupCat`), TUP_EXTRACT
  (:class:`TupExtract`), TUP (:class:`TupCreate`);
* array — ARR (:class:`ArrCreate`), ARR_EXTRACT (:class:`ArrExtract`),
  ARR_APPLY (:class:`ArrApply`), SUBARR (:class:`SubArr`), ARR_CAT
  (:class:`ArrCat`), ARR_COLLAPSE (:class:`ArrCollapse`), ARR_DIFF
  (:class:`ArrDiff`), ARR_DE (:class:`ArrDE`), ARR_CROSS
  (:class:`ArrCross`);
* reference — REF (:class:`RefOp`), DEREF (:class:`Deref`);
* predicate — COMP (:class:`~repro.core.predicates.Comp`).

Derived (Appendix §1): :func:`union`, :func:`intersection`,
:func:`sigma`, :func:`arr_sigma`, :func:`rel_join`, :func:`rel_cross`.
"""

from ..predicates import Comp
from .arrays import (ArrApply, ArrCat, ArrCollapse, ArrCreate, ArrCross,
                     ArrDE, ArrDiff, ArrExtract, SubArr)
from .derived import (arr_sigma, intersection, join_field, rel_cross,
                      rel_join, sigma, union)
from .library import (aggregate_per_group, antijoin, field_map_rebuild,
                      nest, register_library_functions, select_into_groups,
                      semijoin, unnest)
from .multiset import (DE, AddUnion, Cross, Diff, Grp, SetApply, SetCollapse,
                       SetCreate, exact_type_of)
from .refs import Deref, RefOp
from .tuples import Pi, TupCat, TupCreate, TupExtract

__all__ = [
    # multiset
    "AddUnion", "SetCreate", "SetApply", "Grp", "DE", "Diff", "Cross",
    "SetCollapse", "exact_type_of",
    # tuple
    "Pi", "TupCat", "TupExtract", "TupCreate",
    # array
    "ArrCreate", "ArrExtract", "ArrApply", "SubArr", "ArrCat",
    "ArrCollapse", "ArrDiff", "ArrDE", "ArrCross",
    # reference & predicate
    "RefOp", "Deref", "Comp",
    # derived
    "union", "intersection", "sigma", "arr_sigma", "rel_join", "rel_cross",
    "join_field",
    # library
    "nest", "unnest", "semijoin", "antijoin", "aggregate_per_group",
    "select_into_groups", "field_map_rebuild",
    "register_library_functions",
]
