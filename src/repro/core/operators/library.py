"""A library of derived operators built from the primitives.

Section 6 (and Section 1) frame this as the system's research purpose:
"the primitive nature of the algebraic operators allows other operators
to be defined in terms of them quite readily.  This will result in the
ability to test a wide variety of algebraic operators for utility and
optimizability."  This module is that library: each operator is a
constructor returning a pure composition of primitives, so every
transformation rule applies through it and the optimizer sees no new
node kinds.

Provided (beyond the appendix's ∪/∩/σ/rel_join/rel_×):

* :func:`nest` / :func:`unnest` — the nested-relational restructuring
  pair (the paper's model generalizes nested relations, so these come
  for free);
* :func:`semijoin` / :func:`antijoin` — membership-style joins;
* :func:`aggregate_per_group` — GRP followed by a per-group scalar;
* :func:`select_into_groups` — the corrected rule-10 right-hand shape,
  packaged;
* :func:`field_map_rebuild` — the π-with-transformation shape rule 26's
  field-map factoring recognises (Example 2's E).
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..expr import Const, Expr, Func, Input
from ..predicates import Atom, Comp, Predicate
from .multiset import Grp, SetApply, SetCollapse
from .tuples import Pi, TupCat, TupCreate, TupExtract


def nest(key_fields: Sequence[str], nested_field: str, source: Expr) -> Expr:
    """NEST — group tuples by *key_fields* and pack the groups.

    Result: a multiset of tuples ``(key_fields…, nested_field = {the
    non-key remainder of each tuple with that key})`` — the ν of nested
    relational algebra, expressed as GRP + per-group rebuilding, with
    unnest as its left inverse.
    """
    key = Pi(list(key_fields), Input())
    members = SetApply(
        Func("drop_fields", [Input(), Const(",".join(key_fields))]),
        Input())
    per_group = TupCat(
        Pi(list(key_fields), _any_element(Input())),
        TupCreate(nested_field, members))
    return SetApply(per_group, Grp(key, source))


def _any_element(group: Expr) -> Expr:
    """A representative element of a non-empty group (all share the
    grouping key, so any representative works): collapse the singleton
    trick is unavailable, so we use an aggregate-style helper function
    registered as ``one_of`` by :func:`register_library_functions`."""
    return Func("one_of", [group])


def unnest(nested_field: str, source: Expr) -> Expr:
    """UNNEST — μ: flatten a set-valued field back into its parent.

    Each tuple t with t.f = {x₁ … xₙ} becomes n tuples
    TUP_CAT(π_rest(t), x_i).  Composition: per parent tuple, cross the
    singleton {t} with t.f and flatten the pairs; SET_COLLAPSE merges
    the per-parent results.  The nested set's elements must themselves
    be tuples, with fields disjoint from the parent's remaining ones.
    """
    return SetCollapse(SetApply(per_parent_body(nested_field), source))


def per_parent_body(nested_field: str) -> Expr:
    """The per-parent-tuple body of :func:`unnest` (exposed for tests)."""
    from .multiset import Cross, SetCreate
    return SetApply(
        TupCat(Func("drop_field", [TupExtract("field1", Input()),
                                   Const(nested_field)]),
               TupExtract("field2", Input())),
        Cross(SetCreate(Input()), TupExtract(nested_field, Input())))


def semijoin(pred: Predicate, left: Expr, right: Expr) -> Expr:
    """A ⋉ B — elements of A with at least one Θ-partner in B.

    Composition: σ over A whose predicate tests non-emptiness of the
    matching subset of B.  ``pred`` addresses the A-element as
    ``field1`` paths and the B-element as ``field2`` paths, exactly as
    in rel_join.
    """
    from .multiset import Cross, SetCreate

    matches = SetApply(
        Comp(pred, Input()),
        Cross(SetCreate(Input()), right))
    keep = Atom(Func("count", [matches]), ">", Const(0))
    return SetApply(Comp(keep, Input()), left)


def antijoin(pred: Predicate, left: Expr, right: Expr) -> Expr:
    """A ▷ B — elements of A with no Θ-partner in B."""
    from .multiset import Cross, SetCreate
    matches = SetApply(Comp(pred, Input()),
                       Cross(SetCreate(Input()), right))
    keep = Atom(Func("count", [matches]), "=", Const(0))
    return SetApply(Comp(keep, Input()), left)


def aggregate_per_group(key: Expr, agg_func: str, value: Expr,
                        source: Expr,
                        key_field: str = "key",
                        agg_field: str = "agg") -> Expr:
    """GRP-then-aggregate: one tuple (key, aggregate) per group.

    ``key`` and ``value`` are per-element expressions (INPUT = the
    element); ``agg_func`` names a registered aggregate (count, min,
    max, sum, avg).
    """
    per_group = TupCat(
        TupCreate(key_field, substituted_key(key)),
        TupCreate(agg_field,
                  Func(agg_func, [SetApply(value, Input())])))
    return SetApply(per_group, Grp(key, source))


def substituted_key(key: Expr) -> Expr:
    """The group's shared key, recovered from a representative element."""
    from ..expr import substitute_input
    return substitute_input(key, Func("one_of", [Input()]))


def select_into_groups(pred: Predicate, key: Expr, source: Expr) -> Expr:
    """The packaged rule-10 right-hand side: group first, then filter
    within groups, dropping emptied groups."""
    from ..values import MultiSet
    from .derived import sigma  # noqa: delayed to avoid import cycles
    body = Comp(Atom(Input(), "!=", Const(MultiSet())),
                sigma(pred, Input()))
    return SetApply(body, Grp(key, source))


def field_map_rebuild(mapping: Dict[str, Expr]) -> Expr:
    """TUP_CAT of TUP[f](e_f) — the Example-2 rebuild shape that rule
    26's field-map factoring recognises."""
    body = None
    for field, producer in mapping.items():
        piece = TupCreate(field, producer)
        body = piece if body is None else TupCat(body, piece)
    if body is None:
        raise ValueError("field_map_rebuild needs at least one field")
    return body


# -- declared type signatures for the static analysis layer -------------

def _sig_one_of(arg_schemas):
    """one_of: a representative element of the collection argument."""
    from ..typecheck import is_unknown, unknown_schema
    if arg_schemas and arg_schemas[0] is not None \
            and not is_unknown(arg_schemas[0]) \
            and arg_schemas[0].kind in ("set", "arr"):
        return arg_schemas[0].children[0].clone()
    return unknown_schema()


def _dropping_signature(split):
    """Signature factory for drop_field/drop_fields: the result is the
    argument tuple minus the named fields.  Needs the argument
    *expressions* — the dropped names live in a Const literal."""
    def signature(arg_schemas, exprs):
        from ..schema import SchemaNode
        from ..typecheck import is_unknown, unknown_schema
        if len(arg_schemas) != 2 or arg_schemas[0] is None \
                or is_unknown(arg_schemas[0]) \
                or arg_schemas[0].kind != "tup":
            return unknown_schema()
        if not isinstance(exprs[1], Const) \
                or not isinstance(exprs[1].value, str):
            return unknown_schema()
        dropped = split(exprs[1].value)
        source = arg_schemas[0]
        return SchemaNode.tup({name: source.field(name).clone()
                               for name in source.field_names
                               if name not in dropped})

    signature.wants_exprs = True
    return signature


LIBRARY_SIGNATURES = {
    "one_of": _sig_one_of,
    "drop_field": _dropping_signature(lambda value: {value}),
    "drop_fields": _dropping_signature(lambda value: set(value.split(","))),
}


def register_library_functions(database) -> None:
    """Register the helper scalars the library compositions use
    (plus the aggregate builtins semijoin/antijoin count with)."""

    def one_of(group):
        for element in group.elements():
            return element
        raise ValueError("one_of over an empty group")

    def drop_field(t, field):
        return t.project([n for n in t.field_names if n != field])

    def drop_fields(t, names_csv):
        dropped = set(names_csv.split(","))
        return t.project([n for n in t.field_names if n not in dropped])

    if "one_of" not in database.functions:
        database.register_function("one_of", one_of,
                                   signature=LIBRARY_SIGNATURES["one_of"])
    if "drop_field" not in database.functions:
        database.register_function(
            "drop_field", drop_field,
            signature=LIBRARY_SIGNATURES["drop_field"])
    if "drop_fields" not in database.functions:
        database.register_function(
            "drop_fields", drop_fields,
            signature=LIBRARY_SIGNATURES["drop_fields"])
    # The aggregates the compositions lean on (count for semijoins,
    # sum/min/max/avg for aggregate_per_group).
    from ...excess.builtins import register_builtins
    register_builtins(database)
