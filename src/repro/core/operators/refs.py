"""Reference operators (Section 3.2.4): REF and DEREF.

References are OIDs treated as first-class algebra values; the "ref"
type constructor has the same privileges as multiset, array, and tuple.
DEREF collapses a ref node in the schema, replacing the OID with a full
element of the target domain; REF converts a structure into a reference
to it.

Rule 28 requires DEREF(REF(A)) = REF(DEREF(A)) = A, so REF must be able
to *recover* the reference of an extant object rather than always
minting a new one: when the operand value already identifies an object
in the store, its existing OID is returned.  (Equality in the algebra is
value equality, so value-identical objects share the recovered
reference; this is the price of folding identity into a value-based
algebra, and the paper's single-equality design makes it unobservable
from within the algebra.)
"""

from __future__ import annotations

from typing import Any, Optional

from ..expr import AlgebraError, EvalContext, Expr
from ..values import DNE, Ref, is_null


class Deref(Expr):
    """DEREF — materialize the object an OID refers to.

    A dangling reference (the owner deleted the object) yields ``dne``,
    which downstream multiset operators will discard.
    """

    _fields = ("source",)

    def __init__(self, source: Expr):
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        value = self.source.evaluate(input_value, ctx)
        if is_null(value):
            return value
        if not isinstance(value, Ref):
            raise AlgebraError("DEREF needs a reference, got %r" % (value,))
        if ctx.store is None:
            raise AlgebraError("DEREF needs an object store in the context")
        ctx.tick("deref_count")
        found = ctx.store.get(value.oid, default=DNE)
        return found

    def describe(self) -> str:
        return "DEREF(%s)" % self.source.describe()


class RefOp(Expr):
    """REF — convert a structure into a reference to it.

    If an object with this exact value already exists in the store, its
    reference is returned (making REF a left- and right-inverse of DEREF
    per rule 28); otherwise a fresh object is created, optionally typed
    by *type_name* for OID allocation.
    """

    _fields = ("source", "type_name")

    def __init__(self, source: Expr, type_name: Optional[str] = None):
        self.source = source
        self.type_name = type_name

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        value = self.source.evaluate(input_value, ctx)
        if is_null(value):
            return value
        if ctx.store is None:
            raise AlgebraError("REF needs an object store in the context")
        existing = ctx.store.find_ref(value)
        if existing is not None:
            return existing
        return ctx.store.insert(value, type_name=self.type_name)

    def describe(self) -> str:
        if self.type_name:
            return "REF[%s](%s)" % (self.type_name, self.source.describe())
        return "REF(%s)" % self.source.describe()
