"""The nine array operators (Section 3.2.3).

ARR, ARR_EXTRACT, ARR_APPLY, SUBARR, ARR_CAT, plus the four
order-preserving analogs of multiset operators: ARR_COLLAPSE, ARR_DIFF,
ARR_DE, and ARR_CROSS.  Algebra arrays are one-dimensional and
variable-length; positions are 1-based, and either SUBARR bound may be
the token ``"last"``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

from ..expr import AlgebraError, EvalContext, Expr
from ..values import DNE, Arr, Tup, is_null

#: SUBARR / ARR_EXTRACT bound type: a 1-based position or "last".
Position = Union[int, str]


def _check_position(position: Position, op_name: str) -> None:
    if position == "last":
        return
    if not isinstance(position, int) or position < 1:
        raise AlgebraError(
            "%s position must be an integer >= 1 or 'last', got %r"
            % (op_name, position))


class ArrCreate(Expr):
    """ARR — wrap any structure in a one-element array."""

    _fields = ("source",)

    def __init__(self, source: Expr):
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        value = self.source.evaluate(input_value, ctx)
        if is_null(value):
            return value
        return Arr([value])

    def describe(self) -> str:
        return "ARR(%s)" % self.source.describe()


class ArrExtract(Expr):
    """ARR_EXTRACT — the element at a 1-based position, unwrapped.

    The result is the element itself, *not* an array containing it — the
    distinction from SUBARR mirrors TUP_EXTRACT versus π.
    """

    _fields = ("position", "source")

    def __init__(self, position: Position, source: Expr):
        _check_position(position, "ARR_EXTRACT")
        self.position = position
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        value = self.source.evaluate(input_value, ctx)
        if is_null(value):
            return value
        if not isinstance(value, Arr):
            raise AlgebraError("ARR_EXTRACT needs an array, got %r" % (value,))
        position = len(value) if self.position == "last" else self.position
        if not 1 <= position <= len(value):
            return DNE
        return value.extract(position)

    def describe(self) -> str:
        return "ARR_EXTRACT[%s](%s)" % (self.position, self.source.describe())


class ArrApply(Expr):
    """ARR_APPLY — apply an expression to every element, preserving order.

    Identical to SET_APPLY except that order is preserved.  Results that
    come back ``dne`` are dropped (keeping arrays dense), which is how
    array selection σ is derived; all other results, including ``unk``,
    keep their positions relative to each other.

    Like SET_APPLY, a ``type_filter`` restricts processing to elements
    whose exact type matches (Section 4's dispatch applies to the array
    looping operator too).
    """

    _fields = ("body", "source", "type_filter")
    _binding_fields = ("body",)

    def __init__(self, body: Expr, source: Expr, type_filter=None):
        from .multiset import _normalize_filter
        self.body = body
        self.source = source
        self.type_filter = _normalize_filter(type_filter)

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        from .multiset import exact_type_of
        value = self.source.evaluate(input_value, ctx)
        if is_null(value):
            return value
        if not isinstance(value, Arr):
            raise AlgebraError("ARR_APPLY needs an array, got %r" % (value,))
        out: List[Any] = []
        for element in value:
            ctx.tick("elements_scanned")
            if self.type_filter is not None:
                if exact_type_of(element, ctx) not in self.type_filter:
                    continue
            ctx.tick("arr_apply_elements")
            result = self.body.evaluate(element, ctx)
            if result is DNE:
                continue
            out.append(result)
        return Arr(out)

    def describe(self) -> str:
        if self.type_filter is not None:
            return "ARR_APPLY[%s; %s](%s)" % (
                "/".join(sorted(self.type_filter)), self.body.describe(),
                self.source.describe())
        return "ARR_APPLY[%s](%s)" % (self.body.describe(),
                                      self.source.describe())


class SubArr(Expr):
    """SUBARR — elements from *lower* to *upper* (1-based, inclusive).

    Produces an array, in input order.  Bounds past the end are clamped;
    an inverted range yields the empty array (which is a legal value for
    variable-length arrays).
    """

    _fields = ("lower", "upper", "source")

    def __init__(self, lower: Position, upper: Position, source: Expr):
        _check_position(lower, "SUBARR")
        _check_position(upper, "SUBARR")
        self.lower = lower
        self.upper = upper
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        value = self.source.evaluate(input_value, ctx)
        if is_null(value):
            return value
        if not isinstance(value, Arr):
            raise AlgebraError("SUBARR needs an array, got %r" % (value,))
        return value.subarr(self.lower, self.upper)

    def describe(self) -> str:
        return "SUBARR[%s,%s](%s)" % (self.lower, self.upper,
                                      self.source.describe())


class ArrCat(Expr):
    """ARR_CAT — all elements of the first array followed by the second's."""

    _fields = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        lhs = self.left.evaluate(input_value, ctx)
        rhs = self.right.evaluate(input_value, ctx)
        if is_null(lhs):
            return lhs
        if is_null(rhs):
            return rhs
        if not isinstance(lhs, Arr) or not isinstance(rhs, Arr):
            raise AlgebraError("ARR_CAT needs two arrays")
        return lhs.concat(rhs)

    def describe(self) -> str:
        return "ARR_CAT(%s, %s)" % (self.left.describe(), self.right.describe())


class ArrCollapse(Expr):
    """ARR_COLLAPSE — flatten an array of arrays, preserving order."""

    _fields = ("source",)

    def __init__(self, source: Expr):
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        value = self.source.evaluate(input_value, ctx)
        if is_null(value):
            return value
        if not isinstance(value, Arr):
            raise AlgebraError("ARR_COLLAPSE needs an array")
        out: List[Any] = []
        for element in value:
            if not isinstance(element, Arr):
                raise AlgebraError(
                    "ARR_COLLAPSE needs an array of arrays; found %r" % (element,))
            out.extend(element)
        return Arr(out)

    def describe(self) -> str:
        return "ARR_COLLAPSE(%s)" % self.source.describe()


class ArrDiff(Expr):
    """ARR_DIFF — order-preserving analog of multiset difference.

    For each element, min(card_A, card_B) occurrences are removed from A;
    the *earliest* occurrences are removed, and survivors keep A's order.
    """

    _fields = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        lhs = self.left.evaluate(input_value, ctx)
        rhs = self.right.evaluate(input_value, ctx)
        if is_null(lhs):
            return lhs
        if is_null(rhs):
            return rhs
        if not isinstance(lhs, Arr) or not isinstance(rhs, Arr):
            raise AlgebraError("ARR_DIFF needs two arrays")
        to_remove: Dict[Any, int] = {}
        for element in rhs:
            to_remove[element] = to_remove.get(element, 0) + 1
        out: List[Any] = []
        for element in lhs:
            if to_remove.get(element, 0) > 0:
                to_remove[element] -= 1
            else:
                out.append(element)
        return Arr(out)

    def describe(self) -> str:
        return "ARR_DIFF(%s, %s)" % (self.left.describe(), self.right.describe())


class ArrDE(Expr):
    """ARR_DE — order-preserving duplicate elimination (first kept)."""

    _fields = ("source",)

    def __init__(self, source: Expr):
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        value = self.source.evaluate(input_value, ctx)
        if is_null(value):
            return value
        if not isinstance(value, Arr):
            raise AlgebraError("ARR_DE needs an array")
        ctx.tick("de_elements", len(value))
        seen = set()
        out: List[Any] = []
        for element in value:
            if element not in seen:
                seen.add(element)
                out.append(element)
        return Arr(out)

    def describe(self) -> str:
        return "ARR_DE(%s)" % self.source.describe()


class ArrCross(Expr):
    """ARR_CROSS — order-preserving cartesian product.

    Produces an array of 2-tuples (fields ``field1``/``field2``) in
    row-major order: the first input's order is outer, the second's
    inner.
    """

    _fields = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        lhs = self.left.evaluate(input_value, ctx)
        rhs = self.right.evaluate(input_value, ctx)
        if is_null(lhs):
            return lhs
        if is_null(rhs):
            return rhs
        if not isinstance(lhs, Arr) or not isinstance(rhs, Arr):
            raise AlgebraError("ARR_CROSS needs two arrays")
        ctx.tick("cross_pairs", len(lhs) * len(rhs))
        return Arr(Tup(field1=a, field2=b) for a in lhs for b in rhs)

    def describe(self) -> str:
        return "ARR_CROSS(%s, %s)" % (self.left.describe(), self.right.describe())
